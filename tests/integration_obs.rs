//! Integration: the observability layer reconciles with the engine and its
//! metrics document is pinned to a committed golden fixture.
//!
//! The tracer is a shim: enabling it must change *nothing* about what the
//! engine computes, and everything it reports must agree with the engine's
//! own `EngineStats` — same counts, not "roughly the same".

use hpc_workloads::{Benchmark, GeneratorConfig};
use shared_icache::acmp_sweep::SweepEngine;
use shared_icache::DesignPoint;

fn tiny_generator() -> GeneratorConfig {
    GeneratorConfig {
        num_workers: 2,
        parallel_instructions_per_thread: 5_000,
        num_phases: 1,
        seed: 23,
    }
}

/// Path of the committed golden metrics document.
fn fixture_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../tests/fixtures/metrics_v1.json")
}

/// A hand-built snapshot with every feature of the schema exercised:
/// counters, a multi-bucket histogram, and a single-value histogram.
fn reference_snapshot() -> acmp_obs::MetricsSnapshot {
    let mut snapshot = acmp_obs::MetricsSnapshot::default();
    snapshot.counters.insert("engine.simulated".to_string(), 6);
    snapshot
        .counters
        .insert("engine.memory_hits".to_string(), 2);
    snapshot.counters.insert("trace.refills".to_string(), 9636);
    let mut spans = acmp_obs::HistogramSnapshot::default();
    for dur_ns in [800, 2_500, 2_900, 70_000] {
        spans.record(dur_ns);
    }
    snapshot
        .histograms
        .insert("engine.simulate_cell.simulate".to_string(), spans);
    let mut depth = acmp_obs::HistogramSnapshot::default();
    depth.record(6);
    snapshot
        .histograms
        .insert("pool.queue_depth".to_string(), depth);
    snapshot
}

#[test]
fn metrics_document_matches_the_committed_golden_fixture() {
    // The `acmp-obs-metrics/v1` schema is an interface: CI validators, the
    // bench-report embedding and `sweep trace report` all parse it.  Any
    // byte drift in serialization fails here loudly.  To bless a deliberate
    // schema change, rerun with `UPDATE_FIXTURES=1` and flag it in review.
    let snapshot = reference_snapshot();
    let rendered = format!("{}\n", snapshot.to_value());
    if std::env::var_os("UPDATE_FIXTURES").is_some() {
        std::fs::write(fixture_path(), &rendered).expect("fixture is writable");
        return;
    }
    let committed = std::fs::read_to_string(fixture_path()).expect("committed fixture is readable");
    assert_eq!(
        rendered, committed,
        "metrics serialization drifted off tests/fixtures/metrics_v1.json"
    );

    // And the strict reader rebuilds the exact same snapshot from it.
    let value = serde_json::from_str::<serde::Value>(&committed).expect("fixture parses");
    let reread = acmp_obs::MetricsSnapshot::from_value(&value).expect("fixture validates");
    assert_eq!(reread, snapshot);
}

#[test]
fn trace_and_metrics_reconcile_exactly_with_engine_stats() {
    // One test owns the process-global recorder/registry so no sibling
    // test's events can bleed into the counts.
    acmp_obs::enable_events();
    acmp_obs::enable_metrics();
    acmp_obs::registry().reset();
    let _ = acmp_obs::drain_events();

    let engine = SweepEngine::new(tiny_generator()).with_threads(2);
    let benchmarks = [Benchmark::Cg, Benchmark::Lu];
    let designs = [DesignPoint::baseline(), DesignPoint::proposed()];
    let outcome = engine.run_grid(&benchmarks, &designs);
    assert_eq!(outcome.rows.len(), 4);
    let stats = engine.stats();
    assert_eq!(stats.simulated, 4);

    // Metrics: engine counters mirror EngineStats number for number.
    let snapshot = acmp_obs::registry().snapshot();
    assert_eq!(snapshot.counter("engine.simulated"), stats.simulated);
    assert_eq!(snapshot.counter("engine.memory_hits"), stats.memory_hits);
    assert_eq!(snapshot.counter("engine.disk_hits"), stats.disk_hits);
    assert_eq!(
        snapshot.counter("engine.trace_generated"),
        stats.trace_generated
    );
    assert_eq!(
        snapshot.counter("engine.trace_disk_hits"),
        stats.trace_disk_hits
    );
    assert!(
        snapshot.counter("trace.refills") > 0,
        "simulations replay traces through the hot refill path"
    );

    // Trace: one simulate span per simulated cell, each carrying the cell's
    // benchmark, and per-thread sequence numbers strictly increase.
    let events = acmp_obs::drain_events();
    let sim_spans: Vec<_> = events
        .iter()
        .filter(|e| e.name == "engine.simulate_cell.simulate")
        .collect();
    assert_eq!(sim_spans.len() as u64, stats.simulated);
    for span in &sim_spans {
        assert!(
            span.fields.iter().any(|(k, _)| *k == "benchmark"),
            "simulate spans must attribute their cell"
        );
    }
    // Per-thread sequence numbers are gapless: nothing was dropped between
    // a thread's first and last event.  (Drain order itself follows span
    // *start* times, so seq order and drain order legitimately differ.)
    let mut seqs: std::collections::HashMap<u32, Vec<u64>> = std::collections::HashMap::new();
    for event in &events {
        seqs.entry(event.thread).or_default().push(event.seq);
    }
    for (thread, mut thread_seqs) in seqs {
        thread_seqs.sort_unstable();
        for pair in thread_seqs.windows(2) {
            assert_eq!(
                pair[1],
                pair[0] + 1,
                "thread {thread} lost an event between seq {} and {}",
                pair[0],
                pair[1]
            );
        }
    }

    // Rerunning the same grid hits the in-memory cache: no new simulate
    // spans, and the memory-hit counter moves in lockstep with the engine.
    let rerun = engine.run_grid(&benchmarks, &designs);
    assert_eq!(rerun.rows.len(), 4);
    let warm = acmp_obs::registry().snapshot();
    assert_eq!(warm.counter("engine.simulated"), 4);
    assert_eq!(
        warm.counter("engine.memory_hits"),
        engine.stats().memory_hits
    );
    let warm_events = acmp_obs::drain_events();
    assert!(warm_events
        .iter()
        .all(|e| e.name != "engine.simulate_cell.simulate"));
    assert!(warm_events
        .iter()
        .any(|e| e.name == "engine.simulate_cell.memory_hit"));

    // Rows are untouched by all of this instrumentation: the two runs'
    // JSONL serializations are byte-identical.
    let mut cold: Vec<String> = outcome.rows.iter().map(|r| r.to_jsonl()).collect();
    let mut hot: Vec<String> = rerun.rows.iter().map(|r| r.to_jsonl()).collect();
    cold.sort();
    hot.sort();
    assert_eq!(cold, hot);
}
