//! Cross-crate integration tests: the full ACMP simulator driven by the
//! synthetic workloads, checking the paper's qualitative claims.

use hpc_workloads::{Benchmark, GeneratorConfig, TraceGenerator};
use proptest::prelude::*;
use shared_icache::sim_acmp::{AcmpConfig, BusWidth, Machine, SharingMode};
use shared_icache::{DesignPoint, ExperimentContext};

fn context(workers: usize, instrs: u64) -> ExperimentContext {
    ExperimentContext::new(GeneratorConfig {
        num_workers: workers,
        parallel_instructions_per_thread: instrs,
        num_phases: 2,
        seed: 21,
    })
}

#[test]
fn every_design_point_executes_the_full_trace_set() {
    let ctx = context(4, 10_000);
    let designs = [
        DesignPoint::baseline(),
        DesignPoint::naive_shared(2).expect("valid core count"),
        DesignPoint::naive_shared(4).expect("valid core count"),
        DesignPoint::shared(16, 8, BusWidth::Single).expect("valid design"),
        DesignPoint::proposed(),
        DesignPoint::all_shared(),
    ];
    for b in [Benchmark::Cg, Benchmark::CoEvp] {
        let expected = ctx.traces(b).total_instructions();
        for d in &designs {
            let r = ctx.simulate(b, d);
            assert_eq!(r.instructions, expected, "{b} on {d}");
            assert!(r.cycles > 0);
        }
    }
}

#[test]
fn proposed_design_has_no_meaningful_performance_cost() {
    // The paper's headline claim: 16 KB shared + double bus + 4 line buffers
    // performs like the private baseline.
    let ctx = context(8, 25_000);
    let benchmarks = [
        Benchmark::Cg,
        Benchmark::Lu,
        Benchmark::Lulesh,
        Benchmark::CoMd,
    ];
    let mut ratios = Vec::new();
    for b in benchmarks {
        let base = ctx.simulate(b, &DesignPoint::baseline());
        let prop = ctx.simulate(b, &DesignPoint::proposed());
        ratios.push(prop.cycles as f64 / base.cycles as f64);
    }
    let mean = ratios.iter().sum::<f64>() / ratios.len() as f64;
    assert!(
        mean < 1.03,
        "the proposed design should be within a few percent of the baseline, mean ratio {mean:.3}"
    );
}

#[test]
fn naive_sharing_hurts_most_at_the_highest_sharing_degree() {
    let ctx = context(8, 25_000);
    // UA is the paper's worst case for naive sharing (18% at cpc = 8).
    let base = ctx.simulate(Benchmark::Ua, &DesignPoint::baseline());
    let cpc2 = ctx.simulate(
        Benchmark::Ua,
        &DesignPoint::naive_shared(2).expect("valid core count"),
    );
    let cpc8 = ctx.simulate(
        Benchmark::Ua,
        &DesignPoint::naive_shared(8).expect("valid core count"),
    );
    let r2 = cpc2.cycles as f64 / base.cycles as f64;
    let r8 = cpc8.cycles as f64 / base.cycles as f64;
    assert!(
        r8 >= r2,
        "cpc=8 ({r8:.3}) should not be faster than cpc=2 ({r2:.3})"
    );
    assert!(
        r8 > 1.01,
        "UA should visibly suffer from naive sharing, got {r8:.3}"
    );
    assert!(
        r8 < 1.5,
        "the slowdown should stay in the tens of percent, got {r8:.3}"
    );
}

#[test]
fn double_bus_recovers_the_naive_sharing_loss() {
    let ctx = context(8, 25_000);
    let base = ctx.simulate(Benchmark::Ua, &DesignPoint::baseline());
    let naive = ctx.simulate(
        Benchmark::Ua,
        &DesignPoint::shared(16, 4, BusWidth::Single).expect("valid design"),
    );
    let double = ctx.simulate(
        Benchmark::Ua,
        &DesignPoint::shared(16, 4, BusWidth::Double).expect("valid design"),
    );
    let naive_ratio = naive.cycles as f64 / base.cycles as f64;
    let double_ratio = double.cycles as f64 / base.cycles as f64;
    assert!(
        double_ratio < naive_ratio,
        "doubling the bandwidth must help ({naive_ratio:.3} -> {double_ratio:.3})"
    );
    assert!(
        double_ratio < 1.05,
        "with a double bus the slowdown should essentially disappear, got {double_ratio:.3}"
    );
}

#[test]
fn shared_icache_reduces_worker_misses() {
    // Fig. 11: sharing the I-cache reduces MPKI thanks to cross-thread
    // prefetching of the common code.
    let ctx = context(8, 25_000);
    for b in [Benchmark::Lu, Benchmark::CoEvp] {
        let private = ctx.simulate(b, &DesignPoint::baseline());
        let shared = ctx.simulate(
            b,
            &DesignPoint::shared(32, 4, BusWidth::Double).expect("valid design"),
        );
        assert!(
            shared.worker_icache.misses < private.worker_icache.misses,
            "{b}: shared misses {} vs private {}",
            shared.worker_icache.misses,
            private.worker_icache.misses
        );
    }
}

#[test]
fn all_shared_is_worse_for_serial_heavy_benchmarks_than_for_parallel_ones() {
    // Fig. 13: the all-shared penalty grows with the serial-code fraction.
    let ctx = context(8, 25_000);
    let ratio = |b: Benchmark| {
        let ws = ctx.simulate(b, &DesignPoint::worker_shared_32k_double());
        let all = ctx.simulate(b, &DesignPoint::all_shared());
        all.cycles as f64 / ws.cycles as f64
    };
    let parallel_heavy = ratio(Benchmark::Lu); // ~0.5% serial
    let serial_heavy = ratio(Benchmark::Nab); // ~22% serial
    assert!(
        serial_heavy >= parallel_heavy - 0.01,
        "nab (serial-heavy, {serial_heavy:.3}) should pay at least as much as LU ({parallel_heavy:.3})"
    );
}

#[test]
fn cpi_stacks_account_for_every_cycle() {
    let ctx = context(4, 10_000);
    let r = ctx.simulate(
        Benchmark::Ft,
        &DesignPoint::naive_shared(4).expect("valid core count"),
    );
    for core in &r.cores {
        // Each core is accounted every cycle from start to its finish, so the
        // per-core total can not exceed the machine's cycle count but must be
        // a large fraction of it for the workers (they wait at barriers).
        assert!(core.cpi.total_cycles() <= r.cycles);
        assert!(
            core.cpi.total_cycles() as f64 > r.cycles as f64 * 0.5,
            "core {} accounts for too few cycles",
            core.core
        );
    }
}

#[test]
fn every_design_point_variant_simulates_without_panicking() {
    // A small configuration keeps the full design-point sweep cheap enough
    // for CI while still exercising every machine topology the paper
    // evaluates (private, naive shared, resized/buffered/double-bus shared,
    // and both all-shared variants).
    let ctx = ExperimentContext::new(GeneratorConfig {
        num_workers: 4,
        parallel_instructions_per_thread: 4_000,
        num_phases: 1,
        seed: 5,
    });
    let designs = [
        DesignPoint::baseline(),
        DesignPoint::naive_shared(2).expect("valid core count"),
        DesignPoint::naive_shared(4).expect("valid core count"),
        DesignPoint::shared(16, 2, BusWidth::Single).expect("valid design"),
        DesignPoint::shared(16, 8, BusWidth::Double).expect("valid design"),
        DesignPoint::shared(32, 4, BusWidth::Double).expect("valid design"),
        DesignPoint::proposed(),
        DesignPoint::worker_shared_32k_double(),
        DesignPoint::all_shared(),
        DesignPoint::all_shared_single_bus(),
        DesignPoint::proposed()
            .with_line_buffers(8)
            .expect("valid line-buffer count"),
    ];
    let expected = ctx.traces(Benchmark::Cg).total_instructions();
    for design in &designs {
        let result = ctx.simulate(Benchmark::Cg, design);
        assert_eq!(result.instructions, expected, "{design}");
        assert!(result.cycles > 0, "{design}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// For any sharing degree that divides the worker count, any bus width
    /// and any line-buffer count, the machine executes the trace set
    /// completely and deterministically.
    #[test]
    fn machine_executes_everything_for_any_configuration(
        cpc_idx in 0usize..3,
        double_bus in any::<bool>(),
        line_buffers in 2usize..9,
        seed in 0u64..1000,
    ) {
        let cpc = [1usize, 2, 4][cpc_idx];
        let traces = TraceGenerator::new(
            Benchmark::Mg.profile(),
            GeneratorConfig {
                num_workers: 4,
                parallel_instructions_per_thread: 4_000,
                num_phases: 1,
                seed,
            },
        )
        .generate();

        let mut cfg = AcmpConfig::worker_shared(4, cpc).with_line_buffers(line_buffers);
        if double_bus {
            cfg = cfg.with_bus_width(BusWidth::Double);
        }
        let sharing_is_worker_side = matches!(
            cfg.sharing,
            SharingMode::Private | SharingMode::WorkerShared { .. }
        );
        prop_assert!(sharing_is_worker_side);

        let a = Machine::new(cfg, &traces).run().unwrap();
        let b = Machine::new(cfg, &traces).run().unwrap();
        prop_assert_eq!(a.instructions, traces.total_instructions());
        prop_assert_eq!(a.cycles, b.cycles, "simulation must be deterministic");
    }
}
