//! Cross-crate integration tests: workload generation feeding the trace
//! statistics, including property-based tests on the generator invariants.

use hpc_workloads::{Benchmark, CodeLayout, GeneratorConfig, TraceGenerator};
use proptest::prelude::*;
use shared_icache::sim_trace::{
    read_trace_json, write_trace_json, SharingStats, ThreadId, TraceStats,
};

fn generate(
    b: Benchmark,
    workers: usize,
    instrs: u64,
    seed: u64,
) -> shared_icache::sim_trace::TraceSet {
    TraceGenerator::new(
        b.profile(),
        GeneratorConfig {
            num_workers: workers,
            parallel_instructions_per_thread: instrs,
            num_phases: 2,
            seed,
        },
    )
    .generate()
}

#[test]
fn all_24_benchmarks_generate_consistent_characteristics() {
    let cfg = GeneratorConfig {
        num_workers: 4,
        parallel_instructions_per_thread: 20_000,
        num_phases: 2,
        seed: 99,
    };
    for b in Benchmark::ALL {
        let profile = b.profile();
        let set = TraceGenerator::new(profile, cfg).generate();
        assert_eq!(set.num_threads(), 5, "{b}");

        let master = TraceStats::from_trace(set.master());
        // Basic-block calibration (Fig. 2): within 30% of the profile.
        let parallel_bb = master.parallel.avg_basic_block_bytes();
        assert!(
            (parallel_bb - profile.parallel_bb_bytes as f64).abs()
                < profile.parallel_bb_bytes as f64 * 0.3,
            "{b}: parallel BB {parallel_bb:.0}B vs profile {}B",
            profile.parallel_bb_bytes
        );

        // Serial fraction calibration (Fig. 13 x-axis).
        let serial_fraction = master.serial_fraction();
        assert!(
            (serial_fraction - profile.serial_fraction).abs() < 0.05,
            "{b}: serial fraction {serial_fraction:.3} vs profile {:.3}",
            profile.serial_fraction
        );

        // Sharing calibration (Fig. 4).
        let sharing = SharingStats::from_trace_set(&set);
        assert!(
            sharing.dynamic_sharing > 0.9,
            "{b}: dynamic sharing {:.2}",
            sharing.dynamic_sharing
        );

        // Workers never execute serial code.
        for t in set.iter().skip(1) {
            assert_eq!(TraceStats::from_trace(t).serial.instructions, 0, "{b}");
        }
    }
}

#[test]
fn parallel_basic_blocks_are_longer_than_serial_on_average() {
    let mut ratios = Vec::new();
    for b in Benchmark::ALL {
        let set = generate(b, 2, 8_000, 7);
        let stats = TraceStats::from_trace(set.master());
        if stats.serial.basic_blocks > 0 {
            ratios.push(
                stats.parallel.avg_basic_block_bytes() / stats.serial.avg_basic_block_bytes(),
            );
        }
    }
    let mean = ratios.iter().sum::<f64>() / ratios.len() as f64;
    assert!(
        mean > 2.0,
        "the paper reports ~3x longer basic blocks in parallel code, measured {mean:.1}x"
    );
}

#[test]
fn shared_kernel_addresses_are_identical_across_threads() {
    let set = generate(Benchmark::Lulesh, 4, 10_000, 13);
    let shared_addrs = |tid: usize| {
        let stats = TraceStats::from_trace(set.thread(ThreadId(tid)).unwrap());
        let mut addrs: Vec<u64> = stats
            .footprints
            .parallel_addrs
            .iter()
            .copied()
            .filter(|a| CodeLayout::is_shared_address(*a))
            .collect();
        addrs.sort_unstable();
        addrs
    };
    let reference = shared_addrs(1);
    assert!(!reference.is_empty());
    for tid in 2..=4 {
        assert_eq!(shared_addrs(tid), reference, "thread {tid}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Any benchmark, any small scale, any seed: generation succeeds,
    /// instruction counts are near the requested budget, and the trace
    /// round-trips through the JSON serialisation unchanged.
    #[test]
    fn generation_is_well_formed_for_any_seed(
        bench_idx in 0usize..24,
        seed in any::<u64>(),
        instrs in 2_000u64..8_000,
    ) {
        let b = Benchmark::ALL[bench_idx];
        let set = generate(b, 2, instrs, seed);
        prop_assert_eq!(set.num_threads(), 3);

        for t in set.iter() {
            let n = t.num_instructions();
            prop_assert!(n > 0);
            if !t.thread().is_master() {
                prop_assert!(n as f64 > instrs as f64 * 0.7);
                prop_assert!((n as f64) < instrs as f64 * 1.5);
            }
        }

        // Serialisation round-trip of the worker trace.
        let worker = set.thread(ThreadId(1)).unwrap();
        let mut buf = Vec::new();
        write_trace_json(worker, &mut buf).unwrap();
        let back = read_trace_json(&buf[..]).unwrap();
        prop_assert_eq!(worker, &back);
    }

    /// The same configuration always generates the same traces (the
    /// simulator must be reproducible end to end).
    #[test]
    fn generation_is_deterministic_for_any_seed(seed in any::<u64>()) {
        let a = generate(Benchmark::Mg, 2, 3_000, seed);
        let b = generate(Benchmark::Mg, 2, 3_000, seed);
        prop_assert_eq!(a, b);
    }
}
