//! Integration: the sweep engine is deterministic and warm-startable.
//!
//! The determinism contract: running the same grid twice — in the same
//! process, in a fresh process, or with a different worker count — yields
//! byte-identical JSONL rows modulo row order (rows are sorted by job key
//! before comparing).

use hpc_workloads::{Benchmark, GeneratorConfig};
use shared_icache::acmp_sweep::merge::{merge_shard_streams, shard_key_schedule};
use shared_icache::acmp_sweep::{scale_generator, GridSpec, JobKey, ShardSpec, SweepEngine};
use shared_icache::DesignPoint;

fn tiny_generator() -> GeneratorConfig {
    GeneratorConfig {
        num_workers: 2,
        parallel_instructions_per_thread: 5_000,
        num_phases: 1,
        seed: 11,
    }
}

fn grid() -> (Vec<Benchmark>, Vec<DesignPoint>) {
    (
        vec![Benchmark::Cg, Benchmark::Lu, Benchmark::Ua],
        vec![
            DesignPoint::baseline(),
            DesignPoint::naive_shared(2).expect("valid core count"),
            DesignPoint::proposed(),
        ],
    )
}

/// The grid's JSONL rows, sorted by job key.
fn sorted_jsonl(engine: &SweepEngine) -> Vec<String> {
    let (benchmarks, designs) = grid();
    let mut rows: Vec<String> = engine
        .run_grid(&benchmarks, &designs)
        .rows
        .iter()
        .map(|r| r.to_jsonl())
        .collect();
    rows.sort_unstable();
    rows
}

#[test]
fn same_grid_twice_is_byte_identical() {
    let engine = SweepEngine::new(tiny_generator());
    let first = sorted_jsonl(&engine);
    let second = sorted_jsonl(&engine);
    assert_eq!(first.len(), 9);
    assert_eq!(first, second);
}

#[test]
fn worker_count_does_not_change_the_rows() {
    let serial = sorted_jsonl(&SweepEngine::new(tiny_generator()).with_threads(1));
    let parallel = sorted_jsonl(&SweepEngine::new(tiny_generator()).with_threads(8));
    assert_eq!(
        serial, parallel,
        "scheduling must never leak into simulation results"
    );
}

#[test]
fn disk_store_round_trip_preserves_the_rows() {
    let dir = std::env::temp_dir().join(format!("acmp-sweep-integration-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let cold = SweepEngine::new(tiny_generator())
        .with_disk_store(&dir)
        .unwrap();
    let cold_rows = sorted_jsonl(&cold);
    assert_eq!(cold.stats().disk_hits, 0);
    assert_eq!(cold.stats().simulated, 9);

    // A fresh engine over the same store: everything is served from disk,
    // and the JSONL is byte-identical to the cold run.
    let warm = SweepEngine::new(tiny_generator())
        .with_disk_store(&dir)
        .unwrap();
    let warm_rows = sorted_jsonl(&warm);
    assert_eq!(warm.stats().simulated, 0, "warm run must not re-simulate");
    assert_eq!(warm.stats().disk_hits, 9);
    assert_eq!(cold_rows, warm_rows);

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn warm_engine_does_zero_trace_generation_across_processes() {
    let dir = std::env::temp_dir().join(format!(
        "acmp-sweep-integration-traces-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);

    let cold = SweepEngine::new(tiny_generator())
        .with_disk_store(&dir)
        .unwrap();
    let cold_rows = sorted_jsonl(&cold);
    assert_eq!(cold.stats().trace_generated, 3, "one per benchmark");

    // A fresh engine is a stand-in for a fresh process: nothing in memory,
    // everything from the segment store — no simulations, no trace
    // generation, not even trace loads (warm cells never touch traces).
    let warm = SweepEngine::new(tiny_generator())
        .with_disk_store(&dir)
        .unwrap();
    let warm_rows = sorted_jsonl(&warm);
    assert_eq!(warm.stats().simulated, 0);
    assert_eq!(warm.stats().trace_generated, 0);
    assert_eq!(warm.stats().trace_disk_hits, 0);
    assert_eq!(cold_rows, warm_rows);

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn compaction_preserves_rows_and_packs_the_directory() {
    let dir = std::env::temp_dir().join(format!(
        "acmp-sweep-integration-compact-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);

    let cold = SweepEngine::new(tiny_generator())
        .with_disk_store(&dir)
        .unwrap();
    let cold_rows = sorted_jsonl(&cold);

    let compacted = cold.store().unwrap().compact().unwrap();
    // 9 result cells + 3 trace sets, all packed: far fewer files than the
    // old one-file-per-entry layout's 12.
    assert_eq!(compacted.live_entries, 12);
    let files = std::fs::read_dir(&dir).unwrap().count();
    assert!(
        (files as u64) == compacted.segments_after && files < 12,
        "expected only packed segments, found {files} files"
    );

    // The compacted store serves a fresh engine byte-identically, still
    // with zero simulations and zero trace generations.
    let warm = SweepEngine::new(tiny_generator())
        .with_disk_store(&dir)
        .unwrap();
    let warm_rows = sorted_jsonl(&warm);
    assert_eq!(warm.stats().simulated, 0);
    assert_eq!(warm.stats().trace_generated, 0);
    assert_eq!(cold_rows, warm_rows);

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn sharded_engines_over_one_store_cover_the_grid_without_double_work() {
    // The multi-process contract behind `sweep --shards N`, exercised with
    // engines as process stand-ins: the same grid split 1/1, 2/2 and 3/3
    // over one disk store must union to byte-identical rows, with every
    // cell simulated exactly once across all shards of a split — and a
    // final fully-warm pass must simulate nothing and generate no traces.
    let dir = std::env::temp_dir().join(format!(
        "acmp-sweep-integration-shards-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let (benchmarks, designs) = grid();

    let mut reference: Option<Vec<String>> = None;
    for count in [1u32, 2, 3] {
        let shard_dir = dir.join(format!("split-{count}"));
        let mut union: Vec<String> = Vec::new();
        let mut simulated = 0;
        for index in 0..count {
            let engine = SweepEngine::new(tiny_generator())
                .with_shard(ShardSpec::new(index, count).unwrap())
                .with_disk_store(&shard_dir)
                .unwrap();
            union.extend(
                engine
                    .run_grid(&benchmarks, &designs)
                    .rows
                    .iter()
                    .map(|r| r.to_jsonl()),
            );
            simulated += engine.stats().simulated;
        }
        union.sort_unstable();
        assert_eq!(union.len(), 9, "{count} shards must cover every cell");
        assert_eq!(simulated, 9, "no cell may simulate twice across shards");
        match &reference {
            None => reference = Some(union),
            Some(want) => assert_eq!(
                &union, want,
                "a {count}-way split must merge byte-identically"
            ),
        }

        // Fully warm: a fresh unsharded engine over the store the shards
        // filled serves everything from disk.
        let warm = SweepEngine::new(tiny_generator())
            .with_disk_store(&shard_dir)
            .unwrap();
        let mut warm_rows: Vec<String> = warm
            .run_grid(&benchmarks, &designs)
            .rows
            .iter()
            .map(|r| r.to_jsonl())
            .collect();
        warm_rows.sort_unstable();
        assert_eq!(warm.stats().simulated, 0);
        assert_eq!(warm.stats().trace_generated, 0);
        assert_eq!(&warm_rows, reference.as_ref().unwrap());
    }

    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------------
// Golden snapshot: the committed fig09 fixture pins the exact JSONL bytes
// every consumer (CI byte-diffs, the merge validator, downstream tooling)
// relies on.  Cold, warm, sharded and merged runs must all reproduce it;
// any format or simulation drift fails loudly here instead of silently
// changing the output of every figure run.
// ---------------------------------------------------------------------------

/// The committed fig09 (× cg,lu, quick scale) JSONL fixture, exactly as the
/// `sweep` CLI emits it: digest-sorted rows, one trailing newline.
fn fig09_fixture() -> String {
    // This file is compiled into the `shared-icache` package (crates/core),
    // so the workspace root is two levels up from its manifest dir.
    let path =
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../tests/fixtures/fig09.jsonl");
    std::fs::read_to_string(path).expect("committed fixture is readable")
}

/// The fixture grid: `--grid fig09 --benchmarks cg,lu` at the CLI's quick
/// scale.
fn fig09_grid() -> (GridSpec, GeneratorConfig) {
    let grid = GridSpec::parse("cg,lu", "fig09").unwrap();
    let generator = scale_generator("quick").unwrap();
    (grid, generator)
}

/// Runs the fixture grid on `engine` (whole or sharded) and returns the
/// CLI's byte output: digest-sorted JSONL lines, newline-terminated when
/// non-empty.
fn fig09_bytes(engine: &SweepEngine) -> String {
    let (grid, _) = fig09_grid();
    let mut rows: Vec<String> = engine
        .run_grid(&grid.benchmarks, &grid.designs)
        .rows
        .iter()
        .map(|r| r.to_jsonl())
        .collect();
    rows.sort_unstable();
    let mut text = rows.join("\n");
    if !text.is_empty() {
        text.push('\n');
    }
    text
}

#[test]
fn golden_fig09_cold_warm_sharded_and_merged_runs_match_the_fixture() {
    let fixture = fig09_fixture();
    assert_eq!(fixture.lines().count(), 6, "fixture covers 2 × 3 cells");
    let (grid, generator) = fig09_grid();
    let dir = std::env::temp_dir().join(format!("acmp-sweep-golden-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // Cold, with a store attached.
    let cold = SweepEngine::new(generator)
        .with_disk_store(dir.join("store"))
        .unwrap();
    assert_eq!(
        fig09_bytes(&cold),
        fixture,
        "cold run drifted off the fixture"
    );

    // Warm, from a fresh engine over the same store.
    let warm = SweepEngine::new(generator)
        .with_disk_store(dir.join("store"))
        .unwrap();
    assert_eq!(
        fig09_bytes(&warm),
        fixture,
        "warm run drifted off the fixture"
    );
    assert_eq!(warm.stats().simulated, 0);

    // Sharded 2-way into disjoint stores (two machines), then merged
    // offline through the validating k-way merge.
    let keys: Vec<JobKey> = grid.jobs().iter().map(|job| job.key(&generator)).collect();
    let schedule = shard_key_schedule(&keys, 2);
    let mut streams = Vec::new();
    for index in 0..2u32 {
        let engine = SweepEngine::new(generator)
            .with_shard(ShardSpec::new(index, 2).unwrap())
            .with_disk_store(dir.join(format!("machine-{index}")))
            .unwrap();
        let stream = fig09_bytes(&engine);
        for line in stream.lines() {
            assert!(
                fixture.lines().any(|fixture_line| fixture_line == line),
                "every shard row must appear verbatim in the fixture"
            );
        }
        streams.push(std::io::Cursor::new(stream));
    }
    let mut merged = Vec::new();
    let rows = merge_shard_streams(streams, &schedule, &mut merged).unwrap();
    assert_eq!(rows, 6);
    assert_eq!(
        String::from_utf8(merged).unwrap(),
        fixture,
        "offline merge of per-machine streams drifted off the fixture"
    );

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn grid_spec_drives_the_engine() {
    let spec = GridSpec::parse("cg,lu", "baseline,lb:8").unwrap();
    let engine = SweepEngine::new(tiny_generator());
    let outcome = engine.run_grid(&spec.benchmarks, &spec.designs);
    assert_eq!(outcome.rows.len(), spec.cells());
    // Keys are unique across cells.
    let mut keys: Vec<&str> = outcome.rows.iter().map(|r| r.key.as_str()).collect();
    keys.sort_unstable();
    let n = keys.len();
    keys.dedup();
    assert_eq!(keys.len(), n);
}
