//! Cross-crate integration tests: the area/energy model applied to real
//! simulation results (the Fig. 12 pipeline).

use hpc_workloads::{Benchmark, GeneratorConfig};
use power_model::{BusAreaModel, CacheCostModel, ClusterActivity, LeanCoreModel};
use proptest::prelude::*;
use shared_icache::{figures, DesignPoint, ExperimentContext};

fn context() -> ExperimentContext {
    ExperimentContext::new(GeneratorConfig {
        num_workers: 8,
        parallel_instructions_per_thread: 20_000,
        num_phases: 2,
        seed: 31,
    })
}

fn activity_of(result: &shared_icache::sim_acmp::SimResult) -> ClusterActivity {
    ClusterActivity {
        cycles: result.cycles,
        instructions: result.worker_instructions(),
        icache_accesses: result.worker_icache.accesses,
        line_buffer_accesses: result
            .cores
            .iter()
            .skip(1)
            .map(|c| c.line_buffers.line_requests)
            .sum(),
        bus_transactions: result.bus.transactions,
    }
}

#[test]
fn proposed_design_saves_area_and_energy_at_no_performance_cost() {
    // The paper's headline numbers: ~11% area and ~5% energy savings with no
    // performance loss.  The shapes (direction and rough magnitude) must
    // hold on the synthetic workloads.
    let ctx = context();
    let benchmarks = [Benchmark::Cg, Benchmark::Lu, Benchmark::Lulesh];
    let fig12 = figures::fig12::compute(&ctx, &benchmarks);
    let proposed = fig12.proposed().expect("proposed design present");

    assert!(
        proposed.area > 0.80 && proposed.area < 0.95,
        "area savings should be roughly 10%, got {:.1}%",
        (1.0 - proposed.area) * 100.0
    );
    assert!(
        proposed.energy < 1.0,
        "the proposed design must save energy, got ratio {:.3}",
        proposed.energy
    );
    assert!(
        proposed.execution_time < 1.03,
        "no performance cost expected, got {:.3}",
        proposed.execution_time
    );
}

#[test]
fn single_bus_design_saves_most_area_but_costs_performance() {
    let ctx = context();
    let benchmarks = [Benchmark::Ua, Benchmark::Lu];
    let fig12 = figures::fig12::compute(&ctx, &benchmarks);
    let single = fig12
        .rows
        .iter()
        .find(|r| r.design == "cpc8-16K-4lb-single")
        .unwrap();
    let double = fig12
        .rows
        .iter()
        .find(|r| r.design == "cpc8-16K-4lb-double")
        .unwrap();
    assert!(single.area < double.area, "a single bus occupies less area");
    assert!(
        single.execution_time >= double.execution_time,
        "the single bus cannot be faster than the double bus"
    );
}

#[test]
fn energy_model_reacts_to_execution_time_and_activity() {
    let ctx = context();
    let base = ctx.simulate(Benchmark::Lu, &DesignPoint::baseline());
    let design = DesignPoint::baseline().cluster_design(8);

    let normal = design.energy(&activity_of(&base)).total_mj();
    let mut slower = activity_of(&base);
    slower.cycles += slower.cycles / 10;
    let slower_energy = design.energy(&slower).total_mj();
    assert!(slower_energy > normal, "longer runs consume more energy");

    let mut busier = activity_of(&base);
    busier.icache_accesses *= 4;
    assert!(design.energy(&busier).total_mj() > normal);
}

#[test]
fn icache_is_roughly_fifteen_percent_of_a_lean_core() {
    let fraction = LeanCoreModel::icache_area_fraction(32 * 1024);
    assert!((0.10..=0.20).contains(&fraction));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Cache cost is monotone in capacity for every size in the range the
    /// experiments sweep.
    #[test]
    fn cache_cost_is_monotone_in_capacity(kb_a in 1u64..512, kb_b in 1u64..512) {
        let a = CacheCostModel::new(kb_a * 1024);
        let b = CacheCostModel::new(kb_b * 1024);
        if kb_a < kb_b {
            prop_assert!(a.area_mm2() < b.area_mm2());
            prop_assert!(a.static_power_mw() < b.static_power_mw());
            prop_assert!(a.read_energy_pj() < b.read_energy_pj());
        }
    }

    /// Bus area is monotone in width, cores and bus count.
    #[test]
    fn bus_area_is_monotone(width_a in 1u64..128, width_b in 1u64..128, cores in 1usize..16) {
        let a = BusAreaModel::new(width_a, cores, 1);
        let b = BusAreaModel::new(width_b, cores, 1);
        if width_a < width_b {
            prop_assert!(a.area_mm2() < b.area_mm2());
        }
        let single = BusAreaModel::new(width_a, cores, 1);
        let double = BusAreaModel::new(width_a, cores, 2);
        prop_assert!(double.area_mm2() > single.area_mm2());
    }

    /// Energy breakdowns never go negative and the total always equals the sum of the
    /// components for arbitrary activity counters.
    #[test]
    fn energy_total_is_sum_of_components(
        cycles in 1u64..10_000_000,
        instructions in 0u64..100_000_000,
        accesses in 0u64..10_000_000,
        transactions in 0u64..10_000_000,
    ) {
        let design = DesignPoint::proposed().cluster_design(8);
        let e = design.energy(&ClusterActivity {
            cycles,
            instructions,
            icache_accesses: accesses,
            line_buffer_accesses: accesses * 2,
            bus_transactions: transactions,
        });
        let sum = e.static_mj + e.core_dynamic_mj + e.icache_dynamic_mj
            + e.line_buffer_dynamic_mj + e.bus_dynamic_mj;
        prop_assert!((e.total_mj() - sum).abs() < 1e-9);
        prop_assert!(e.total_mj() >= 0.0);
        prop_assert!(e.static_fraction() >= 0.0 && e.static_fraction() <= 1.0);
    }
}
