//! End-to-end tests of the figure-reproduction pipeline at a moderate scale
//! (eight workers, reduced instruction budget): the qualitative shapes the
//! paper reports must hold for every figure.

use hpc_workloads::{Benchmark, GeneratorConfig};
use shared_icache::{figures, ExperimentContext};

/// Eight workers, enough instructions to amortise cold effects, a subset of
/// benchmarks covering the interesting corners.
fn context() -> ExperimentContext {
    ExperimentContext::new(GeneratorConfig {
        num_workers: 8,
        parallel_instructions_per_thread: 25_000,
        num_phases: 2,
        seed: 77,
    })
}

const SUBSET: [Benchmark; 6] = [
    Benchmark::Cg,
    Benchmark::Lu,
    Benchmark::Ua,
    Benchmark::CoEvp,
    Benchmark::Nab,
    Benchmark::Lulesh,
];

#[test]
fn figure1_acmp_wins_beyond_two_percent_serial_code() {
    let fig = figures::fig01::compute(301);
    let crossover = fig.acmp_crossover_percent().unwrap();
    assert!(crossover <= 4.0, "crossover at {crossover:.1}%");
    // At 10% serial code the ACMP clearly dominates both symmetric designs.
    let p10 = fig
        .points
        .iter()
        .find(|p| (p.serial_percent - 10.0).abs() < 0.1)
        .unwrap();
    assert!(p10.asymmetric > p10.symmetric_small && p10.asymmetric > p10.symmetric_big);
}

#[test]
fn figure2_parallel_blocks_are_longer_with_known_exceptions() {
    let ctx = context();
    let fig = figures::fig02::compute(&ctx, &SUBSET);
    assert!(fig.mean_parallel() > 2.0 * fig.mean_serial() / 1.5);
    for row in &fig.rows {
        match row.benchmark {
            Benchmark::Nab | Benchmark::CoEvp => assert!(row.serial_bytes > row.parallel_bytes),
            _ => assert!(row.parallel_bytes > row.serial_bytes, "{}", row.benchmark),
        }
    }
}

#[test]
fn figure3_parallel_mpki_is_far_below_serial_mpki() {
    let ctx = context();
    let fig = figures::fig03::compute(&ctx, &SUBSET);
    for row in &fig.rows {
        assert!(
            row.parallel_mpki < row.serial_mpki,
            "{}: parallel {:.2} vs serial {:.2}",
            row.benchmark,
            row.parallel_mpki,
            row.serial_mpki
        );
        if row.benchmark != Benchmark::CoEvp {
            // At this reduced scale cold misses are not fully amortised (the
            // paper replays 20 G instructions), so "near zero" translates to
            // "a single-digit cold-miss floor, well below the serial MPKI".
            assert!(
                row.parallel_mpki < 8.0 && row.parallel_mpki < row.serial_mpki / 2.0,
                "{}: parallel MPKI should be near the cold-miss floor, got {:.2} (serial {:.2})",
                row.benchmark,
                row.parallel_mpki,
                row.serial_mpki
            );
        }
    }
    let coevp = fig
        .rows
        .iter()
        .find(|r| r.benchmark == Benchmark::CoEvp)
        .unwrap();
    assert!(
        coevp.parallel_mpki > 0.5,
        "CoEVP keeps a visible parallel MPKI"
    );
}

#[test]
fn figure4_dynamic_sharing_is_about_99_percent() {
    let ctx = context();
    let fig = figures::fig04::compute(&ctx, &SUBSET);
    assert!(fig.mean_dynamic_sharing() > 95.0);
}

#[test]
fn figure7_and_10_sharing_cost_is_recovered_by_bandwidth() {
    let ctx = context();
    let fig7 = figures::fig07::compute(&ctx, &SUBSET);
    for row in &fig7.rows {
        assert!(
            row.cpc8 >= 0.97,
            "{}: sharing cannot be much faster",
            row.benchmark
        );
        assert!(
            row.cpc8 < 1.4,
            "{}: slowdown should stay bounded",
            row.benchmark
        );
    }

    let fig10 = figures::fig10::compute(&ctx, &SUBSET);
    for row in &fig10.rows {
        assert!(
            row.more_bandwidth_4lb_double <= row.naive_4lb_single + 0.01,
            "{}: the double bus must remove naive-sharing stalls",
            row.benchmark
        );
    }
    assert!(
        fig10.mean_double_bus() < 1.03,
        "with a double bus the mean slowdown should vanish, got {:.3}",
        fig10.mean_double_bus()
    );
}

#[test]
fn figure8_extra_cycles_are_dominated_by_bus_effects() {
    let ctx = context();
    let fig = figures::fig08::compute(&ctx, &[Benchmark::Ua, Benchmark::Lu]);
    for row in &fig.rows {
        let extra = row.total() - 1.0;
        let bus = row.ibus_latency + row.ibus_congestion;
        let other = row.icache_latency + row.branch_miss;
        // The paper's claim is two-fold: the slowdown from naive sharing is
        // bounded, and whenever it is visible the dominant component is the
        // shared I-bus (latency + contention), not cache misses or branches.
        assert!(
            extra < 0.30,
            "{}: naive sharing slowdown should stay bounded, got {:.3}",
            row.benchmark,
            extra
        );
        if extra > 0.03 {
            assert!(
                bus >= other,
                "{}: visible extra stalls must be I-bus dominated (bus {:.3} vs other {:.3})",
                row.benchmark,
                bus,
                other
            );
        }
    }
}

#[test]
fn figure9_access_ratio_tracks_loop_working_set() {
    let ctx = context();
    let fig = figures::fig09::compute(&ctx, &SUBSET);
    let by_name = |b: Benchmark| fig.rows.iter().find(|r| r.benchmark == b).unwrap();
    // Streaming kernels (LU, LULESH) access the I-cache on almost every
    // fetch; small-kernel benchmarks (CG) mostly hit in the line buffers.
    assert!(by_name(Benchmark::Lu).lb4_percent > 60.0);
    assert!(by_name(Benchmark::Cg).lb4_percent < 40.0);
    // UA benefits from eight line buffers (its body fits in 8 but not 4).
    let ua = by_name(Benchmark::Ua);
    assert!(
        ua.lb8_percent < ua.lb4_percent * 0.7,
        "UA: 8 line buffers should cut the access ratio ({:.1}% -> {:.1}%)",
        ua.lb4_percent,
        ua.lb8_percent
    );
}

#[test]
fn figure11_sharing_reduces_misses_for_miss_heavy_benchmarks() {
    let ctx = context();
    let fig = figures::fig11::compute(&ctx, &[Benchmark::CoEvp, Benchmark::Lu, Benchmark::Sp]);
    let coevp = fig
        .rows
        .iter()
        .find(|r| r.benchmark == Benchmark::CoEvp)
        .unwrap();
    assert!(coevp.private_mpki > 0.2);
    assert!(
        coevp.shared_32k_percent < 80.0,
        "sharing should cut CoEVP's misses substantially, got {:.1}%",
        coevp.shared_32k_percent
    );
    assert!(fig.mean_reduction_32k() > 0.0);
}

#[test]
fn figure13_the_master_should_keep_its_private_icache() {
    let ctx = context();
    let fig = figures::fig13::compute(&ctx, &[Benchmark::Lu, Benchmark::Nab, Benchmark::CoMd]);
    for row in &fig.rows {
        assert!(
            row.ratio_double_bus > 0.97,
            "{}: joining the master can only cost time",
            row.benchmark
        );
        assert!(row.ratio_double_bus < 1.25);
    }
    // The serial-heavy workload pays more than the parallel-heavy one.
    let lu = fig
        .rows
        .iter()
        .find(|r| r.benchmark == Benchmark::Lu)
        .unwrap();
    let nab = fig
        .rows
        .iter()
        .find(|r| r.benchmark == Benchmark::Nab)
        .unwrap();
    assert!(nab.serial_percent > lu.serial_percent);
    assert!(nab.ratio_double_bus >= lu.ratio_double_bus - 0.02);
}
