//! Offline shim of `rand_chacha`.
//!
//! Exposes [`ChaCha8Rng`] with the `rand` shim's [`RngCore`] /
//! [`SeedableRng`] traits.  The implementation is xoshiro256++ seeded via
//! SplitMix64 rather than the real ChaCha8 stream cipher: nothing in this
//! workspace depends on the exact stream, only on determinism and good
//! statistical quality, and this keeps the shim dependency-free.

use rand::{RngCore, SeedableRng};

/// Deterministic seeded generator (API-compatible stand-in for ChaCha8).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChaCha8Rng {
    state: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SeedableRng for ChaCha8Rng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut s = seed;
        ChaCha8Rng {
            state: [
                splitmix64(&mut s),
                splitmix64(&mut s),
                splitmix64(&mut s),
                splitmix64(&mut s),
            ],
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u64(&mut self) -> u64 {
        // xoshiro256++
        let result = self.state[0]
            .wrapping_add(self.state[3])
            .rotate_left(23)
            .wrapping_add(self.state[0]);
        let t = self.state[1] << 17;
        self.state[2] ^= self.state[0];
        self.state[3] ^= self.state[1];
        self.state[1] ^= self.state[2];
        self.state[0] ^= self.state[3];
        self.state[2] ^= t;
        self.state[3] = self.state[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let same = (0..100).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 3);
    }

    #[test]
    fn zero_seed_is_not_degenerate() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let first = rng.next_u64();
        let second = rng.next_u64();
        assert_ne!(first, 0);
        assert_ne!(first, second);
    }
}
