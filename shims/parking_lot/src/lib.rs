//! Offline shim of `parking_lot`, backed by `std::sync`.
//!
//! Matches parking_lot's panic-free API (no `Result` from `lock`): a
//! poisoned std mutex is recovered transparently, which is also
//! parking_lot's behaviour (it has no poisoning at all).

use std::fmt;
use std::sync::PoisonError;

/// A mutual-exclusion lock whose `lock` never fails.
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// RAII guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex and returns the protected value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

/// A reader-writer lock whose acquire methods never fail.
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a lock protecting `value`.
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consumes the lock and returns the protected value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> std::sync::RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> std::sync::RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_round_trip() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 6;
        assert_eq!(l.into_inner(), 6);
    }
}
