//! Offline shim of the `rand` trait surface used by this workspace:
//! [`RngCore`], [`Rng`] (with `gen_bool` and `gen_range`) and
//! [`SeedableRng`].  The concrete generator lives in the `rand_chacha` shim.

use std::ops::{Range, RangeInclusive};

/// A source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Convenience sampling methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability {p} not in [0, 1]"
        );
        self.next_f64() < p
    }

    /// Samples a value uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Returns a uniform float in `[0, 1)`.
    fn next_f64(&mut self) -> f64 {
        // 53 random mantissa bits scaled into [0, 1).
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Generators constructible from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Ranges that can be sampled uniformly.
pub trait SampleRange {
    /// The sampled value type.
    type Output;

    /// Draws one uniform sample from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

/// Uniform `u64` below `bound` (> 0) via Lemire-style multiply-shift; the
/// modulo bias at 64 bits is negligible for simulation workloads.
fn uniform_below(rng: &mut (impl RngCore + ?Sized), bound: u64) -> u64 {
    ((rng.next_u64() as u128 * bound as u128) >> 64) as u64
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = self.end.abs_diff(self.start) as u64;
                self.start.wrapping_add(uniform_below(rng, span) as $t)
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range");
                let span = end.abs_diff(start) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start.wrapping_add(uniform_below(rng, span + 1) as $t)
            }
        }
    )*};
}

impl_int_range!(i8, i32, i64, u8, u16, u32, u64, usize, isize);

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1);
            self.0
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = Counter(7);
        for _ in 0..1000 {
            let v = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&v));
            let u = rng.gen_range(3usize..9);
            assert!((3..9).contains(&u));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = Counter(1);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
