//! Offline shim of the `serde` facade.
//!
//! The build environment of this workspace has no access to a crate
//! registry, so the handful of external dependencies are replaced by small
//! in-tree shims providing exactly the API surface the simulator uses.
//!
//! This crate implements serialisation through a concrete JSON-shaped
//! [`Value`] data model instead of serde's visitor architecture: a type is
//! [`Serialize`] if it can convert itself into a [`Value`] and
//! [`Deserialize`] if it can reconstruct itself from one.  The
//! `#[derive(Serialize, Deserialize)]` macros (re-exported from the
//! `serde_derive` shim when the `derive` feature is on) generate those
//! conversions with the same externally-tagged representation the real
//! serde uses for enums, so swapping the shim for the real crates keeps the
//! on-disk format compatible for the types in this workspace.

use std::fmt;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// A JSON-shaped dynamic value.
///
/// Object fields keep their insertion order so serialisation is
/// deterministic and round-trips byte-for-byte.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Non-negative JSON integer.
    UInt(u64),
    /// Negative JSON integer.
    Int(i64),
    /// JSON floating-point number.
    Float(f64),
    /// JSON string.
    String(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object with preserved field order.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Returns the object fields if the value is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(fields) => Some(fields),
            _ => None,
        }
    }

    /// Returns the string contents if the value is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }
}

impl fmt::Display for Value {
    /// Formats the value as compact JSON.  Float formatting uses Rust's
    /// shortest round-trip representation, so printed numbers parse back to
    /// the same bits.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("null"),
            Value::Bool(true) => f.write_str("true"),
            Value::Bool(false) => f.write_str("false"),
            Value::UInt(n) => write!(f, "{n}"),
            Value::Int(n) => write!(f, "{n}"),
            // Non-finite floats have no JSON representation; like the real
            // serde_json, they are printed as null.
            Value::Float(x) if !x.is_finite() => f.write_str("null"),
            Value::Float(x) => write!(f, "{x}"),
            Value::String(s) => write_json_string(f, s),
            Value::Array(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Value::Object(fields) => {
                f.write_str("{")?;
                for (i, (key, item)) in fields.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_json_string(f, key)?;
                    write!(f, ":{item}")?;
                }
                f.write_str("}")
            }
        }
    }
}

fn write_json_string(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => {
                let mut buf = [0u8; 4];
                f.write_str(c.encode_utf8(&mut buf))?;
            }
        }
    }
    f.write_str("\"")
}

/// Error produced by (de)serialisation.
#[derive(Debug)]
pub enum Error {
    /// An I/O error from the underlying writer or reader.
    Io(std::io::Error),
    /// A syntax or data-model error, with a human-readable message.
    Message(String),
}

impl Error {
    /// Creates a data-model error from a message.
    pub fn custom(msg: impl fmt::Display) -> Self {
        Error::Message(msg.to_string())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Io(e) => write!(f, "io error: {e}"),
            Error::Message(msg) => f.write_str(msg),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Io(e) => Some(e),
            Error::Message(_) => None,
        }
    }
}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error::Io(e)
    }
}

/// Types convertible into a [`Value`].
pub trait Serialize {
    /// Converts `self` into the dynamic value model.
    fn serialize(&self) -> Value;
}

/// Types reconstructible from a [`Value`].
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from the dynamic value model.
    ///
    /// # Errors
    ///
    /// Returns an error if `value` does not have the expected shape.
    fn deserialize(value: &Value) -> Result<Self, Error>;
}

/// Looks up a field of an object by name (derive-macro support).
///
/// # Errors
///
/// Returns an error if the field is absent.
pub fn get_field<'a>(fields: &'a [(String, Value)], name: &str) -> Result<&'a Value, Error> {
    fields
        .iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v)
        .ok_or_else(|| Error::custom(format!("missing field `{name}`")))
}

macro_rules! impl_serde_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn deserialize(value: &Value) -> Result<Self, Error> {
                match value {
                    Value::UInt(n) => <$t>::try_from(*n)
                        .map_err(|_| Error::custom(concat!("integer out of range for ", stringify!($t)))),
                    Value::Int(n) => <$t>::try_from(*n)
                        .map_err(|_| Error::custom(concat!("integer out of range for ", stringify!($t)))),
                    _ => Err(Error::custom(concat!("expected integer for ", stringify!($t)))),
                }
            }
        }
    )*};
}

impl_serde_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                if *self >= 0 {
                    Value::UInt(*self as u64)
                } else {
                    Value::Int(*self as i64)
                }
            }
        }
        impl Deserialize for $t {
            fn deserialize(value: &Value) -> Result<Self, Error> {
                match value {
                    Value::UInt(n) => <$t>::try_from(*n)
                        .map_err(|_| Error::custom(concat!("integer out of range for ", stringify!($t)))),
                    Value::Int(n) => <$t>::try_from(*n)
                        .map_err(|_| Error::custom(concat!("integer out of range for ", stringify!($t)))),
                    _ => Err(Error::custom(concat!("expected integer for ", stringify!($t)))),
                }
            }
        }
    )*};
}

impl_serde_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn serialize(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Float(x) => Ok(*x),
            Value::UInt(n) => Ok(*n as f64),
            Value::Int(n) => Ok(*n as f64),
            _ => Err(Error::custom("expected number for f64")),
        }
    }
}

impl Serialize for f32 {
    fn serialize(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        f64::deserialize(value).map(|x| x as f32)
    }
}

impl Serialize for bool {
    fn serialize(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Bool(b) => Ok(*b),
            _ => Err(Error::custom("expected boolean")),
        }
    }
}

impl Serialize for String {
    fn serialize(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::String(s) => Ok(s.clone()),
            _ => Err(Error::custom("expected string")),
        }
    }
}

impl Serialize for &str {
    fn serialize(&self) -> Value {
        Value::String((*self).to_string())
    }
}

impl Serialize for char {
    fn serialize(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Deserialize for char {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::String(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            _ => Err(Error::custom("expected single-character string")),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Array(items) => items.iter().map(T::deserialize).collect(),
            _ => Err(Error::custom("expected array")),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self) -> Value {
        match self {
            Some(v) => v.serialize(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => T::deserialize(other).map(Some),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl Serialize for Value {
    fn serialize(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        Ok(value.clone())
    }
}
