//! Offline shim of `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` and `#[derive(Deserialize)]` for the
//! shim `serde` crate without `syn`/`quote` (neither is available offline):
//! the item is parsed directly from the raw token stream.  Supported shapes
//! cover everything this workspace derives —
//!
//! * structs with named fields,
//! * tuple structs (a single field serialises transparently; the
//!   `#[serde(transparent)]` helper attribute is accepted and implied),
//! * unit structs,
//! * enums with unit, newtype, tuple and struct variants, using serde's
//!   externally-tagged representation (`"Variant"`,
//!   `{"Variant": value}`, `{"Variant": {..fields..}}`).
//!
//! Generic types and other `#[serde(...)]` helper attributes are not
//! supported and produce a compile error naming the offending item.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Parsed shape of the item the derive is attached to.
enum Item {
    /// `struct S { f1: T1, ... }`
    NamedStruct { name: String, fields: Vec<String> },
    /// `struct S(T1, ...);` — `arity` is the number of fields.
    TupleStruct { name: String, arity: usize },
    /// `struct S;`
    UnitStruct { name: String },
    /// `enum E { ... }`
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

/// One enum variant.
struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

/// Derives `serde::Serialize` via the shim's `Value` data model.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match parse_item(input) {
        Ok(item) => gen_serialize(&item).parse().unwrap(),
        Err(msg) => compile_error(&msg),
    }
}

/// Derives `serde::Deserialize` via the shim's `Value` data model.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    match parse_item(input) {
        Ok(item) => gen_deserialize(&item).parse().unwrap(),
        Err(msg) => compile_error(&msg),
    }
}

fn compile_error(msg: &str) -> TokenStream {
    format!("::std::compile_error!({msg:?});").parse().unwrap()
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    skip_attributes(&tokens, &mut i);
    skip_visibility(&tokens, &mut i);

    let keyword = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => {
            return Err(format!(
                "serde_derive shim: expected struct/enum, got {other:?}"
            ))
        }
    };
    i += 1;

    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => {
            return Err(format!(
                "serde_derive shim: expected type name, got {other:?}"
            ))
        }
    };
    i += 1;

    if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "serde_derive shim: generic type `{name}` is not supported"
        ));
    }

    match keyword.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Ok(Item::NamedStruct {
                    name,
                    fields: parse_named_fields(g.stream())?,
                })
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Ok(Item::TupleStruct {
                    name,
                    arity: count_tuple_fields(g.stream()),
                })
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Ok(Item::UnitStruct { name }),
            other => Err(format!(
                "serde_derive shim: unsupported struct body for `{name}`: {other:?}"
            )),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Ok(Item::Enum {
                name,
                variants: parse_variants(g.stream())?,
            }),
            other => Err(format!(
                "serde_derive shim: unsupported enum body for `{name}`: {other:?}"
            )),
        },
        other => Err(format!(
            "serde_derive shim: expected `struct` or `enum`, got `{other}`"
        )),
    }
}

/// Skips any number of outer attributes (`#[...]`), including doc comments.
fn skip_attributes(tokens: &[TokenTree], i: &mut usize) {
    while matches!(tokens.get(*i), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
        *i += 1;
        if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket)
        {
            *i += 1;
        }
    }
}

/// Skips `pub`, `pub(crate)`, `pub(in path)`.
fn skip_visibility(tokens: &[TokenTree], i: &mut usize) {
    if matches!(tokens.get(*i), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
        *i += 1;
        if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            *i += 1;
        }
    }
}

/// Advances past a type (or expression) until a top-level `,`, tracking
/// angle-bracket depth so commas inside generics don't terminate early.
fn skip_until_comma(tokens: &[TokenTree], i: &mut usize) {
    let mut angle_depth = 0i32;
    while let Some(tok) = tokens.get(*i) {
        if let TokenTree::Punct(p) = tok {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => return,
                _ => {}
            }
        }
        *i += 1;
    }
}

fn parse_named_fields(stream: TokenStream) -> Result<Vec<String>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attributes(&tokens, &mut i);
        skip_visibility(&tokens, &mut i);
        match tokens.get(i) {
            Some(TokenTree::Ident(id)) => fields.push(id.to_string()),
            None => break,
            other => {
                return Err(format!(
                    "serde_derive shim: expected field name, got {other:?}"
                ))
            }
        }
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => return Err(format!("serde_derive shim: expected `:`, got {other:?}")),
        }
        skip_until_comma(&tokens, &mut i);
        i += 1; // consume the comma (or run off the end)
    }
    Ok(fields)
}

/// Counts tuple-struct / tuple-variant fields: top-level commas plus one.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 1;
    let mut angle_depth = 0i32;
    for (idx, tok) in tokens.iter().enumerate() {
        if let TokenTree::Punct(p) = tok {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                // A trailing comma does not introduce a new field.
                ',' if angle_depth == 0 && idx + 1 < tokens.len() => count += 1,
                _ => {}
            }
        }
    }
    count
}

fn parse_variants(stream: TokenStream) -> Result<Vec<Variant>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attributes(&tokens, &mut i);
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => {
                return Err(format!(
                    "serde_derive shim: expected variant name, got {other:?}"
                ))
            }
        };
        i += 1;
        let kind = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream())?;
                i += 1;
                VariantKind::Named(fields)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let arity = count_tuple_fields(g.stream());
                i += 1;
                VariantKind::Tuple(arity)
            }
            _ => VariantKind::Unit,
        };
        // Skip an explicit discriminant, then the trailing comma.
        skip_until_comma(&tokens, &mut i);
        i += 1;
        variants.push(Variant { name, kind });
    }
    Ok(variants)
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

fn impl_header(trait_name: &str, type_name: &str) -> String {
    format!(
        "#[automatically_derived]\n#[allow(warnings, clippy::all)]\nimpl ::serde::{trait_name} for {type_name} "
    )
}

fn object_literal(entries: &[(String, String)]) -> String {
    let fields: Vec<String> = entries
        .iter()
        .map(|(k, v)| format!("(::std::string::String::from({k:?}), {v})"))
        .collect();
    format!("::serde::Value::Object(::std::vec![{}])", fields.join(", "))
}

fn gen_serialize(item: &Item) -> String {
    let (name, body) = match item {
        Item::NamedStruct { name, fields } => {
            let entries: Vec<(String, String)> = fields
                .iter()
                .map(|f| {
                    (
                        f.clone(),
                        format!("::serde::Serialize::serialize(&self.{f})"),
                    )
                })
                .collect();
            (name, object_literal(&entries))
        }
        Item::TupleStruct { name, arity: 0 } => (name, "::serde::Value::Null".to_string()),
        Item::TupleStruct { name, arity: 1 } => {
            (name, "::serde::Serialize::serialize(&self.0)".to_string())
        }
        Item::TupleStruct { name, arity } => {
            let items: Vec<String> = (0..*arity)
                .map(|k| format!("::serde::Serialize::serialize(&self.{k})"))
                .collect();
            (
                name,
                format!("::serde::Value::Array(::std::vec![{}])", items.join(", ")),
            )
        }
        Item::UnitStruct { name } => (name, "::serde::Value::Null".to_string()),
        Item::Enum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vname = &v.name;
                    match &v.kind {
                        VariantKind::Unit => format!(
                            "{name}::{vname} => ::serde::Value::String(::std::string::String::from({vname:?}))"
                        ),
                        VariantKind::Tuple(1) => {
                            let inner = "::serde::Serialize::serialize(__field0)".to_string();
                            let obj = object_literal(&[(vname.clone(), inner)]);
                            format!("{name}::{vname}(__field0) => {obj}")
                        }
                        VariantKind::Tuple(arity) => {
                            let binds: Vec<String> =
                                (0..*arity).map(|k| format!("__field{k}")).collect();
                            let items: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::serialize({b})"))
                                .collect();
                            let inner = format!(
                                "::serde::Value::Array(::std::vec![{}])",
                                items.join(", ")
                            );
                            let obj = object_literal(&[(vname.clone(), inner)]);
                            format!("{name}::{vname}({}) => {obj}", binds.join(", "))
                        }
                        VariantKind::Named(fields) => {
                            let entries: Vec<(String, String)> = fields
                                .iter()
                                .map(|f| (f.clone(), format!("::serde::Serialize::serialize({f})")))
                                .collect();
                            let obj =
                                object_literal(&[(vname.clone(), object_literal(&entries))]);
                            format!("{name}::{vname} {{ {} }} => {obj}", fields.join(", "))
                        }
                    }
                })
                .collect();
            (name, format!("match self {{ {} }}", arms.join(", ")))
        }
    };
    format!(
        "{}{{ fn serialize(&self) -> ::serde::Value {{ {body} }} }}",
        impl_header("Serialize", name)
    )
}

fn named_fields_ctor(type_path: &str, fields: &[String], source: &str) -> String {
    let inits: Vec<String> = fields
        .iter()
        .map(|f| {
            format!("{f}: ::serde::Deserialize::deserialize(::serde::get_field({source}, {f:?})?)?")
        })
        .collect();
    format!("{type_path} {{ {} }}", inits.join(", "))
}

fn gen_deserialize(item: &Item) -> String {
    let (name, body) = match item {
        Item::NamedStruct { name, fields } => {
            let ctor = named_fields_ctor(name, fields, "__fields");
            (
                name,
                format!(
                    "let __fields = __value.as_object().ok_or_else(|| \
                     ::serde::Error::custom(\"expected object for {name}\"))?; \
                     ::std::result::Result::Ok({ctor})"
                ),
            )
        }
        Item::TupleStruct { name, arity: 0 } => {
            (name, format!("::std::result::Result::Ok({name}())"))
        }
        Item::TupleStruct { name, arity: 1 } => (
            name,
            format!(
                "::std::result::Result::Ok({name}(::serde::Deserialize::deserialize(__value)?))"
            ),
        ),
        Item::TupleStruct { name, arity } => {
            let inits: Vec<String> = (0..*arity)
                .map(|k| format!("::serde::Deserialize::deserialize(&__items[{k}])?"))
                .collect();
            (
                name,
                format!(
                    "match __value {{ ::serde::Value::Array(__items) if __items.len() == {arity} => \
                     ::std::result::Result::Ok({name}({inits})), \
                     _ => ::std::result::Result::Err(::serde::Error::custom(\
                     \"expected {arity}-element array for {name}\")) }}",
                    inits = inits.join(", ")
                ),
            )
        }
        Item::UnitStruct { name } => (name, format!("::std::result::Result::Ok({name})")),
        Item::Enum { name, variants } => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.kind, VariantKind::Unit))
                .map(|v| {
                    format!(
                        "{:?} => ::std::result::Result::Ok({name}::{}),",
                        v.name, v.name
                    )
                })
                .collect();
            let data_arms: Vec<String> = variants
                .iter()
                .filter_map(|v| {
                    let vname = &v.name;
                    match &v.kind {
                        VariantKind::Unit => None,
                        VariantKind::Tuple(1) => Some(format!(
                            "{vname:?} => ::std::result::Result::Ok({name}::{vname}(\
                             ::serde::Deserialize::deserialize(__inner)?)),"
                        )),
                        VariantKind::Tuple(arity) => {
                            let inits: Vec<String> = (0..*arity)
                                .map(|k| format!("::serde::Deserialize::deserialize(&__items[{k}])?"))
                                .collect();
                            Some(format!(
                                "{vname:?} => match __inner {{ \
                                 ::serde::Value::Array(__items) if __items.len() == {arity} => \
                                 ::std::result::Result::Ok({name}::{vname}({inits})), \
                                 _ => ::std::result::Result::Err(::serde::Error::custom(\
                                 \"expected {arity}-element array for {name}::{vname}\")) }},",
                                inits = inits.join(", ")
                            ))
                        }
                        VariantKind::Named(fields) => {
                            let ctor =
                                named_fields_ctor(&format!("{name}::{vname}"), fields, "__obj");
                            Some(format!(
                                "{vname:?} => {{ let __obj = __inner.as_object().ok_or_else(|| \
                                 ::serde::Error::custom(\"expected object for {name}::{vname}\"))?; \
                                 ::std::result::Result::Ok({ctor}) }},"
                            ))
                        }
                    }
                })
                .collect();
            let body = format!(
                "match __value {{ \
                 ::serde::Value::String(__s) => match __s.as_str() {{ {unit_arms} __other => \
                 ::std::result::Result::Err(::serde::Error::custom(::std::format!(\
                 \"unknown {name} variant `{{__other}}`\"))) }}, \
                 ::serde::Value::Object(__tagged) if __tagged.len() == 1 => {{ \
                 let (__tag, __inner) = &__tagged[0]; \
                 match __tag.as_str() {{ {data_arms} __other => \
                 ::std::result::Result::Err(::serde::Error::custom(::std::format!(\
                 \"unknown {name} variant `{{__other}}`\"))) }} }}, \
                 _ => ::std::result::Result::Err(::serde::Error::custom(\
                 \"expected string or single-key object for {name}\")) }}",
                unit_arms = unit_arms.join(" "),
                data_arms = data_arms.join(" "),
            );
            (name, body)
        }
    };
    format!(
        "{}{{ fn deserialize(__value: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{ {body} }} }}",
        impl_header("Deserialize", name)
    )
}
