//! Offline shim of `proptest`.
//!
//! Provides the subset of the real API used by this workspace's integration
//! tests: the [`proptest!`] macro (with `#![proptest_config(..)]`), integer
//! range and [`any`] strategies, and the `prop_assert*` macros.
//!
//! Unlike the real proptest there is no shrinking and no persisted failure
//! file: inputs are sampled from a **fixed-seed** deterministic generator so
//! every CI run exercises exactly the same cases.  The case count comes from
//! the test's `ProptestConfig`; as with the real proptest, the
//! `PROPTEST_CASES` environment variable overrides it globally (CI sets a
//! small value to bound runtime; a larger value widens coverage locally).

use rand::{Rng, RngCore, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::ops::Range;

/// Everything a `proptest!` test needs in scope.
pub mod prelude {
    pub use crate as prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary, ProptestConfig,
        Strategy, TestRng,
    };
}

/// Per-test configuration (case count only, in this shim).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of sampled cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }

    /// Effective case count: `PROPTEST_CASES` (if set and parseable)
    /// overrides the configured value.
    pub fn effective_cases(&self) -> u32 {
        std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(self.cases)
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// The deterministic source feeding every strategy.
#[derive(Debug, Clone)]
pub struct TestRng(ChaCha8Rng);

impl TestRng {
    /// A generator with a fixed seed: every run samples the same cases.
    pub fn deterministic() -> Self {
        TestRng(ChaCha8Rng::seed_from_u64(0x5EED_CAFE_F00D_0001))
    }
}

impl RngCore for TestRng {
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

/// A source of sampled values.
pub trait Strategy {
    /// The value type this strategy produces.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(i8, i32, i64, u8, u16, u32, u64, usize);

// Tuples of strategies sample component-wise, so `(0u8..5, any::<u64>())`
// is itself a strategy — the shape `prop::collection::vec` compositions
// lean on.
macro_rules! impl_tuple_strategy {
    ($(($($s:ident / $i:tt),+)),*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$i.sample(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy!(
    (A / 0, B / 1),
    (A / 0, B / 1, C / 2),
    (A / 0, B / 1, C / 2, D / 3)
);

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;
    use std::ops::Range;

    /// Strategy producing `Vec`s with a length drawn from a range.
    pub struct VecStrategy<S> {
        element: S,
        count: Range<usize>,
    }

    /// Samples `Vec`s whose length comes from `count` and whose elements
    /// come from `element`.
    pub fn vec<S: Strategy>(element: S, count: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, count }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let len = rng.gen_range(self.count.clone());
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Option strategies (`prop::option::of`).
pub mod option {
    use super::{Strategy, TestRng};
    use rand::RngCore;

    /// Strategy producing `Option`s of an inner strategy's values.
    pub struct OptionStrategy<S>(S);

    /// Samples `None` about a quarter of the time, `Some(inner)` otherwise
    /// (the real proptest's default `of` weighting).
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy(inner)
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            if rng.next_u64() & 3 == 0 {
                None
            } else {
                Some(self.0.sample(rng))
            }
        }
    }
}

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value of the type.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64()
    }
}

impl Arbitrary for u32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() as u32
    }
}

impl Arbitrary for usize {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() as usize
    }
}

impl Arbitrary for i64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() as i64
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_f64()
    }
}

/// The full-domain strategy for `T` (`any::<u64>()` etc.).
pub struct Any<T>(std::marker::PhantomData<T>);

/// Returns the full-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running the body over deterministically sampled
/// inputs.  See the crate docs for the differences from real proptest.
#[macro_export]
macro_rules! proptest {
    (@cfg ($config:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($arg:ident in $strategy:expr),* $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $config;
                let __cases = __config.effective_cases();
                let mut __rng = $crate::TestRng::deterministic();
                for _ in 0..__cases {
                    $( let $arg = $crate::Strategy::sample(&($strategy), &mut __rng); )*
                    $body
                }
            }
        )*
    };
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::proptest!(@cfg ($config) $($rest)*);
    };
    ( $($rest:tt)* ) => {
        $crate::proptest!(@cfg ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Asserts a condition inside a property (plain `assert!` in this shim).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { ::std::assert!($($tt)*) };
}

/// Asserts equality inside a property (plain `assert_eq!` in this shim).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { ::std::assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property (plain `assert_ne!` in this shim).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { ::std::assert_ne!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use super::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respected(x in 3u64..10, y in 0usize..4) {
            prop_assert!((3..10).contains(&x));
            prop_assert!(y < 4);
        }

        #[test]
        fn any_strategies_sample(b in any::<bool>(), x in any::<u64>()) {
            // `b` and `x` come from the full domain; just touch them so the
            // sampling path for `any` is exercised.
            prop_assert!(usize::from(b) <= 1);
            prop_assert_ne!(x, x.wrapping_add(1));
        }

        #[test]
        fn composite_strategies_sample(
            ops in collection::vec((0u8..5, any::<u64>()), 0..9),
            maybe in option::of(1u32..4),
        ) {
            prop_assert!(ops.len() < 9);
            prop_assert!(ops.iter().all(|(op, _)| *op < 5));
            prop_assert!(maybe.is_none_or(|v| (1..4).contains(&v)));
        }
    }

    #[test]
    fn sampling_is_deterministic() {
        let mut a = TestRng::deterministic();
        let mut b = TestRng::deterministic();
        for _ in 0..32 {
            assert_eq!((0u64..100).sample(&mut a), (0u64..100).sample(&mut b));
        }
    }

    #[test]
    fn effective_cases_defaults_to_config() {
        // PROPTEST_CASES is not set in unit-test runs of this crate.
        if std::env::var_os("PROPTEST_CASES").is_none() {
            assert_eq!(ProptestConfig::with_cases(7).effective_cases(), 7);
        }
    }
}
