//! Offline shim of `criterion`.
//!
//! Benches written against the real criterion API (`criterion_group!`,
//! `criterion_main!`, `Criterion::bench_function`, `Bencher::iter`,
//! benchmark groups) compile and run unchanged: each benchmark executes
//! `sample_size` timed iterations and prints the mean wall-clock time per
//! iteration.  There is no warm-up, outlier analysis or HTML report — the
//! goal is that `cargo bench` exercises every benched code path and gives a
//! rough number, entirely offline.

use std::hint::black_box as std_black_box;
use std::time::Instant;

/// Opaque wrapper preventing the optimiser from deleting a benched value.
pub fn black_box<T>(value: T) -> T {
    std_black_box(value)
}

/// Entry point handed to `criterion_group!` targets.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets how many timed iterations each benchmark runs.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Times `f` under `id`.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(&id.into(), self.sample_size, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }
}

/// A named set of benchmarks sharing a group prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Times `f` under `group/id`.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into());
        run_bench(&full, self.criterion.sample_size, &mut f);
        self
    }

    /// Finishes the group (no-op in this shim; kept for API parity).
    pub fn finish(self) {}
}

/// Passed to the benchmark closure; call [`Bencher::iter`] with the code to
/// time.
pub struct Bencher {
    iterations: usize,
    total_nanos: u128,
}

impl Bencher {
    /// Runs `f` for the configured number of iterations, timing each one.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iterations {
            black_box(f());
        }
        self.total_nanos = start.elapsed().as_nanos();
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(id: &str, sample_size: usize, f: &mut F) {
    let mut bencher = Bencher {
        iterations: sample_size,
        total_nanos: 0,
    };
    f(&mut bencher);
    let mean_nanos = bencher.total_nanos / bencher.iterations.max(1) as u128;
    println!(
        "{id:<40} {:>12.3} ms/iter ({} iters)",
        mean_nanos as f64 / 1e6,
        bencher.iterations
    );
}

/// Declares a group of benchmark targets; both the simple and the
/// `name = ...; config = ...; targets = ...` forms are supported.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),* $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )*
        }
    };
    ($name:ident, $($target:path),* $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),*
        );
    };
}

/// Declares the bench harness entry point running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),* $(,)?) => {
        fn main() {
            $( $group(); )*
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn target(c: &mut Criterion) {
        c.bench_function("shim/noop", |b| b.iter(|| 1 + 1));
        let mut group = c.benchmark_group("shim");
        group.bench_function(String::from("grouped"), |b| b.iter(|| black_box(2) * 2));
        group.finish();
    }

    criterion_group! {
        name = demo;
        config = Criterion::default().sample_size(3);
        targets = target,
    }

    #[test]
    fn group_runs() {
        demo();
    }
}
