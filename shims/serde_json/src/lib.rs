//! Offline shim of `serde_json`: prints and parses the shim `serde`
//! [`Value`] model as JSON.
//!
//! Supports the subset of the real API this workspace uses: [`to_string`],
//! [`to_writer`], [`from_str`], the [`json!`] macro for object literals, and
//! an [`Error`] type that wraps I/O and syntax errors.  Number printing uses
//! Rust's shortest round-trip float formatting, so values survive a
//! serialise → parse cycle exactly.

use serde::{Deserialize, Serialize, Value};
use std::io::Write;

pub use serde::Error;

/// Builds a [`Value`] from a JSON-like literal.
///
/// Only the shapes used in this workspace are supported: object literals
/// with string keys, array literals, `null`, and expressions serialisable
/// via [`serde::Serialize`].
#[macro_export]
macro_rules! json {
    (null) => { ::serde::Value::Null };
    ([ $($item:expr),* $(,)? ]) => {
        ::serde::Value::Array(::std::vec![ $( $crate::to_value(&$item) ),* ])
    };
    ({ $($key:literal : $value:expr),* $(,)? }) => {
        ::serde::Value::Object(::std::vec![
            $( (::std::string::String::from($key), $crate::to_value(&$value)) ),*
        ])
    };
    ($other:expr) => { $crate::to_value(&$other) };
}

/// Converts any serialisable value into the dynamic [`Value`] model.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Value {
    value.serialize()
}

/// Serialises `value` to a JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(value.serialize().to_string())
}

/// Serialises `value` as JSON into `writer`.
///
/// # Errors
///
/// Returns an error if the underlying writer fails.
pub fn to_writer<W: Write, T: Serialize + ?Sized>(mut writer: W, value: &T) -> Result<(), Error> {
    writer.write_all(value.serialize().to_string().as_bytes())?;
    Ok(())
}

/// Parses a JSON string into any deserialisable type.
///
/// # Errors
///
/// Returns an error on malformed JSON or when the parsed value does not
/// match the shape `T` expects.
pub fn from_str<T: Deserialize>(input: &str) -> Result<T, Error> {
    let mut parser = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    parser.skip_whitespace();
    let value = parser.parse_value()?;
    parser.skip_whitespace();
    if parser.pos != parser.bytes.len() {
        return Err(Error::custom(format!(
            "trailing characters at offset {}",
            parser.pos
        )));
    }
    T::deserialize(&value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_whitespace(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<(), Error> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::custom(format!(
                "expected `{}` at offset {}",
                byte as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, keyword: &str) -> bool {
        if self.bytes[self.pos..].starts_with(keyword.as_bytes()) {
            self.pos += keyword.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_whitespace();
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::String),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            other => Err(Error::custom(format!(
                "unexpected {:?} at offset {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::custom(format!("bad array at offset {}", self.pos))),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_whitespace();
            let key = self.parse_string()?;
            self.skip_whitespace();
            self.expect(b':')?;
            let value = self.parse_value()?;
            fields.push((key, value));
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(Error::custom(format!("bad object at offset {}", self.pos))),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .and_then(char::from_u32)
                                .ok_or_else(|| {
                                    Error::custom(format!(
                                        "bad unicode escape at offset {}",
                                        self.pos
                                    ))
                                })?;
                            out.push(hex);
                            self.pos += 4;
                        }
                        _ => {
                            return Err(Error::custom(format!("bad escape at offset {}", self.pos)))
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 encoded character.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error::custom("invalid utf-8 in string"))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
                None => return Err(Error::custom("unterminated string")),
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::custom("invalid number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| Error::custom(format!("invalid number `{text}`")))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Value::Int)
                .map_err(|_| Error::custom(format!("invalid number `{text}`")))
        } else {
            text.parse::<u64>()
                .map(Value::UInt)
                .map_err(|_| Error::custom(format!("invalid number `{text}`")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn i64_extremes_round_trip() {
        for x in [i64::MIN, i64::MIN + 1, -1, 0, i64::MAX] {
            let s = to_string(&x).unwrap();
            assert_eq!(from_str::<i64>(&s).unwrap(), x, "{s}");
        }
        // One past i64::MIN must be a parse error, not a silent wrap.
        assert!(from_str::<i64>("-9223372036854775809").is_err());
    }

    #[test]
    fn non_finite_floats_print_as_null() {
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
        assert_eq!(to_string(&f64::INFINITY).unwrap(), "null");
        assert!(from_str::<f64>("null").is_err());
        assert_eq!(from_str::<Option<f64>>("null").unwrap(), None);
    }

    #[test]
    fn roundtrip_scalars() {
        assert_eq!(from_str::<u64>("42").unwrap(), 42);
        assert_eq!(from_str::<i64>("-42").unwrap(), -42);
        assert_eq!(from_str::<f64>("1.5").unwrap(), 1.5);
        assert!(from_str::<bool>("true").unwrap());
        assert_eq!(from_str::<String>("\"a\\nb\"").unwrap(), "a\nb");
    }

    #[test]
    fn float_display_round_trips() {
        for x in [0.1, 1.0, 1e-12, 123456.789, -2.5] {
            let s = to_string(&x).unwrap();
            assert_eq!(from_str::<f64>(&s).unwrap(), x, "{s}");
        }
    }

    #[test]
    fn json_macro_builds_objects() {
        let v = json!({"a": 1, "b": true});
        let s = to_string(&v).unwrap();
        assert_eq!(s, "{\"a\":1,\"b\":true}");
    }

    #[test]
    fn trailing_garbage_is_an_error() {
        assert!(from_str::<u64>("42 x").is_err());
        assert!(from_str::<u64>("not json").is_err());
    }

    #[test]
    fn nested_containers_parse() {
        let v: Vec<Vec<u64>> = from_str("[[1,2],[3]]").unwrap();
        assert_eq!(v, vec![vec![1, 2], vec![3]]);
    }
}
