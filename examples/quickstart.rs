//! Quickstart: simulate one HPC benchmark on the baseline ACMP and on the
//! paper's proposed shared-I-cache design, and compare them.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use hpc_workloads::{Benchmark, GeneratorConfig};
use shared_icache::{DesignPoint, ExperimentContext};

fn main() {
    // A reduced scale so the example finishes in a few seconds; use
    // `GeneratorConfig::paper()` for the full eight-worker configuration.
    let generator = GeneratorConfig {
        num_workers: 8,
        parallel_instructions_per_thread: 40_000,
        num_phases: 2,
        seed: 1,
    };
    let ctx = ExperimentContext::new(generator);
    let benchmark = Benchmark::Lu;

    println!("benchmark: {benchmark} ({})", benchmark.suite());
    println!(
        "profile: {:.1}% serial code, {}-byte parallel basic blocks",
        benchmark.profile().serial_fraction * 100.0,
        benchmark.profile().parallel_bb_bytes
    );
    println!();

    // Prefetch both design points in one engine sweep (two jobs in
    // parallel); the `simulate` calls below are then cache hits.
    ctx.sweep(
        &[benchmark],
        &[DesignPoint::baseline(), DesignPoint::proposed()],
    );
    let baseline = ctx.simulate(benchmark, &DesignPoint::baseline());
    let proposed = ctx.simulate(benchmark, &DesignPoint::proposed());

    println!(
        "                         baseline (private 32KB)   proposed (16KB shared, double bus)"
    );
    println!(
        "cycles                   {:>24}   {:>24}",
        baseline.cycles, proposed.cycles
    );
    println!(
        "instructions             {:>24}   {:>24}",
        baseline.instructions, proposed.instructions
    );
    println!(
        "machine IPC              {:>24.3}   {:>24.3}",
        baseline.machine_ipc(),
        proposed.machine_ipc()
    );
    println!(
        "worker I-cache MPKI      {:>24.3}   {:>24.3}",
        baseline.worker_icache_mpki(),
        proposed.worker_icache_mpki()
    );
    println!(
        "worker access ratio      {:>23.1}%   {:>23.1}%",
        baseline.worker_access_ratio() * 100.0,
        proposed.worker_access_ratio() * 100.0
    );
    println!(
        "I-bus transactions       {:>24}   {:>24}",
        baseline.bus.transactions, proposed.bus.transactions
    );

    let slowdown = proposed.cycles as f64 / baseline.cycles as f64;
    println!();
    println!("normalized execution time of the proposed design: {slowdown:.3} (1.000 = baseline)");

    // Area of the worker cluster, from the McPAT/CACTI-style model.
    let base_area = DesignPoint::baseline().cluster_design(8).area().total_mm2();
    let prop_area = DesignPoint::proposed().cluster_design(8).area().total_mm2();
    println!(
        "worker-cluster area: {:.2} mm2 -> {:.2} mm2 ({:.1}% savings)",
        base_area,
        prop_area,
        (1.0 - prop_area / base_area) * 100.0
    );
}
