//! Design-space exploration: sweep sharing degree, line buffers and bus
//! bandwidth for a handful of benchmarks and print the resulting
//! performance / area / energy trade-off, i.e. the decision the paper makes
//! in Section VI.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example design_space
//! ```

use hpc_workloads::{Benchmark, GeneratorConfig};
use power_model::ClusterActivity;
use shared_icache::{arithmetic_mean, DesignPoint, ExperimentContext, TextTable};
use sim_acmp::{BusWidth, SimResult};

fn activity(result: &SimResult) -> ClusterActivity {
    ClusterActivity {
        cycles: result.cycles,
        instructions: result.worker_instructions(),
        icache_accesses: result.worker_icache.accesses,
        line_buffer_accesses: result
            .cores
            .iter()
            .skip(1)
            .map(|c| c.line_buffers.line_requests)
            .sum(),
        bus_transactions: result.bus.transactions,
    }
}

fn main() {
    let ctx = ExperimentContext::new(GeneratorConfig {
        num_workers: 8,
        parallel_instructions_per_thread: 30_000,
        num_phases: 2,
        seed: 2,
    });
    let benchmarks = [
        Benchmark::Cg,
        Benchmark::Lu,
        Benchmark::Ua,
        Benchmark::Lulesh,
    ];

    // The design points the paper walks through: naive sharing at increasing
    // degrees, then the two remedies, then the final proposal.
    let designs = vec![
        DesignPoint::baseline(),
        DesignPoint::naive_shared(2).expect("valid core count"),
        DesignPoint::naive_shared(4).expect("valid core count"),
        DesignPoint::naive_shared(8).expect("valid core count"),
        DesignPoint::shared(16, 8, BusWidth::Single).expect("valid design"),
        DesignPoint::shared(16, 4, BusWidth::Double).expect("valid design"),
        DesignPoint::shared(16, 8, BusWidth::Double).expect("valid design"),
    ];

    // One engine-level fan-out over the full 4 × 7 grid: every (benchmark,
    // design) cell is its own job on the work-stealing pool, so the sweep
    // scales with cores rather than with the benchmark count.
    let sweep_start = acmp_obs::Stopwatch::start();
    let outcome = ctx.sweep(&benchmarks, &designs);
    let sweep_secs = sweep_start.elapsed_secs();

    let baseline_design = DesignPoint::baseline();
    let base_area = baseline_design.cluster_design(8).area().total_mm2();

    let mut table = TextTable::new(vec![
        "design",
        "norm. time",
        "norm. energy",
        "norm. area",
        "bus util [%]",
    ]);

    for design in &designs {
        let results = ctx.simulate_all(&benchmarks, design);
        let cluster = design.cluster_design(8);

        let mut times = Vec::new();
        let mut energies = Vec::new();
        let mut utilisation = Vec::new();
        for (b, r) in &results {
            let base = ctx.simulate(*b, &baseline_design);
            times.push(r.cycles as f64 / base.cycles as f64);
            let e = cluster.energy(&activity(r)).total_mj();
            let e0 = baseline_design
                .cluster_design(8)
                .energy(&activity(&base))
                .total_mj();
            energies.push(e / e0);
            utilisation.push(r.bus.utilisation(r.cycles) * 100.0);
        }

        table.row(vec![
            design.name.clone(),
            format!("{:.3}", arithmetic_mean(&times)),
            format!("{:.3}", arithmetic_mean(&energies)),
            format!("{:.3}", cluster.area().total_mm2() / base_area),
            format!("{:.1}", arithmetic_mean(&utilisation)),
        ]);
    }

    println!(
        "Design-space exploration over {:?}",
        benchmarks.map(|b| b.name())
    );
    println!("(all values normalized to the private-32KB baseline)\n");
    println!("{table}");
    println!(
        "The paper's pick is cpc8-16K-4lb-double: area and energy savings at no performance cost."
    );

    let stats = ctx.stats();
    println!();
    println!(
        "[engine] {} jobs in {sweep_secs:.2}s on {} threads ({} simulated, {} steals); \
         table assembly was {} memory hits",
        outcome.rows.len(),
        ctx.engine().threads(),
        stats.simulated,
        outcome.pool.steals,
        stats.memory_hits,
    );
}
