//! Workload characterisation: reproduce the motivation section of the paper
//! (Figures 2, 3 and 4) for all 24 HPC benchmarks — basic-block lengths,
//! per-region I-cache MPKI and cross-thread instruction sharing.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example characterize_workloads
//! ```

use hpc_workloads::{Benchmark, GeneratorConfig};
use shared_icache::{figures, ExperimentContext, TextTable};

fn main() {
    let ctx = ExperimentContext::new(GeneratorConfig {
        num_workers: 8,
        parallel_instructions_per_thread: 40_000,
        num_phases: 2,
        seed: 3,
    });
    let benchmarks = Benchmark::ALL;

    let fig2 = figures::fig02::compute(&ctx, &benchmarks);
    let fig3 = figures::fig03::compute(&ctx, &benchmarks);
    let fig4 = figures::fig04::compute(&ctx, &benchmarks);

    let mut table = TextTable::new(vec![
        "benchmark",
        "suite",
        "BB serial [B]",
        "BB parallel [B]",
        "MPKI serial",
        "MPKI parallel",
        "dyn. sharing [%]",
    ]);
    for (i, b) in benchmarks.iter().enumerate() {
        table.row(vec![
            b.name().to_string(),
            b.suite().to_string(),
            format!("{:.0}", fig2.rows[i].serial_bytes),
            format!("{:.0}", fig2.rows[i].parallel_bytes),
            format!("{:.2}", fig3.rows[i].serial_mpki),
            format!("{:.2}", fig3.rows[i].parallel_mpki),
            format!("{:.1}", fig4.rows[i].dynamic_sharing_percent),
        ]);
    }

    println!("Workload characterisation (cf. paper Figures 2-4)\n");
    println!("{table}");
    println!(
        "mean parallel/serial basic-block ratio: {:.1}x  (paper: ~3x)",
        fig2.mean_parallel() / fig2.mean_serial()
    );
    println!(
        "mean dynamic instruction sharing: {:.1}%  (paper: ~99%)",
        fig4.mean_dynamic_sharing()
    );
    println!(
        "benchmarks with parallel MPKI above 1: {}",
        fig3.rows
            .iter()
            .filter(|r| r.parallel_mpki > 1.0)
            .map(|r| r.benchmark.name())
            .collect::<Vec<_>>()
            .join(", ")
    );
    println!("\nThese three properties motivate sharing the I-cache among lean cores.");
    println!(
        "[engine] characterisation fanned out over {} threads",
        ctx.engine().threads()
    );
}
