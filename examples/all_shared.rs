//! Should the master core share the I-cache too?  Reproduces the Section
//! VI-E analysis (Figure 13): the all-shared configuration is compared to
//! the worker-shared one as the serial-code fraction grows.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example all_shared
//! ```

use hpc_workloads::{Benchmark, GeneratorConfig};
use shared_icache::figures::fig13;
use shared_icache::ExperimentContext;

fn main() {
    let ctx = ExperimentContext::new(GeneratorConfig {
        num_workers: 8,
        parallel_instructions_per_thread: 30_000,
        num_phases: 2,
        seed: 4,
    });

    // A spread of serial-code fractions: from almost fully parallel (LU,
    // ilbdc) to the most serial workloads (nab, CoMD).
    let benchmarks = [
        Benchmark::Lu,
        Benchmark::Ilbdc,
        Benchmark::Ft,
        Benchmark::Ua,
        Benchmark::Is,
        Benchmark::CoEvp,
        Benchmark::Lulesh,
        Benchmark::Nab,
        Benchmark::CoMd,
    ];

    let fig = fig13::compute(&ctx, &benchmarks);
    println!("{fig}");

    // Sort by serial fraction to make the trend readable.
    let mut rows = fig.rows.clone();
    rows.sort_by(|a, b| a.serial_percent.total_cmp(&b.serial_percent));
    println!("Trend (sorted by serial fraction):");
    for r in &rows {
        let bar_len = ((r.ratio_double_bus - 1.0).max(0.0) * 400.0) as usize;
        println!(
            "  {:>8}  {:>5.1}% serial  ratio {:.3}  {}",
            r.benchmark.name(),
            r.serial_percent,
            r.ratio_double_bus,
            "#".repeat(bar_len.min(60))
        );
    }

    println!();
    println!(
        "Conclusion (as in the paper): sharing the I-cache with the master core degrades \
         performance as the serial fraction grows, so the master keeps its private I-cache."
    );

    let stats = ctx.stats();
    println!(
        "[engine] {} simulations across {} threads, {} memory hits",
        stats.simulated,
        ctx.engine().threads(),
        stats.memory_hits
    );
}
