//! The Figure 1 sweep: speedup vs serial code fraction.

use crate::model::{CmpOrganisation, HillMartyModel};
use serde::{Deserialize, Serialize};

/// One point of the Figure 1 series.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Figure1Point {
    /// Serial code fraction in percent (the figure's x-axis: 0–30 %).
    pub serial_percent: f64,
    /// Speedup of the symmetric CMP with four big cores.
    pub symmetric_big: f64,
    /// Speedup of the symmetric CMP with sixteen small cores.
    pub symmetric_small: f64,
    /// Speedup of the asymmetric CMP with one big and twelve small cores.
    pub asymmetric: f64,
}

/// Generates the Figure 1 series: a 16-BCE chip, a big core worth 4 BCEs
/// (2× performance), serial fractions from 0 to 30 %.
pub fn figure1_series(points: usize) -> Vec<Figure1Point> {
    assert!(points >= 2, "need at least two points for a series");
    let model = HillMartyModel::new(16.0);
    let big = 4.0;
    (0..points)
        .map(|i| {
            let serial_percent = 30.0 * i as f64 / (points - 1) as f64;
            let serial = serial_percent / 100.0;
            Figure1Point {
                serial_percent,
                symmetric_big: model
                    .speedup(CmpOrganisation::Symmetric { bce_per_core: big }, serial),
                symmetric_small: model
                    .speedup(CmpOrganisation::Symmetric { bce_per_core: 1.0 }, serial),
                asymmetric: model
                    .speedup(CmpOrganisation::Asymmetric { big_core_bce: big }, serial),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series_covers_zero_to_thirty_percent() {
        let s = figure1_series(31);
        assert_eq!(s.len(), 31);
        assert!((s[0].serial_percent - 0.0).abs() < 1e-12);
        assert!((s[30].serial_percent - 30.0).abs() < 1e-12);
    }

    #[test]
    fn endpoints_match_the_paper_figure() {
        let s = figure1_series(31);
        // At 0% serial: 16 small cores reach 16x, 4 big cores reach 8x, the
        // ACMP lands in between (big core + 12 lean cores = 14x).
        assert!((s[0].symmetric_small - 16.0).abs() < 1e-9);
        assert!((s[0].symmetric_big - 8.0).abs() < 1e-9);
        assert!(s[0].asymmetric > 13.0 && s[0].asymmetric < 15.0);
        // Beyond a couple of percent the ACMP dominates.
        for p in s.iter().filter(|p| p.serial_percent >= 2.5) {
            assert!(p.asymmetric >= p.symmetric_small);
            assert!(p.asymmetric >= p.symmetric_big);
        }
    }

    #[test]
    fn crossover_is_near_two_percent() {
        let s = figure1_series(301);
        let crossover = s
            .iter()
            .find(|p| p.asymmetric > p.symmetric_small)
            .expect("the ACMP eventually wins");
        assert!(
            crossover.serial_percent > 0.3 && crossover.serial_percent < 4.0,
            "crossover at {:.2}%",
            crossover.serial_percent
        );
    }

    #[test]
    #[should_panic(expected = "at least two points")]
    fn series_needs_points() {
        figure1_series(1);
    }
}
