//! Hill & Marty analytic multicore speedup models.
//!
//! Figure 1 of the paper motivates the asymmetric CMP with the cost model of
//! Hill and Marty, *"Amdahl's Law in the Multicore Era"* (IEEE Computer,
//! 2008): a chip has a budget of `n` *base core equivalents* (BCE); a core
//! built from `r` BCEs delivers `perf(r) = √r` sequential performance; the
//! serial fraction of the application limits the achievable speedup.
//!
//! Three organisations are compared:
//!
//! * a **symmetric** CMP of `n / r` cores of `r` BCEs each,
//! * an **asymmetric** CMP with one big core of `r` BCEs plus `n − r` single
//!   BCE cores,
//! * (for completeness) the single big core alone.
//!
//! The paper's Figure 1 uses `n = 16` BCEs and a big core that spends 4 BCEs
//! for 2× performance — exactly `perf(4) = √4 = 2`.

pub mod model;
pub mod sweep;

pub use model::{CmpOrganisation, HillMartyModel};
pub use sweep::{figure1_series, Figure1Point};

#[cfg(test)]
mod crate_tests {
    use super::*;

    #[test]
    fn public_types_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<HillMartyModel>();
        assert_send_sync::<CmpOrganisation>();
        assert_send_sync::<Figure1Point>();
    }
}
