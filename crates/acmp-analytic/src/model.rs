//! The Hill-Marty cost/performance model.

use serde::{Deserialize, Serialize};

/// The multicore organisations compared in Figure 1.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum CmpOrganisation {
    /// `budget / bce_per_core` identical cores of `bce_per_core` BCEs each.
    Symmetric {
        /// Resources spent per core, in base core equivalents.
        bce_per_core: f64,
    },
    /// One big core of `big_core_bce` BCEs plus `budget - big_core_bce`
    /// single-BCE lean cores.
    Asymmetric {
        /// Resources spent on the big core, in base core equivalents.
        big_core_bce: f64,
    },
}

/// A chip with a fixed resource budget evaluated under Amdahl's law.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HillMartyModel {
    /// Total chip budget in base core equivalents (Figure 1 uses 16).
    pub budget: f64,
}

impl HillMartyModel {
    /// Creates a model with the given BCE budget.
    ///
    /// # Panics
    ///
    /// Panics if the budget is not positive.
    pub fn new(budget: f64) -> Self {
        assert!(budget > 0.0, "the chip budget must be positive");
        HillMartyModel { budget }
    }

    /// Sequential performance of a core built from `r` BCEs, normalised to a
    /// single-BCE core: `perf(r) = √r` (Hill & Marty's baseline assumption;
    /// the paper's Figure 1 caption phrases it as "4× more resources for 2×
    /// more performance").
    pub fn perf(r: f64) -> f64 {
        assert!(r > 0.0, "core size must be positive");
        r.sqrt()
    }

    /// Speedup of `organisation` on a workload whose serial fraction is
    /// `serial_fraction`, relative to a single 1-BCE core.
    ///
    /// # Panics
    ///
    /// Panics if `serial_fraction` is outside `[0, 1]` or the organisation
    /// does not fit in the budget.
    pub fn speedup(&self, organisation: CmpOrganisation, serial_fraction: f64) -> f64 {
        assert!(
            (0.0..=1.0).contains(&serial_fraction),
            "serial fraction must be in [0, 1]"
        );
        let f_par = 1.0 - serial_fraction;
        match organisation {
            CmpOrganisation::Symmetric { bce_per_core } => {
                assert!(
                    bce_per_core > 0.0 && bce_per_core <= self.budget,
                    "core size must fit in the budget"
                );
                let cores = (self.budget / bce_per_core).floor().max(1.0);
                let perf = Self::perf(bce_per_core);
                // Serial code runs on one core; parallel code on all of them.
                1.0 / (serial_fraction / perf + f_par / (perf * cores))
            }
            CmpOrganisation::Asymmetric { big_core_bce } => {
                assert!(
                    big_core_bce >= 1.0 && big_core_bce <= self.budget,
                    "big core must fit in the budget"
                );
                let lean_cores = self.budget - big_core_bce;
                let big_perf = Self::perf(big_core_bce);
                // Serial code runs on the big core; parallel code uses the
                // big core plus every lean core.
                1.0 / (serial_fraction / big_perf + f_par / (big_perf + lean_cores))
            }
        }
    }
}

impl Default for HillMartyModel {
    /// The 16-BCE budget of Figure 1.
    fn default() -> Self {
        HillMartyModel::new(16.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const FIG1_BIG: f64 = 4.0; // 4 BCE big core => 2x performance

    #[test]
    fn perf_is_square_root() {
        assert!((HillMartyModel::perf(4.0) - 2.0).abs() < 1e-12);
        assert!((HillMartyModel::perf(1.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn fully_parallel_code_favours_many_small_cores() {
        let m = HillMartyModel::default();
        let small = m.speedup(CmpOrganisation::Symmetric { bce_per_core: 1.0 }, 0.0);
        let big = m.speedup(
            CmpOrganisation::Symmetric {
                bce_per_core: FIG1_BIG,
            },
            0.0,
        );
        assert!((small - 16.0).abs() < 1e-9);
        assert!((big - 8.0).abs() < 1e-9);
        assert!(small > big);
    }

    #[test]
    fn highly_serial_code_favours_few_big_cores() {
        let m = HillMartyModel::default();
        let small = m.speedup(CmpOrganisation::Symmetric { bce_per_core: 1.0 }, 0.3);
        let big = m.speedup(
            CmpOrganisation::Symmetric {
                bce_per_core: FIG1_BIG,
            },
            0.3,
        );
        assert!(big > small);
    }

    #[test]
    fn asymmetric_beats_both_symmetric_designs_beyond_two_percent_serial() {
        // The paper: "with the serial code fraction above 2%, an ACMP
        // outperforms both symmetric CMP designs".
        let m = HillMartyModel::default();
        for serial in [0.02, 0.05, 0.10, 0.20, 0.30] {
            let acmp = m.speedup(
                CmpOrganisation::Asymmetric {
                    big_core_bce: FIG1_BIG,
                },
                serial,
            );
            let sym_small = m.speedup(CmpOrganisation::Symmetric { bce_per_core: 1.0 }, serial);
            let sym_big = m.speedup(
                CmpOrganisation::Symmetric {
                    bce_per_core: FIG1_BIG,
                },
                serial,
            );
            assert!(
                acmp > sym_small && acmp > sym_big,
                "at {serial}: acmp={acmp:.2} small={sym_small:.2} big={sym_big:.2}"
            );
        }
    }

    #[test]
    fn at_zero_serial_fraction_the_small_symmetric_design_wins() {
        let m = HillMartyModel::default();
        let acmp = m.speedup(
            CmpOrganisation::Asymmetric {
                big_core_bce: FIG1_BIG,
            },
            0.0,
        );
        let sym_small = m.speedup(CmpOrganisation::Symmetric { bce_per_core: 1.0 }, 0.0);
        assert!(sym_small > acmp);
    }

    #[test]
    fn speedup_decreases_with_serial_fraction() {
        let m = HillMartyModel::default();
        let mut last = f64::INFINITY;
        for i in 0..=10 {
            let s = m.speedup(
                CmpOrganisation::Asymmetric {
                    big_core_bce: FIG1_BIG,
                },
                i as f64 * 0.03,
            );
            assert!(s < last);
            last = s;
        }
    }

    #[test]
    #[should_panic(expected = "serial fraction")]
    fn serial_fraction_is_validated() {
        HillMartyModel::default().speedup(CmpOrganisation::Symmetric { bce_per_core: 1.0 }, 1.5);
    }

    #[test]
    #[should_panic(expected = "fit in the budget")]
    fn oversized_big_core_rejected() {
        HillMartyModel::new(4.0).speedup(CmpOrganisation::Asymmetric { big_core_bce: 8.0 }, 0.1);
    }
}
