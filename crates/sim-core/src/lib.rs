//! Core model: decoupled front-end plus a commit-rate back-end.
//!
//! A [`Core`] consumes one thread's instruction trace and simulates, cycle
//! by cycle, the front-end of Figure 5 of the paper (fetch predictor → FTQ →
//! line buffers → instruction queue) feeding a back-end that commits up to a
//! configurable number of instructions per cycle.  The commit rate is set
//! from the per-region IPC values embedded in the trace, reproducing the
//! paper's methodology of measuring back-end IPC with performance counters
//! and letting the simulator focus on front-end effects.
//!
//! The core does **not** talk to the I-cache directly: every cycle it emits
//! the line-fetch requests it wants to make and the machine model
//! (`sim-acmp`) routes them — straight to a private I-cache, or through the
//! shared bus to a shared I-cache — and later calls
//! [`Core::deliver_line`].  The machine also attributes memory-side stall
//! cycles to the right CPI-stack bucket ([`CpiStack`]) because only the
//! machine knows whether a request is waiting for the bus, in transfer, or
//! missing in the I-cache.

pub mod config;
pub mod core;
pub mod cpi;

pub use crate::core::{Core, CoreState, CycleOutput, Park, StallReason};
pub use config::CoreConfig;
pub use cpi::{CpiStack, StallKind};

#[cfg(test)]
mod crate_tests {
    use super::*;

    #[test]
    fn public_types_are_send() {
        fn assert_send<T: Send>() {}
        assert_send::<Core>();
        assert_send::<CpiStack>();
        assert_send::<CoreConfig>();
    }
}
