//! The cycle-level core model.

use crate::config::CoreConfig;
use crate::cpi::CpiStack;
use sim_frontend::{FetchPredictor, Ftq, FtqEntry, LineBufferFile, LineBufferStats, LineLookup};
use sim_trace::{SyncEvent, TraceRecord, TraceSource};

/// How many candidate lines a lookahead scan examines before truncating.
const MAX_LOOKAHEAD_LINES: usize = 16;

/// Execution state of a core.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CoreState {
    /// Fetching and committing normally.
    Running,
    /// A synchronisation event (or end of trace) was reached at fetch; the
    /// core is draining the instructions already in flight.
    Draining,
    /// Drained and waiting for the runtime to release it.
    Blocked,
    /// The trace is fully executed.
    Finished,
}

/// Why a core committed nothing this cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StallReason {
    /// The instruction queue is empty because the front-end is waiting for
    /// this line to arrive.  The machine model refines this into I-cache
    /// latency, bus latency or bus congestion depending on where the request
    /// currently is.
    WaitingForLine(u64),
    /// The front-end is recovering from a branch misprediction.
    MispredictRecovery,
    /// The core is blocked on (or draining towards) a synchronisation event.
    SyncBlocked,
    /// Anything else (predictor throughput, start-up, end of trace).
    Other,
}

/// What happened during one call to [`Core::cycle`].
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CycleOutput {
    /// Instructions committed this cycle.
    pub committed: u32,
    /// Line-fetch requests issued this cycle (line-aligned addresses).
    pub fetch_requests: Vec<u64>,
    /// A synchronisation event reached and fully drained this cycle; the
    /// runtime must eventually call [`Core::unblock`].
    pub sync_event: Option<SyncEvent>,
    /// The core finished its trace this cycle.
    pub finished_now: bool,
    /// Why nothing committed (only set when `committed == 0` and the core
    /// has not finished).
    pub stall: Option<StallReasonCompat>,
}

/// Public alias kept separate so `CycleOutput` can derive `Eq` while
/// `StallReason` stays the canonical name in signatures.
pub type StallReasonCompat = StallReason;

/// How the machine scheduler may treat a core over the next cycles.
///
/// Returned by [`Core::park_state`] after a cycle in which nothing committed.
/// "Observable" below means anything that changes simulation results: a
/// commit, a fetch request, a sync event, finishing, or a change in stall
/// classification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Park {
    /// The core would do observable work next cycle; keep ticking it.
    Active,
    /// Nothing observable happens strictly before the given cycle; the core
    /// is only waiting for its resteer penalty to elapse.  The scheduler may
    /// skip ahead and tick the core again at this cycle.
    Until(u64),
    /// Nothing observable happens until an external event arrives (a line
    /// delivery via [`Core::deliver_line`] or an [`Core::unblock`]).
    Waiting,
}

/// Progress of fetching the fetch block at the head of the FTQ.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum HeadFetch {
    /// Need to look up the next line.
    Idle,
    /// The needed line is known but no line buffer could be allocated yet.
    WaitAlloc(u64),
    /// The line was requested (or found in-flight); waiting for the fill.
    /// [`Core::deliver_line`] advances this to `Ready` when the fill lands,
    /// so no per-cycle residency probe is needed.
    WaitFill(u64),
    /// The line is resident; instructions are being delivered from it.
    /// `idx` caches the buffer slot (stable while the line stays resident,
    /// which the lookahead victim check guarantees for the head line).
    Ready { line: u64, idx: usize },
}

/// A simulated core.
pub struct Core {
    id: usize,
    config: CoreConfig,
    trace: Box<dyn TraceSource + Send>,
    predictor: FetchPredictor,
    ftq: Ftq,
    line_buffers: LineBufferFile,
    head_fetch: HeadFetch,

    iq_occupancy: usize,
    commit_rate: f64,
    commit_credit: f64,

    resteer_until: u64,
    state: CoreState,
    pending_sync: Option<SyncEvent>,
    trace_done: bool,
    /// One record pushed back by fetch-block assembly (e.g. the first record
    /// after a discontinuity).
    pushback: Option<TraceRecord>,
    /// Records batched out of the trace source, so block assembly pays one
    /// virtual `next_records` call per batch instead of one per record.
    trace_buf: Vec<TraceRecord>,
    /// Read position in `trace_buf`.
    trace_pos: usize,

    cpi: CpiStack,
    fetch_blocks: u64,

    /// Scratch buffer reused by `fetch_lookahead` so the hot loop does not
    /// allocate every cycle.
    lookahead_scratch: Vec<u64>,
    /// Memo: `true` when the last lookahead scan proved that no prefetch can
    /// be issued until the line buffers or the FTQ change.  Cleared on every
    /// line fill, successful allocation, and FTQ push.
    lookahead_idle: bool,
    /// Whether the memoised verdict came from a scan truncated at the
    /// lookahead line cap.  A truncated verdict additionally expires when
    /// the head block is consumed, because that slides the capped window
    /// forward over lines the scan never examined.
    lookahead_capped: bool,
    /// Whether the memoised verdict came from a completed candidate scan
    /// (in which case `lookahead_scratch` holds that scan's candidate list
    /// and an FTQ push can extend it incrementally) as opposed to the
    /// pending-buffer-count check (scratch stale, but pushes cannot affect
    /// the verdict at all).
    lookahead_scan: bool,
    /// Number of leading candidates of a fresh lookahead scan that are known
    /// to probe non-miss, so the scan can skip re-probing them.  Fills only
    /// turn Pending buffers Valid (never create a miss) and the scan's own
    /// allocations are victim-checked against the candidate list, so the
    /// prefix survives both; it resets when the head consumes a line (the
    /// candidate list shifts) or a head-side allocation evicts an arbitrary
    /// LRU line.
    lookahead_floor: usize,
}

impl std::fmt::Debug for Core {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Core")
            .field("id", &self.id)
            .field("state", &self.state)
            .field("iq_occupancy", &self.iq_occupancy)
            .field("commit_rate", &self.commit_rate)
            .field("instructions", &self.cpi.instructions)
            .finish_non_exhaustive()
    }
}

impl Core {
    /// Creates a core with identifier `id` executing `trace`.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid.
    pub fn new(id: usize, config: CoreConfig, trace: Box<dyn TraceSource + Send>) -> Self {
        config.validate();
        Core {
            id,
            config,
            trace,
            predictor: FetchPredictor::new(config.frontend.predictor),
            ftq: Ftq::new(config.frontend.ftq_capacity),
            line_buffers: LineBufferFile::new(
                config.frontend.line_buffers,
                config.frontend.line_size,
            ),
            head_fetch: HeadFetch::Idle,
            iq_occupancy: 0,
            commit_rate: config.default_ipc,
            commit_credit: 0.0,
            resteer_until: 0,
            state: CoreState::Running,
            pending_sync: None,
            trace_done: false,
            pushback: None,
            trace_buf: Vec::new(),
            trace_pos: 0,
            cpi: CpiStack::new(),
            fetch_blocks: 0,
            lookahead_scratch: Vec::new(),
            lookahead_idle: false,
            lookahead_capped: false,
            lookahead_scan: false,
            lookahead_floor: 0,
        }
    }

    /// The core's identifier.
    pub fn id(&self) -> usize {
        self.id
    }

    /// The configuration in use.
    pub fn config(&self) -> &CoreConfig {
        &self.config
    }

    /// The execution state.
    pub fn state(&self) -> CoreState {
        self.state
    }

    /// The CPI stack accumulated so far.
    pub fn cpi(&self) -> &CpiStack {
        &self.cpi
    }

    /// Mutable access to the CPI stack, used by the machine model to record
    /// memory-side stall attributions.
    pub fn cpi_mut(&mut self) -> &mut CpiStack {
        &mut self.cpi
    }

    /// Line-buffer statistics (the paper's I-cache access ratio).
    pub fn line_buffer_stats(&self) -> &LineBufferStats {
        self.line_buffers.stats()
    }

    /// Branch predictor statistics.
    pub fn predictor_stats(&self) -> &sim_frontend::PredictorStats {
        self.predictor.stats()
    }

    /// Number of fetch blocks produced so far.
    pub fn fetch_blocks(&self) -> u64 {
        self.fetch_blocks
    }

    /// Instructions committed so far.
    pub fn instructions(&self) -> u64 {
        self.cpi.instructions
    }

    /// Current back-end commit rate (IPC).
    pub fn commit_rate(&self) -> f64 {
        self.commit_rate
    }

    /// Returns `true` once the core has executed its whole trace.
    pub fn is_finished(&self) -> bool {
        self.state == CoreState::Finished
    }

    /// Releases a core blocked on a synchronisation event.
    ///
    /// # Panics
    ///
    /// Panics if the core is not blocked.
    pub fn unblock(&mut self) {
        assert_eq!(
            self.state,
            CoreState::Blocked,
            "core {} unblocked while {:?}",
            self.id,
            self.state
        );
        self.state = CoreState::Running;
    }

    /// Delivers the line containing `addr` into a waiting line buffer (the
    /// completion of a fetch request issued earlier).
    pub fn deliver_line(&mut self, addr: u64, now: u64) {
        let filled = self.line_buffers.fill(addr, now);
        self.lookahead_idle = false;
        if filled {
            let line = addr & !(self.config.frontend.line_size - 1);
            if self.head_fetch == HeadFetch::WaitFill(line) {
                // Event-driven head wake-up: fills are the only Pending ->
                // Valid transition, so advancing the state here replaces the
                // per-cycle residency probe in `fetch_head`.
                let idx = self
                    .line_buffers
                    .index_of(line)
                    .expect("filled line must be resident");
                self.head_fetch = HeadFetch::Ready { line, idx };
            }
        }
    }

    /// Simulates one cycle.
    pub fn cycle(&mut self, now: u64) -> CycleOutput {
        let mut out = CycleOutput::default();
        self.cycle_into(now, &mut out);
        out
    }

    /// Simulates one cycle, writing into a caller-owned output so its
    /// `fetch_requests` allocation can be reused across cycles.  Equivalent
    /// to [`Core::cycle`]; this is the hot-path entry point.
    pub fn cycle_into(&mut self, now: u64, out: &mut CycleOutput) {
        out.committed = 0;
        out.fetch_requests.clear();
        out.sync_event = None;
        out.finished_now = false;
        out.stall = None;
        if self.state == CoreState::Finished {
            return;
        }

        // 1. Back-end: commit from the instruction queue.
        let committed = self.commit();
        out.committed = committed;

        // 2. Fetch: move instructions from line buffers into the queue,
        //    issuing I-cache requests as needed.
        self.fetch(now, out);

        // 3. Fetch-block generation from the trace (one block per cycle).
        if self.state == CoreState::Running && now >= self.resteer_until && !self.ftq.is_full() {
            self.generate_fetch_block(now);
        }

        // 4. Drain / block transitions.
        if self.state == CoreState::Draining && self.is_drained() {
            if let Some(ev) = self.pending_sync.take() {
                out.sync_event = Some(ev);
                self.state = CoreState::Blocked;
            } else if self.trace_done {
                self.state = CoreState::Finished;
                out.finished_now = true;
            } else {
                // Nothing to wait for after all; resume.
                self.state = CoreState::Running;
            }
        }

        // 5. Stall attribution request (the machine maps it to a CPI bucket).
        if out.committed == 0 && self.state != CoreState::Finished {
            out.stall = Some(self.classify_stall(now));
        } else if out.committed > 0 {
            self.cpi.record_commit_cycle(out.committed);
        }
    }

    fn commit(&mut self) -> u32 {
        self.commit_credit =
            (self.commit_credit + self.commit_rate).min(self.config.commit_width as f64);
        // `as usize` truncates toward zero, which equals `floor()` for the
        // non-negative credit and avoids a libm call in the hottest loop.
        let possible = self.commit_credit as usize;
        let n = possible
            .min(self.iq_occupancy)
            .min(self.config.commit_width as usize);
        self.iq_occupancy -= n;
        self.commit_credit -= n as f64;
        n as u32
    }

    fn fetch(&mut self, now: u64, out: &mut CycleOutput) {
        self.fetch_head(now, out);
        self.fetch_lookahead(now, out);
    }

    /// Advances the fetch block at the head of the FTQ: looks its line up in
    /// the line buffers, issues the I-cache request if needed, and streams
    /// instructions into the instruction queue once the line is resident.
    fn fetch_head(&mut self, now: u64, out: &mut CycleOutput) {
        let line_size = self.config.frontend.line_size;
        loop {
            match self.head_fetch {
                HeadFetch::Idle => {
                    let Some(head) = self.ftq.head() else { return };
                    if head.num_instrs == 0 {
                        self.ftq.pop();
                        continue;
                    }
                    let start = head.start;
                    match self.line_buffers.request(start, now) {
                        LineLookup::Hit => {
                            let line = start & !(line_size - 1);
                            let idx = self
                                .line_buffers
                                .index_of(line)
                                .expect("request() hit implies residency");
                            self.head_fetch = HeadFetch::Ready { line, idx };
                        }
                        LineLookup::Pending => {
                            self.head_fetch = HeadFetch::WaitFill(start & !(line_size - 1));
                        }
                        LineLookup::Miss => {
                            let line = start & !(line_size - 1);
                            if self.line_buffers.allocate(start, now) {
                                // The allocation may have evicted any LRU
                                // line, including a known-non-miss lookahead
                                // candidate.
                                self.lookahead_idle = false;
                                self.lookahead_floor = 0;
                                out.fetch_requests.push(line);
                                self.head_fetch = HeadFetch::WaitFill(line);
                            } else {
                                self.head_fetch = HeadFetch::WaitAlloc(line);
                            }
                        }
                    }
                    // Only one lookup transition per cycle.
                    if !matches!(self.head_fetch, HeadFetch::Ready { .. }) {
                        return;
                    }
                }
                HeadFetch::WaitAlloc(line) => {
                    if self.line_buffers.allocate(line, now) {
                        self.lookahead_idle = false;
                        self.lookahead_floor = 0;
                        out.fetch_requests.push(line);
                        self.head_fetch = HeadFetch::WaitFill(line);
                    }
                    return;
                }
                HeadFetch::WaitFill(_) => {
                    // `deliver_line` advances to Ready when the fill lands.
                    return;
                }
                HeadFetch::Ready { line, idx } => {
                    // Keep the line being consumed most-recently-used so a
                    // lookahead prefetch never displaces it.
                    self.line_buffers.touch_at(idx, now);
                    self.deliver_from_line(line, now);
                    return;
                }
            }
        }
    }

    /// Issues I-cache requests for lines that queued fetch blocks will need
    /// soon, one request per free line buffer (each buffer tracks one
    /// outstanding request).  This is what lets the decoupled front-end hide
    /// the multi-cycle access latency of a *shared* I-cache: while the head
    /// block waits for its line, the next lines already ride the bus.
    fn fetch_lookahead(&mut self, now: u64, out: &mut CycleOutput) {
        const MAX_LOOKAHEAD_REQUESTS_PER_CYCLE: usize = 2;

        // The memo is only ever set when the scan below completed with
        // nothing to do, and is cleared whenever the inputs of that scan
        // change (a fill, a successful allocation, or an FTQ push), so the
        // early return is exact.  Consuming the head entry only shrinks the
        // candidate set, hence cannot invalidate a "nothing to do" verdict.
        if self.lookahead_idle {
            return;
        }
        let line_size = self.config.frontend.line_size;

        // Always leave one buffer free so the head block can never be
        // locked out by its own prefetches.  The pending count only changes
        // through allocations and fills, both of which clear the memo.
        let mut pending = self.line_buffers.pending_count();
        if pending + 1 >= self.line_buffers.len() {
            // This verdict does not depend on the candidate window at all,
            // only on the pending count.
            self.lookahead_idle = true;
            self.lookahead_capped = false;
            self.lookahead_scan = false;
            return;
        }

        // Candidate lines in program order over the queued fetch blocks,
        // collected into a scratch buffer reused across cycles.
        let mut candidates = std::mem::take(&mut self.lookahead_scratch);
        candidates.clear();
        'collect: for entry in self.ftq.iter() {
            if entry.num_instrs == 0 {
                continue;
            }
            let first = entry.start & !(line_size - 1);
            let last = (entry.end().max(entry.start + 1) - 1) & !(line_size - 1);
            let mut line = first;
            loop {
                candidates.push(line);
                if line >= last || candidates.len() >= MAX_LOOKAHEAD_LINES {
                    break;
                }
                line += line_size;
            }
            if candidates.len() >= MAX_LOOKAHEAD_LINES {
                break 'collect;
            }
        }

        // Candidates below the floor probed non-miss in an earlier scan and
        // nothing since could have turned them into misses; skip them.  No
        // break can occur inside the skipped prefix either: `issued` starts
        // at zero and the pending-count break would already have fired in
        // the early check above.
        let skip = self.lookahead_floor.min(candidates.len());
        let mut floor = skip;
        let mut issued = 0;
        let mut any_miss = false;
        let mut broke = false;
        for (i, line) in candidates.iter().copied().enumerate().skip(skip) {
            if issued >= MAX_LOOKAHEAD_REQUESTS_PER_CYCLE {
                broke = true;
                break;
            }
            if pending + 1 >= self.line_buffers.len() {
                broke = true;
                break;
            }
            if self.line_buffers.probe(line) != LineLookup::Miss {
                floor = i + 1;
                continue;
            }
            any_miss = true;
            // Never displace a line the queued fetch blocks still need: a
            // prefetch that evicts sooner-needed code would be re-fetched
            // and waste bus bandwidth.
            if let Some(victim) = self.line_buffers.victim_line() {
                if candidates.contains(&victim) {
                    broke = true;
                    break;
                }
            }
            if self.line_buffers.allocate(line, now) {
                out.fetch_requests.push(line);
                issued += 1;
                pending += 1;
                floor = i + 1;
            } else {
                broke = true;
                break;
            }
        }
        self.lookahead_floor = floor;
        // A completed scan that saw no missing candidate proves future scans
        // are no-ops until a fill/allocation/push changes the inputs: the
        // verdict depends only on buffer contents and the candidate set, not
        // on recency order or the cycle number.
        if !broke && !any_miss {
            self.lookahead_idle = true;
            self.lookahead_capped = candidates.len() >= MAX_LOOKAHEAD_LINES;
            self.lookahead_scan = true;
        }
        self.lookahead_scratch = candidates;
    }

    /// Maintains the lookahead memo across an FTQ push.  A fresh scan after
    /// a push would see the previous candidates (or a subset, if head bytes
    /// were consumed since) plus the new block's lines appended at the end
    /// of the window, so an idle verdict survives iff none of the new lines
    /// is a probe miss — checked here against just those lines instead of
    /// dropping the memo and re-scanning the whole window next cycle.
    ///
    /// `lookahead_scratch` may be a stale *superset* of the real candidate
    /// list (head consumption shrinks the list without updating it); that is
    /// sound for the all-non-miss verdict but not for deciding truncation,
    /// so reaching the line cap clears the memo instead of marking it
    /// capped.
    fn note_ftq_push(&mut self, start: u64, end: u64, num_instrs: u32) {
        if !self.lookahead_idle {
            return;
        }
        if !self.lookahead_scan {
            // The verdict rests on the pending-buffer count, which a push
            // does not change.
            return;
        }
        if self.lookahead_capped || num_instrs == 0 {
            // Capped: the window was already full before this push, and no
            // head bytes were consumed since (that clears a capped memo), so
            // the new lines lie beyond what a fresh scan would examine.
            // Empty blocks contribute no candidates.
            return;
        }
        let line_size = self.config.frontend.line_size;
        let first = start & !(line_size - 1);
        let last = (end.max(start + 1) - 1) & !(line_size - 1);
        let mut line = first;
        loop {
            if self.lookahead_scratch.len() >= MAX_LOOKAHEAD_LINES
                || self.line_buffers.probe(line) == LineLookup::Miss
            {
                self.lookahead_idle = false;
                self.lookahead_capped = false;
                return;
            }
            // `floor == scratch.len()` means no head consumption happened
            // since the completed scan (consumption resets the floor while
            // leaving scratch populated), so scratch mirrors the fresh
            // candidate list and the newly probed line extends the non-miss
            // prefix.
            if self.lookahead_floor == self.lookahead_scratch.len() {
                self.lookahead_floor += 1;
            }
            self.lookahead_scratch.push(line);
            if line >= last {
                return;
            }
            line += line_size;
        }
    }

    /// Dry-run of [`Core::fetch_lookahead`]: would it issue at least one
    /// request right now?  Mirrors the real loop exactly; when the answer is
    /// a completed-scan "no", the memo is set so the next real scan is free.
    fn lookahead_would_issue(&mut self) -> bool {
        if self.lookahead_idle {
            return false;
        }
        let line_size = self.config.frontend.line_size;
        let pending = self.line_buffers.pending_count();
        if pending + 1 >= self.line_buffers.len() {
            self.lookahead_idle = true;
            self.lookahead_capped = false;
            self.lookahead_scan = false;
            return false;
        }

        let mut candidates = std::mem::take(&mut self.lookahead_scratch);
        candidates.clear();
        'collect: for entry in self.ftq.iter() {
            if entry.num_instrs == 0 {
                continue;
            }
            let first = entry.start & !(line_size - 1);
            let last = (entry.end().max(entry.start + 1) - 1) & !(line_size - 1);
            let mut line = first;
            loop {
                candidates.push(line);
                if line >= last || candidates.len() >= MAX_LOOKAHEAD_LINES {
                    break;
                }
                line += line_size;
            }
            if candidates.len() >= MAX_LOOKAHEAD_LINES {
                break 'collect;
            }
        }

        let skip = self.lookahead_floor.min(candidates.len());
        let mut floor = skip;
        let mut verdict = None;
        for (i, line) in candidates.iter().copied().enumerate().skip(skip) {
            if self.line_buffers.probe(line) != LineLookup::Miss {
                floor = i + 1;
                continue;
            }
            // First missing candidate: the real loop either stops on the
            // victim check or allocates (allocation cannot fail while a
            // non-pending buffer exists, which `pending + 1 < len`
            // guarantees).
            let blocked = match self.line_buffers.victim_line() {
                Some(victim) => candidates.contains(&victim),
                None => false,
            };
            verdict = Some(!blocked);
            break;
        }
        self.lookahead_floor = floor;
        let would = match verdict {
            Some(v) => v,
            None => {
                self.lookahead_idle = true;
                self.lookahead_capped = candidates.len() >= MAX_LOOKAHEAD_LINES;
                self.lookahead_scan = true;
                false
            }
        };
        self.lookahead_scratch = candidates;
        would
    }

    /// Classifies what the core would do over the next cycles, for the
    /// idle-skip scheduler.  Must be called right after [`Core::cycle`] for
    /// the same cycle number and only when that cycle committed nothing.
    ///
    /// The contract: while the returned state holds (until the `Until`
    /// cycle, or until a delivery/unblock for `Waiting`), ticking the core
    /// would commit nothing, issue no requests, emit no events and keep the
    /// same stall classification — except for the commit-credit refill and
    /// failed-allocation statistics, both reproduced exactly by
    /// [`Core::apply_parked_cycles`].
    pub fn park_state(&mut self, now: u64) -> Park {
        match self.state {
            CoreState::Finished | CoreState::Blocked => return Park::Waiting,
            CoreState::Running | CoreState::Draining => {}
        }
        if self.iq_occupancy > 0 {
            return Park::Active;
        }
        let gen_ready = self.state == CoreState::Running && !self.ftq.is_full();
        if gen_ready && now + 1 >= self.resteer_until {
            return Park::Active;
        }
        match self.head_fetch {
            HeadFetch::Ready { .. } => Park::Active,
            HeadFetch::Idle => {
                if !self.ftq.is_empty() {
                    Park::Active
                } else if gen_ready {
                    Park::Until(self.resteer_until)
                } else if now < self.resteer_until {
                    // The stall classification flips from mispredict
                    // recovery to sync when the penalty elapses; wake there
                    // so the scheduler re-freezes the attribution.
                    Park::Until(self.resteer_until)
                } else {
                    Park::Waiting
                }
            }
            HeadFetch::WaitFill(_) | HeadFetch::WaitAlloc(_) => {
                if self.lookahead_would_issue() {
                    Park::Active
                } else if gen_ready {
                    Park::Until(self.resteer_until)
                } else {
                    Park::Waiting
                }
            }
        }
    }

    /// Replays `span` parked cycles' worth of internal bookkeeping in O(1)
    /// per effect: the commit-credit refill (which saturates at the commit
    /// width) and, when the head block is waiting for a buffer, the failed
    /// allocation retry each skipped cycle would have recorded.
    pub fn apply_parked_cycles(&mut self, span: u64) {
        let width = self.config.commit_width as f64;
        for _ in 0..span {
            let next = (self.commit_credit + self.commit_rate).min(width);
            if next == self.commit_credit {
                break;
            }
            self.commit_credit = next;
        }
        if matches!(self.head_fetch, HeadFetch::WaitAlloc(_)) {
            self.line_buffers.note_allocation_stalls(span);
        }
    }

    /// Moves instructions of the head fetch block that live in `line` into
    /// the instruction queue, limited by the fetch width and queue space.
    fn deliver_from_line(&mut self, line: u64, _now: u64) {
        let line_size = self.config.frontend.line_size;
        let fetch_width = self.config.frontend.fetch_width as usize;
        let space = self.config.frontend.instr_queue_capacity - self.iq_occupancy;
        if space == 0 {
            return;
        }
        let Some(head) = self.ftq.head_mut() else {
            return;
        };

        let avg_size = (head.len_bytes / head.num_instrs.max(1)).max(1) as u64;
        let bytes_left_in_line = (line + line_size).saturating_sub(head.start);
        let instrs_in_line = (bytes_left_in_line / avg_size).max(1) as usize;
        let take = fetch_width
            .min(space)
            .min(instrs_in_line)
            .min(head.num_instrs as usize);

        head.num_instrs -= take as u32;
        let bytes = (take as u64 * avg_size).min(head.len_bytes as u64) as u32;
        head.len_bytes -= bytes;
        head.start += bytes as u64;
        self.iq_occupancy += take;

        let block_done = head.num_instrs == 0;
        let crossed_line = head.start >= line + line_size;
        if block_done {
            self.ftq.pop();
            self.head_fetch = HeadFetch::Idle;
        } else if crossed_line {
            self.head_fetch = HeadFetch::Idle;
        }
        // Consuming head bytes can only shrink the lookahead candidate set —
        // unless the memoised scan was truncated at the line cap, in which
        // case the window slides over unexamined lines and must be
        // rescanned.  The candidate set is line-granular, so it only changes
        // when the head leaves its current line or the block is popped.
        if (block_done || crossed_line) && self.lookahead_capped {
            self.lookahead_idle = false;
            self.lookahead_capped = false;
        }
        if block_done || crossed_line {
            // The candidate list shifts, so the non-miss prefix is no longer
            // aligned with it.
            self.lookahead_floor = 0;
        }
    }

    /// Assembles one fetch block from the trace and pushes it into the FTQ.
    fn generate_fetch_block(&mut self, now: u64) {
        let line_size = self.config.frontend.line_size;
        let max_bytes = self.config.frontend.max_fetch_block_bytes;

        let mut start: Option<u64> = None;
        let mut next_addr: u64 = 0;
        let mut len_bytes: u32 = 0;
        let mut num_instrs: u32 = 0;
        let mut mispredicted = false;

        loop {
            let rec = match self.pushback.take() {
                Some(r) => Some(r),
                None => self.next_trace_record(),
            };
            let Some(rec) = rec else {
                self.trace_done = true;
                self.state = CoreState::Draining;
                break;
            };
            match rec {
                TraceRecord::SetIpc { ipc } => {
                    // Commit-rate changes take effect immediately; they sit
                    // at region boundaries in the traces.
                    self.commit_rate = ipc;
                    if start.is_some() {
                        break;
                    }
                    continue;
                }
                TraceRecord::Sync(ev) => {
                    self.pending_sync = Some(ev);
                    self.state = CoreState::Draining;
                    break;
                }
                TraceRecord::Instr { addr, len } => {
                    let a = addr.raw();
                    if let Some(_s) = start {
                        if a != next_addr {
                            // Discontinuity: close the block, keep the record.
                            self.pushback = Some(rec);
                            break;
                        }
                    } else {
                        start = Some(a);
                    }
                    len_bytes += len as u32;
                    num_instrs += 1;
                    next_addr = a + len as u64;
                    if len_bytes >= max_bytes {
                        break;
                    }
                }
                TraceRecord::Branch { addr, len, info } => {
                    let a = addr.raw();
                    if let Some(_s) = start {
                        if a != next_addr {
                            self.pushback = Some(rec);
                            break;
                        }
                    } else {
                        start = Some(a);
                    }
                    len_bytes += len as u32;
                    num_instrs += 1;
                    next_addr = a + len as u64;

                    let resteer = self.predictor.predict_and_train(
                        a,
                        info.taken,
                        info.target.raw(),
                        info.indirect,
                    );
                    if resteer {
                        mispredicted = true;
                        break;
                    }
                    if info.taken || len_bytes >= max_bytes {
                        break;
                    }
                }
            }
        }

        if let Some(s) = start {
            debug_assert!(num_instrs > 0);
            self.ftq.push(FtqEntry {
                start: s,
                len_bytes,
                num_instrs,
                ends_in_mispredict: mispredicted,
            });
            self.fetch_blocks += 1;
            self.note_ftq_push(s, s + len_bytes as u64, num_instrs);
            let _ = line_size; // line mapping handled at fetch time
        }
        if mispredicted {
            self.resteer_until = now + self.config.frontend.mispredict_penalty;
        }
    }

    /// Pulls the next record through the batch buffer.
    fn next_trace_record(&mut self) -> Option<TraceRecord> {
        const TRACE_BATCH: usize = 64;
        if self.trace_pos == self.trace_buf.len() {
            self.trace_buf.clear();
            self.trace_pos = 0;
            acmp_obs::count_trace_refill();
            if self.trace.next_records(&mut self.trace_buf, TRACE_BATCH) == 0 {
                return None;
            }
        }
        let r = self.trace_buf[self.trace_pos];
        self.trace_pos += 1;
        Some(r)
    }

    fn is_drained(&self) -> bool {
        self.iq_occupancy == 0
            && self.ftq.is_empty()
            && matches!(self.head_fetch, HeadFetch::Idle)
            && self.line_buffers.pending_count() == 0
    }

    fn classify_stall(&self, now: u64) -> StallReason {
        match self.state {
            CoreState::Blocked => StallReason::SyncBlocked,
            CoreState::Draining if self.is_drained() => StallReason::SyncBlocked,
            _ => match self.head_fetch {
                HeadFetch::WaitFill(line) | HeadFetch::WaitAlloc(line) => {
                    StallReason::WaitingForLine(line)
                }
                _ if now < self.resteer_until => StallReason::MispredictRecovery,
                _ => {
                    if self.state == CoreState::Draining || self.state == CoreState::Blocked {
                        StallReason::SyncBlocked
                    } else {
                        StallReason::Other
                    }
                }
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cpi::StallKind;
    use sim_trace::TraceBuilder;

    /// Runs a core against a "perfect" memory that answers every fetch
    /// request `latency` cycles later.  Returns (cycles, core).
    fn run_with_fixed_latency(
        config: CoreConfig,
        trace: sim_trace::ThreadTrace,
        latency: u64,
        max_cycles: u64,
    ) -> (u64, Core) {
        let mut core = Core::new(0, config, Box::new(trace.into_source()));
        let mut in_flight: Vec<(u64, u64)> = Vec::new(); // (ready_cycle, line)
        let mut cycle = 0;
        while !core.is_finished() && cycle < max_cycles {
            // Deliver lines that are ready.
            let (ready, rest): (Vec<_>, Vec<_>) = in_flight.iter().partition(|(c, _)| *c <= cycle);
            in_flight = rest;
            for (_, line) in ready {
                core.deliver_line(line, cycle);
            }
            let out = core.cycle(cycle);
            for line in &out.fetch_requests {
                in_flight.push((cycle + latency, *line));
            }
            if let Some(reason) = out.stall {
                let kind = match reason {
                    StallReason::WaitingForLine(_) => StallKind::IcacheLatency,
                    StallReason::MispredictRecovery => StallKind::BranchMiss,
                    StallReason::SyncBlocked => StallKind::Sync,
                    StallReason::Other => StallKind::Other,
                };
                core.cpi_mut().record_stall(kind);
            }
            // A lone core: immediately release any sync event it reports.
            if out.sync_event.is_some() {
                core.unblock();
            }
            cycle += 1;
        }
        (cycle, core)
    }

    fn loop_trace(iters: u32, body_instrs: u32, ipc: f64) -> sim_trace::ThreadTrace {
        let mut b = TraceBuilder::new(0);
        b.set_ipc(ipc);
        for _ in 0..iters {
            b.basic_block(0x1000, body_instrs, 0x1000, true);
        }
        b.finish()
    }

    #[test]
    fn executes_all_instructions_of_a_loop() {
        let trace = loop_trace(200, 16, 1.0);
        let expected = trace.num_instructions();
        let (cycles, core) = run_with_fixed_latency(CoreConfig::worker(), trace, 2, 100_000);
        assert!(
            core.is_finished(),
            "core should finish within the cycle budget"
        );
        assert_eq!(core.instructions(), expected);
        assert!(
            cycles >= expected,
            "IPC 1.0 cannot exceed 1 instruction per cycle"
        );
    }

    #[test]
    fn ipc_close_to_commit_rate_when_frontend_keeps_up() {
        // A small hot loop entirely captured by the line buffers: the only
        // limit should be the back-end commit rate.
        let trace = loop_trace(2000, 16, 1.0);
        let expected = trace.num_instructions();
        let (cycles, core) = run_with_fixed_latency(CoreConfig::worker(), trace, 2, 200_000);
        assert!(core.is_finished());
        let ipc = expected as f64 / cycles as f64;
        assert!(
            ipc > 0.85,
            "a cached loop at commit rate 1.0 should achieve IPC near 1.0, got {ipc:.3}"
        );
    }

    #[test]
    fn higher_commit_rate_finishes_faster() {
        let t1 = loop_trace(1000, 16, 0.5);
        let t2 = loop_trace(1000, 16, 2.0);
        let (slow, _) = run_with_fixed_latency(CoreConfig::worker(), t1, 2, 400_000);
        let (fast, _) = run_with_fixed_latency(CoreConfig::worker(), t2, 2, 400_000);
        assert!(
            fast * 2 < slow,
            "IPC 2.0 should be at least twice as fast as IPC 0.5 (fast={fast}, slow={slow})"
        );
    }

    #[test]
    fn long_memory_latency_creates_icache_stalls() {
        // A loop much larger than the line buffers forces repeated I-cache
        // requests; with a big latency the core must accumulate stalls.
        let mut b = TraceBuilder::new(0);
        b.set_ipc(2.0);
        for _ in 0..50 {
            // 1024-instruction loop body = 4 KB = 64 lines >> 4 line buffers.
            b.basic_block(0x1_0000, 1024, 0x1_0000, true);
        }
        let trace = b.finish();
        let (_c_fast, core_fast) =
            run_with_fixed_latency(CoreConfig::worker(), trace.clone(), 1, 1_000_000);
        let (_c_slow, core_slow) =
            run_with_fixed_latency(CoreConfig::worker(), trace, 20, 1_000_000);
        assert!(core_fast.is_finished() && core_slow.is_finished());
        assert!(
            core_slow.cpi().icache_latency > core_fast.cpi().icache_latency,
            "longer fill latency must show up as I-cache stall cycles"
        );
        assert!(core_slow.cpi().cpi() > core_fast.cpi().cpi());
    }

    #[test]
    fn small_loop_has_low_icache_access_ratio() {
        // 16 instructions * 4 B = 64 B = 1 line: after the first iteration
        // everything streams from the line buffers.
        let trace = loop_trace(500, 16, 1.0);
        let (_cycles, core) = run_with_fixed_latency(CoreConfig::worker(), trace, 2, 200_000);
        let ratio = core.line_buffer_stats().access_ratio();
        assert!(
            ratio < 0.05,
            "a one-line loop should almost never access the I-cache, ratio={ratio:.3}"
        );
    }

    #[test]
    fn large_loop_has_high_icache_access_ratio() {
        let mut b = TraceBuilder::new(0);
        b.set_ipc(1.0);
        for _ in 0..50 {
            // 2048 instructions = 8 KB = 128 lines >> 4 line buffers.
            b.basic_block(0x2_0000, 2048, 0x2_0000, true);
        }
        let (_cycles, core) =
            run_with_fixed_latency(CoreConfig::worker(), b.finish(), 1, 2_000_000);
        let ratio = core.line_buffer_stats().access_ratio();
        assert!(
            ratio > 0.8,
            "a loop far larger than the line buffers must fetch almost every line from the I-cache, ratio={ratio:.3}"
        );
    }

    #[test]
    fn more_line_buffers_reduce_access_ratio_for_medium_loops() {
        // A 6-line loop body: fits in 8 buffers, thrashes 2 buffers.
        let mk = || {
            let mut b = TraceBuilder::new(0);
            b.set_ipc(1.0);
            for _ in 0..300 {
                b.basic_block(0x3_0000, 96, 0x3_0000, true); // 96*4B = 384B = 6 lines
            }
            b.finish()
        };
        let (_c, few) = run_with_fixed_latency(
            CoreConfig::worker().with_line_buffers(2),
            mk(),
            2,
            2_000_000,
        );
        let (_c, many) = run_with_fixed_latency(
            CoreConfig::worker().with_line_buffers(8),
            mk(),
            2,
            2_000_000,
        );
        let r_few = few.line_buffer_stats().access_ratio();
        let r_many = many.line_buffer_stats().access_ratio();
        assert!(
            r_many < r_few * 0.5,
            "8 line buffers should cut the access ratio for a 6-line loop: few={r_few:.3}, many={r_many:.3}"
        );
    }

    #[test]
    fn sync_event_is_reported_and_blocks_until_released() {
        let mut b = TraceBuilder::new(0);
        b.set_ipc(1.0);
        b.basic_block(0x1000, 8, 0x2000, true);
        b.sync(SyncEvent::Barrier { id: 1 });
        b.basic_block(0x2000, 8, 0x3000, true);
        let mut core = Core::new(3, CoreConfig::worker(), Box::new(b.finish().into_source()));

        let mut saw_event = false;
        let mut pending: Vec<(u64, u64)> = Vec::new();
        for cycle in 0..200 {
            let (ready, rest): (Vec<_>, Vec<_>) = pending.iter().partition(|(c, _)| *c <= cycle);
            pending = rest;
            for (_, l) in ready {
                core.deliver_line(l, cycle);
            }
            let out = core.cycle(cycle);
            for l in &out.fetch_requests {
                pending.push((cycle + 2, *l));
            }
            if let Some(ev) = out.sync_event {
                assert_eq!(ev, SyncEvent::Barrier { id: 1 });
                saw_event = true;
                assert_eq!(core.state(), CoreState::Blocked);
                // Hold the core blocked for a while before releasing it.
                assert_eq!(core.cycle(cycle + 1).committed, 0);
                core.unblock();
            }
        }
        assert!(saw_event, "the barrier must be reported");
        assert!(
            core.is_finished(),
            "the core must finish after being released"
        );
        assert_eq!(core.instructions(), 16);
    }

    #[test]
    fn mispredictions_cause_branch_stalls() {
        // Branches with pseudo-random outcomes are unpredictable; the
        // misprediction penalty must appear in the CPI stack.
        let mut b = TraceBuilder::new(0);
        b.set_ipc(2.0);
        let mut x: u64 = 99;
        let mut addr = 0x4_0000u64;
        for _ in 0..2000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            let taken = (x >> 40) & 1 == 1;
            // Short basic blocks of 4 instructions each.
            for i in 0..3 {
                b.instr(addr + i * 4, 4);
            }
            let target = if taken { addr + 64 } else { addr + 16 };
            b.branch(addr + 12, 4, target, taken);
            addr = target;
        }
        let (_cycles, core) =
            run_with_fixed_latency(CoreConfig::worker(), b.finish(), 1, 2_000_000);
        assert!(core.is_finished());
        assert!(
            core.cpi().branch_miss > 500,
            "random branches must cost resteer cycles, got {}",
            core.cpi().branch_miss
        );
        assert!(core.predictor_stats().mispredicts() > 100);
    }

    #[test]
    fn commit_rate_is_capped_by_commit_width() {
        let mut cfg = CoreConfig::worker();
        cfg.default_ipc = 8.0; // higher than the commit width of 2
        let trace = loop_trace(500, 16, 8.0);
        let expected = trace.num_instructions();
        let (cycles, core) = run_with_fixed_latency(cfg, trace, 1, 100_000);
        assert!(core.is_finished());
        assert!(
            cycles as f64 >= expected as f64 / 2.0,
            "IPC cannot exceed the commit width of 2"
        );
    }

    #[test]
    fn finished_core_does_nothing() {
        let trace = loop_trace(2, 4, 1.0);
        let (_c, mut core) = run_with_fixed_latency(CoreConfig::worker(), trace, 1, 10_000);
        assert!(core.is_finished());
        let out = core.cycle(999_999);
        assert_eq!(out.committed, 0);
        assert!(out.fetch_requests.is_empty());
        assert!(out.stall.is_none());
    }

    #[test]
    #[should_panic(expected = "unblocked while")]
    fn unblocking_a_running_core_panics() {
        let trace = loop_trace(2, 4, 1.0);
        let mut core = Core::new(0, CoreConfig::worker(), Box::new(trace.into_source()));
        core.unblock();
    }

    #[test]
    fn fetch_blocks_are_counted() {
        let trace = loop_trace(10, 16, 1.0);
        let (_c, core) = run_with_fixed_latency(CoreConfig::worker(), trace, 1, 10_000);
        assert_eq!(
            core.fetch_blocks(),
            10,
            "one fetch block per loop iteration"
        );
    }
}
