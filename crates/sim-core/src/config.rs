//! Core configuration.

use serde::{Deserialize, Serialize};
use sim_frontend::FrontEndConfig;

/// Configuration of one simulated core (front-end plus back-end commit).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CoreConfig {
    /// Front-end parameters (line buffers, FTQ, predictor, widths).
    pub frontend: FrontEndConfig,
    /// Commit rate used until the trace's first `SetIpc` record, in
    /// instructions per cycle.
    pub default_ipc: f64,
    /// Maximum instructions the back-end can commit in one cycle regardless
    /// of the commit rate (the structural commit width).
    pub commit_width: u32,
}

impl CoreConfig {
    /// A lean worker core: Cortex-A9-like front-end and a commit width of 2.
    pub fn worker() -> Self {
        CoreConfig {
            frontend: FrontEndConfig::worker(),
            default_ipc: 0.8,
            commit_width: 2,
        }
    }

    /// The big master core: i7-like front-end and a commit width of 4.
    pub fn master() -> Self {
        CoreConfig {
            frontend: FrontEndConfig::master(),
            default_ipc: 1.6,
            commit_width: 4,
        }
    }

    /// Returns a copy with a different number of line buffers.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn with_line_buffers(mut self, n: usize) -> Self {
        self.frontend = self.frontend.with_line_buffers(n);
        self
    }

    /// Validates the configuration.
    ///
    /// # Panics
    ///
    /// Panics if the front-end is invalid, the default IPC is not positive,
    /// or the commit width is zero.
    pub fn validate(&self) {
        self.frontend.validate();
        assert!(
            self.default_ipc.is_finite() && self.default_ipc > 0.0,
            "default IPC must be positive"
        );
        assert!(self.commit_width > 0, "commit width must be positive");
    }
}

impl Default for CoreConfig {
    fn default() -> Self {
        CoreConfig::worker()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn named_configs_validate() {
        CoreConfig::worker().validate();
        CoreConfig::master().validate();
    }

    #[test]
    fn master_is_beefier() {
        assert!(CoreConfig::master().default_ipc > CoreConfig::worker().default_ipc);
        assert!(CoreConfig::master().commit_width > CoreConfig::worker().commit_width);
    }

    #[test]
    fn with_line_buffers_propagates() {
        assert_eq!(
            CoreConfig::worker()
                .with_line_buffers(8)
                .frontend
                .line_buffers,
            8
        );
    }

    #[test]
    #[should_panic(expected = "commit width")]
    fn zero_commit_width_rejected() {
        let mut c = CoreConfig::worker();
        c.commit_width = 0;
        c.validate();
    }

    #[test]
    fn default_is_worker() {
        assert_eq!(CoreConfig::default(), CoreConfig::worker());
    }
}
