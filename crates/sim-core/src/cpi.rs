//! CPI-stack accounting.
//!
//! The paper's Figure 8 breaks each benchmark's cycles per instruction into
//! a *baseline CPI* plus the extra stall cycles introduced by sharing the
//! I-cache: I-bus latency, I-bus congestion, I-cache latency, branch misses
//! and a remainder.  [`CpiStack`] accumulates those buckets per core; the
//! experiment layer normalises and compares them across configurations.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The reason a cycle did not commit any instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum StallKind {
    /// Waiting for an I-cache access (hit latency or a miss being filled
    /// from L2/DRAM).
    IcacheLatency,
    /// Waiting for a granted bus transfer to complete (the fixed bus latency
    /// plus the data beats).
    IBusLatency,
    /// Waiting for the shared bus to be granted (another core is using it).
    IBusCongestion,
    /// Recovering from a branch misprediction (front-end resteer).
    BranchMiss,
    /// Blocked on a synchronisation event (barrier, critical section, or
    /// waiting for a parallel region to start).
    Sync,
    /// Any other empty-queue cycle (e.g. predictor throughput, drain at the
    /// end of the trace).
    Other,
}

impl StallKind {
    /// All stall kinds, in the order used by reports.
    pub const ALL: [StallKind; 6] = [
        StallKind::IcacheLatency,
        StallKind::IBusLatency,
        StallKind::IBusCongestion,
        StallKind::BranchMiss,
        StallKind::Sync,
        StallKind::Other,
    ];
}

impl fmt::Display for StallKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            StallKind::IcacheLatency => "i-cache latency",
            StallKind::IBusLatency => "i-bus latency",
            StallKind::IBusCongestion => "i-bus congestion",
            StallKind::BranchMiss => "branch miss",
            StallKind::Sync => "sync",
            StallKind::Other => "rest",
        };
        f.write_str(s)
    }
}

/// Per-core cycle accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct CpiStack {
    /// Instructions committed.
    pub instructions: u64,
    /// Cycles in which at least one instruction committed.
    pub commit_cycles: u64,
    /// Stall cycles waiting on the I-cache (access latency or miss fill).
    pub icache_latency: u64,
    /// Stall cycles waiting for a granted bus transfer.
    pub ibus_latency: u64,
    /// Stall cycles waiting for the bus grant (contention).
    pub ibus_congestion: u64,
    /// Stall cycles recovering from branch mispredictions.
    pub branch_miss: u64,
    /// Cycles blocked on synchronisation.
    pub sync: u64,
    /// Remaining empty-queue cycles.
    pub other: u64,
}

impl CpiStack {
    /// Creates an empty stack.
    pub fn new() -> Self {
        CpiStack::default()
    }

    /// Records a committing cycle.
    pub fn record_commit_cycle(&mut self, committed: u32) {
        self.commit_cycles += 1;
        self.instructions += committed as u64;
    }

    /// Records a stall cycle of the given kind.
    pub fn record_stall(&mut self, kind: StallKind) {
        self.record_stall_n(kind, 1);
    }

    /// Records `n` stall cycles of the same kind at once.  The idle-skip
    /// scheduler uses this to account a whole parked span in one call; the
    /// result is identical to calling [`CpiStack::record_stall`] `n` times.
    pub fn record_stall_n(&mut self, kind: StallKind, n: u64) {
        match kind {
            StallKind::IcacheLatency => self.icache_latency += n,
            StallKind::IBusLatency => self.ibus_latency += n,
            StallKind::IBusCongestion => self.ibus_congestion += n,
            StallKind::BranchMiss => self.branch_miss += n,
            StallKind::Sync => self.sync += n,
            StallKind::Other => self.other += n,
        }
    }

    /// Returns the number of stall cycles recorded for `kind`.
    pub fn stall_cycles(&self, kind: StallKind) -> u64 {
        match kind {
            StallKind::IcacheLatency => self.icache_latency,
            StallKind::IBusLatency => self.ibus_latency,
            StallKind::IBusCongestion => self.ibus_congestion,
            StallKind::BranchMiss => self.branch_miss,
            StallKind::Sync => self.sync,
            StallKind::Other => self.other,
        }
    }

    /// Total cycles accounted (commit + all stalls).
    pub fn total_cycles(&self) -> u64 {
        self.commit_cycles
            + StallKind::ALL
                .iter()
                .map(|k| self.stall_cycles(*k))
                .sum::<u64>()
    }

    /// Cycles per committed instruction; 0 when nothing committed.
    pub fn cpi(&self) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            self.total_cycles() as f64 / self.instructions as f64
        }
    }

    /// Cycles per instruction excluding synchronisation wait (the metric
    /// used when comparing front-end designs, since sync time depends on the
    /// other threads).
    pub fn cpi_excluding_sync(&self) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            (self.total_cycles() - self.sync) as f64 / self.instructions as f64
        }
    }

    /// Merges another stack into this one.
    pub fn merge(&mut self, other: &CpiStack) {
        self.instructions += other.instructions;
        self.commit_cycles += other.commit_cycles;
        self.icache_latency += other.icache_latency;
        self.ibus_latency += other.ibus_latency;
        self.ibus_congestion += other.ibus_congestion;
        self.branch_miss += other.branch_miss;
        self.sync += other.sync;
        self.other += other.other;
    }
}

impl std::ops::Add for CpiStack {
    type Output = CpiStack;

    fn add(self, rhs: CpiStack) -> CpiStack {
        let mut out = self;
        out.merge(&rhs);
        out
    }
}

impl std::iter::Sum for CpiStack {
    fn sum<I: Iterator<Item = CpiStack>>(iter: I) -> CpiStack {
        iter.fold(CpiStack::default(), |a, b| a + b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_total() {
        let mut s = CpiStack::new();
        s.record_commit_cycle(2);
        s.record_commit_cycle(1);
        s.record_stall(StallKind::IBusCongestion);
        s.record_stall(StallKind::BranchMiss);
        s.record_stall(StallKind::Sync);
        assert_eq!(s.instructions, 3);
        assert_eq!(s.commit_cycles, 2);
        assert_eq!(s.total_cycles(), 5);
        assert!((s.cpi() - 5.0 / 3.0).abs() < 1e-12);
        assert!((s.cpi_excluding_sync() - 4.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn stall_kinds_round_trip() {
        let mut s = CpiStack::new();
        for (i, k) in StallKind::ALL.iter().enumerate() {
            for _ in 0..=i {
                s.record_stall(*k);
            }
        }
        for (i, k) in StallKind::ALL.iter().enumerate() {
            assert_eq!(s.stall_cycles(*k), (i + 1) as u64);
        }
    }

    #[test]
    fn empty_stack_has_zero_cpi() {
        let s = CpiStack::new();
        assert_eq!(s.cpi(), 0.0);
        assert_eq!(s.cpi_excluding_sync(), 0.0);
        assert_eq!(s.total_cycles(), 0);
    }

    #[test]
    fn merge_and_sum() {
        let mut a = CpiStack::new();
        a.record_commit_cycle(4);
        let mut b = CpiStack::new();
        b.record_stall(StallKind::IcacheLatency);
        let total: CpiStack = vec![a, b].into_iter().sum();
        assert_eq!(total.instructions, 4);
        assert_eq!(total.icache_latency, 1);
        assert_eq!(total.total_cycles(), 2);
    }

    #[test]
    fn display_names_are_paper_terms() {
        assert_eq!(StallKind::IBusCongestion.to_string(), "i-bus congestion");
        assert_eq!(StallKind::Other.to_string(), "rest");
    }
}
