//! ACMP machine configuration (Table I of the paper).

use serde::{Deserialize, Serialize};
use sim_cache::{CacheConfig, L2Config};
use sim_core::CoreConfig;
use sim_interconnect::BusConfig;

/// How the worker I-caches are organised.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SharingMode {
    /// Every core has a private I-cache (the baseline, `cpc = 1`).
    Private,
    /// Groups of `cores_per_cache` worker cores share one I-cache; the
    /// master keeps its private I-cache.
    WorkerShared {
        /// Number of worker cores per shared I-cache (Table I: 2, 4 or 8).
        cores_per_cache: usize,
    },
    /// A single I-cache shared by **all** cores including the master
    /// (Section VI-E).
    AllShared,
}

impl SharingMode {
    /// Returns the `cpc` value used in the paper's figures (1 for private).
    pub fn cores_per_cache(&self) -> usize {
        match self {
            SharingMode::Private => 1,
            SharingMode::WorkerShared { cores_per_cache } => *cores_per_cache,
            SharingMode::AllShared => usize::MAX,
        }
    }
}

/// Number of I-buses between a sharing group and its I-cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BusWidth {
    /// One bus for the whole shared I-cache.
    Single,
    /// One bus per bank (two banks, even/odd line interleaving).
    Double,
}

impl BusWidth {
    /// Number of buses (and cache banks).
    pub fn num_buses(&self) -> usize {
        match self {
            BusWidth::Single => 1,
            BusWidth::Double => 2,
        }
    }
}

/// Full configuration of the simulated ACMP.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AcmpConfig {
    /// Number of lean worker cores (Table I: 8).
    pub num_workers: usize,
    /// Master-core configuration.
    pub master_core: CoreConfig,
    /// Worker-core configuration.
    pub worker_core: CoreConfig,
    /// The master's private I-cache (always 32 KB in the paper).
    pub master_icache: CacheConfig,
    /// The worker I-cache (private per core, or shared per group).
    pub worker_icache: CacheConfig,
    /// How worker I-caches are shared.
    pub sharing: SharingMode,
    /// I-bus parameters (only used when an I-cache is shared).
    pub bus: BusConfig,
    /// Single or double bus.
    pub bus_width: BusWidth,
    /// L2/DRAM path behind each I-cache.
    pub l2: L2Config,
    /// Safety limit on simulated cycles.
    pub max_cycles: u64,
}

impl AcmpConfig {
    /// The paper's baseline: 1 + `num_workers` cores, private 32 KB
    /// I-caches, four line buffers.
    pub fn baseline(num_workers: usize) -> Self {
        AcmpConfig {
            num_workers,
            master_core: CoreConfig::master(),
            worker_core: CoreConfig::worker(),
            master_icache: CacheConfig::icache_32k(),
            worker_icache: CacheConfig::icache_32k(),
            sharing: SharingMode::Private,
            bus: BusConfig::paper_single_bus(),
            bus_width: BusWidth::Single,
            l2: L2Config::default(),
            max_cycles: 500_000_000,
        }
    }

    /// Naive sharing (Section VI-A): a 32 KB I-cache shared by groups of
    /// `cpc` workers over a single bus, four line buffers.
    ///
    /// # Panics
    ///
    /// Panics if `cpc` does not divide the number of workers.
    pub fn worker_shared(num_workers: usize, cpc: usize) -> Self {
        let mut c = Self::baseline(num_workers);
        assert!(
            cpc >= 1 && num_workers.is_multiple_of(cpc),
            "cpc must divide the worker count"
        );
        c.sharing = if cpc == 1 {
            SharingMode::Private
        } else {
            SharingMode::WorkerShared {
                cores_per_cache: cpc,
            }
        };
        c
    }

    /// The paper's preferred design point (Fig. 12, rightmost bars minus the
    /// area-optimal one): all eight workers share a 16 KB I-cache reached
    /// through a double bus, with four line buffers.
    pub fn proposed(num_workers: usize) -> Self {
        let mut c = Self::worker_shared(num_workers, num_workers);
        c.worker_icache = CacheConfig::icache_16k();
        c.bus_width = BusWidth::Double;
        c
    }

    /// The all-shared configuration of Section VI-E: every core, master
    /// included, shares one 32 KB I-cache over a double bus.
    pub fn all_shared(num_workers: usize) -> Self {
        let mut c = Self::baseline(num_workers);
        c.sharing = SharingMode::AllShared;
        c.worker_icache = CacheConfig::icache_32k();
        c.bus_width = BusWidth::Double;
        c
    }

    /// Returns a copy with `n` line buffers on every core.
    pub fn with_line_buffers(mut self, n: usize) -> Self {
        self.master_core = self.master_core.with_line_buffers(n);
        self.worker_core = self.worker_core.with_line_buffers(n);
        self
    }

    /// Returns a copy with the given bus width.
    pub fn with_bus_width(mut self, width: BusWidth) -> Self {
        self.bus_width = width;
        self
    }

    /// Returns a copy with the given worker I-cache size in bytes.
    pub fn with_worker_icache_size(mut self, bytes: u64) -> Self {
        self.worker_icache = self.worker_icache.with_size(bytes);
        self
    }

    /// Total number of cores (master + workers).
    pub fn num_cores(&self) -> usize {
        self.num_workers + 1
    }

    /// Validates the configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is inconsistent (zero workers, a sharing
    /// degree that does not divide the worker count, or invalid sub-configs).
    pub fn validate(&self) {
        assert!(self.num_workers >= 1, "need at least one worker core");
        self.master_core.validate();
        self.worker_core.validate();
        if let SharingMode::WorkerShared { cores_per_cache } = self.sharing {
            assert!(
                cores_per_cache >= 2 && self.num_workers.is_multiple_of(cores_per_cache),
                "cores-per-cache {cores_per_cache} must divide the worker count {}",
                self.num_workers
            );
        }
        assert!(self.max_cycles > 0, "cycle limit must be positive");
    }
}

impl Default for AcmpConfig {
    /// The Table I machine: one master and eight workers with private
    /// I-caches.
    fn default() -> Self {
        AcmpConfig::baseline(8)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn named_configs_validate() {
        AcmpConfig::baseline(8).validate();
        AcmpConfig::worker_shared(8, 2).validate();
        AcmpConfig::worker_shared(8, 4).validate();
        AcmpConfig::worker_shared(8, 8).validate();
        AcmpConfig::proposed(8).validate();
        AcmpConfig::all_shared(8).validate();
    }

    #[test]
    fn proposed_design_is_16k_double_bus() {
        let c = AcmpConfig::proposed(8);
        assert_eq!(c.worker_icache.size_bytes, 16 * 1024);
        assert_eq!(c.bus_width, BusWidth::Double);
        assert_eq!(c.sharing, SharingMode::WorkerShared { cores_per_cache: 8 });
        assert_eq!(c.master_icache.size_bytes, 32 * 1024);
    }

    #[test]
    fn cpc_of_one_is_private() {
        let c = AcmpConfig::worker_shared(8, 1);
        assert_eq!(c.sharing, SharingMode::Private);
        assert_eq!(c.sharing.cores_per_cache(), 1);
    }

    #[test]
    #[should_panic(expected = "must divide")]
    fn cpc_must_divide_worker_count() {
        AcmpConfig::worker_shared(8, 3);
    }

    #[test]
    fn builders_modify_fields() {
        let c = AcmpConfig::baseline(8)
            .with_line_buffers(8)
            .with_bus_width(BusWidth::Double)
            .with_worker_icache_size(16 * 1024);
        assert_eq!(c.worker_core.frontend.line_buffers, 8);
        assert_eq!(c.master_core.frontend.line_buffers, 8);
        assert_eq!(c.bus_width, BusWidth::Double);
        assert_eq!(c.worker_icache.size_bytes, 16 * 1024);
    }

    #[test]
    fn bus_width_bus_count() {
        assert_eq!(BusWidth::Single.num_buses(), 1);
        assert_eq!(BusWidth::Double.num_buses(), 2);
    }

    #[test]
    fn default_is_the_table_one_baseline() {
        let c = AcmpConfig::default();
        assert_eq!(c.num_workers, 8);
        assert_eq!(c.num_cores(), 9);
        assert_eq!(c.sharing, SharingMode::Private);
    }
}
