//! The full-machine cycle loop.

use crate::config::AcmpConfig;
use crate::memory::{build_units, unit_of_core, IcacheUnit, InFlightRequest, RequestPhase};
use crate::runtime::SyncRuntime;
use crate::stats::{CoreReport, SimResult};
use sim_cache::CacheStats;
use sim_core::{Core, CycleOutput, Park, StallKind, StallReason};
use sim_interconnect::BusStats;
use sim_trace::{SharedTraceCursor, ThreadId, TraceSet};
use std::error::Error;
use std::fmt;

/// Errors produced by a simulation run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The cycle limit was reached before every core finished — either the
    /// configuration deadlocked or the limit is too low for the trace size.
    CycleLimitExceeded {
        /// The configured limit.
        limit: u64,
        /// Cores that had not finished.
        unfinished: Vec<usize>,
    },
    /// The trace set does not have one trace per configured core.
    ThreadCountMismatch {
        /// Cores in the machine configuration.
        expected: usize,
        /// Traces provided.
        found: usize,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::CycleLimitExceeded { limit, unfinished } => write!(
                f,
                "cycle limit {limit} exceeded with cores {unfinished:?} unfinished"
            ),
            SimError::ThreadCountMismatch { expected, found } => write!(
                f,
                "machine has {expected} cores but the trace set has {found} threads"
            ),
        }
    }
}

impl Error for SimError {}

/// A core taken off the cycle loop by the idle-skip scheduler.
///
/// The core is only parked when ticking it would change nothing observable
/// (see [`Core::park_state`]) *and* its stall attribution is frozen — which
/// requires that none of its in-flight requests is still waiting for a bus
/// grant, since a grant would move the stall from congestion to latency.
/// The skipped cycles' statistics are replayed in O(1) when it wakes.
#[derive(Debug, Clone, Copy)]
struct ParkedCore {
    /// First cycle that has not been simulated for this core.
    since: u64,
    /// Stall bucket each skipped cycle would have recorded.
    kind: StallKind,
    /// `Some(c)` when the core wakes by itself at cycle `c` (resteer
    /// penalty); `None` when only a delivery or an unblock can wake it.
    wake_at: Option<u64>,
}

/// A fully assembled ACMP ready to simulate one benchmark run.
pub struct Machine {
    config: AcmpConfig,
    cores: Vec<Core>,
    units: Vec<IcacheUnit>,
    /// Unit index serving each core.
    core_unit: Vec<usize>,
    runtime: SyncRuntime,
    in_flight: Vec<InFlightRequest>,
    /// Earliest `ready` among deliverable (granted) in-flight requests;
    /// `u64::MAX` when there is none.  Lets the per-cycle delivery scan be
    /// skipped on the many cycles where nothing can complete.
    ready_min: u64,
    /// Idle-skip scheduler state, one slot per core.
    parked: Vec<Option<ParkedCore>>,
    /// When `false`, every core is ticked every cycle (the reference
    /// schedule).  Results are identical either way; the flag exists so
    /// tests can prove it.
    idle_skip: bool,
    /// Reused per-cycle buffers (hot path: no allocation per cycle).
    cycle_out: CycleOutput,
    delivery_scratch: Vec<(usize, u64)>,
}

impl fmt::Debug for Machine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Machine")
            .field("cores", &self.cores.len())
            .field("units", &self.units.len())
            .field("sharing", &self.config.sharing)
            .finish_non_exhaustive()
    }
}

impl Machine {
    /// Builds the machine described by `config` and loads one trace per
    /// core (thread 0 on the master core).
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid.  A mismatched thread count is
    /// reported by [`Machine::run`] instead so callers can handle it.
    pub fn new(config: AcmpConfig, traces: &TraceSet) -> Self {
        config.validate();
        let cores: Vec<Core> = traces
            .iter()
            .enumerate()
            .map(|(i, t)| {
                let core_cfg = if i == 0 {
                    config.master_core
                } else {
                    config.worker_core
                };
                Core::new(i, core_cfg, Box::new(t.clone().into_source()))
            })
            .collect();
        Machine::from_cores(config, cores)
    }

    /// Builds the machine with every core reading its thread's records
    /// through a shared, reference-counted trace set.
    ///
    /// Identical in behaviour to [`Machine::new`], but the per-thread record
    /// vectors are not cloned — a sweep running many design points against
    /// the same traces pays one `Arc` bump per core instead of copying each
    /// trace per machine.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid.
    pub fn with_shared_traces(config: AcmpConfig, traces: std::sync::Arc<TraceSet>) -> Self {
        config.validate();
        let cores: Vec<Core> = (0..traces.num_threads())
            .map(|i| {
                let core_cfg = if i == 0 {
                    config.master_core
                } else {
                    config.worker_core
                };
                let cursor = SharedTraceCursor::new(traces.clone(), ThreadId(i));
                Core::new(i, core_cfg, Box::new(cursor))
            })
            .collect();
        Machine::from_cores(config, cores)
    }

    fn from_cores(config: AcmpConfig, cores: Vec<Core>) -> Self {
        let units = build_units(&config);
        let core_unit = unit_of_core(&units, config.num_cores());
        let runtime = SyncRuntime::new(config.num_cores());
        let num_cores = cores.len();
        Machine {
            config,
            cores,
            units,
            core_unit,
            runtime,
            in_flight: Vec::new(),
            ready_min: u64::MAX,
            parked: vec![None; num_cores],
            idle_skip: true,
            cycle_out: CycleOutput::default(),
            delivery_scratch: Vec::new(),
        }
    }

    /// Enables or disables the idle-skip scheduler (enabled by default).
    ///
    /// Disabling it makes the machine tick every core every cycle, the
    /// straightforward reference schedule.  Simulation results are bit-for-
    /// bit identical in both modes; the switch exists so tests can assert
    /// that equivalence.
    pub fn set_idle_skip(&mut self, enabled: bool) {
        self.idle_skip = enabled;
    }

    /// The configuration being simulated.
    pub fn config(&self) -> &AcmpConfig {
        &self.config
    }

    /// Runs the simulation to completion.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::ThreadCountMismatch`] if the number of loaded
    /// traces differs from the configured core count, or
    /// [`SimError::CycleLimitExceeded`] if the machine does not finish
    /// within `config.max_cycles`.
    pub fn run(mut self) -> Result<SimResult, SimError> {
        if self.cores.len() != self.config.num_cores() {
            return Err(SimError::ThreadCountMismatch {
                expected: self.config.num_cores(),
                found: self.cores.len(),
            });
        }

        let mut cycle: u64 = 0;
        let mut serial_cycles: u64 = 0;
        let mut parallel_cycles: u64 = 0;

        while !self.all_finished() {
            if cycle >= self.config.max_cycles {
                let unfinished = self
                    .cores
                    .iter()
                    .filter(|c| !c.is_finished())
                    .map(|c| c.id())
                    .collect();
                return Err(SimError::CycleLimitExceeded {
                    limit: self.config.max_cycles,
                    unfinished,
                });
            }

            self.step(cycle);

            if self.runtime.in_parallel_region() {
                parallel_cycles += 1;
            } else {
                serial_cycles += 1;
            }
            cycle += 1;

            // Global time jump: when every unfinished core is parked no
            // grants, deliveries, events or stat changes (beyond the frozen
            // per-cycle attributions replayed at unpark) can occur until the
            // earliest delivery or self-wake, so skip straight there.
            if self.idle_skip {
                if let Some(wake) = self.next_global_wake(cycle) {
                    debug_assert!(wake > cycle);
                    let span = wake - cycle;
                    // The runtime cannot change while no core runs, so the
                    // serial/parallel classification is constant over the
                    // span.
                    if self.runtime.in_parallel_region() {
                        parallel_cycles += span;
                    } else {
                        serial_cycles += span;
                    }
                    // Catch up fill retirement for the skipped cycles: a
                    // submission at `wake` consults `pending_fills` before
                    // the units tick, so fills that would have retired
                    // earlier must be gone by then.
                    for unit in &mut self.units {
                        unit.retire_fills_through(wake - 1);
                    }
                    cycle = wake;
                }
            }
        }

        Ok(self.collect(cycle, serial_cycles, parallel_cycles))
    }

    /// Returns the cycle to jump to when every unfinished core is parked,
    /// or `None` when the machine must keep ticking cycle by cycle.
    fn next_global_wake(&self, cycle: u64) -> Option<u64> {
        let mut any_unfinished = false;
        for (i, c) in self.cores.iter().enumerate() {
            if c.is_finished() {
                continue;
            }
            any_unfinished = true;
            // An unfinished core that is not parked blocks the jump.
            self.parked[i]?;
        }
        if !any_unfinished {
            return None;
        }
        // A request still waiting for its bus grant could be granted any
        // cycle (and change stall attribution); parked cores never hold one
        // (see `can_park`), but be defensive.
        if self
            .in_flight
            .iter()
            .any(|r| r.phase == RequestPhase::WaitingGrant)
        {
            return None;
        }
        let mut wake: Option<u64> = None;
        let mut consider = |c: u64| {
            wake = Some(match wake {
                Some(w) => w.min(c),
                None => c,
            });
        };
        for req in &self.in_flight {
            consider(req.ready);
        }
        for p in self.parked.iter().flatten() {
            if let Some(w) = p.wake_at {
                consider(w);
            }
        }
        // No wake source at all: the machine is deadlocked; jump to the
        // cycle limit so `run` reports the same error as the reference
        // schedule, without spinning until then.
        let wake = wake
            .unwrap_or(self.config.max_cycles)
            .min(self.config.max_cycles)
            .max(cycle);
        (wake > cycle).then_some(wake)
    }

    /// Wakes a parked core, replaying the statistics of the cycles it
    /// skipped.  `resume` is the first cycle the core will actually execute
    /// again; the parked span therefore covers `since .. resume`.
    fn unpark(&mut self, core: usize, resume: u64) {
        if let Some(p) = self.parked[core].take() {
            let span = resume.saturating_sub(p.since);
            if span > 0 {
                self.cores[core].cpi_mut().record_stall_n(p.kind, span);
                self.cores[core].apply_parked_cycles(span);
            }
        }
    }

    /// Releases `core` from a synchronisation wait during `current`'s slot
    /// of `cycle`.  A core earlier in the order already had its slot this
    /// cycle (its last blocked cycle is `cycle` itself), while a later core
    /// will still run this cycle as released — exactly as in the reference
    /// schedule, where the unblock lands between their slots.
    fn release(&mut self, core: usize, current: usize, cycle: u64) {
        let resume = if core < current { cycle + 1 } else { cycle };
        self.unpark(core, resume);
        self.cores[core].unblock();
    }

    /// Whether core `i`'s stall attribution is frozen (no request of its
    /// still waiting for a bus grant), making it safe to park.
    fn can_park(&self, core: usize) -> bool {
        !self
            .in_flight
            .iter()
            .any(|r| r.core == core && r.phase == RequestPhase::WaitingGrant)
    }

    fn all_finished(&self) -> bool {
        self.cores.iter().all(|c| c.is_finished())
    }

    /// Simulates one machine cycle.
    fn step(&mut self, cycle: u64) {
        // 1. Deliver lines whose requests completed.  A delivery wakes the
        //    receiving core for this very cycle (its parked span, if any,
        //    ends at `cycle - 1`).  When no granted request can be ready yet
        //    the scan would remove nothing, so it is skipped outright.
        if self.ready_min <= cycle {
            let mut delivered = std::mem::take(&mut self.delivery_scratch);
            delivered.clear();
            let mut remaining_min = u64::MAX;
            self.in_flight.retain(|req| {
                if req.phase == RequestPhase::WaitingGrant {
                    true
                } else if req.ready <= cycle {
                    delivered.push((req.core, req.line));
                    false
                } else {
                    remaining_min = remaining_min.min(req.ready);
                    true
                }
            });
            self.ready_min = remaining_min;
            for (core, line) in delivered.drain(..) {
                self.unpark(core, cycle);
                self.cores[core].deliver_line(line, cycle);
            }
            self.delivery_scratch = delivered;
        }

        // 2. Advance every core by one cycle.
        for i in 0..self.cores.len() {
            if self.cores[i].is_finished() {
                continue;
            }
            match self.parked[i] {
                Some(ParkedCore {
                    wake_at: Some(w), ..
                }) if w <= cycle => self.unpark(i, cycle),
                Some(_) => continue,
                None => {}
            }
            // `cycle_out` and `cores` are disjoint fields, so the output
            // buffer can be lent directly without a take/put round-trip.
            let out = &mut self.cycle_out;
            self.cores[i].cycle_into(cycle, out);

            for line in &self.cycle_out.fetch_requests {
                let unit = self.core_unit[i];
                let req = self.units[unit].submit(cycle, i, *line);
                if req.phase != RequestPhase::WaitingGrant {
                    self.ready_min = self.ready_min.min(req.ready);
                }
                self.in_flight.push(req);
            }
            let sync_event = self.cycle_out.sync_event;
            let finished_now = self.cycle_out.finished_now;
            let stall = self.cycle_out.stall;

            if let Some(event) = sync_event {
                let decision = self.runtime.handle_event(i, event);
                for core in decision.release {
                    self.release(core, i, cycle);
                }
            }
            if finished_now {
                let decision = self.runtime.core_finished(i);
                for core in decision.release {
                    self.release(core, i, cycle);
                }
            }

            if let Some(reason) = stall {
                let kind = self.attribute_stall(i, reason);
                self.cores[i].cpi_mut().record_stall(kind);

                // The core committed nothing; ask it whether ticking it
                // again before the next external event could matter.
                if self.idle_skip {
                    let park = match self.cores[i].park_state(cycle) {
                        Park::Active => None,
                        // A wake one cycle ahead is just "active".
                        Park::Until(w) if w <= cycle + 1 => None,
                        Park::Until(w) => Some(Some(w)),
                        Park::Waiting => Some(None),
                    };
                    if let Some(wake_at) = park {
                        if self.can_park(i) {
                            self.parked[i] = Some(ParkedCore {
                                since: cycle + 1,
                                kind,
                                wake_at,
                            });
                        }
                    }
                }
            }
        }

        // 3. Advance the memory system: bus grants and cache accesses.
        for unit in &mut self.units {
            for update in unit.tick(cycle) {
                if update.phase != RequestPhase::WaitingGrant {
                    self.ready_min = self.ready_min.min(update.ready);
                }
                // Replace the matching waiting-grant entry with the resolved
                // timing.
                if let Some(req) = self.in_flight.iter_mut().find(|r| {
                    r.core == update.core
                        && r.line == update.line
                        && r.phase == RequestPhase::WaitingGrant
                }) {
                    *req = update;
                } else {
                    // The request may already have been replaced (duplicate
                    // line request from the same core is not expected, but a
                    // late grant after a flush is harmless): track it anyway
                    // so the line is still delivered.
                    self.in_flight.push(update);
                }
            }
        }
    }

    /// Maps a core's stall reason onto a CPI-stack bucket, using the state
    /// of its in-flight requests for memory-related stalls.
    fn attribute_stall(&self, core: usize, reason: StallReason) -> StallKind {
        match reason {
            StallReason::MispredictRecovery => StallKind::BranchMiss,
            StallReason::SyncBlocked => StallKind::Sync,
            StallReason::Other => StallKind::Other,
            StallReason::WaitingForLine(line) => {
                let req = self
                    .in_flight
                    .iter()
                    .find(|r| r.core == core && r.line == line)
                    .or_else(|| self.in_flight.iter().find(|r| r.core == core));
                match req {
                    None => StallKind::Other,
                    Some(r) => match r.phase {
                        RequestPhase::WaitingGrant => StallKind::IBusCongestion,
                        RequestPhase::MissPath => StallKind::IcacheLatency,
                        RequestPhase::HitPath => {
                            if r.shared {
                                StallKind::IBusLatency
                            } else {
                                StallKind::IcacheLatency
                            }
                        }
                    },
                }
            }
        }
    }

    /// Collects the final statistics.
    fn collect(self, cycles: u64, serial_cycles: u64, parallel_cycles: u64) -> SimResult {
        let cores: Vec<CoreReport> = self
            .cores
            .iter()
            .map(|c| CoreReport {
                core: c.id(),
                instructions: c.instructions(),
                cpi: *c.cpi(),
                line_buffers: *c.line_buffer_stats(),
                predictor: *c.predictor_stats(),
                fetch_blocks: c.fetch_blocks(),
            })
            .collect();

        let mut worker_icache = CacheStats::default();
        let mut master_icache = CacheStats::default();
        let mut bus = BusStats::default();
        let mut l2 = CacheStats::default();
        for unit in &self.units {
            l2.merge(unit.l2_stats());
            bus.merge(&unit.bus_stats());
            let serves_master = unit.cores().contains(&0);
            let serves_workers = unit.cores().iter().any(|&c| c != 0);
            if serves_workers {
                worker_icache.merge(unit.cache_stats());
            }
            if serves_master {
                master_icache.merge(unit.cache_stats());
            }
        }

        SimResult {
            cycles,
            instructions: cores.iter().map(|c| c.instructions).sum(),
            parallel_cycles,
            serial_cycles,
            cores,
            worker_icache,
            master_icache,
            bus,
            l2,
            parallel_regions: self.runtime.regions_completed(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::BusWidth;
    use hpc_workloads::{Benchmark, GeneratorConfig, TraceGenerator};
    use sim_trace::TraceSet;

    fn traces(b: Benchmark, workers: usize, instrs: u64) -> TraceSet {
        TraceGenerator::new(
            b.profile(),
            GeneratorConfig {
                num_workers: workers,
                parallel_instructions_per_thread: instrs,
                num_phases: 2,
                seed: 11,
            },
        )
        .generate()
    }

    fn run(config: AcmpConfig, set: &TraceSet) -> SimResult {
        Machine::new(config, set)
            .run()
            .expect("simulation completes")
    }

    #[test]
    fn baseline_executes_every_instruction() {
        let set = traces(Benchmark::Cg, 2, 6_000);
        let r = run(AcmpConfig::baseline(2), &set);
        assert_eq!(r.instructions, set.total_instructions());
        assert!(r.cycles > 0);
        assert_eq!(r.parallel_regions, 2);
        assert!(r.parallel_cycles > 0);
        assert!(r.serial_cycles > 0);
    }

    #[test]
    fn shared_icache_executes_every_instruction() {
        let set = traces(Benchmark::Cg, 2, 6_000);
        let r = run(AcmpConfig::worker_shared(2, 2), &set);
        assert_eq!(r.instructions, set.total_instructions());
        assert!(r.bus.transactions > 0, "shared config must use the bus");
    }

    #[test]
    fn all_shared_executes_every_instruction() {
        let set = traces(Benchmark::Is, 2, 6_000);
        let r = run(AcmpConfig::all_shared(2), &set);
        assert_eq!(r.instructions, set.total_instructions());
        // Master and workers are served by the same single cache.
        assert_eq!(r.worker_icache, r.master_icache);
    }

    #[test]
    fn sharing_reduces_compulsory_misses() {
        // The same code is fetched by both workers: with private caches each
        // one takes its own cold misses; with a shared cache the second
        // worker reuses the first one's fills.
        let set = traces(Benchmark::Lu, 2, 8_000);
        let private = run(AcmpConfig::baseline(2), &set);
        let shared = run(AcmpConfig::worker_shared(2, 2), &set);
        assert!(
            shared.worker_icache.compulsory_misses < private.worker_icache.compulsory_misses,
            "shared: {} vs private: {}",
            shared.worker_icache.compulsory_misses,
            private.worker_icache.compulsory_misses
        );
    }

    #[test]
    fn sharing_does_not_slow_down_a_small_kernel_benchmark() {
        // CG's kernel fits in the line buffers, so the bus sees little
        // traffic and execution time should be essentially unchanged.
        let set = traces(Benchmark::Cg, 4, 8_000);
        let private = run(AcmpConfig::baseline(4), &set);
        let shared = run(AcmpConfig::worker_shared(4, 4), &set);
        let ratio = shared.cycles as f64 / private.cycles as f64;
        assert!(
            ratio < 1.05,
            "sharing should not hurt a line-buffer-friendly benchmark, ratio={ratio:.3}"
        );
    }

    #[test]
    fn double_bus_is_at_least_as_fast_as_single_bus() {
        let set = traces(Benchmark::Lu, 4, 8_000);
        let single = run(
            AcmpConfig::worker_shared(4, 4).with_worker_icache_size(16 * 1024),
            &set,
        );
        let double = run(
            AcmpConfig::worker_shared(4, 4)
                .with_worker_icache_size(16 * 1024)
                .with_bus_width(BusWidth::Double),
            &set,
        );
        assert!(double.cycles <= single.cycles);
        assert!(
            double.worker_cpi_stack().ibus_congestion <= single.worker_cpi_stack().ibus_congestion
        );
    }

    #[test]
    fn critical_sections_are_serialised_but_complete() {
        let set = traces(Benchmark::BotsSpar, 2, 6_000);
        let r = run(AcmpConfig::baseline(2), &set);
        assert_eq!(r.instructions, set.total_instructions());
    }

    #[test]
    fn thread_count_mismatch_is_reported() {
        let set = traces(Benchmark::Cg, 2, 6_000);
        let err = Machine::new(AcmpConfig::baseline(4), &set)
            .run()
            .unwrap_err();
        assert!(matches!(
            err,
            SimError::ThreadCountMismatch {
                expected: 5,
                found: 3
            }
        ));
        assert!(err.to_string().contains("5 cores"));
    }

    #[test]
    fn cycle_limit_is_enforced() {
        let set = traces(Benchmark::Cg, 2, 6_000);
        let mut cfg = AcmpConfig::baseline(2);
        cfg.max_cycles = 100;
        let err = Machine::new(cfg, &set).run().unwrap_err();
        assert!(matches!(
            err,
            SimError::CycleLimitExceeded { limit: 100, .. }
        ));
    }

    #[test]
    fn sim_is_deterministic() {
        let set = traces(Benchmark::Ft, 2, 6_000);
        let a = run(AcmpConfig::worker_shared(2, 2), &set);
        let b = run(AcmpConfig::worker_shared(2, 2), &set);
        assert_eq!(a, b);
    }

    #[test]
    fn workers_spend_time_waiting_at_sync_points() {
        let set = traces(Benchmark::Ft, 2, 6_000);
        let r = run(AcmpConfig::baseline(2), &set);
        // Workers must wait for the master's serial sections.
        let worker_sync: u64 = r.cores.iter().skip(1).map(|c| c.cpi.sync).sum();
        assert!(
            worker_sync > 0,
            "workers should block while the master runs serial code"
        );
    }

    #[test]
    fn idle_skip_matches_the_reference_schedule() {
        // The idle-skip scheduler must be a pure optimisation: every
        // statistic bit-for-bit identical to ticking all cores every cycle,
        // across private, shared-single-bus and shared-double-bus machines.
        let configs = [
            AcmpConfig::baseline(2),
            AcmpConfig::worker_shared(4, 4).with_worker_icache_size(16 * 1024),
            AcmpConfig::worker_shared(2, 2).with_bus_width(BusWidth::Double),
        ];
        for config in configs {
            let set = traces(Benchmark::Lu, config.num_cores() - 1, 6_000);
            let mut reference = Machine::new(config, &set);
            reference.set_idle_skip(false);
            let reference = reference.run().expect("reference completes");
            let skipped = run(config, &set);
            assert_eq!(reference, skipped, "config {config:?}");
        }
    }

    #[test]
    fn tied_wake_cycles_jump_to_the_tie_and_replay_each_span() {
        // Two cores whose self-wakes land on the same cycle: the global jump
        // must stop exactly at the tie (not past it), and unparking must
        // replay each core's own skipped span into its stall bucket.
        let set = traces(Benchmark::Cg, 1, 1_000);
        let mut m = Machine::new(AcmpConfig::baseline(1), &set);
        m.parked[0] = Some(ParkedCore {
            since: 10,
            kind: StallKind::BranchMiss,
            wake_at: Some(40),
        });
        m.parked[1] = Some(ParkedCore {
            since: 25,
            kind: StallKind::IcacheLatency,
            wake_at: Some(40),
        });
        assert_eq!(m.next_global_wake(30), Some(40));

        m.unpark(0, 40);
        m.unpark(1, 40);
        assert_eq!(m.cores[0].cpi().branch_miss, 30, "core 0 skipped 10..40");
        assert_eq!(m.cores[1].cpi().icache_latency, 15, "core 1 skipped 25..40");
        assert!(m.parked.iter().all(Option::is_none));
    }

    #[test]
    fn earliest_of_competing_wake_sources_wins() {
        // A parked core's self-wake competes with an in-flight delivery; the
        // jump must go to whichever is earliest, never past a wake source.
        let set = traces(Benchmark::Cg, 1, 1_000);
        let mut m = Machine::new(AcmpConfig::baseline(1), &set);
        m.parked[0] = Some(ParkedCore {
            since: 10,
            kind: StallKind::Sync,
            wake_at: Some(50),
        });
        m.parked[1] = Some(ParkedCore {
            since: 10,
            kind: StallKind::IcacheLatency,
            wake_at: Some(20),
        });
        assert_eq!(m.next_global_wake(10), Some(20));
        // A core with no self-wake (delivery- or unblock-only) contributes
        // nothing; the remaining self-wake bounds the jump.
        m.parked[1].as_mut().unwrap().wake_at = None;
        assert_eq!(m.next_global_wake(10), Some(50));
    }

    #[test]
    fn zero_latency_wakes_never_jump_or_record_stalls() {
        // A wake due *now* (a zero-latency event) must not produce a jump —
        // `next_global_wake` only ever moves time forward — and unparking a
        // core on the cycle it was parked replays a zero-cycle span.
        let set = traces(Benchmark::Cg, 1, 1_000);
        let mut m = Machine::new(AcmpConfig::baseline(1), &set);
        m.parked[0] = Some(ParkedCore {
            since: 10,
            kind: StallKind::Sync,
            wake_at: Some(10),
        });
        m.parked[1] = Some(ParkedCore {
            since: 10,
            kind: StallKind::Other,
            wake_at: Some(10),
        });
        assert_eq!(m.next_global_wake(10), None, "a due wake cannot jump");

        let sync_before = m.cores[0].cpi().sync;
        m.unpark(0, 10);
        assert_eq!(
            m.cores[0].cpi().sync,
            sync_before,
            "zero-span unpark must record no stall cycles"
        );
        assert!(m.parked[0].is_none());
    }

    #[test]
    fn an_unparked_core_blocks_the_global_jump() {
        // While any unfinished core is still running, the machine must keep
        // ticking cycle by cycle regardless of other cores' wake times.
        let set = traces(Benchmark::Cg, 1, 1_000);
        let mut m = Machine::new(AcmpConfig::baseline(1), &set);
        m.parked[0] = Some(ParkedCore {
            since: 10,
            kind: StallKind::Sync,
            wake_at: Some(99),
        });
        assert_eq!(m.next_global_wake(10), None);
    }

    #[test]
    fn congestion_appears_with_one_bus_and_many_cores() {
        // A streaming benchmark (large kernel) shared by 4 cores over a
        // single bus should show congestion stalls.
        let set = traces(Benchmark::Lu, 4, 8_000);
        let r = run(
            AcmpConfig::worker_shared(4, 4).with_worker_icache_size(16 * 1024),
            &set,
        );
        let stack = r.worker_cpi_stack();
        assert!(
            stack.ibus_congestion + stack.ibus_latency > 0,
            "a shared single bus must introduce bus-related stall cycles"
        );
    }
}
