//! The full-machine cycle loop.

use crate::config::AcmpConfig;
use crate::memory::{build_units, unit_of_core, IcacheUnit, InFlightRequest, RequestPhase};
use crate::runtime::SyncRuntime;
use crate::stats::{CoreReport, SimResult};
use sim_cache::CacheStats;
use sim_core::{Core, StallKind, StallReason};
use sim_interconnect::BusStats;
use sim_trace::TraceSet;
use std::error::Error;
use std::fmt;

/// Errors produced by a simulation run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The cycle limit was reached before every core finished — either the
    /// configuration deadlocked or the limit is too low for the trace size.
    CycleLimitExceeded {
        /// The configured limit.
        limit: u64,
        /// Cores that had not finished.
        unfinished: Vec<usize>,
    },
    /// The trace set does not have one trace per configured core.
    ThreadCountMismatch {
        /// Cores in the machine configuration.
        expected: usize,
        /// Traces provided.
        found: usize,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::CycleLimitExceeded { limit, unfinished } => write!(
                f,
                "cycle limit {limit} exceeded with cores {unfinished:?} unfinished"
            ),
            SimError::ThreadCountMismatch { expected, found } => write!(
                f,
                "machine has {expected} cores but the trace set has {found} threads"
            ),
        }
    }
}

impl Error for SimError {}

/// A fully assembled ACMP ready to simulate one benchmark run.
pub struct Machine {
    config: AcmpConfig,
    cores: Vec<Core>,
    units: Vec<IcacheUnit>,
    /// Unit index serving each core.
    core_unit: Vec<usize>,
    runtime: SyncRuntime,
    in_flight: Vec<InFlightRequest>,
}

impl fmt::Debug for Machine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Machine")
            .field("cores", &self.cores.len())
            .field("units", &self.units.len())
            .field("sharing", &self.config.sharing)
            .finish_non_exhaustive()
    }
}

impl Machine {
    /// Builds the machine described by `config` and loads one trace per
    /// core (thread 0 on the master core).
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid.  A mismatched thread count is
    /// reported by [`Machine::run`] instead so callers can handle it.
    pub fn new(config: AcmpConfig, traces: &TraceSet) -> Self {
        config.validate();
        let cores: Vec<Core> = traces
            .iter()
            .enumerate()
            .map(|(i, t)| {
                let core_cfg = if i == 0 {
                    config.master_core
                } else {
                    config.worker_core
                };
                Core::new(i, core_cfg, Box::new(t.clone().into_source()))
            })
            .collect();
        let units = build_units(&config);
        let core_unit = unit_of_core(&units, config.num_cores());
        let runtime = SyncRuntime::new(config.num_cores());
        Machine {
            config,
            cores,
            units,
            core_unit,
            runtime,
            in_flight: Vec::new(),
        }
    }

    /// The configuration being simulated.
    pub fn config(&self) -> &AcmpConfig {
        &self.config
    }

    /// Runs the simulation to completion.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::ThreadCountMismatch`] if the number of loaded
    /// traces differs from the configured core count, or
    /// [`SimError::CycleLimitExceeded`] if the machine does not finish
    /// within `config.max_cycles`.
    pub fn run(mut self) -> Result<SimResult, SimError> {
        if self.cores.len() != self.config.num_cores() {
            return Err(SimError::ThreadCountMismatch {
                expected: self.config.num_cores(),
                found: self.cores.len(),
            });
        }

        let mut cycle: u64 = 0;
        let mut serial_cycles: u64 = 0;
        let mut parallel_cycles: u64 = 0;

        while !self.all_finished() {
            if cycle >= self.config.max_cycles {
                let unfinished = self
                    .cores
                    .iter()
                    .filter(|c| !c.is_finished())
                    .map(|c| c.id())
                    .collect();
                return Err(SimError::CycleLimitExceeded {
                    limit: self.config.max_cycles,
                    unfinished,
                });
            }

            self.step(cycle);

            if self.runtime.in_parallel_region() {
                parallel_cycles += 1;
            } else {
                serial_cycles += 1;
            }
            cycle += 1;
        }

        Ok(self.collect(cycle, serial_cycles, parallel_cycles))
    }

    fn all_finished(&self) -> bool {
        self.cores.iter().all(|c| c.is_finished())
    }

    /// Simulates one machine cycle.
    fn step(&mut self, cycle: u64) {
        // 1. Deliver lines whose requests completed.
        let mut delivered = Vec::new();
        self.in_flight.retain(|req| {
            if req.phase != RequestPhase::WaitingGrant && req.ready <= cycle {
                delivered.push((req.core, req.line));
                false
            } else {
                true
            }
        });
        for (core, line) in delivered {
            self.cores[core].deliver_line(line, cycle);
        }

        // 2. Advance every core by one cycle.
        for i in 0..self.cores.len() {
            if self.cores[i].is_finished() {
                continue;
            }
            let out = self.cores[i].cycle(cycle);

            for line in &out.fetch_requests {
                let unit = self.core_unit[i];
                let req = self.units[unit].submit(cycle, i, *line);
                self.in_flight.push(req);
            }

            if let Some(event) = out.sync_event {
                let decision = self.runtime.handle_event(i, event);
                for core in decision.release {
                    self.cores[core].unblock();
                }
            }
            if out.finished_now {
                let decision = self.runtime.core_finished(i);
                for core in decision.release {
                    self.cores[core].unblock();
                }
            }

            if let Some(reason) = out.stall {
                let kind = self.attribute_stall(i, reason);
                self.cores[i].cpi_mut().record_stall(kind);
            }
        }

        // 3. Advance the memory system: bus grants and cache accesses.
        for unit in &mut self.units {
            for update in unit.tick(cycle) {
                // Replace the matching waiting-grant entry with the resolved
                // timing.
                if let Some(req) = self.in_flight.iter_mut().find(|r| {
                    r.core == update.core
                        && r.line == update.line
                        && r.phase == RequestPhase::WaitingGrant
                }) {
                    *req = update;
                } else {
                    // The request may already have been replaced (duplicate
                    // line request from the same core is not expected, but a
                    // late grant after a flush is harmless): track it anyway
                    // so the line is still delivered.
                    self.in_flight.push(update);
                }
            }
        }
    }

    /// Maps a core's stall reason onto a CPI-stack bucket, using the state
    /// of its in-flight requests for memory-related stalls.
    fn attribute_stall(&self, core: usize, reason: StallReason) -> StallKind {
        match reason {
            StallReason::MispredictRecovery => StallKind::BranchMiss,
            StallReason::SyncBlocked => StallKind::Sync,
            StallReason::Other => StallKind::Other,
            StallReason::WaitingForLine(line) => {
                let req = self
                    .in_flight
                    .iter()
                    .find(|r| r.core == core && r.line == line)
                    .or_else(|| self.in_flight.iter().find(|r| r.core == core));
                match req {
                    None => StallKind::Other,
                    Some(r) => match r.phase {
                        RequestPhase::WaitingGrant => StallKind::IBusCongestion,
                        RequestPhase::MissPath => StallKind::IcacheLatency,
                        RequestPhase::HitPath => {
                            if r.shared {
                                StallKind::IBusLatency
                            } else {
                                StallKind::IcacheLatency
                            }
                        }
                    },
                }
            }
        }
    }

    /// Collects the final statistics.
    fn collect(self, cycles: u64, serial_cycles: u64, parallel_cycles: u64) -> SimResult {
        let cores: Vec<CoreReport> = self
            .cores
            .iter()
            .map(|c| CoreReport {
                core: c.id(),
                instructions: c.instructions(),
                cpi: *c.cpi(),
                line_buffers: *c.line_buffer_stats(),
                predictor: *c.predictor_stats(),
                fetch_blocks: c.fetch_blocks(),
            })
            .collect();

        let mut worker_icache = CacheStats::default();
        let mut master_icache = CacheStats::default();
        let mut bus = BusStats::default();
        let mut l2 = CacheStats::default();
        for unit in &self.units {
            l2.merge(unit.l2_stats());
            bus.merge(&unit.bus_stats());
            let serves_master = unit.cores().contains(&0);
            let serves_workers = unit.cores().iter().any(|&c| c != 0);
            if serves_workers {
                worker_icache.merge(unit.cache_stats());
            }
            if serves_master {
                master_icache.merge(unit.cache_stats());
            }
        }

        SimResult {
            cycles,
            instructions: cores.iter().map(|c| c.instructions).sum(),
            parallel_cycles,
            serial_cycles,
            cores,
            worker_icache,
            master_icache,
            bus,
            l2,
            parallel_regions: self.runtime.regions_completed(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::BusWidth;
    use hpc_workloads::{Benchmark, GeneratorConfig, TraceGenerator};
    use sim_trace::TraceSet;

    fn traces(b: Benchmark, workers: usize, instrs: u64) -> TraceSet {
        TraceGenerator::new(
            b.profile(),
            GeneratorConfig {
                num_workers: workers,
                parallel_instructions_per_thread: instrs,
                num_phases: 2,
                seed: 11,
            },
        )
        .generate()
    }

    fn run(config: AcmpConfig, set: &TraceSet) -> SimResult {
        Machine::new(config, set)
            .run()
            .expect("simulation completes")
    }

    #[test]
    fn baseline_executes_every_instruction() {
        let set = traces(Benchmark::Cg, 2, 6_000);
        let r = run(AcmpConfig::baseline(2), &set);
        assert_eq!(r.instructions, set.total_instructions());
        assert!(r.cycles > 0);
        assert_eq!(r.parallel_regions, 2);
        assert!(r.parallel_cycles > 0);
        assert!(r.serial_cycles > 0);
    }

    #[test]
    fn shared_icache_executes_every_instruction() {
        let set = traces(Benchmark::Cg, 2, 6_000);
        let r = run(AcmpConfig::worker_shared(2, 2), &set);
        assert_eq!(r.instructions, set.total_instructions());
        assert!(r.bus.transactions > 0, "shared config must use the bus");
    }

    #[test]
    fn all_shared_executes_every_instruction() {
        let set = traces(Benchmark::Is, 2, 6_000);
        let r = run(AcmpConfig::all_shared(2), &set);
        assert_eq!(r.instructions, set.total_instructions());
        // Master and workers are served by the same single cache.
        assert_eq!(r.worker_icache, r.master_icache);
    }

    #[test]
    fn sharing_reduces_compulsory_misses() {
        // The same code is fetched by both workers: with private caches each
        // one takes its own cold misses; with a shared cache the second
        // worker reuses the first one's fills.
        let set = traces(Benchmark::Lu, 2, 8_000);
        let private = run(AcmpConfig::baseline(2), &set);
        let shared = run(AcmpConfig::worker_shared(2, 2), &set);
        assert!(
            shared.worker_icache.compulsory_misses < private.worker_icache.compulsory_misses,
            "shared: {} vs private: {}",
            shared.worker_icache.compulsory_misses,
            private.worker_icache.compulsory_misses
        );
    }

    #[test]
    fn sharing_does_not_slow_down_a_small_kernel_benchmark() {
        // CG's kernel fits in the line buffers, so the bus sees little
        // traffic and execution time should be essentially unchanged.
        let set = traces(Benchmark::Cg, 4, 8_000);
        let private = run(AcmpConfig::baseline(4), &set);
        let shared = run(AcmpConfig::worker_shared(4, 4), &set);
        let ratio = shared.cycles as f64 / private.cycles as f64;
        assert!(
            ratio < 1.05,
            "sharing should not hurt a line-buffer-friendly benchmark, ratio={ratio:.3}"
        );
    }

    #[test]
    fn double_bus_is_at_least_as_fast_as_single_bus() {
        let set = traces(Benchmark::Lu, 4, 8_000);
        let single = run(
            AcmpConfig::worker_shared(4, 4).with_worker_icache_size(16 * 1024),
            &set,
        );
        let double = run(
            AcmpConfig::worker_shared(4, 4)
                .with_worker_icache_size(16 * 1024)
                .with_bus_width(BusWidth::Double),
            &set,
        );
        assert!(double.cycles <= single.cycles);
        assert!(
            double.worker_cpi_stack().ibus_congestion <= single.worker_cpi_stack().ibus_congestion
        );
    }

    #[test]
    fn critical_sections_are_serialised_but_complete() {
        let set = traces(Benchmark::BotsSpar, 2, 6_000);
        let r = run(AcmpConfig::baseline(2), &set);
        assert_eq!(r.instructions, set.total_instructions());
    }

    #[test]
    fn thread_count_mismatch_is_reported() {
        let set = traces(Benchmark::Cg, 2, 6_000);
        let err = Machine::new(AcmpConfig::baseline(4), &set)
            .run()
            .unwrap_err();
        assert!(matches!(
            err,
            SimError::ThreadCountMismatch {
                expected: 5,
                found: 3
            }
        ));
        assert!(err.to_string().contains("5 cores"));
    }

    #[test]
    fn cycle_limit_is_enforced() {
        let set = traces(Benchmark::Cg, 2, 6_000);
        let mut cfg = AcmpConfig::baseline(2);
        cfg.max_cycles = 100;
        let err = Machine::new(cfg, &set).run().unwrap_err();
        assert!(matches!(
            err,
            SimError::CycleLimitExceeded { limit: 100, .. }
        ));
    }

    #[test]
    fn sim_is_deterministic() {
        let set = traces(Benchmark::Ft, 2, 6_000);
        let a = run(AcmpConfig::worker_shared(2, 2), &set);
        let b = run(AcmpConfig::worker_shared(2, 2), &set);
        assert_eq!(a, b);
    }

    #[test]
    fn workers_spend_time_waiting_at_sync_points() {
        let set = traces(Benchmark::Ft, 2, 6_000);
        let r = run(AcmpConfig::baseline(2), &set);
        // Workers must wait for the master's serial sections.
        let worker_sync: u64 = r.cores.iter().skip(1).map(|c| c.cpi.sync).sum();
        assert!(
            worker_sync > 0,
            "workers should block while the master runs serial code"
        );
    }

    #[test]
    fn congestion_appears_with_one_bus_and_many_cores() {
        // A streaming benchmark (large kernel) shared by 4 cores over a
        // single bus should show congestion stalls.
        let set = traces(Benchmark::Lu, 4, 8_000);
        let r = run(
            AcmpConfig::worker_shared(4, 4).with_worker_icache_size(16 * 1024),
            &set,
        );
        let stack = r.worker_cpi_stack();
        assert!(
            stack.ibus_congestion + stack.ibus_latency > 0,
            "a shared single bus must introduce bus-related stall cycles"
        );
    }
}
