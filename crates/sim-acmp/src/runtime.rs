//! The simulated OpenMP runtime.
//!
//! The traces carry five synchronisation events (parallel start/end, barrier,
//! and wait/signal on critical sections), mirroring the paper's PinTool.
//! This module reproduces the fork-join schedule from those events: it
//! decides which blocked cores may resume each cycle, exactly like the
//! "double role" of the paper's simulation framework (Section V-A).

use sim_trace::SyncEvent;
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// What the runtime wants the machine to do after handling an event.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RuntimeDecision {
    /// Cores (by id) that must be unblocked this cycle.
    pub release: Vec<usize>,
}

/// Tracks fork/join, barrier and lock state across cores.
#[derive(Debug)]
pub struct SyncRuntime {
    num_cores: usize,
    /// Cores that have arrived at the pending `ParallelStart`.
    start_arrivals: BTreeSet<usize>,
    /// Cores that have arrived at the pending `ParallelEnd`.
    end_arrivals: BTreeSet<usize>,
    /// Arrivals per barrier id.
    barrier_arrivals: BTreeMap<u32, BTreeSet<usize>>,
    /// Holder and wait queue per lock id.
    locks: BTreeMap<u32, LockState>,
    /// Whether a parallel region is currently executing.
    in_parallel: bool,
    /// Cores that have finished their trace (they no longer participate in
    /// collective synchronisation).
    finished: BTreeSet<usize>,
    /// Number of parallel regions completed.
    regions_completed: u64,
}

#[derive(Debug, Default)]
struct LockState {
    holder: Option<usize>,
    waiters: VecDeque<usize>,
}

impl SyncRuntime {
    /// Creates a runtime for `num_cores` cores (master + workers).
    ///
    /// # Panics
    ///
    /// Panics if `num_cores` is zero.
    pub fn new(num_cores: usize) -> Self {
        assert!(num_cores > 0, "need at least one core");
        SyncRuntime {
            num_cores,
            start_arrivals: BTreeSet::new(),
            end_arrivals: BTreeSet::new(),
            barrier_arrivals: BTreeMap::new(),
            locks: BTreeMap::new(),
            in_parallel: false,
            finished: BTreeSet::new(),
            regions_completed: 0,
        }
    }

    /// Whether a parallel region is currently active.
    pub fn in_parallel_region(&self) -> bool {
        self.in_parallel
    }

    /// Number of fork/join regions completed so far.
    pub fn regions_completed(&self) -> u64 {
        self.regions_completed
    }

    /// Number of cores still participating in collective synchronisation.
    fn active_cores(&self) -> usize {
        self.num_cores - self.finished.len()
    }

    /// Records that `core` finished its trace.
    ///
    /// Returns any cores that can now be released because the finished core
    /// was the last straggler of a collective operation.
    pub fn core_finished(&mut self, core: usize) -> RuntimeDecision {
        self.finished.insert(core);
        // A finished core can no longer arrive anywhere; re-check every
        // collective condition.
        let mut decision = RuntimeDecision::default();
        decision.release.extend(self.check_start());
        decision.release.extend(self.check_end());
        let ids: Vec<u32> = self.barrier_arrivals.keys().copied().collect();
        for id in ids {
            decision.release.extend(self.check_barrier(id));
        }
        decision
    }

    /// Handles a synchronisation event reported by `core` and returns the
    /// cores to release.
    pub fn handle_event(&mut self, core: usize, event: SyncEvent) -> RuntimeDecision {
        let mut decision = RuntimeDecision::default();
        match event {
            SyncEvent::ParallelStart { .. } => {
                self.start_arrivals.insert(core);
                decision.release.extend(self.check_start());
            }
            SyncEvent::ParallelEnd => {
                self.end_arrivals.insert(core);
                decision.release.extend(self.check_end());
            }
            SyncEvent::Barrier { id } => {
                self.barrier_arrivals.entry(id).or_default().insert(core);
                decision.release.extend(self.check_barrier(id));
            }
            SyncEvent::CriticalWait { id } => {
                let lock = self.locks.entry(id).or_default();
                if lock.holder.is_none() {
                    lock.holder = Some(core);
                    decision.release.push(core);
                } else {
                    lock.waiters.push_back(core);
                }
            }
            SyncEvent::CriticalSignal { id } => {
                let lock = self.locks.entry(id).or_default();
                debug_assert_eq!(lock.holder, Some(core), "signal from a non-holder");
                lock.holder = None;
                // The signalling core continues immediately.
                decision.release.push(core);
                if let Some(next) = lock.waiters.pop_front() {
                    lock.holder = Some(next);
                    decision.release.push(next);
                }
            }
        }
        decision
    }

    fn check_start(&mut self) -> Vec<usize> {
        if !self.start_arrivals.is_empty() && self.start_arrivals.len() >= self.active_cores() {
            let released: Vec<usize> = self.start_arrivals.iter().copied().collect();
            self.start_arrivals.clear();
            self.in_parallel = true;
            released
        } else {
            Vec::new()
        }
    }

    fn check_end(&mut self) -> Vec<usize> {
        if !self.end_arrivals.is_empty() && self.end_arrivals.len() >= self.active_cores() {
            let released: Vec<usize> = self.end_arrivals.iter().copied().collect();
            self.end_arrivals.clear();
            self.in_parallel = false;
            self.regions_completed += 1;
            released
        } else {
            Vec::new()
        }
    }

    fn check_barrier(&mut self, id: u32) -> Vec<usize> {
        let arrived = self.barrier_arrivals.get(&id).map(|s| s.len()).unwrap_or(0);
        if arrived > 0 && arrived >= self.active_cores() {
            let released: Vec<usize> = self
                .barrier_arrivals
                .remove(&id)
                .map(|s| s.into_iter().collect())
                .unwrap_or_default();
            released
        } else {
            Vec::new()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_start_waits_for_all_cores() {
        let mut rt = SyncRuntime::new(3);
        assert!(rt
            .handle_event(1, SyncEvent::ParallelStart { num_threads: 3 })
            .release
            .is_empty());
        assert!(rt
            .handle_event(2, SyncEvent::ParallelStart { num_threads: 3 })
            .release
            .is_empty());
        assert!(!rt.in_parallel_region());
        let d = rt.handle_event(0, SyncEvent::ParallelStart { num_threads: 3 });
        assert_eq!(d.release, vec![0, 1, 2]);
        assert!(rt.in_parallel_region());
    }

    #[test]
    fn parallel_end_joins_all_cores() {
        let mut rt = SyncRuntime::new(2);
        rt.handle_event(0, SyncEvent::ParallelStart { num_threads: 2 });
        rt.handle_event(1, SyncEvent::ParallelStart { num_threads: 2 });
        assert!(rt
            .handle_event(0, SyncEvent::ParallelEnd)
            .release
            .is_empty());
        let d = rt.handle_event(1, SyncEvent::ParallelEnd);
        assert_eq!(d.release, vec![0, 1]);
        assert!(!rt.in_parallel_region());
        assert_eq!(rt.regions_completed(), 1);
    }

    #[test]
    fn barrier_releases_only_its_own_id() {
        let mut rt = SyncRuntime::new(2);
        assert!(rt
            .handle_event(0, SyncEvent::Barrier { id: 1 })
            .release
            .is_empty());
        assert!(rt
            .handle_event(1, SyncEvent::Barrier { id: 2 })
            .release
            .is_empty());
        let d = rt.handle_event(1, SyncEvent::Barrier { id: 1 });
        assert_eq!(d.release, vec![0, 1]);
        let d = rt.handle_event(0, SyncEvent::Barrier { id: 2 });
        assert_eq!(d.release, vec![0, 1]);
    }

    #[test]
    fn critical_section_is_mutually_exclusive() {
        let mut rt = SyncRuntime::new(3);
        // Core 0 acquires immediately.
        assert_eq!(
            rt.handle_event(0, SyncEvent::CriticalWait { id: 5 })
                .release,
            vec![0]
        );
        // Cores 1 and 2 must wait.
        assert!(rt
            .handle_event(1, SyncEvent::CriticalWait { id: 5 })
            .release
            .is_empty());
        assert!(rt
            .handle_event(2, SyncEvent::CriticalWait { id: 5 })
            .release
            .is_empty());
        // Core 0 releases: itself continues and core 1 (FIFO) acquires.
        let d = rt.handle_event(0, SyncEvent::CriticalSignal { id: 5 });
        assert_eq!(d.release, vec![0, 1]);
        // Core 1 releases: core 2 acquires.
        let d = rt.handle_event(1, SyncEvent::CriticalSignal { id: 5 });
        assert_eq!(d.release, vec![1, 2]);
    }

    #[test]
    fn independent_locks_do_not_interfere() {
        let mut rt = SyncRuntime::new(2);
        assert_eq!(
            rt.handle_event(0, SyncEvent::CriticalWait { id: 1 })
                .release,
            vec![0]
        );
        assert_eq!(
            rt.handle_event(1, SyncEvent::CriticalWait { id: 2 })
                .release,
            vec![1]
        );
    }

    #[test]
    fn finished_core_does_not_block_collectives() {
        let mut rt = SyncRuntime::new(3);
        rt.handle_event(1, SyncEvent::Barrier { id: 9 });
        rt.handle_event(2, SyncEvent::Barrier { id: 9 });
        // Core 0 finishes instead of arriving: the barrier must now release.
        let d = rt.core_finished(0);
        assert_eq!(d.release, vec![1, 2]);
    }

    #[test]
    fn two_phase_fork_join_sequence() {
        let mut rt = SyncRuntime::new(2);
        for _ in 0..2 {
            rt.handle_event(1, SyncEvent::ParallelStart { num_threads: 2 });
            let d = rt.handle_event(0, SyncEvent::ParallelStart { num_threads: 2 });
            assert_eq!(d.release.len(), 2);
            rt.handle_event(0, SyncEvent::ParallelEnd);
            let d = rt.handle_event(1, SyncEvent::ParallelEnd);
            assert_eq!(d.release.len(), 2);
        }
        assert_eq!(rt.regions_completed(), 2);
    }

    #[test]
    #[should_panic(expected = "at least one core")]
    fn zero_cores_rejected() {
        SyncRuntime::new(0);
    }
}
