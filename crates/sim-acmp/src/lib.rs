//! Cycle-level asymmetric-CMP simulator with private or shared instruction
//! caches.
//!
//! This crate plays the role TaskSim plays in the paper: it instantiates the
//! full machine of Figure 5 — one big master core plus `N` lean worker cores,
//! private L1 I-caches (the baseline) or I-caches shared by groups of
//! `cores-per-cache` workers reached through a single or double bus — and
//! replays the per-thread traces produced by `hpc-workloads`, reproducing the
//! application's fork-join structure from the synchronisation events embedded
//! in the traces.
//!
//! The main entry point is [`Machine`]:
//!
//! ```
//! use hpc_workloads::{Benchmark, GeneratorConfig, TraceGenerator};
//! use sim_acmp::{AcmpConfig, Machine};
//!
//! let traces = TraceGenerator::new(Benchmark::Cg.profile(), GeneratorConfig::small()).generate();
//! let config = AcmpConfig::baseline(traces.num_threads() - 1);
//! let result = Machine::new(config, &traces).run().unwrap();
//! assert!(result.cycles > 0);
//! assert_eq!(result.instructions, traces.total_instructions());
//! ```

pub mod config;
pub mod machine;
pub mod memory;
pub mod runtime;
pub mod stats;

pub use config::{AcmpConfig, BusWidth, SharingMode};
pub use machine::{Machine, SimError};
pub use stats::{CoreReport, SimResult};

#[cfg(test)]
mod crate_tests {
    use super::*;

    #[test]
    fn public_types_are_send() {
        fn assert_send<T: Send>() {}
        assert_send::<AcmpConfig>();
        assert_send::<SimResult>();
        assert_send::<Machine>();
    }
}
