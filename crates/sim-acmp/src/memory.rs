//! The instruction-side memory system: I-cache units, buses, MSHRs, L2.
//!
//! An [`IcacheUnit`] serves one set of cores: a single core for the private
//! baseline, or a sharing group of `cpc` cores (optionally including the
//! master) reached through an [`sim_interconnect::IcacheInterconnect`].
//! Requests are tracked from submission to delivery so the machine can
//! attribute stall cycles to the right CPI-stack bucket (waiting for the bus
//! grant, in transfer, or waiting for an L2 fill).

use crate::config::{AcmpConfig, SharingMode};
use sim_cache::{AccessOutcome, BankedCache, CacheStats, L2Cache, Mshr, MshrAllocation};
use sim_interconnect::{BusStats, IcacheInterconnect};

/// Where an in-flight request currently is (used for stall attribution).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RequestPhase {
    /// Submitted to a shared bus, not yet granted (counts as *I-bus
    /// congestion*).
    WaitingGrant,
    /// Granted and in transfer / accessing a cache that hit (counts as
    /// *I-bus latency* for shared caches, *I-cache latency* for private
    /// ones).
    HitPath,
    /// The access missed and an L2/DRAM fill is outstanding (counts as
    /// *I-cache latency*).
    MissPath,
}

/// One in-flight line-fetch request.
#[derive(Debug, Clone, Copy)]
pub struct InFlightRequest {
    /// Global core id that issued the request.
    pub core: usize,
    /// Line-aligned address.
    pub line: u64,
    /// Cycle at which the line can be delivered to the core (meaningful once
    /// the request left the `WaitingGrant` phase).
    pub ready: u64,
    /// Current phase.
    pub phase: RequestPhase,
    /// Whether the unit serving this request is shared (changes how the
    /// hit-path phase is attributed).
    pub shared: bool,
}

/// One I-cache (private or shared) together with its bus and backing L2.
#[derive(Debug)]
pub struct IcacheUnit {
    /// Global core ids served by this unit.
    cores: Vec<usize>,
    cache: BankedCache,
    mshr: Mshr,
    l2: L2Cache,
    /// `None` for private units (the single core reaches the cache
    /// directly).
    interconnect: Option<IcacheInterconnect>,
    /// `(line, completion cycle)` of each outstanding L2 fill.  Bounded by
    /// the MSHR capacity, so a linear scan beats hashing.
    pending_fills: Vec<(u64, u64)>,
    /// Earliest completion cycle in `pending_fills` (`u64::MAX` when empty);
    /// lets `tick`/`retire_fills_through` skip the scan entirely.
    fills_min: u64,
}

impl IcacheUnit {
    /// Creates a unit serving `cores`; `shared` selects whether a bus sits
    /// between the cores and the cache.
    pub fn new(
        config: &AcmpConfig,
        cores: Vec<usize>,
        shared: bool,
        cache_cfg: sim_cache::CacheConfig,
    ) -> Self {
        assert!(
            !cores.is_empty(),
            "an I-cache unit serves at least one core"
        );
        let num_banks = if shared {
            config.bus_width.num_buses() as u32
        } else {
            1
        };
        let interconnect = if shared {
            Some(IcacheInterconnect::new(
                config.bus,
                config.bus_width.num_buses(),
                cores.len(),
            ))
        } else {
            None
        };
        IcacheUnit {
            cores,
            cache: BankedCache::new(cache_cfg, num_banks),
            mshr: Mshr::new(8),
            l2: L2Cache::new(config.l2),
            interconnect,
            pending_fills: Vec::new(),
            fills_min: u64::MAX,
        }
    }

    /// Whether this unit has a shared bus in front of it.
    pub fn is_shared(&self) -> bool {
        self.interconnect.is_some()
    }

    /// Global core ids served by this unit.
    pub fn cores(&self) -> &[usize] {
        &self.cores
    }

    /// The local requester index of `core` on this unit's bus.
    fn local_index(&self, core: usize) -> usize {
        self.cores
            .iter()
            .position(|&c| c == core)
            .expect("core does not belong to this I-cache unit")
    }

    /// Aggregate I-cache statistics.
    pub fn cache_stats(&self) -> &CacheStats {
        self.cache.stats()
    }

    /// Aggregate bus statistics (zeroed for private units).
    pub fn bus_stats(&self) -> BusStats {
        self.interconnect
            .as_ref()
            .map(|ic| ic.stats())
            .unwrap_or_default()
    }

    /// L2 statistics.
    pub fn l2_stats(&self) -> &CacheStats {
        self.l2.stats()
    }

    /// MSHR statistics (request merging across sharing cores).
    pub fn mshr_stats(&self) -> &sim_cache::mshr::MshrStats {
        self.mshr.stats()
    }

    /// Accepts a new line-fetch request from `core` at `cycle`.
    ///
    /// For private units the cache is accessed immediately; for shared units
    /// the request is queued on the bus and the returned request sits in the
    /// `WaitingGrant` phase.
    pub fn submit(&mut self, cycle: u64, core: usize, line: u64) -> InFlightRequest {
        // `local_index` only reads `self.cores`, so it is computed up front
        // to keep the mutable borrow of the interconnect short.
        let local = self.interconnect.is_some().then(|| self.local_index(core));
        if let (Some(interconnect), Some(local)) = (self.interconnect.as_mut(), local) {
            interconnect.submit(cycle, local, line);
            InFlightRequest {
                core,
                line,
                ready: u64::MAX,
                phase: RequestPhase::WaitingGrant,
                shared: true,
            }
        } else {
            let (ready, phase) = self.access_cache(cycle, core, line, 0);
            InFlightRequest {
                core,
                line,
                ready,
                phase,
                shared: false,
            }
        }
    }

    /// Retires completed L2 fills up to and including `cycle`, freeing their
    /// MSHR entries.  This is exactly the retirement half of
    /// [`IcacheUnit::tick`]; it is idempotent, so the idle-skip scheduler
    /// calls it to catch up over skipped cycles before the machine resumes
    /// (a fill must be retired before a same-cycle submission re-misses on
    /// its line).
    pub fn retire_fills_through(&mut self, cycle: u64) {
        if self.fills_min > cycle {
            return;
        }
        let mut remaining_min = u64::MAX;
        let mshr = &mut self.mshr;
        self.pending_fills.retain(|&(line, ready)| {
            if ready <= cycle {
                mshr.retire(line);
                false
            } else {
                remaining_min = remaining_min.min(ready);
                true
            }
        });
        self.fills_min = remaining_min;
    }

    /// Advances the unit by one cycle: completes L2 fills and grants bus
    /// transactions.  Returns `(core, line, ready, phase)` updates for
    /// requests that left the `WaitingGrant` phase this cycle.
    pub fn tick(&mut self, cycle: u64) -> Vec<InFlightRequest> {
        // Private units with no fill completing yet have nothing to do
        // (`Vec::new` does not allocate).
        if self.fills_min > cycle && self.interconnect.is_none() {
            return Vec::new();
        }
        self.retire_fills_through(cycle);

        let mut updates = Vec::new();
        let grants = match &mut self.interconnect {
            Some(ic) => ic.tick(cycle),
            None => Vec::new(),
        };
        for grant in grants {
            let core = self.cores[grant.requester];
            let transfer = grant.transfer_done_cycle - grant.grant_cycle;
            let (ready, phase) =
                self.access_cache(grant.grant_cycle, core, grant.line_addr, transfer);
            updates.push(InFlightRequest {
                core,
                line: grant.line_addr,
                ready,
                phase,
                shared: true,
            });
        }
        updates
    }

    /// Performs the cache lookup for a request that has reached the cache
    /// (immediately for private units, at grant time for shared ones) and
    /// returns when the line will be available plus the phase to attribute.
    ///
    /// `transfer_cycles` is the bus propagation + data-return time that must
    /// elapse on top of the cache/L2 latency.
    fn access_cache(
        &mut self,
        cycle: u64,
        core: usize,
        line: u64,
        transfer_cycles: u64,
    ) -> (u64, RequestPhase) {
        // A fill already in flight for this line (requested by another core
        // of the group): piggyback on it instead of accessing again — this
        // is the MSHR-level expression of cross-thread prefetching.
        if let Some(&(_, fill_ready)) = self.pending_fills.iter().find(|&&(l, _)| l == line) {
            let local = self.local_index(core);
            let _ = self.mshr.allocate(line, local);
            let ready = fill_ready.max(cycle + transfer_cycles);
            return (ready, RequestPhase::MissPath);
        }

        match self.cache.access(line) {
            AccessOutcome::Hit => (
                cycle + transfer_cycles + self.cache.latency(),
                RequestPhase::HitPath,
            ),
            AccessOutcome::Miss { .. } => {
                let local = self.local_index(core);
                let fill_latency = self.l2.fill(line);
                let ready = cycle + transfer_cycles + self.cache.latency() + fill_latency;
                match self.mshr.allocate(line, local) {
                    MshrAllocation::NewEntry | MshrAllocation::Full => {
                        self.pending_fills.push((line, ready));
                        self.fills_min = self.fills_min.min(ready);
                    }
                    MshrAllocation::Merged => {}
                }
                (ready, RequestPhase::MissPath)
            }
        }
    }
}

/// Builds the I-cache units for a configuration: which cores share which
/// cache.
pub fn build_units(config: &AcmpConfig) -> Vec<IcacheUnit> {
    let num_cores = config.num_cores();
    match config.sharing {
        SharingMode::Private => (0..num_cores)
            .map(|c| {
                let cache = if c == 0 {
                    config.master_icache
                } else {
                    config.worker_icache
                };
                IcacheUnit::new(config, vec![c], false, cache)
            })
            .collect(),
        SharingMode::WorkerShared { cores_per_cache } => {
            let mut units = vec![IcacheUnit::new(
                config,
                vec![0],
                false,
                config.master_icache,
            )];
            let mut group = Vec::new();
            for w in 1..num_cores {
                group.push(w);
                if group.len() == cores_per_cache {
                    units.push(IcacheUnit::new(
                        config,
                        std::mem::take(&mut group),
                        true,
                        config.worker_icache,
                    ));
                }
            }
            assert!(
                group.is_empty(),
                "cores-per-cache must divide the worker count"
            );
            units
        }
        SharingMode::AllShared => {
            vec![IcacheUnit::new(
                config,
                (0..num_cores).collect(),
                true,
                config.worker_icache,
            )]
        }
    }
}

/// Returns, for each core id, the index of the unit that serves it.
pub fn unit_of_core(units: &[IcacheUnit], num_cores: usize) -> Vec<usize> {
    let mut map = vec![usize::MAX; num_cores];
    for (u, unit) in units.iter().enumerate() {
        for &c in unit.cores() {
            map[c] = u;
        }
    }
    assert!(
        map.iter().all(|&u| u != usize::MAX),
        "every core must be served by exactly one I-cache unit"
    );
    map
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::AcmpConfig;

    #[test]
    fn baseline_builds_one_private_unit_per_core() {
        let cfg = AcmpConfig::baseline(8);
        let units = build_units(&cfg);
        assert_eq!(units.len(), 9);
        assert!(units.iter().all(|u| !u.is_shared()));
        let map = unit_of_core(&units, 9);
        assert_eq!(map, (0..9).collect::<Vec<_>>());
    }

    #[test]
    fn cpc_4_builds_two_worker_groups_plus_master() {
        let cfg = AcmpConfig::worker_shared(8, 4);
        let units = build_units(&cfg);
        assert_eq!(units.len(), 3);
        assert!(!units[0].is_shared());
        assert_eq!(units[0].cores(), &[0]);
        assert_eq!(units[1].cores(), &[1, 2, 3, 4]);
        assert_eq!(units[2].cores(), &[5, 6, 7, 8]);
        assert!(units[1].is_shared() && units[2].is_shared());
    }

    #[test]
    fn all_shared_builds_a_single_unit() {
        let cfg = AcmpConfig::all_shared(8);
        let units = build_units(&cfg);
        assert_eq!(units.len(), 1);
        assert_eq!(units[0].cores().len(), 9);
        assert!(units[0].is_shared());
    }

    #[test]
    fn private_unit_answers_hits_after_one_cycle() {
        let cfg = AcmpConfig::baseline(1);
        let mut unit = IcacheUnit::new(&cfg, vec![1], false, cfg.worker_icache);
        let miss = unit.submit(10, 1, 0x1000);
        assert_eq!(miss.phase, RequestPhase::MissPath);
        assert!(miss.ready > 11, "a cold miss goes to L2");
        // Wait for the fill to retire, then a hit is 1 cycle.
        let _ = unit.tick(miss.ready + 1);
        let hit = unit.submit(miss.ready + 2, 1, 0x1000);
        assert_eq!(hit.phase, RequestPhase::HitPath);
        assert_eq!(hit.ready, miss.ready + 3);
        assert_eq!(unit.cache_stats().hits, 1);
    }

    #[test]
    fn shared_unit_goes_through_the_bus() {
        let cfg = AcmpConfig::worker_shared(2, 2);
        let mut unit = IcacheUnit::new(&cfg, vec![1, 2], true, cfg.worker_icache);
        let req = unit.submit(0, 1, 0x0000);
        assert_eq!(req.phase, RequestPhase::WaitingGrant);
        let updates = unit.tick(0);
        assert_eq!(updates.len(), 1);
        assert_eq!(updates[0].core, 1);
        assert!(updates[0].ready > 4, "cold miss: bus + L2");
        assert_eq!(unit.bus_stats().transactions, 1);
    }

    #[test]
    fn mshr_merges_requests_from_two_cores_for_the_same_line() {
        let cfg = AcmpConfig::worker_shared(2, 2);
        let mut unit = IcacheUnit::new(&cfg, vec![1, 2], true, cfg.worker_icache);
        unit.submit(0, 1, 0x0000);
        unit.submit(0, 2, 0x0000);
        let mut updates = Vec::new();
        for cycle in 0..10 {
            updates.extend(unit.tick(cycle));
        }
        assert_eq!(updates.len(), 2);
        // Only one L2 fill was issued for the two requests.
        assert_eq!(unit.l2_stats().accesses, 1);
        assert_eq!(unit.mshr_stats().merged_requests, 1);
    }

    #[test]
    fn cross_core_prefetching_turns_later_requests_into_hits() {
        let cfg = AcmpConfig::worker_shared(2, 2);
        let mut unit = IcacheUnit::new(&cfg, vec![1, 2], true, cfg.worker_icache);
        // Core 1 fetches the line and the fill completes.
        let r = unit.submit(0, 1, 0x0000);
        assert_eq!(r.phase, RequestPhase::WaitingGrant);
        let first = unit.tick(0);
        let ready = first[0].ready;
        let _ = unit.tick(ready + 1);
        // Core 2 now requests the same line: it hits in the shared cache.
        unit.submit(ready + 2, 2, 0x0000);
        let updates = unit.tick(ready + 2);
        assert_eq!(updates[0].phase, RequestPhase::HitPath);
        assert_eq!(unit.cache_stats().hits, 1);
        assert_eq!(unit.cache_stats().compulsory_misses, 1);
    }

    #[test]
    #[should_panic(expected = "at least one core")]
    fn empty_unit_rejected() {
        let cfg = AcmpConfig::baseline(1);
        IcacheUnit::new(&cfg, vec![], false, cfg.worker_icache);
    }
}
