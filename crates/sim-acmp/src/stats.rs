//! Simulation results.

use serde::{Deserialize, Serialize};
use sim_cache::CacheStats;
use sim_core::CpiStack;
use sim_frontend::{LineBufferStats, PredictorStats};
use sim_interconnect::BusStats;

/// Per-core report extracted at the end of a simulation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CoreReport {
    /// Core id (0 is the master).
    pub core: usize,
    /// Instructions committed.
    pub instructions: u64,
    /// CPI stack (commit and stall cycles by cause).
    pub cpi: CpiStack,
    /// Line-buffer statistics (I-cache access ratio).
    pub line_buffers: LineBufferStats,
    /// Branch predictor statistics.
    pub predictor: PredictorStats,
    /// Fetch blocks produced by the fetch predictor.
    pub fetch_blocks: u64,
}

/// The result of simulating one benchmark on one machine configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimResult {
    /// Total simulated cycles (wall-clock of the run).
    pub cycles: u64,
    /// Total committed instructions across all cores.
    pub instructions: u64,
    /// Cycles spent inside parallel regions.
    pub parallel_cycles: u64,
    /// Cycles spent outside parallel regions (serial phases).
    pub serial_cycles: u64,
    /// Per-core reports (index 0 is the master).
    pub cores: Vec<CoreReport>,
    /// Aggregate statistics of the worker I-caches (private ones summed, or
    /// the shared ones summed across groups).
    pub worker_icache: CacheStats,
    /// Statistics of the master's I-cache (identical to the worker entry in
    /// the all-shared configuration).
    pub master_icache: CacheStats,
    /// Aggregate I-bus statistics across sharing groups (zero for the
    /// private baseline).
    pub bus: BusStats,
    /// Aggregate L2 statistics over every I-cache unit.
    pub l2: CacheStats,
    /// Fork/join regions completed.
    pub parallel_regions: u64,
}

impl SimResult {
    /// Instructions committed by the worker cores only.
    pub fn worker_instructions(&self) -> u64 {
        self.cores.iter().skip(1).map(|c| c.instructions).sum()
    }

    /// Worker I-cache misses per kilo worker instruction (the paper's MPKI
    /// metric for Figs. 3 and 11).
    pub fn worker_icache_mpki(&self) -> f64 {
        self.worker_icache.mpki(self.worker_instructions())
    }

    /// Average I-cache access ratio over the worker cores (Fig. 9).
    pub fn worker_access_ratio(&self) -> f64 {
        let workers: Vec<_> = self.cores.iter().skip(1).collect();
        if workers.is_empty() {
            return 0.0;
        }
        workers
            .iter()
            .map(|c| c.line_buffers.access_ratio())
            .sum::<f64>()
            / workers.len() as f64
    }

    /// Sum of the worker cores' CPI stacks.
    pub fn worker_cpi_stack(&self) -> CpiStack {
        self.cores.iter().skip(1).map(|c| c.cpi).sum()
    }

    /// Fraction of cycles spent in serial phases.
    pub fn serial_cycle_fraction(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.serial_cycles as f64 / self.cycles as f64
        }
    }

    /// Overall instructions per cycle across the whole machine.
    pub fn machine_ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.instructions as f64 / self.cycles as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(core: usize, instructions: u64) -> CoreReport {
        let mut cpi = CpiStack::new();
        cpi.instructions = instructions;
        cpi.commit_cycles = instructions;
        CoreReport {
            core,
            instructions,
            cpi,
            line_buffers: LineBufferStats {
                line_requests: 100,
                hits: 50,
                pending_hits: 0,
                icache_accesses: 50,
                allocation_stalls: 0,
            },
            predictor: PredictorStats::default(),
            fetch_blocks: 10,
        }
    }

    fn result() -> SimResult {
        SimResult {
            cycles: 1000,
            instructions: 3000,
            parallel_cycles: 800,
            serial_cycles: 200,
            cores: vec![report(0, 1000), report(1, 1000), report(2, 1000)],
            worker_icache: CacheStats {
                accesses: 100,
                hits: 98,
                misses: 2,
                compulsory_misses: 2,
                non_compulsory_misses: 0,
                evictions: 0,
            },
            master_icache: CacheStats::default(),
            bus: BusStats::default(),
            l2: CacheStats::default(),
            parallel_regions: 2,
        }
    }

    #[test]
    fn worker_aggregates() {
        let r = result();
        assert_eq!(r.worker_instructions(), 2000);
        assert!((r.worker_icache_mpki() - 1.0).abs() < 1e-12);
        assert!((r.worker_access_ratio() - 0.5).abs() < 1e-12);
        assert_eq!(r.worker_cpi_stack().instructions, 2000);
    }

    #[test]
    fn machine_level_metrics() {
        let r = result();
        assert!((r.serial_cycle_fraction() - 0.2).abs() < 1e-12);
        assert!((r.machine_ipc() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn zero_cycles_are_handled() {
        let mut r = result();
        r.cycles = 0;
        assert_eq!(r.serial_cycle_fraction(), 0.0);
        assert_eq!(r.machine_ipc(), 0.0);
    }
}
