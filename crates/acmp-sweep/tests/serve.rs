//! Integration tests of `sweep serve`: snapshot-consistent concurrent
//! reads while a writer publishes and compacts, and resilience to client
//! hangups.
//!
//! The consistency contract under test: every `/query` response must be
//! byte-identical to some *offline* `sweep query` over a store state that
//! actually existed (a write prefix), no response may mix epochs, and a
//! post-quiesce query must see every write.

use acmp_sweep::serve::Server;
use acmp_sweep::{Catalog, DiskStore, Query, RawKey};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("sweep-serve-test-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// A result-shaped key, as the engine's `JobKey` mints them.
fn result_key(benchmark: &str, design: &str) -> RawKey {
    RawKey::new(format!(
        "{{\"generator\":{{\"seed\":7}},\"benchmark\":\"{benchmark}\",\
         \"design\":{{\"name\":\"{design}\",\"sharing\":\"Private\"}}}}"
    ))
}

/// Publishes one result the way a finished sweep process does: a fresh
/// store handle appends into its own new segment file and exits.
fn publish(root: &PathBuf, benchmark: &str, design: &str, cycles: u64) {
    let writer = DiskStore::open(root).unwrap();
    let value: serde::Value =
        serde_json::from_str(&format!("{{\"cycles\":{cycles},\"ipc\":0.5}}")).unwrap();
    writer.save(&result_key(benchmark, design), &value).unwrap();
}

/// The offline answer: what `sweep query cycles>0 --by cycles` renders
/// over the store as it stands right now.  Uses the same library path as
/// the CLI, so this is the byte-exact reference.
fn offline_answer(root: &PathBuf) -> String {
    let store = DiskStore::open(root).unwrap();
    let catalog = Catalog::open(&store).unwrap();
    let query = Query::parse(&[], "cycles", None, false).unwrap();
    let mut body = String::new();
    for hit in catalog.query(&query) {
        body.push_str(&hit.to_jsonl(&query.by));
        body.push('\n');
    }
    body
}

/// Issues one raw HTTP request and returns (status line, body).
fn http(addr: SocketAddr, request: &str) -> (String, String) {
    let mut stream = TcpStream::connect(addr).unwrap();
    stream.write_all(request.as_bytes()).unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).unwrap();
    let (head, body) = response
        .split_once("\r\n\r\n")
        .expect("response has a head/body separator");
    let status = head.lines().next().unwrap_or("").to_string();
    (status, body.to_string())
}

fn post_query(addr: SocketAddr, tokens: &str) -> (String, String) {
    http(
        addr,
        &format!(
            "POST /query HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{tokens}",
            tokens.len()
        ),
    )
}

#[test]
fn concurrent_queries_are_snapshot_consistent_across_publish_and_compact() {
    let root = temp_dir("concurrent");
    let benchmarks = ["Cg", "Lu", "Mg", "Ft", "Sp", "Bt"];

    // Precompute the offline answer for every write-prefix state by
    // replaying the same publishes into a scratch store.  The rendered
    // bytes depend only on the record contents, not the directory, so
    // these are exactly the answers the server may legally give.
    let scratch = temp_dir("concurrent-scratch");
    publish(&scratch, "Cg", "base", 100);
    let mut legal: Vec<String> = vec![offline_answer(&scratch)];
    for (i, benchmark) in benchmarks.iter().enumerate().skip(1) {
        publish(&scratch, benchmark, "base", 100 + 10 * i as u64);
        legal.push(offline_answer(&scratch));
    }

    // The served store starts with the first publish already in place.
    publish(&root, "Cg", "base", 100);
    let mut server = Server::start(&root, "127.0.0.1:0", 4).unwrap();
    let addr = server.local_addr();

    // N readers hammer /query until the writer is done.
    let done = Arc::new(AtomicBool::new(false));
    let readers: Vec<_> = (0..3)
        .map(|_| {
            let done = Arc::clone(&done);
            std::thread::spawn(move || {
                let mut seen: Vec<String> = Vec::new();
                // At least 20 queries each, even if the writer finishes
                // first — the tail ones all see the final state, which is
                // as legal as any other.
                while seen.len() < 20 || !done.load(Ordering::SeqCst) {
                    let (status, body) = post_query(addr, "--by cycles");
                    assert_eq!(status, "HTTP/1.1 200 OK");
                    seen.push(body);
                }
                seen
            })
        })
        .collect();

    // The writer publishes the remaining results one segment at a time and
    // compacts mid-stream (deleting the superseded segment files under the
    // server's feet).
    for (i, benchmark) in benchmarks.iter().enumerate().skip(1) {
        publish(&root, benchmark, "base", 100 + 10 * i as u64);
        if i == 3 {
            DiskStore::open(&root).unwrap().compact().unwrap();
        }
    }
    done.store(true, Ordering::SeqCst);

    let mut responses = 0usize;
    for reader in readers {
        for body in reader.join().unwrap() {
            assert!(
                legal.contains(&body),
                "response matches no offline answer over any store state that \
                 existed:\n{body}"
            );
            responses += 1;
        }
    }
    assert!(responses > 0, "the readers actually queried");

    // Post-quiesce: the next query must see every write (the last answer).
    let (status, body) = post_query(addr, "--by cycles");
    assert_eq!(status, "HTTP/1.1 200 OK");
    assert_eq!(
        body,
        legal[legal.len() - 1],
        "a post-quiesce query sees all writes"
    );

    server.shutdown();
}

#[test]
fn a_client_hangup_is_logged_and_never_fatal() {
    let root = temp_dir("hangup");
    publish(&root, "Cg", "base", 100);
    // Metrics on so the disconnect counter (and /stats) is live.
    acmp_obs::enable_metrics();
    let before = acmp_obs::registry()
        .snapshot()
        .counter(acmp_obs::names::SERVE_CLIENT_DISCONNECTS);

    let mut server = Server::start(&root, "127.0.0.1:0", 2).unwrap();
    let addr = server.local_addr();

    // Hang up mid-request: promise a body and close without sending it.
    {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .write_all(b"POST /query HTTP/1.1\r\nHost: t\r\nContent-Length: 64\r\n\r\n--by")
            .unwrap();
    } // dropped: the server sees EOF with 60 bytes still owed

    // And hang up mid-response: send a full query, then close both
    // directions without reading a byte of the answer.
    {
        let stream = TcpStream::connect(addr).unwrap();
        (&stream)
            .write_all(b"GET /query?--by=cycles HTTP/1.1\r\nHost: t\r\n\r\n")
            .unwrap();
        stream.shutdown(std::net::Shutdown::Both).unwrap();
    }

    // The server is still answering, byte-identically to the offline CLI.
    let (status, body) = post_query(addr, "--by cycles");
    assert_eq!(status, "HTTP/1.1 200 OK");
    assert_eq!(body, offline_answer(&root));

    // The mid-request hangup is deterministic, so at least one disconnect
    // was counted and the server survived it.  The counting happens on a
    // worker thread, so give it a moment to land.
    let mut after = before;
    for _ in 0..400 {
        after = acmp_obs::registry()
            .snapshot()
            .counter(acmp_obs::names::SERVE_CLIENT_DISCONNECTS);
        if after > before {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(5));
    }
    assert!(
        after > before,
        "the hangup was counted ({before} -> {after})"
    );

    // /stats answers the versioned metrics document.
    let (status, stats) = http(addr, "GET /stats HTTP/1.1\r\nHost: t\r\n\r\n");
    assert_eq!(status, "HTTP/1.1 200 OK");
    assert!(
        stats.contains("\"schema\":\"acmp-obs-metrics/v1\""),
        "{stats}"
    );
    assert!(
        stats.contains(&format!(
            "\"{}\"",
            acmp_obs::names::SERVE_CLIENT_DISCONNECTS
        )),
        "{stats}"
    );

    server.shutdown();
}

#[test]
fn bad_queries_answer_400_with_the_vocabulary() {
    let root = temp_dir("badquery");
    publish(&root, "Cg", "base", 100);
    let mut server = Server::start(&root, "127.0.0.1:0", 2).unwrap();
    let addr = server.local_addr();

    let (status, body) = post_query(addr, "--by cylces");
    assert_eq!(status, "HTTP/1.1 400 Bad Request");
    assert!(body.contains("unknown metric `cylces`"), "{body}");
    assert!(body.contains("cycles"), "the vocabulary is listed: {body}");

    let (status, _) = post_query(addr, "benchmark=cg");
    assert_eq!(status, "HTTP/1.1 400 Bad Request");

    let (status, body) = http(addr, "GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n");
    assert_eq!(status, "HTTP/1.1 200 OK");
    assert_eq!(body, "ok\n");

    server.shutdown();
}
