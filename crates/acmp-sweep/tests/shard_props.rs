//! Property-based tests of the sharding layer: for *arbitrary* grids and
//! any shard count up to 16, `ShardSpec` ownership and
//! `shard_key_schedule` must partition the keyspace exactly — ownership
//! disjoint, union covering every key exactly once, and every per-shard
//! schedule a sorted (digest-order) sub-sequence of the whole schedule.
//! These are the invariants the multi-machine merge trusts: if any of
//! them breaks, `sweep merge` either loses rows or double-emits them.

use acmp_sweep::merge::shard_key_schedule;
use acmp_sweep::{DesignPoint, JobKey, ShardSpec};
use hpc_workloads::{Benchmark, GeneratorConfig};
use proptest::prelude::*;

/// Builds an arbitrary grid's job keys: `nb` benchmarks (rotating through
/// the full benchmark list from `start`) × line-buffer sweeps `1..=nlb`,
/// keyed under a seed-perturbed generator.  Every cell is distinct, so the
/// key list has no duplicates by construction.
fn arbitrary_keys(nb: usize, start: usize, nlb: usize, seed: u64) -> Vec<JobKey> {
    let generator = GeneratorConfig::small().with_seed(seed % 1024);
    let all = Benchmark::ALL;
    let mut keys = Vec::with_capacity(nb * nlb);
    for b in 0..nb {
        let benchmark = all[(start + b) % all.len()];
        for lb in 1..=nlb {
            let design = DesignPoint::baseline().with_line_buffers(lb).unwrap();
            keys.push(JobKey::new(&generator, benchmark, &design));
        }
    }
    keys
}

/// Whether `sub` is a (not necessarily contiguous) sub-sequence of `whole`.
fn is_subsequence(sub: &[String], whole: &[String]) -> bool {
    let mut walk = whole.iter();
    sub.iter().all(|item| walk.any(|w| w == item))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn ownership_is_disjoint_and_total(
        nb in 1usize..7,
        start in 0usize..24,
        nlb in 1usize..9,
        seed in any::<u64>(),
        count in 1u32..17,
    ) {
        let keys = arbitrary_keys(nb, start, nlb, seed);
        for key in &keys {
            let owners = ShardSpec::all(count)
                .filter(|shard| shard.owns(key.digest()))
                .count();
            prop_assert_eq!(owners, 1, "key {} must have exactly one owner", key.hex());
        }
    }

    #[test]
    fn schedules_partition_the_keyspace_exactly_once(
        nb in 1usize..7,
        start in 0usize..24,
        nlb in 1usize..9,
        seed in any::<u64>(),
        count in 1u32..17,
    ) {
        let keys = arbitrary_keys(nb, start, nlb, seed);
        let schedule = shard_key_schedule(&keys, count);
        prop_assert_eq!(schedule.len(), count as usize);

        // The union (as a multiset) is exactly the full key list: nothing
        // lost, nothing duplicated across shards.
        let mut union: Vec<String> = schedule.concat();
        union.sort_unstable();
        let mut want: Vec<String> = keys.iter().map(JobKey::hex).collect();
        want.sort_unstable();
        prop_assert_eq!(&union, &want);

        // And each shard's schedule holds exactly the keys it owns.
        for (shard, owned) in ShardSpec::all(count).zip(&schedule) {
            for key in &keys {
                let scheduled = owned.contains(&key.hex());
                prop_assert_eq!(
                    scheduled,
                    shard.owns(key.digest()),
                    "shard {} and key {} disagree", shard, key.hex()
                );
            }
        }
    }

    #[test]
    fn each_shard_schedule_is_a_sorted_subsequence_of_the_whole(
        nb in 1usize..7,
        start in 0usize..24,
        nlb in 1usize..9,
        seed in any::<u64>(),
        count in 1u32..17,
    ) {
        let keys = arbitrary_keys(nb, start, nlb, seed);
        let mut whole: Vec<String> = shard_key_schedule(&keys, 1).remove(0);
        whole.sort_unstable();
        for (i, shard) in shard_key_schedule(&keys, count).iter().enumerate() {
            prop_assert!(shard.is_sorted(), "shard {} schedule must be sorted", i + 1);
            prop_assert!(
                is_subsequence(shard, &whole),
                "shard {} schedule must be a sub-sequence of the digest-ordered whole",
                i + 1
            );
        }
    }

    #[test]
    fn degenerate_splits_yield_empty_schedules_not_errors(
        seed in any::<u64>(),
        count in 2u32..17,
    ) {
        // One cell, many shards: exactly one shard owns the key, the rest
        // get empty — but well-formed — schedules.
        let keys = arbitrary_keys(1, (seed % 24) as usize, 1, seed);
        let schedule = shard_key_schedule(&keys, count);
        prop_assert_eq!(schedule.len(), count as usize);
        let occupied = schedule.iter().filter(|s| !s.is_empty()).count();
        prop_assert_eq!(occupied, 1);
        let total: usize = schedule.iter().map(Vec::len).sum();
        prop_assert_eq!(total, 1);
    }
}
