//! End-to-end tests of the `sweep` CLI binary: determinism across worker
//! counts, warm starts from the on-disk store, and multi-process sharding
//! (`--shards N` must merge byte-identically to an unsharded run with no
//! cell simulated twice).

use std::path::PathBuf;
use std::process::Command;

fn sweep_bin() -> &'static str {
    env!("CARGO_BIN_EXE_sweep")
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("sweep-cli-test-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

struct Run {
    stdout: String,
    stderr: String,
}

fn run_sweep<S: AsRef<std::ffi::OsStr> + std::fmt::Debug>(args: &[S]) -> Run {
    let output = Command::new(sweep_bin())
        .args(args)
        .output()
        .expect("sweep binary runs");
    assert!(
        output.status.success(),
        "sweep {args:?} failed:\n{}",
        String::from_utf8_lossy(&output.stderr)
    );
    Run {
        stdout: String::from_utf8(output.stdout).unwrap(),
        stderr: String::from_utf8(output.stderr).unwrap(),
    }
}

/// JSONL lines sorted by the embedded job key (each line starts with
/// `{"key":"...`, so a plain string sort orders by key).
fn sorted_rows(stdout: &str) -> Vec<&str> {
    let mut rows: Vec<&str> = stdout.lines().collect();
    rows.sort_unstable();
    rows
}

#[test]
fn worker_count_does_not_change_the_output() {
    let dir = temp_dir("workers");
    // Separate cache dirs so both runs simulate from cold.
    let args = |workers: &str, cache: &str| -> Vec<String> {
        [
            "--benchmarks",
            "cg,lu",
            "--designs",
            "baseline,naive:2",
            "--quiet",
            "--workers",
            workers,
            "--cache-dir",
            cache,
        ]
        .iter()
        .map(ToString::to_string)
        .collect()
    };
    let one = run_sweep(&args("1", dir.join("c1").to_str().unwrap()));
    let four = run_sweep(&args("4", dir.join("c4").to_str().unwrap()));
    assert_eq!(sorted_rows(&one.stdout), sorted_rows(&four.stdout));
    assert_eq!(one.stdout.lines().count(), 4);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn second_run_is_served_from_the_disk_store() {
    let dir = temp_dir("warm");
    let cache = dir.join("cache");
    let cache = cache.to_str().unwrap();
    let args = [
        "--grid",
        "fig09",
        "--benchmarks",
        "cg",
        "--quiet",
        "--cache-dir",
        cache,
    ];

    let cold = run_sweep(&args);
    assert!(
        cold.stderr.contains("disk-hits 0"),
        "cold run must simulate: {}",
        cold.stderr
    );

    let warm = run_sweep(&args);
    assert!(
        warm.stderr.contains("simulated 0"),
        "warm run must not simulate: {}",
        warm.stderr
    );
    assert!(
        warm.stderr.contains("disk-hits 3"),
        "warm run must hit the store for every cell: {}",
        warm.stderr
    );
    assert!(
        warm.stderr.contains("trace-gens 0"),
        "warm run must not regenerate traces: {}",
        warm.stderr
    );
    assert_eq!(
        sorted_rows(&cold.stdout),
        sorted_rows(&warm.stdout),
        "warm rows must be byte-identical to cold rows"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn compaction_preserves_warm_starts_and_shrinks_the_directory() {
    let dir = temp_dir("compact");
    let cache = dir.join("cache");
    let cache = cache.to_str().unwrap();
    let args = [
        "--grid",
        "fig09",
        "--benchmarks",
        "cg,lu",
        "--quiet",
        "--cache-dir",
        cache,
    ];
    let cold = run_sweep(&args);

    // Standalone maintenance mode: compact the store, run nothing.
    let compacted = run_sweep(&["--compact", "--cache-dir", cache]);
    assert!(
        compacted.stdout.contains("live entries"),
        "{}",
        compacted.stdout
    );
    assert!(compacted.stderr.is_empty(), "{}", compacted.stderr);

    // The packed layout must use fewer files than one per entry: 6 result
    // cells + 2 trace sets would have been 8 files in the old layout.
    let files = std::fs::read_dir(cache).unwrap().count();
    assert!(files < 8, "expected a packed store, found {files} files");

    // A run from the compacted store is fully warm: zero simulations, zero
    // trace generations, byte-identical rows.
    let warm = run_sweep(&args);
    assert!(warm.stderr.contains("simulated 0"), "{}", warm.stderr);
    assert!(warm.stderr.contains("trace-gens 0"), "{}", warm.stderr);
    assert!(warm.stderr.contains("disk-hits 6"), "{}", warm.stderr);
    assert_eq!(sorted_rows(&cold.stdout), sorted_rows(&warm.stdout));

    // --cache-stats reports without touching anything.
    let stats = run_sweep(&["--cache-stats", "--cache-dir", cache]);
    assert!(stats.stdout.contains("entries 8"), "{}", stats.stdout);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Sums a `<field> N` counter over every per-shard summary line.
fn summed_counter(stderr: &str, field: &str) -> u64 {
    let tag = format!("{field} ");
    stderr
        .lines()
        .filter_map(|line| {
            let at = line.find(&tag)?;
            line[at + tag.len()..]
                .split(',')
                .next()?
                .trim()
                .parse::<u64>()
                .ok()
        })
        .sum()
}

#[test]
fn sharded_runs_merge_byte_identical_to_unsharded() {
    let dir = temp_dir("sharded");
    let args = |cache: PathBuf| -> Vec<String> {
        [
            "--grid",
            "fig09",
            "--benchmarks",
            "cg,lu",
            "--quiet",
            "--cache-dir",
            cache.to_str().unwrap(),
        ]
        .iter()
        .map(ToString::to_string)
        .collect()
    };
    let single = run_sweep(&args(dir.join("c1")));
    for n in ["2", "3"] {
        let mut sharded_args = args(dir.join(format!("c{n}")));
        sharded_args.extend(["--shards".to_string(), n.to_string()]);
        let sharded = run_sweep(&sharded_args);
        assert_eq!(
            single.stdout, sharded.stdout,
            "--shards {n} must merge byte-identically to the unsharded run"
        );
        assert!(
            sharded
                .stderr
                .contains(&format!("merged {n} shard streams")),
            "{}",
            sharded.stderr
        );
        // Disjoint digest ownership: the 6 cells simulate exactly once in
        // total across the shard processes.
        assert_eq!(
            summed_counter(&sharded.stderr, "simulated"),
            6,
            "no double work across {n} shards: {}",
            sharded.stderr
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn sharded_processes_share_one_store_and_rerun_fully_warm() {
    let dir = temp_dir("sharded-warm");
    let cache = dir.join("cache");
    let args: Vec<String> = [
        "--grid",
        "fig09",
        "--benchmarks",
        "cg",
        "--quiet",
        "--shards",
        "3",
        "--cache-dir",
        cache.to_str().unwrap(),
    ]
    .iter()
    .map(ToString::to_string)
    .collect();

    let cold = run_sweep(&args);
    assert_eq!(
        summed_counter(&cold.stderr, "simulated"),
        3,
        "{}",
        cold.stderr
    );

    // All three shard processes append into the one cache dir; the re-run
    // must be fully warm in every shard: zero simulations, zero trace
    // generations, and byte-identical merged rows.
    let warm = run_sweep(&args);
    assert_eq!(
        summed_counter(&warm.stderr, "simulated"),
        0,
        "{}",
        warm.stderr
    );
    assert_eq!(
        summed_counter(&warm.stderr, "trace-gens"),
        0,
        "{}",
        warm.stderr
    );
    assert_eq!(cold.stdout, warm.stdout);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn single_shard_emits_its_subsequence_of_the_unsharded_rows() {
    let base = [
        "--grid",
        "fig09",
        "--benchmarks",
        "cg,lu",
        "--quiet",
        "--no-disk-cache",
    ];
    let full = run_sweep(&base);
    let mut shard_args: Vec<&str> = base.to_vec();
    shard_args.extend(["--shard", "2/3"]);
    let shard = run_sweep(&shard_args);
    assert!(shard.stderr.contains("shard 2/3 owns"), "{}", shard.stderr);
    // Every shard row appears in the unsharded stream, in the same order.
    let full_rows: Vec<&str> = full.stdout.lines().collect();
    let shard_rows: Vec<&str> = shard.stdout.lines().collect();
    assert!(!shard_rows.is_empty());
    assert!(shard_rows.len() < full_rows.len());
    let mut walk = full_rows.iter();
    for row in &shard_rows {
        assert!(
            walk.any(|full_row| full_row == row),
            "shard rows must be an ordered sub-sequence of the full stream"
        );
    }
}

/// The committed golden fixture: `--grid fig09 --benchmarks cg,lu` at
/// quick scale, exactly as the CLI emits it.
fn fixture_bytes() -> String {
    let path =
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../tests/fixtures/fig09.jsonl");
    std::fs::read_to_string(path).expect("committed fixture is readable")
}

#[test]
fn unsharded_output_matches_the_committed_fixture() {
    // Golden snapshot: any drift in row format, field order, float
    // printing, key derivation or simulation results fails here loudly
    // instead of silently changing every consumer's bytes.
    let run = run_sweep(&[
        "--grid",
        "fig09",
        "--benchmarks",
        "cg,lu",
        "--quiet",
        "--no-disk-cache",
    ]);
    assert_eq!(
        run.stdout,
        fixture_bytes(),
        "CLI output drifted off tests/fixtures/fig09.jsonl — if intentional, \
         regenerate the fixture and flag the format change loudly"
    );
}

/// Runs `sweep` expecting failure; returns stderr.
fn run_sweep_expect_failure<S: AsRef<std::ffi::OsStr> + std::fmt::Debug>(args: &[S]) -> String {
    let output = Command::new(sweep_bin())
        .args(args)
        .output()
        .expect("sweep binary runs");
    assert!(
        !output.status.success(),
        "sweep {args:?} unexpectedly passed"
    );
    String::from_utf8(output.stderr).unwrap()
}

#[test]
fn manifest_pipeline_plans_runs_merges_and_transfers_between_machines() {
    // The full multi-machine walkthrough on one host: plan → per-"machine"
    // shard runs in disjoint cache dirs → offline merge (byte-identical to
    // the fixture) → withheld/corrupt streams rejected with zero output →
    // segment export/import warming the second machine to zero simulations.
    let dir = temp_dir("manifest-pipeline");
    let plan = dir.join("plan.json");
    let plan_s = plan.to_str().unwrap();
    let shard1 = dir.join("shard-1.jsonl");
    let shard2 = dir.join("shard-2.jsonl");

    // Plan: 6 cells across 2 shards, signed.
    let planned = run_sweep(&[
        "--plan",
        plan_s,
        "--grid",
        "fig09",
        "--benchmarks",
        "cg,lu",
        "--shards",
        "2",
    ]);
    assert!(
        planned.stderr.contains("planned 6 cells across 2 shards"),
        "{}",
        planned.stderr
    );
    let manifest_text = std::fs::read_to_string(&plan).unwrap();
    assert!(manifest_text.contains("\"digest\""), "{manifest_text}");

    // Each "machine" runs its shard against its own cache dir — no shared
    // filesystem, the manifest is the only shared artifact.
    for (i, (out, cache)) in [(&shard1, "m1"), (&shard2, "m2")].iter().enumerate() {
        let run = run_sweep(&[
            "--manifest",
            plan_s,
            "--shard",
            &format!("{}/2", i + 1),
            "--cache-dir",
            dir.join(cache).to_str().unwrap(),
            "--out",
            out.to_str().unwrap(),
            "--quiet",
        ]);
        assert!(
            run.stderr.contains("manifest") && run.stderr.contains("validated"),
            "{}",
            run.stderr
        );
    }

    // Offline merge reproduces the unsharded bytes exactly.
    let merged = dir.join("merged.jsonl");
    let merge = run_sweep(&[
        "merge",
        "--manifest",
        plan_s,
        "--out",
        merged.to_str().unwrap(),
        shard1.to_str().unwrap(),
        shard2.to_str().unwrap(),
    ]);
    assert!(merge.stderr.contains("byte-identical"), "{}", merge.stderr);
    assert_eq!(std::fs::read_to_string(&merged).unwrap(), fixture_bytes());

    // A withheld shard is named, and nothing is written.
    let gone = dir.join("never-written.jsonl");
    let stderr = run_sweep_expect_failure(&[
        "merge",
        "--manifest",
        plan_s,
        "--out",
        gone.to_str().unwrap(),
        shard1.to_str().unwrap(),
    ]);
    assert!(
        stderr.contains("shard 2/2") && stderr.contains("missing"),
        "the withheld shard must be named: {stderr}"
    );
    assert!(stderr.contains("wrote nothing"), "{stderr}");
    assert!(!gone.exists(), "a failed merge must not create its output");

    // Warm transfer: export machine 1's store, import into machine 2,
    // and the *full* grid re-runs there with zero simulations and zero
    // trace generations.
    let bundle = dir.join("m1.bundle");
    let exported = run_sweep(&[
        "--export-segments",
        bundle.to_str().unwrap(),
        "--cache-dir",
        dir.join("m1").to_str().unwrap(),
    ]);
    assert!(exported.stdout.contains("exported"), "{}", exported.stdout);
    let imported = run_sweep(&[
        "--import-segments",
        bundle.to_str().unwrap(),
        "--cache-dir",
        dir.join("m2").to_str().unwrap(),
    ]);
    assert!(imported.stdout.contains("imported"), "{}", imported.stdout);
    let warm = run_sweep(&[
        "--grid",
        "fig09",
        "--benchmarks",
        "cg,lu",
        "--quiet",
        "--cache-dir",
        dir.join("m2").to_str().unwrap(),
    ]);
    assert!(warm.stderr.contains("simulated 0"), "{}", warm.stderr);
    assert!(warm.stderr.contains("trace-gens 0"), "{}", warm.stderr);
    assert_eq!(warm.stdout, fixture_bytes());

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn merge_corruption_matrix_rejects_damage_with_zero_output_and_intact_inputs() {
    // Build one good plan + two good shard streams, then damage copies in
    // every way a multi-machine transfer realistically can.  Every case
    // must fail, write nothing, and leave the inputs untouched.
    let dir = temp_dir("merge-corruption");
    let plan = dir.join("plan.json");
    let plan_s = plan.to_str().unwrap().to_string();
    // cg,lu × fig09 splits 3/3 across two shards, so both slots carry rows
    // and a swapped file really is "the wrong slot", not an empty stream.
    run_sweep(&[
        "--plan",
        &plan_s,
        "--grid",
        "fig09",
        "--benchmarks",
        "cg,lu",
        "--shards",
        "2",
    ]);
    for i in 1..=2 {
        run_sweep(&[
            "--manifest",
            &plan_s,
            "--shard",
            &format!("{i}/2"),
            "--no-disk-cache",
            "--out",
            dir.join(format!("shard-{i}.jsonl")).to_str().unwrap(),
            "--quiet",
        ]);
    }
    let good_manifest = std::fs::read_to_string(&plan).unwrap();
    let good_shard =
        |i: u32| std::fs::read_to_string(dir.join(format!("shard-{i}.jsonl"))).unwrap();
    let (good1, good2) = (good_shard(1), good_shard(2));

    // Each case: (tag, manifest text, slot-1 stream, slot-2 stream, expected message)
    let truncated_manifest = &good_manifest[..good_manifest.len() / 2];
    let tampered_manifest = good_manifest.replace("\"scale\":\"quick\"", "\"scale\":\"paper\"");
    assert_ne!(tampered_manifest, good_manifest);
    let crlf1 = good1.replace('\n', "\r\n");
    let mut duplicated2 = good2.clone();
    duplicated2.push_str(good1.lines().next().unwrap());
    duplicated2.push('\n');
    let cases: Vec<(&str, &str, &str, &str, &str)> = vec![
        (
            "truncated-manifest",
            truncated_manifest,
            &good1,
            &good2,
            "parse",
        ),
        (
            "digest-mismatch",
            &tampered_manifest,
            &good1,
            &good2,
            "digest mismatch",
        ),
        (
            "wrong-slot",
            &good_manifest,
            &good2,
            &good1,
            "schedule expects",
        ),
        ("crlf", &good_manifest, &crlf1, &good2, "CRLF"),
        (
            "duplicate-across-shards",
            &good_manifest,
            &good1,
            &duplicated2,
            "more rows",
        ),
    ];

    for (tag, manifest, s1, s2, expect) in cases {
        let case_dir = dir.join(tag);
        std::fs::create_dir_all(&case_dir).unwrap();
        let case_plan = case_dir.join("plan.json");
        let f1 = case_dir.join("shard-1.jsonl");
        let f2 = case_dir.join("shard-2.jsonl");
        std::fs::write(&case_plan, manifest).unwrap();
        std::fs::write(&f1, s1).unwrap();
        std::fs::write(&f2, s2).unwrap();
        let out = case_dir.join("merged.jsonl");

        let stderr = run_sweep_expect_failure(&[
            "merge",
            "--manifest",
            case_plan.to_str().unwrap(),
            "--out",
            out.to_str().unwrap(),
            f1.to_str().unwrap(),
            f2.to_str().unwrap(),
        ]);
        assert!(
            stderr.contains(expect),
            "{tag}: want `{expect}` in: {stderr}"
        );
        assert!(!out.exists(), "{tag}: zero partial output");
        // Inputs are exactly as supplied — the merge never mutates them.
        assert_eq!(
            std::fs::read_to_string(&case_plan).unwrap(),
            *manifest,
            "{tag}"
        );
        assert_eq!(std::fs::read_to_string(&f1).unwrap(), *s1, "{tag}");
        assert_eq!(std::fs::read_to_string(&f2).unwrap(), *s2, "{tag}");
    }

    // The same damaged manifests must also stop a shard *run* up front.
    for (tag, manifest, expect) in [
        ("truncated", truncated_manifest, "parse"),
        ("tampered", tampered_manifest.as_str(), "digest mismatch"),
    ] {
        let bad_plan = dir.join(format!("bad-plan-{tag}.json"));
        std::fs::write(&bad_plan, manifest).unwrap();
        let stderr = run_sweep_expect_failure(&[
            "--manifest",
            bad_plan.to_str().unwrap(),
            "--shard",
            "1/2",
            "--no-disk-cache",
        ]);
        assert!(stderr.contains(expect), "{tag}: {stderr}");
    }

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn degenerate_splits_with_more_shards_than_cells_run_clean() {
    // fig09 × cg is 3 cells; 5 shards guarantees empty shards.  The
    // coordinator must still exit 0, give every child a non-zero worker
    // pool, and merge byte-identically to the unsharded run.
    let single = run_sweep(&[
        "--grid",
        "fig09",
        "--benchmarks",
        "cg",
        "--quiet",
        "--no-disk-cache",
    ]);
    let sharded = run_sweep(&[
        "--grid",
        "fig09",
        "--benchmarks",
        "cg",
        "--quiet",
        "--no-disk-cache",
        "--shards",
        "5",
        "--workers",
        "2",
    ]);
    assert_eq!(single.stdout, sharded.stdout);
    assert!(
        sharded.stderr.contains("merged 5 shard streams"),
        "{}",
        sharded.stderr
    );
    assert!(
        sharded.stderr.contains("1 workers each") && !sharded.stderr.contains("0 workers each"),
        "the worker split must never round to zero: {}",
        sharded.stderr
    );

    // The manifest path agrees: an empty shard validates, emits zero rows
    // and exits 0.
    let dir = temp_dir("degenerate-manifest");
    let plan = dir.join("plan.json");
    run_sweep(&[
        "--plan",
        plan.to_str().unwrap(),
        "--grid",
        "fig09",
        "--benchmarks",
        "cg",
        "--shards",
        "8",
    ]);
    let mut empty_shards = 0;
    for i in 1..=8u32 {
        let out = dir.join(format!("shard-{i}.jsonl"));
        let run = run_sweep(&[
            "--manifest",
            plan.to_str().unwrap(),
            "--shard",
            &format!("{i}/8"),
            "--no-disk-cache",
            "--out",
            out.to_str().unwrap(),
            "--quiet",
        ]);
        let rows = std::fs::read_to_string(&out).unwrap().lines().count();
        if rows == 0 {
            empty_shards += 1;
            assert!(run.stderr.contains("owns 0 of 3"), "{}", run.stderr);
        }
    }
    assert!(empty_shards >= 5, "8 shards over 3 cells leave ≥ 5 empty");

    // And the merge accepts the gathered streams — including the empties.
    let merged = dir.join("merged.jsonl");
    let mut args: Vec<String> = vec![
        "merge".into(),
        "--manifest".into(),
        plan.to_str().unwrap().into(),
        "--out".into(),
        merged.to_str().unwrap().into(),
    ];
    for i in 1..=8u32 {
        args.push(
            dir.join(format!("shard-{i}.jsonl"))
                .to_str()
                .unwrap()
                .into(),
        );
    }
    let merge = run_sweep(&args);
    assert!(
        merge.stderr.contains("merged 8 shard streams"),
        "{}",
        merge.stderr
    );
    assert_eq!(std::fs::read_to_string(&merged).unwrap(), single.stdout);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn manifest_conflicts_and_mismatches_are_rejected() {
    let dir = temp_dir("manifest-conflicts");
    let plan = dir.join("plan.json");
    let plan_s = plan.to_str().unwrap().to_string();
    run_sweep(&[
        "--plan",
        &plan_s,
        "--benchmarks",
        "cg",
        "--designs",
        "baseline",
        "--shards",
        "2",
    ]);

    // Grid flags conflict with --manifest: the grid comes from the plan.
    let stderr = run_sweep_expect_failure(&[
        "--manifest",
        &plan_s,
        "--shard",
        "1/2",
        "--benchmarks",
        "cg",
        "--no-disk-cache",
    ]);
    assert!(stderr.contains("conflicts with --manifest"), "{stderr}");

    // A shard spec from a different split is rejected against the plan.
    let stderr =
        run_sweep_expect_failure(&["--manifest", &plan_s, "--shard", "1/3", "--no-disk-cache"]);
    assert!(stderr.contains("planned for 2 shards"), "{stderr}");

    // --manifest without --shard points at `sweep merge`.
    let stderr = run_sweep_expect_failure(&["--manifest", &plan_s, "--no-disk-cache"]);
    assert!(stderr.contains("--shard"), "{stderr}");

    // merge requires a manifest.
    let stderr = run_sweep_expect_failure(&["merge", "some.jsonl"]);
    assert!(stderr.contains("--manifest"), "{stderr}");

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn broken_pipe_exits_nonzero_and_quietly() {
    // `sweep … | head` used to be indistinguishable from a successful
    // short run; now a write onto a closed pipe exits non-zero — but
    // without spamming "write failed" into every early-exiting pipeline.
    let (reader, writer) = std::io::pipe().unwrap();
    drop(reader);
    let output = Command::new(sweep_bin())
        .args([
            "--benchmarks",
            "cg",
            "--designs",
            "baseline",
            "--quiet",
            "--no-disk-cache",
        ])
        .stdin(std::process::Stdio::null())
        .stdout(std::process::Stdio::from(writer))
        .stderr(std::process::Stdio::piped())
        .output()
        .unwrap();
    assert!(!output.status.success(), "a broken pipe must not exit 0");
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(
        !stderr.contains("write failed"),
        "EPIPE must stay quiet: {stderr}"
    );
}

#[test]
fn conflicting_shard_options_are_rejected() {
    let output = Command::new(sweep_bin())
        .args(["--shards", "2", "--shard", "1/2", "--no-disk-cache"])
        .output()
        .unwrap();
    assert!(!output.status.success());
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("mutually exclusive"), "{stderr}");

    let output = Command::new(sweep_bin())
        .args(["--shard", "4/3", "--no-disk-cache"])
        .output()
        .unwrap();
    assert!(!output.status.success());
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("out of range"), "{stderr}");
}

#[test]
fn bad_specs_exit_nonzero_with_a_message() {
    let output = Command::new(sweep_bin())
        .args(["--designs", "not-a-design", "--no-disk-cache"])
        .output()
        .unwrap();
    assert!(!output.status.success());
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("not-a-design"), "{stderr}");
}

#[test]
fn run_subcommand_matches_the_legacy_flag_grammar() {
    // The deprecated top-level flags must stay a silent alias for
    // `sweep run` — byte-identical rows, same summary shape.
    let legacy = run_sweep(&[
        "--grid",
        "fig09",
        "--benchmarks",
        "cg",
        "--quiet",
        "--no-disk-cache",
    ]);
    let new = run_sweep(&[
        "run",
        "--grid",
        "fig09",
        "--benchmarks",
        "cg",
        "--quiet",
        "--no-disk-cache",
    ]);
    assert_eq!(legacy.stdout, new.stdout);
    assert!(new.stderr.contains("3 jobs"), "{}", new.stderr);
}

#[test]
fn plan_subcommand_writes_a_manifest_run_and_merge_complete() {
    let dir = temp_dir("plan-subcommand");
    let manifest = dir.join("plan.json");
    let manifest = manifest.to_str().unwrap();
    let planned = run_sweep(&[
        "plan",
        manifest,
        "--grid",
        "fig09",
        "--benchmarks",
        "cg,lu",
        "--shards",
        "2",
    ]);
    assert!(
        planned.stderr.contains("planned 6 cells across 2 shards"),
        "{}",
        planned.stderr
    );
    // The printed hints must use the subcommand grammar.
    assert!(
        planned.stderr.contains("sweep run --manifest"),
        "{}",
        planned.stderr
    );

    for shard in 1..=2 {
        let out = dir.join(format!("shard-{shard}.jsonl"));
        run_sweep(&[
            "run",
            "--manifest",
            manifest,
            "--shard",
            &format!("{shard}/2"),
            "--quiet",
            "--no-disk-cache",
            "--out",
            out.to_str().unwrap(),
        ]);
    }
    let merged = run_sweep(&[
        "merge",
        "--manifest",
        manifest,
        dir.join("shard-1.jsonl").to_str().unwrap(),
        dir.join("shard-2.jsonl").to_str().unwrap(),
    ]);
    assert_eq!(merged.stdout.lines().count(), 6);

    let whole = run_sweep(&[
        "run",
        "--grid",
        "fig09",
        "--benchmarks",
        "cg,lu",
        "--quiet",
        "--no-disk-cache",
    ]);
    assert_eq!(
        merged.stdout, whole.stdout,
        "merge must equal unsharded run"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn store_subcommand_covers_stats_compact_export_import() {
    let dir = temp_dir("store-subcommand");
    let cache = dir.join("cache");
    let cache = cache.to_str().unwrap();
    run_sweep(&[
        "run",
        "--grid",
        "fig09",
        "--benchmarks",
        "cg",
        "--quiet",
        "--cache-dir",
        cache,
    ]);

    let stats = run_sweep(&["store", "stats", "--cache-dir", cache]);
    assert!(stats.stdout.contains("entries"), "{}", stats.stdout);

    let compacted = run_sweep(&["store", "compact", "--cache-dir", cache]);
    assert!(
        compacted.stdout.contains("live entries"),
        "{}",
        compacted.stdout
    );

    let bundle = dir.join("bundle.bin");
    let bundle = bundle.to_str().unwrap();
    run_sweep(&["store", "export", bundle, "--cache-dir", cache]);

    let other = dir.join("other");
    let other = other.to_str().unwrap();
    run_sweep(&["store", "import", bundle, "--cache-dir", other]);

    // The imported store must warm-start a run with zero simulations.
    let warm = run_sweep(&[
        "run",
        "--grid",
        "fig09",
        "--benchmarks",
        "cg",
        "--quiet",
        "--cache-dir",
        other,
    ]);
    assert!(warm.stderr.contains("simulated 0"), "{}", warm.stderr);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn query_answers_from_the_index_with_zero_value_reads() {
    let dir = temp_dir("query-warm");
    let cache = dir.join("cache");
    let cache = cache.to_str().unwrap();
    run_sweep(&[
        "run",
        "--grid",
        "fig09",
        "--benchmarks",
        "cg,lu",
        "--quiet",
        "--cache-dir",
        cache,
    ]);

    // First query: no index yet — builds it by scanning values (observable
    // in the counter), persists it for everyone after.
    let m1 = dir.join("m1.json");
    let cold = run_sweep(&[
        "query",
        "benchmark=cg",
        "--by",
        "cycles",
        "--cache-dir",
        cache,
        "--metrics-out",
        m1.to_str().unwrap(),
    ]);
    assert_eq!(cold.stdout.lines().count(), 3, "{}", cold.stdout);
    assert!(cold.stderr.contains("value scan"), "{}", cold.stderr);
    let metrics = std::fs::read_to_string(&m1).unwrap();
    assert!(
        metrics.contains("\"store.value_reads\""),
        "the cold query must have scanned segment values: {metrics}"
    );

    // Warm query: answered from the persisted index, zero value reads.
    let m2 = dir.join("m2.json");
    let warm = run_sweep(&[
        "query",
        "benchmark=cg",
        "--by",
        "cycles",
        "--cache-dir",
        cache,
        "--metrics-out",
        m2.to_str().unwrap(),
    ]);
    assert_eq!(warm.stdout, cold.stdout, "ranking must be deterministic");
    assert!(warm.stderr.contains("persisted index"), "{}", warm.stderr);
    let metrics = std::fs::read_to_string(&m2).unwrap();
    assert!(
        !metrics.contains("\"store.value_reads\""),
        "a warm query must perform zero segment value reads: {metrics}"
    );

    // Compaction rewrites every segment; the rebuilt index must answer the
    // same query byte-identically, still without touching values.
    let compacted = run_sweep(&["store", "compact", "--cache-dir", cache]);
    assert!(
        compacted.stdout.contains("rebuilt secondary index"),
        "{}",
        compacted.stdout
    );
    let m3 = dir.join("m3.json");
    let after = run_sweep(&[
        "query",
        "benchmark=cg",
        "--by",
        "cycles",
        "--cache-dir",
        cache,
        "--metrics-out",
        m3.to_str().unwrap(),
    ]);
    assert_eq!(after.stdout, cold.stdout);
    let metrics = std::fs::read_to_string(&m3).unwrap();
    assert!(!metrics.contains("\"store.value_reads\""), "{metrics}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn query_grammar_filters_rank_and_reject() {
    let dir = temp_dir("query-grammar");
    let cache = dir.join("cache");
    let cache = cache.to_str().unwrap();
    run_sweep(&[
        "run",
        "--grid",
        "fig09",
        "--benchmarks",
        "cg",
        "--quiet",
        "--cache-dir",
        cache,
    ]);

    // Unfiltered, descending, top-1: exactly the worst cell, as one JSON
    // object per line with the schema the docs promise.
    let top = run_sweep(&[
        "query",
        "--by",
        "cycles",
        "--desc",
        "--top",
        "1",
        "--cache-dir",
        cache,
        "--quiet",
    ]);
    assert_eq!(top.stdout.lines().count(), 1, "{}", top.stdout);
    for field in [
        "\"key\":",
        "\"benchmark\":\"Cg\"",
        "\"family\":",
        "\"design\":",
        "\"metric\":\"cycles\"",
        "\"value\":",
    ] {
        assert!(top.stdout.contains(field), "{}", top.stdout);
    }
    assert_eq!(top.stderr, "", "--quiet must silence the summary");

    // A metric comparison filter conjoins with facet equality.
    let filtered = run_sweep(&[
        "query",
        "family=private",
        "cycles>0",
        "--by",
        "cycles",
        "--cache-dir",
        cache,
        "--quiet",
    ]);
    assert_eq!(filtered.stdout.lines().count(), 3, "{}", filtered.stdout);
    let values: Vec<&str> = filtered
        .stdout
        .lines()
        .map(|l| l.rsplit("\"value\":").next().unwrap())
        .collect();
    let mut sorted = values.clone();
    sorted.sort_by(|a, b| {
        let parse = |s: &&str| s.trim_end_matches('}').parse::<f64>().unwrap();
        parse(a).total_cmp(&parse(b))
    });
    assert_eq!(values, sorted, "hits must rank ascending by the metric");

    // Grammar violations exit with guidance, not a panic.
    for bad in [
        vec!["query", "cycles=5", "--by", "cycles"],
        vec!["query", "benchmark=cg"],
        vec!["query", "nonsense", "--by", "cycles"],
    ] {
        let output = Command::new(sweep_bin()).args(&bad).output().unwrap();
        assert!(!output.status.success(), "{bad:?} must fail");
        let stderr = String::from_utf8_lossy(&output.stderr);
        assert!(stderr.contains("sweep query"), "{stderr}");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn store_stats_reports_index_freshness() {
    let dir = temp_dir("query-staleness");
    let cache = dir.join("cache");
    let cache = cache.to_str().unwrap();
    run_sweep(&[
        "run",
        "--grid",
        "fig09",
        "--benchmarks",
        "cg",
        "--quiet",
        "--cache-dir",
        cache,
    ]);

    // No index yet.
    let stats = run_sweep(&["store", "stats", "--cache-dir", cache]);
    assert!(stats.stdout.contains("index"), "{}", stats.stdout);
    assert!(stats.stdout.contains("absent"), "{}", stats.stdout);

    // A query persists the index; stats now reports it fresh.
    run_sweep(&["query", "--by", "cycles", "--cache-dir", cache, "--quiet"]);
    let stats = run_sweep(&["store", "stats", "--cache-dir", cache]);
    assert!(stats.stdout.contains("fresh"), "{}", stats.stdout);

    // New results land in the store: the persisted index is now stale
    // relative to the key index, and stats says so.
    run_sweep(&[
        "run",
        "--grid",
        "fig09",
        "--benchmarks",
        "lu",
        "--quiet",
        "--cache-dir",
        cache,
    ]);
    let stats = run_sweep(&["store", "stats", "--cache-dir", cache]);
    assert!(stats.stdout.contains("stale"), "{}", stats.stdout);

    // The next query rebuilds and re-persists: fresh again.
    run_sweep(&["query", "--by", "cycles", "--cache-dir", cache, "--quiet"]);
    let stats = run_sweep(&["store", "stats", "--cache-dir", cache]);
    assert!(stats.stdout.contains("fresh"), "{}", stats.stdout);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn misused_subcommands_exit_with_guidance() {
    // `run` refuses maintenance and planning flags, pointing at the
    // dedicated subcommands.
    let output = Command::new(sweep_bin())
        .args(["run", "--compact"])
        .output()
        .unwrap();
    assert!(!output.status.success());
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("sweep store"), "{stderr}");

    let output = Command::new(sweep_bin())
        .args(["run", "--plan", "x.json"])
        .output()
        .unwrap();
    assert!(!output.status.success());
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("sweep plan"), "{stderr}");

    // `plan` without a file and `store` without an action both fail with
    // usage, not a panic.
    let output = Command::new(sweep_bin()).args(["plan"]).output().unwrap();
    assert!(!output.status.success());
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("manifest file"), "{stderr}");

    let output = Command::new(sweep_bin())
        .args(["store", "frobnicate"])
        .output()
        .unwrap();
    assert!(!output.status.success());
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("needs an action"), "{stderr}");
}

#[test]
fn keep_generations_flag_bounds_the_store() {
    let dir = temp_dir("keep-generations");
    let cache = dir.join("cache");
    let cache = cache.to_str().unwrap();
    let run = |benchmarks: &str| {
        run_sweep(&[
            "run",
            "--benchmarks",
            benchmarks,
            "--designs",
            "baseline",
            "--quiet",
            "--cache-dir",
            cache,
            "--keep-generations",
            "1",
        ])
    };
    // Each run opens a new generation; with --keep-generations 1 the open
    // evicts all but the newest, so the first run's entries are gone.
    run("cg");
    run("lu");
    let rerun = run("cg");
    assert!(
        rerun.stderr.contains("simulated 1"),
        "evicted generation must be re-simulated: {}",
        rerun.stderr
    );

    let output = Command::new(sweep_bin())
        .args(["run", "--keep-generations", "0", "--no-disk-cache"])
        .output()
        .unwrap();
    assert!(!output.status.success());
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("bad generation count"), "{stderr}");
    let _ = std::fs::remove_dir_all(&dir);
}

/// Parses the `simulated N` figure out of the run summary line on stderr.
fn summary_stat(stderr: &str, stat: &str) -> u64 {
    let line = stderr
        .lines()
        .find(|l| l.starts_with("sweep: done"))
        .unwrap_or_else(|| panic!("no summary line in stderr: {stderr}"));
    let tail = line
        .split(&format!("{stat} "))
        .nth(1)
        .unwrap_or_else(|| panic!("summary line lacks `{stat}`: {line}"));
    tail.split([',', ' '])
        .next()
        .unwrap()
        .parse()
        .unwrap_or_else(|_| panic!("unparsable `{stat}` in: {line}"))
}

#[test]
fn observability_artifacts_validate_and_rows_stay_byte_identical() {
    // The whole point of the shim-style tracer: turning both sinks on must
    // not move a single output byte, and the artifacts it writes must
    // reconcile exactly with the summary the engine printed.
    let dir = temp_dir("obs-artifacts");
    let trace = dir.join("trace.jsonl");
    let metrics = dir.join("metrics.json");
    let run = run_sweep(&[
        "run",
        "--grid",
        "fig09",
        "--benchmarks",
        "cg,lu",
        "--cache-dir",
        dir.join("cache").to_str().unwrap(),
        "--trace-out",
        trace.to_str().unwrap(),
        "--metrics-out",
        metrics.to_str().unwrap(),
    ]);
    assert_eq!(
        run.stdout,
        fixture_bytes(),
        "enabling observability sinks must leave the row stream untouched"
    );

    // The trace is strictly schema-valid (the reader rejects anything off).
    let trace_text = std::fs::read_to_string(&trace).unwrap();
    assert!(
        trace_text.starts_with("{\"schema\":\"acmp-obs-trace/v1\"}\n"),
        "trace must open with its schema header"
    );
    let events = acmp_obs::read_trace_values(&trace_text).expect("trace validates");
    assert!(!events.is_empty());
    let span_names: Vec<&str> = events
        .iter()
        .filter_map(|e| match serde::get_field(as_object(e), "kind").ok() {
            Some(serde::Value::String(k)) if k == "span" => {
                match serde::get_field(as_object(e), "name").ok() {
                    Some(serde::Value::String(n)) => Some(n.as_str()),
                    _ => None,
                }
            }
            _ => None,
        })
        .collect();
    for expected in [
        "engine.simulate_cell.simulate",
        "engine.trace_load.generate",
        "pool.worker",
        "store.open",
    ] {
        assert!(
            span_names.contains(&expected),
            "trace lacks `{expected}` spans; saw {span_names:?}"
        );
    }
    // A cold 2-benchmark × 3-degree grid simulates all six cells.
    let sim_spans = span_names
        .iter()
        .filter(|n| **n == "engine.simulate_cell.simulate")
        .count() as u64;
    assert_eq!(sim_spans, summary_stat(&run.stderr, "simulated"));

    // The metrics snapshot round-trips through its versioned schema and its
    // counters agree with the summary, number for number.
    let metrics_text = std::fs::read_to_string(&metrics).unwrap();
    let value = serde_json::from_str::<serde::Value>(&metrics_text).unwrap();
    let snapshot = acmp_obs::MetricsSnapshot::from_value(&value).expect("metrics validate");
    for (counter, stat) in [
        ("engine.simulated", "simulated"),
        ("engine.memory_hits", "memory-hits"),
        ("engine.disk_hits", "disk-hits"),
        ("engine.trace_generated", "trace-gens"),
        ("engine.trace_disk_hits", "trace-disk-hits"),
    ] {
        assert_eq!(
            snapshot.counter(counter),
            summary_stat(&run.stderr, stat),
            "`{counter}` must reconcile with the stderr summary"
        );
    }
    assert!(
        snapshot.counter("trace.refills") > 0,
        "simulations replay traces, so the hot refill counter must move"
    );

    // Warm rerun: same bytes, and the artifacts now describe disk hits.
    let rerun = run_sweep(&[
        "run",
        "--grid",
        "fig09",
        "--benchmarks",
        "cg,lu",
        "--cache-dir",
        dir.join("cache").to_str().unwrap(),
        "--metrics-out",
        metrics.to_str().unwrap(),
    ]);
    assert_eq!(rerun.stdout, fixture_bytes());
    let value =
        serde_json::from_str::<serde::Value>(&std::fs::read_to_string(&metrics).unwrap()).unwrap();
    let warm = acmp_obs::MetricsSnapshot::from_value(&value).unwrap();
    assert_eq!(warm.counter("engine.simulated"), 0);
    assert_eq!(warm.counter("engine.disk_hits"), 6);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Views a trace event as its field list, panicking on non-objects.
fn as_object(value: &serde::Value) -> &[(String, serde::Value)] {
    match value {
        serde::Value::Object(fields) => fields,
        other => panic!("trace events are objects, got {other}"),
    }
}

#[test]
fn sharded_run_folds_child_artifacts_into_the_parent() {
    // The coordinator must gather every child's trace and metrics before
    // tearing down the shard scratch dir: events come back tagged with
    // their shard, counters come back summed.
    let dir = temp_dir("obs-sharded");
    let trace = dir.join("trace.jsonl");
    let metrics = dir.join("metrics.json");
    let run = run_sweep(&[
        "run",
        "--grid",
        "fig09",
        "--benchmarks",
        "cg,lu",
        "--shards",
        "2",
        "--cache-dir",
        dir.join("cache").to_str().unwrap(),
        "--trace-out",
        trace.to_str().unwrap(),
        "--metrics-out",
        metrics.to_str().unwrap(),
    ]);
    assert_eq!(
        run.stdout,
        fixture_bytes(),
        "sharded observability run must still merge to the fixture bytes"
    );

    let events = acmp_obs::read_trace_values(&std::fs::read_to_string(&trace).unwrap())
        .expect("merged trace validates");
    let mut shards_seen: Vec<String> = events
        .iter()
        .filter_map(|e| match serde::get_field(as_object(e), "shard").ok() {
            Some(serde::Value::String(s)) => Some(s.clone()),
            _ => None,
        })
        .collect();
    shards_seen.sort();
    shards_seen.dedup();
    assert_eq!(
        shards_seen,
        ["1/2", "2/2"],
        "both children's events must arrive shard-tagged"
    );

    let value =
        serde_json::from_str::<serde::Value>(&std::fs::read_to_string(&metrics).unwrap()).unwrap();
    let merged = acmp_obs::MetricsSnapshot::from_value(&value).unwrap();
    // Six cells split across two children; the merged snapshot sums them.
    assert_eq!(
        merged.counter("engine.simulated") + merged.counter("engine.disk_hits"),
        6,
        "merged counters must account for every cell exactly once"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn trace_report_summarises_a_run_and_rejects_corrupt_traces() {
    let dir = temp_dir("obs-report");
    let trace = dir.join("trace.jsonl");
    let metrics = dir.join("metrics.json");
    run_sweep(&[
        "run",
        "--grid",
        "fig09",
        "--benchmarks",
        "cg,lu",
        "--cache-dir",
        dir.join("cache").to_str().unwrap(),
        "--trace-out",
        trace.to_str().unwrap(),
        "--metrics-out",
        metrics.to_str().unwrap(),
        "--quiet",
    ]);

    let report = run_sweep(&[
        "trace",
        "report",
        trace.to_str().unwrap(),
        "--metrics",
        metrics.to_str().unwrap(),
        "--top",
        "3",
    ]);
    for section in [
        "per-phase cost:",
        "slowest cells (top 3):",
        "cache efficiency:",
    ] {
        assert!(
            report.stdout.contains(section),
            "report lacks `{section}`:\n{}",
            report.stdout
        );
    }
    assert!(
        report.stdout.contains("engine.simulate_cell"),
        "report must attribute cost to the simulate-cell phase:\n{}",
        report.stdout
    );

    // A corrupt trace is a hard, line-numbered error — the report doubles
    // as the schema validator CI leans on, so it must not shrug.
    let corrupt = dir.join("corrupt.jsonl");
    let mut text = std::fs::read_to_string(&trace).unwrap();
    text.push_str("{\"not\":\"an event\"}\n");
    std::fs::write(&corrupt, &text).unwrap();
    let stderr = run_sweep_expect_failure(&["trace", "report", corrupt.to_str().unwrap()]);
    assert!(
        stderr.contains("line"),
        "schema violation must name the offending line: {stderr}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
