//! End-to-end tests of the `sweep` CLI binary: determinism across worker
//! counts, warm starts from the on-disk store, and multi-process sharding
//! (`--shards N` must merge byte-identically to an unsharded run with no
//! cell simulated twice).

use std::path::PathBuf;
use std::process::Command;

fn sweep_bin() -> &'static str {
    env!("CARGO_BIN_EXE_sweep")
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("sweep-cli-test-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

struct Run {
    stdout: String,
    stderr: String,
}

fn run_sweep<S: AsRef<std::ffi::OsStr> + std::fmt::Debug>(args: &[S]) -> Run {
    let output = Command::new(sweep_bin())
        .args(args)
        .output()
        .expect("sweep binary runs");
    assert!(
        output.status.success(),
        "sweep {args:?} failed:\n{}",
        String::from_utf8_lossy(&output.stderr)
    );
    Run {
        stdout: String::from_utf8(output.stdout).unwrap(),
        stderr: String::from_utf8(output.stderr).unwrap(),
    }
}

/// JSONL lines sorted by the embedded job key (each line starts with
/// `{"key":"...`, so a plain string sort orders by key).
fn sorted_rows(stdout: &str) -> Vec<&str> {
    let mut rows: Vec<&str> = stdout.lines().collect();
    rows.sort_unstable();
    rows
}

#[test]
fn worker_count_does_not_change_the_output() {
    let dir = temp_dir("workers");
    // Separate cache dirs so both runs simulate from cold.
    let args = |workers: &str, cache: &str| -> Vec<String> {
        [
            "--benchmarks",
            "cg,lu",
            "--designs",
            "baseline,naive:2",
            "--quiet",
            "--workers",
            workers,
            "--cache-dir",
            cache,
        ]
        .iter()
        .map(ToString::to_string)
        .collect()
    };
    let one = run_sweep(&args("1", dir.join("c1").to_str().unwrap()));
    let four = run_sweep(&args("4", dir.join("c4").to_str().unwrap()));
    assert_eq!(sorted_rows(&one.stdout), sorted_rows(&four.stdout));
    assert_eq!(one.stdout.lines().count(), 4);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn second_run_is_served_from_the_disk_store() {
    let dir = temp_dir("warm");
    let cache = dir.join("cache");
    let cache = cache.to_str().unwrap();
    let args = [
        "--grid",
        "fig09",
        "--benchmarks",
        "cg",
        "--quiet",
        "--cache-dir",
        cache,
    ];

    let cold = run_sweep(&args);
    assert!(
        cold.stderr.contains("disk-hits 0"),
        "cold run must simulate: {}",
        cold.stderr
    );

    let warm = run_sweep(&args);
    assert!(
        warm.stderr.contains("simulated 0"),
        "warm run must not simulate: {}",
        warm.stderr
    );
    assert!(
        warm.stderr.contains("disk-hits 3"),
        "warm run must hit the store for every cell: {}",
        warm.stderr
    );
    assert!(
        warm.stderr.contains("trace-gens 0"),
        "warm run must not regenerate traces: {}",
        warm.stderr
    );
    assert_eq!(
        sorted_rows(&cold.stdout),
        sorted_rows(&warm.stdout),
        "warm rows must be byte-identical to cold rows"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn compaction_preserves_warm_starts_and_shrinks_the_directory() {
    let dir = temp_dir("compact");
    let cache = dir.join("cache");
    let cache = cache.to_str().unwrap();
    let args = [
        "--grid",
        "fig09",
        "--benchmarks",
        "cg,lu",
        "--quiet",
        "--cache-dir",
        cache,
    ];
    let cold = run_sweep(&args);

    // Standalone maintenance mode: compact the store, run nothing.
    let compacted = run_sweep(&["--compact", "--cache-dir", cache]);
    assert!(
        compacted.stdout.contains("live entries"),
        "{}",
        compacted.stdout
    );
    assert!(compacted.stderr.is_empty(), "{}", compacted.stderr);

    // The packed layout must use fewer files than one per entry: 6 result
    // cells + 2 trace sets would have been 8 files in the old layout.
    let files = std::fs::read_dir(cache).unwrap().count();
    assert!(files < 8, "expected a packed store, found {files} files");

    // A run from the compacted store is fully warm: zero simulations, zero
    // trace generations, byte-identical rows.
    let warm = run_sweep(&args);
    assert!(warm.stderr.contains("simulated 0"), "{}", warm.stderr);
    assert!(warm.stderr.contains("trace-gens 0"), "{}", warm.stderr);
    assert!(warm.stderr.contains("disk-hits 6"), "{}", warm.stderr);
    assert_eq!(sorted_rows(&cold.stdout), sorted_rows(&warm.stdout));

    // --cache-stats reports without touching anything.
    let stats = run_sweep(&["--cache-stats", "--cache-dir", cache]);
    assert!(stats.stdout.contains("entries 8"), "{}", stats.stdout);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Sums a `<field> N` counter over every per-shard summary line.
fn summed_counter(stderr: &str, field: &str) -> u64 {
    let tag = format!("{field} ");
    stderr
        .lines()
        .filter_map(|line| {
            let at = line.find(&tag)?;
            line[at + tag.len()..]
                .split(',')
                .next()?
                .trim()
                .parse::<u64>()
                .ok()
        })
        .sum()
}

#[test]
fn sharded_runs_merge_byte_identical_to_unsharded() {
    let dir = temp_dir("sharded");
    let args = |cache: PathBuf| -> Vec<String> {
        [
            "--grid",
            "fig09",
            "--benchmarks",
            "cg,lu",
            "--quiet",
            "--cache-dir",
            cache.to_str().unwrap(),
        ]
        .iter()
        .map(ToString::to_string)
        .collect()
    };
    let single = run_sweep(&args(dir.join("c1")));
    for n in ["2", "3"] {
        let mut sharded_args = args(dir.join(format!("c{n}")));
        sharded_args.extend(["--shards".to_string(), n.to_string()]);
        let sharded = run_sweep(&sharded_args);
        assert_eq!(
            single.stdout, sharded.stdout,
            "--shards {n} must merge byte-identically to the unsharded run"
        );
        assert!(
            sharded
                .stderr
                .contains(&format!("merged {n} shard streams")),
            "{}",
            sharded.stderr
        );
        // Disjoint digest ownership: the 6 cells simulate exactly once in
        // total across the shard processes.
        assert_eq!(
            summed_counter(&sharded.stderr, "simulated"),
            6,
            "no double work across {n} shards: {}",
            sharded.stderr
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn sharded_processes_share_one_store_and_rerun_fully_warm() {
    let dir = temp_dir("sharded-warm");
    let cache = dir.join("cache");
    let args: Vec<String> = [
        "--grid",
        "fig09",
        "--benchmarks",
        "cg",
        "--quiet",
        "--shards",
        "3",
        "--cache-dir",
        cache.to_str().unwrap(),
    ]
    .iter()
    .map(ToString::to_string)
    .collect();

    let cold = run_sweep(&args);
    assert_eq!(
        summed_counter(&cold.stderr, "simulated"),
        3,
        "{}",
        cold.stderr
    );

    // All three shard processes append into the one cache dir; the re-run
    // must be fully warm in every shard: zero simulations, zero trace
    // generations, and byte-identical merged rows.
    let warm = run_sweep(&args);
    assert_eq!(
        summed_counter(&warm.stderr, "simulated"),
        0,
        "{}",
        warm.stderr
    );
    assert_eq!(
        summed_counter(&warm.stderr, "trace-gens"),
        0,
        "{}",
        warm.stderr
    );
    assert_eq!(cold.stdout, warm.stdout);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn single_shard_emits_its_subsequence_of_the_unsharded_rows() {
    let base = [
        "--grid",
        "fig09",
        "--benchmarks",
        "cg,lu",
        "--quiet",
        "--no-disk-cache",
    ];
    let full = run_sweep(&base);
    let mut shard_args: Vec<&str> = base.to_vec();
    shard_args.extend(["--shard", "2/3"]);
    let shard = run_sweep(&shard_args);
    assert!(shard.stderr.contains("shard 2/3 owns"), "{}", shard.stderr);
    // Every shard row appears in the unsharded stream, in the same order.
    let full_rows: Vec<&str> = full.stdout.lines().collect();
    let shard_rows: Vec<&str> = shard.stdout.lines().collect();
    assert!(!shard_rows.is_empty());
    assert!(shard_rows.len() < full_rows.len());
    let mut walk = full_rows.iter();
    for row in &shard_rows {
        assert!(
            walk.any(|full_row| full_row == row),
            "shard rows must be an ordered sub-sequence of the full stream"
        );
    }
}

#[test]
fn broken_pipe_exits_nonzero_and_quietly() {
    // `sweep … | head` used to be indistinguishable from a successful
    // short run; now a write onto a closed pipe exits non-zero — but
    // without spamming "write failed" into every early-exiting pipeline.
    let (reader, writer) = std::io::pipe().unwrap();
    drop(reader);
    let output = Command::new(sweep_bin())
        .args([
            "--benchmarks",
            "cg",
            "--designs",
            "baseline",
            "--quiet",
            "--no-disk-cache",
        ])
        .stdin(std::process::Stdio::null())
        .stdout(std::process::Stdio::from(writer))
        .stderr(std::process::Stdio::piped())
        .output()
        .unwrap();
    assert!(!output.status.success(), "a broken pipe must not exit 0");
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(
        !stderr.contains("write failed"),
        "EPIPE must stay quiet: {stderr}"
    );
}

#[test]
fn conflicting_shard_options_are_rejected() {
    let output = Command::new(sweep_bin())
        .args(["--shards", "2", "--shard", "1/2", "--no-disk-cache"])
        .output()
        .unwrap();
    assert!(!output.status.success());
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("mutually exclusive"), "{stderr}");

    let output = Command::new(sweep_bin())
        .args(["--shard", "4/3", "--no-disk-cache"])
        .output()
        .unwrap();
    assert!(!output.status.success());
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("out of range"), "{stderr}");
}

#[test]
fn bad_specs_exit_nonzero_with_a_message() {
    let output = Command::new(sweep_bin())
        .args(["--designs", "not-a-design", "--no-disk-cache"])
        .output()
        .unwrap();
    assert!(!output.status.success());
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("not-a-design"), "{stderr}");
}
