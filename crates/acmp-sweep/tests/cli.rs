//! End-to-end tests of the `sweep` CLI binary: determinism across worker
//! counts and warm starts from the on-disk store.

use std::path::PathBuf;
use std::process::Command;

fn sweep_bin() -> &'static str {
    env!("CARGO_BIN_EXE_sweep")
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("sweep-cli-test-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

struct Run {
    stdout: String,
    stderr: String,
}

fn run_sweep<S: AsRef<std::ffi::OsStr> + std::fmt::Debug>(args: &[S]) -> Run {
    let output = Command::new(sweep_bin())
        .args(args)
        .output()
        .expect("sweep binary runs");
    assert!(
        output.status.success(),
        "sweep {args:?} failed:\n{}",
        String::from_utf8_lossy(&output.stderr)
    );
    Run {
        stdout: String::from_utf8(output.stdout).unwrap(),
        stderr: String::from_utf8(output.stderr).unwrap(),
    }
}

/// JSONL lines sorted by the embedded job key (each line starts with
/// `{"key":"...`, so a plain string sort orders by key).
fn sorted_rows(stdout: &str) -> Vec<&str> {
    let mut rows: Vec<&str> = stdout.lines().collect();
    rows.sort_unstable();
    rows
}

#[test]
fn worker_count_does_not_change_the_output() {
    let dir = temp_dir("workers");
    // Separate cache dirs so both runs simulate from cold.
    let args = |workers: &str, cache: &str| -> Vec<String> {
        [
            "--benchmarks",
            "cg,lu",
            "--designs",
            "baseline,naive:2",
            "--quiet",
            "--workers",
            workers,
            "--cache-dir",
            cache,
        ]
        .iter()
        .map(ToString::to_string)
        .collect()
    };
    let one = run_sweep(&args("1", dir.join("c1").to_str().unwrap()));
    let four = run_sweep(&args("4", dir.join("c4").to_str().unwrap()));
    assert_eq!(sorted_rows(&one.stdout), sorted_rows(&four.stdout));
    assert_eq!(one.stdout.lines().count(), 4);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn second_run_is_served_from_the_disk_store() {
    let dir = temp_dir("warm");
    let cache = dir.join("cache");
    let cache = cache.to_str().unwrap();
    let args = [
        "--grid",
        "fig09",
        "--benchmarks",
        "cg",
        "--quiet",
        "--cache-dir",
        cache,
    ];

    let cold = run_sweep(&args);
    assert!(
        cold.stderr.contains("disk-hits 0"),
        "cold run must simulate: {}",
        cold.stderr
    );

    let warm = run_sweep(&args);
    assert!(
        warm.stderr.contains("simulated 0"),
        "warm run must not simulate: {}",
        warm.stderr
    );
    assert!(
        warm.stderr.contains("disk-hits 3"),
        "warm run must hit the store for every cell: {}",
        warm.stderr
    );
    assert!(
        warm.stderr.contains("trace-gens 0"),
        "warm run must not regenerate traces: {}",
        warm.stderr
    );
    assert_eq!(
        sorted_rows(&cold.stdout),
        sorted_rows(&warm.stdout),
        "warm rows must be byte-identical to cold rows"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn compaction_preserves_warm_starts_and_shrinks_the_directory() {
    let dir = temp_dir("compact");
    let cache = dir.join("cache");
    let cache = cache.to_str().unwrap();
    let args = [
        "--grid",
        "fig09",
        "--benchmarks",
        "cg,lu",
        "--quiet",
        "--cache-dir",
        cache,
    ];
    let cold = run_sweep(&args);

    // Standalone maintenance mode: compact the store, run nothing.
    let compacted = run_sweep(&["--compact", "--cache-dir", cache]);
    assert!(
        compacted.stdout.contains("live entries"),
        "{}",
        compacted.stdout
    );
    assert!(compacted.stderr.is_empty(), "{}", compacted.stderr);

    // The packed layout must use fewer files than one per entry: 6 result
    // cells + 2 trace sets would have been 8 files in the old layout.
    let files = std::fs::read_dir(cache).unwrap().count();
    assert!(files < 8, "expected a packed store, found {files} files");

    // A run from the compacted store is fully warm: zero simulations, zero
    // trace generations, byte-identical rows.
    let warm = run_sweep(&args);
    assert!(warm.stderr.contains("simulated 0"), "{}", warm.stderr);
    assert!(warm.stderr.contains("trace-gens 0"), "{}", warm.stderr);
    assert!(warm.stderr.contains("disk-hits 6"), "{}", warm.stderr);
    assert_eq!(sorted_rows(&cold.stdout), sorted_rows(&warm.stdout));

    // --cache-stats reports without touching anything.
    let stats = run_sweep(&["--cache-stats", "--cache-dir", cache]);
    assert!(stats.stdout.contains("entries 8"), "{}", stats.stdout);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn bad_specs_exit_nonzero_with_a_message() {
    let output = Command::new(sweep_bin())
        .args(["--designs", "not-a-design", "--no-disk-cache"])
        .output()
        .unwrap();
    assert!(!output.status.success());
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("not-a-design"), "{stderr}");
}
