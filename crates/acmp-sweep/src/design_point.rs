//! The machine design points evaluated in the paper.

use power_model::{ClusterDesign, IcacheOrganisation};
use serde::{Deserialize, Serialize};
use sim_acmp::{AcmpConfig, BusWidth, SharingMode};

/// Why a design point could not be constructed.
///
/// Every parameterised [`DesignPoint`] constructor returns this instead of
/// panicking (or silently wrapping), so spec parsers and programmatic
/// sweeps can surface the exact bad parameter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DesignPointError {
    /// An I-cache size in KiB whose byte count overflows `u64` — an
    /// unchecked multiply would wrap and silently simulate a tiny cache.
    IcacheSizeOverflow {
        /// The requested capacity in KiB.
        kib: u64,
    },
    /// An I-cache capacity of zero bytes.
    ZeroIcacheSize,
    /// A front-end with no line buffers cannot fetch at all.
    ZeroLineBuffers,
    /// A shared cache serving zero cores is meaningless.
    ZeroCoresPerCache,
}

impl std::fmt::Display for DesignPointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DesignPointError::IcacheSizeOverflow { kib } => {
                write!(f, "I-cache size {kib} KiB overflows u64 bytes")
            }
            DesignPointError::ZeroIcacheSize => write!(f, "I-cache size must be at least 1 KiB"),
            DesignPointError::ZeroLineBuffers => {
                write!(f, "a design needs at least one line buffer")
            }
            DesignPointError::ZeroCoresPerCache => {
                write!(f, "a shared cache needs at least one core per cache")
            }
        }
    }
}

impl std::error::Error for DesignPointError {}

/// One evaluated machine configuration.
///
/// A design point is independent of the number of workers; it is turned into
/// a concrete [`AcmpConfig`] (for simulation) or [`ClusterDesign`] (for the
/// area/energy model) when an experiment instantiates it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DesignPoint {
    /// Short label used in result tables and as the cache key.
    pub name: String,
    /// Worker I-cache sharing.
    pub sharing: SharingMode,
    /// Worker (and shared) I-cache capacity in bytes.
    pub icache_bytes: u64,
    /// Line buffers per core.
    pub line_buffers: usize,
    /// Single or double I-bus.
    pub bus_width: BusWidth,
}

impl DesignPoint {
    /// The baseline: private 32 KB I-caches, four line buffers.
    pub fn baseline() -> Self {
        DesignPoint {
            name: "baseline".to_string(),
            sharing: SharingMode::Private,
            icache_bytes: 32 * 1024,
            line_buffers: 4,
            bus_width: BusWidth::Single,
        }
    }

    /// Naive sharing (Fig. 7): a 32 KB I-cache shared by groups of `cpc`
    /// workers over a single bus, four line buffers.
    ///
    /// `cpc == 1` degenerates to private caches; `cpc == 0` is rejected.
    pub fn naive_shared(cpc: usize) -> Result<Self, DesignPointError> {
        if cpc == 0 {
            return Err(DesignPointError::ZeroCoresPerCache);
        }
        Ok(DesignPoint {
            name: format!("cpc{cpc}-32K-4lb-single"),
            sharing: if cpc <= 1 {
                SharingMode::Private
            } else {
                SharingMode::WorkerShared {
                    cores_per_cache: cpc,
                }
            },
            icache_bytes: 32 * 1024,
            line_buffers: 4,
            bus_width: BusWidth::Single,
        })
    }

    /// A fully parameterised cpc = 8 shared design (Figs. 10 and 12).
    ///
    /// Rejects zero sizes, zero line buffers, and KiB counts whose byte
    /// count overflows `u64` — in release builds an unchecked multiply
    /// would wrap and silently simulate a tiny cache.
    pub fn shared(
        icache_kib: u64,
        line_buffers: usize,
        bus_width: BusWidth,
    ) -> Result<Self, DesignPointError> {
        if icache_kib == 0 {
            return Err(DesignPointError::ZeroIcacheSize);
        }
        if line_buffers == 0 {
            return Err(DesignPointError::ZeroLineBuffers);
        }
        let icache_bytes = icache_kib
            .checked_mul(1024)
            .ok_or(DesignPointError::IcacheSizeOverflow { kib: icache_kib })?;
        let bus = match bus_width {
            BusWidth::Single => "single",
            BusWidth::Double => "double",
        };
        Ok(DesignPoint {
            name: format!("cpc8-{icache_kib}K-{line_buffers}lb-{bus}"),
            sharing: SharingMode::WorkerShared { cores_per_cache: 8 },
            icache_bytes,
            line_buffers,
            bus_width,
        })
    }

    /// The paper's preferred design: 16 KB shared by all eight workers, four
    /// line buffers, double bus — 11 % area and 5 % energy savings at no
    /// performance cost.
    pub fn proposed() -> Self {
        // acmp-lint: allow(unwrap-in-lib) -- constant known-good preset parameters cannot fail validation
        Self::shared(16, 4, BusWidth::Double).expect("fixed preset is valid")
    }

    /// The all-shared configuration of Section VI-E: master included, 32 KB,
    /// double bus.
    pub fn all_shared() -> Self {
        DesignPoint {
            name: "all-shared-32K-4lb-double".to_string(),
            sharing: SharingMode::AllShared,
            icache_bytes: 32 * 1024,
            line_buffers: 4,
            bus_width: BusWidth::Double,
        }
    }

    /// The all-shared configuration restricted to a single bus (the Group 3
    /// discussion of Fig. 13).
    pub fn all_shared_single_bus() -> Self {
        DesignPoint {
            name: "all-shared-32K-4lb-single".to_string(),
            sharing: SharingMode::AllShared,
            icache_bytes: 32 * 1024,
            line_buffers: 4,
            bus_width: BusWidth::Single,
        }
    }

    /// The worker-shared reference used by Fig. 13 (32 KB so the master's
    /// join is not confounded by capacity).
    pub fn worker_shared_32k_double() -> Self {
        // acmp-lint: allow(unwrap-in-lib) -- constant known-good preset parameters cannot fail validation
        Self::shared(32, 4, BusWidth::Double).expect("fixed preset is valid")
    }

    /// Returns a copy with a different number of line buffers.
    ///
    /// Rejects `n == 0` — a front-end with no line buffers cannot fetch.
    pub fn with_line_buffers(mut self, n: usize) -> Result<Self, DesignPointError> {
        if n == 0 {
            return Err(DesignPointError::ZeroLineBuffers);
        }
        self.line_buffers = n;
        self.name = format!("{}-{n}lb", self.name);
        Ok(self)
    }

    /// Instantiates the simulator configuration for `num_workers` workers.
    pub fn acmp_config(&self, num_workers: usize) -> AcmpConfig {
        let mut cfg = AcmpConfig::baseline(num_workers)
            .with_line_buffers(self.line_buffers)
            .with_bus_width(self.bus_width)
            .with_worker_icache_size(self.icache_bytes);
        cfg.sharing = match self.sharing {
            SharingMode::WorkerShared { cores_per_cache } => SharingMode::WorkerShared {
                cores_per_cache: cores_per_cache.min(num_workers),
            },
            other => other,
        };
        cfg
    }

    /// Instantiates the power-model cluster design for `num_workers`
    /// workers.
    pub fn cluster_design(&self, num_workers: usize) -> ClusterDesign {
        let organisation = match self.sharing {
            SharingMode::Private => IcacheOrganisation::Private {
                size_bytes: self.icache_bytes,
            },
            SharingMode::WorkerShared { cores_per_cache } => IcacheOrganisation::Shared {
                size_bytes: self.icache_bytes,
                cores_per_cache: cores_per_cache.min(num_workers),
                num_buses: self.bus_width.num_buses(),
            },
            // The all-shared design additionally removes the master's
            // private cache, but the cluster cost model only covers the
            // workers (Section VI-D), so it is treated like a fully shared
            // worker cache.
            SharingMode::AllShared => IcacheOrganisation::Shared {
                size_bytes: self.icache_bytes,
                cores_per_cache: num_workers,
                num_buses: self.bus_width.num_buses(),
            },
        };
        ClusterDesign {
            num_workers,
            line_buffers: self.line_buffers,
            organisation,
        }
    }
}

impl std::fmt::Display for DesignPoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn named_points_have_expected_parameters() {
        let b = DesignPoint::baseline();
        assert_eq!(b.sharing, SharingMode::Private);
        assert_eq!(b.icache_bytes, 32 * 1024);

        let p = DesignPoint::proposed();
        assert_eq!(p.icache_bytes, 16 * 1024);
        assert_eq!(p.bus_width, BusWidth::Double);
        assert_eq!(p.line_buffers, 4);

        let n = DesignPoint::naive_shared(8).unwrap();
        assert_eq!(n.sharing, SharingMode::WorkerShared { cores_per_cache: 8 });
        assert_eq!(n.bus_width, BusWidth::Single);

        assert_eq!(
            DesignPoint::naive_shared(1).unwrap().sharing,
            SharingMode::Private
        );
        assert_eq!(DesignPoint::all_shared().sharing, SharingMode::AllShared);
    }

    #[test]
    fn invalid_parameters_yield_typed_errors() {
        assert_eq!(
            DesignPoint::naive_shared(0).unwrap_err(),
            DesignPointError::ZeroCoresPerCache
        );
        assert_eq!(
            DesignPoint::shared(0, 4, BusWidth::Single).unwrap_err(),
            DesignPointError::ZeroIcacheSize
        );
        assert_eq!(
            DesignPoint::shared(16, 0, BusWidth::Single).unwrap_err(),
            DesignPointError::ZeroLineBuffers
        );
        assert_eq!(
            DesignPoint::shared(u64::MAX, 4, BusWidth::Double).unwrap_err(),
            DesignPointError::IcacheSizeOverflow { kib: u64::MAX }
        );
        assert_eq!(
            DesignPoint::baseline().with_line_buffers(0).unwrap_err(),
            DesignPointError::ZeroLineBuffers
        );
        // Errors render a human-readable reason for spec parsers.
        let msg = DesignPoint::naive_shared(0).unwrap_err().to_string();
        assert!(msg.contains("core per cache"), "{msg}");
    }

    #[test]
    fn names_are_unique_across_the_evaluated_points() {
        let points = [
            DesignPoint::baseline(),
            DesignPoint::naive_shared(2).unwrap(),
            DesignPoint::naive_shared(4).unwrap(),
            DesignPoint::naive_shared(8).unwrap(),
            DesignPoint::shared(16, 4, BusWidth::Single).unwrap(),
            DesignPoint::shared(16, 8, BusWidth::Single).unwrap(),
            DesignPoint::shared(16, 4, BusWidth::Double).unwrap(),
            DesignPoint::shared(16, 8, BusWidth::Double).unwrap(),
            DesignPoint::proposed(),
            DesignPoint::all_shared(),
            DesignPoint::all_shared_single_bus(),
            DesignPoint::worker_shared_32k_double(),
        ];
        let mut names: Vec<&str> = points.iter().map(|p| p.name.as_str()).collect();
        names.sort_unstable();
        let before = names.len();
        names.dedup();
        // `proposed` intentionally aliases shared(16,4,double).
        assert_eq!(names.len(), before - 1);
    }

    #[test]
    fn acmp_config_reflects_the_point() {
        let cfg = DesignPoint::proposed().acmp_config(8);
        assert_eq!(cfg.worker_icache.size_bytes, 16 * 1024);
        assert_eq!(cfg.bus_width, BusWidth::Double);
        assert_eq!(
            cfg.sharing,
            SharingMode::WorkerShared { cores_per_cache: 8 }
        );
        cfg.validate();

        // A cpc larger than the worker count is clamped (useful for small
        // test machines).
        let cfg = DesignPoint::naive_shared(8).unwrap().acmp_config(2);
        assert_eq!(
            cfg.sharing,
            SharingMode::WorkerShared { cores_per_cache: 2 }
        );
        cfg.validate();
    }

    #[test]
    fn cluster_design_matches_organisation() {
        let d = DesignPoint::baseline().cluster_design(8);
        assert_eq!(d.num_icaches(), 8);
        let d = DesignPoint::proposed().cluster_design(8);
        assert_eq!(d.num_icaches(), 1);
        let d = DesignPoint::all_shared().cluster_design(8);
        assert_eq!(d.num_icaches(), 1);
    }

    #[test]
    fn display_uses_the_name() {
        assert_eq!(DesignPoint::baseline().to_string(), "baseline");
        assert_eq!(DesignPoint::proposed().to_string(), "cpc8-16K-4lb-double");
    }
}
