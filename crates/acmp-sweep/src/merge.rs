//! Deterministic merging of per-shard JSONL row streams.
//!
//! A sharded sweep splits one grid across processes by stable job-key
//! digest ([`ShardSpec`]); each shard sorts its rows by line bytes before
//! emitting them, and — because every row starts with the fixed-width hex
//! job key — that byte order *is* digest order.  The coordinator
//! recombines the per-shard streams with a k-way merge on the same
//! ordering, so the merged output is byte-identical to the stream an
//! unsharded run would have produced.
//!
//! The merge is validating, not trusting.  The caller supplies the
//! expected digest-ordered key schedule of every shard (derivable from the
//! grid and the shard count alone, see [`shard_key_schedule`]), and every
//! incoming line must be a well-formed row carrying exactly the next
//! scheduled key.  A truncated file, a corrupt line, a duplicated,
//! missing or reordered row — any way a shard stream can disagree with its
//! schedule — fails the merge loudly *before* a single merged row is
//! written, rather than quietly emitting partial results.  Streams are
//! consumed through `BufRead`, so the multi-machine follow-on (shard rows
//! arriving over sockets rather than from local files) needs no format
//! change.

use crate::job::{JobKey, ShardSpec};
use std::io::{BufRead, Write};

/// Why a merge failed.
#[derive(Debug)]
pub enum MergeError {
    /// Reading a shard stream or writing the merged output failed.
    Io(std::io::Error),
    /// A shard stream disagreed with its expected key schedule.
    Corrupt {
        /// 1-based index of the offending shard stream.
        shard: usize,
        /// What disagreed.
        message: String,
    },
}

impl std::fmt::Display for MergeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MergeError::Io(e) => write!(f, "merge I/O failed: {e}"),
            MergeError::Corrupt { shard, message } => {
                write!(f, "shard {shard} row stream is corrupt: {message}")
            }
        }
    }
}

impl std::error::Error for MergeError {}

impl From<std::io::Error> for MergeError {
    fn from(e: std::io::Error) -> Self {
        MergeError::Io(e)
    }
}

/// The fixed-width hex job key at the head of a well-formed JSONL row
/// (`{"key":"<16 lowercase hex>",…}`), or `None` for anything else.
#[must_use]
pub fn row_key(line: &str) -> Option<&str> {
    let rest = line.strip_prefix("{\"key\":\"")?;
    let key = rest.get(..16)?;
    if !key
        .bytes()
        .all(|b| b.is_ascii_digit() || (b'a'..=b'f').contains(&b))
    {
        return None;
    }
    if rest.as_bytes().get(16) != Some(&b'"') || !line.ends_with('}') {
        return None;
    }
    Some(key)
}

/// The expected key schedule of every shard in a `count`-way split of
/// `keys`: element `i` holds exactly the hex keys of the jobs shard
/// `i+1/count` owns, sorted — the order that shard's emitted rows must
/// follow.
#[must_use]
pub fn shard_key_schedule(keys: &[JobKey], count: u32) -> Vec<Vec<String>> {
    ShardSpec::all(count)
        .map(|shard| {
            let mut own: Vec<String> = keys
                .iter()
                .filter(|key| shard.owns(key.digest()))
                .map(JobKey::hex)
                .collect();
            own.sort_unstable();
            own
        })
        .collect()
}

/// K-way merges per-shard JSONL row streams into `sink`, after validating
/// every stream against its expected key schedule (`expected[i]` belongs
/// to `streams[i]`).  Returns the number of rows written.  Nothing reaches
/// `sink` unless *every* stream matched its schedule exactly, so a corrupt
/// shard can never leak partial output.
///
/// # Errors
///
/// [`MergeError::Corrupt`] when a stream disagrees with its schedule,
/// [`MergeError::Io`] when reading a stream or writing `sink` fails.
///
/// # Panics
///
/// Panics if `streams` and `expected` differ in length — a caller bug, not
/// an input condition.
pub fn merge_shard_streams<R: BufRead, W: Write>(
    streams: Vec<R>,
    expected: &[Vec<String>],
    sink: &mut W,
) -> Result<u64, MergeError> {
    assert_eq!(streams.len(), expected.len(), "one schedule per stream");
    let mut buffered: Vec<Vec<String>> = Vec::with_capacity(streams.len());
    for (i, stream) in streams.into_iter().enumerate() {
        buffered.push(validate_shard_stream(i + 1, stream, &expected[i])?);
    }
    merge_validated(&buffered, sink).map_err(MergeError::Io)
}

/// K-way merges already-validated per-shard row buffers (as returned by
/// [`validate_shard_stream`]) into `sink`, returning the rows written.
/// Validation and merging are split so callers like `sweep merge` can
/// first check *every* stream — reporting all missing or short shards at
/// once — and only then produce output.
///
/// # Errors
///
/// Returns the I/O error if writing `sink` fails.
pub fn merge_validated<W: Write>(buffered: &[Vec<String>], sink: &mut W) -> std::io::Result<u64> {
    // Shards own disjoint digests, so cross-stream key ties can only come
    // from the same shard (a grid listing one cell twice) and the merge
    // order is fully determined by byte comparison.
    let mut cursors = vec![0usize; buffered.len()];
    let mut rows = 0u64;
    loop {
        let mut best: Option<usize> = None;
        for (i, lines) in buffered.iter().enumerate() {
            let Some(line) = lines.get(cursors[i]) else {
                continue;
            };
            best = match best {
                Some(b) if buffered[b][cursors[b]] <= *line => Some(b),
                _ => Some(i),
            };
        }
        let Some(i) = best else { break };
        writeln!(sink, "{}", buffered[i][cursors[i]])?;
        cursors[i] += 1;
        rows += 1;
    }
    Ok(rows)
}

/// Reads one shard stream fully, validating it line-by-line against its
/// schedule, and returns its rows.  `shard` is 1-based, for messages.
/// This is the validation half of [`merge_shard_streams`], public so the
/// `sweep merge` subcommand can check each shard file independently and
/// report every problem (missing rows, foreign rows, CRLF damage) before
/// deciding whether any output may be written.
///
/// What is (and is not) caught: every structural way a stream can be
/// damaged — truncation (including a lost final newline: rows must be
/// newline-terminated, never silently re-terminated), CRLF translation,
/// non-UTF-8 bytes, rows that are not well-formed JSON objects carrying
/// their own key, and any disagreement with the schedule (foreign,
/// duplicated, reordered or missing rows).  Rows carry no checksum, so a
/// bit flip *inside* a value that still leaves valid JSON (e.g. one digit
/// of a cycle count) is indistinguishable from a legitimate row; transfers
/// that need byte-level integrity ship the store bundle
/// (`--export-segments`), whose records are individually checksummed and
/// digest-sealed.
///
/// # Errors
///
/// [`MergeError::Corrupt`] when a stream disagrees with its schedule,
/// [`MergeError::Io`] when reading it fails.
pub fn validate_shard_stream<R: BufRead>(
    shard: usize,
    stream: R,
    schedule: &[String],
) -> Result<Vec<String>, MergeError> {
    let mut span = acmp_obs::span!(acmp_obs::names::MERGE_VALIDATE_SHARD, shard = shard);
    let corrupt = |message: String| MergeError::Corrupt { shard, message };
    let mut lines: Vec<String> = Vec::with_capacity(schedule.len());
    let mut stream = stream;
    let mut buf: Vec<u8> = Vec::new();
    loop {
        // Raw `read_until`, not `BufRead::lines`: `lines` silently strips a
        // `\r\n`, which would let a CRLF-translated stream merge into
        // LF-normalised output — "repairing" bytes the merge promises to
        // reproduce exactly.  A rewritten stream must fail, not be fixed.
        buf.clear();
        if stream.read_until(b'\n', &mut buf)? == 0 {
            break;
        }
        let row = lines.len() + 1;
        let mut bytes = buf.as_slice();
        match bytes.last() {
            Some(&b'\n') => bytes = &bytes[..bytes.len() - 1],
            // The writer newline-terminates every row, so an unterminated
            // tail is a truncation — even when the remaining bytes happen
            // to still look like a row (a cut inside the final row can
            // leave a shorter-but-valid JSON prefix).  Re-terminating it
            // would repair bytes the merge promises to reproduce exactly.
            _ => {
                return Err(corrupt(format!(
                    "row {row} is truncated (stream ends without a newline)"
                )))
            }
        }
        if bytes.last() == Some(&b'\r') {
            return Err(corrupt(format!(
                "row {row} carries a CRLF line ending (stream was rewritten in transit)"
            )));
        }
        let Ok(line) = std::str::from_utf8(bytes).map(str::to_string) else {
            return Err(corrupt(format!("row {row} is not valid UTF-8")));
        };
        let Some(key) = row_key(&line) else {
            return Err(corrupt(format!("row {row} is not a well-formed row")));
        };
        // The whole line must parse as a JSON object whose embedded key
        // matches the prefix `row_key` saw: catches damage deeper in the
        // row than the cheap prefix/suffix shape check can see.
        let parsed_key = serde_json::from_str::<serde::Value>(&line)
            .ok()
            .and_then(|envelope| {
                envelope
                    .as_object()
                    .and_then(|fields| serde::get_field(fields, "key").ok().cloned())
            })
            .and_then(|v| v.as_str().map(str::to_string));
        if parsed_key.as_deref() != Some(key) {
            return Err(corrupt(format!("row {row} is not a well-formed row")));
        }
        let Some(want) = schedule.get(lines.len()) else {
            return Err(corrupt(format!(
                "stream carries more rows than its {} scheduled",
                schedule.len()
            )));
        };
        if key != want {
            return Err(corrupt(format!(
                "row {row} carries key {key}, schedule expects {want}"
            )));
        }
        if lines.last().is_some_and(|prev| *prev > line) {
            return Err(corrupt(format!("row {row} is out of byte order")));
        }
        lines.push(line);
    }
    if lines.len() < schedule.len() {
        return Err(corrupt(format!(
            "stream truncated after {} of {} scheduled rows",
            lines.len(),
            schedule.len()
        )));
    }
    span.record_field("rows", lines.len());
    Ok(lines)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::design_point::DesignPoint;
    use hpc_workloads::{Benchmark, GeneratorConfig};

    /// A plausible row line for a synthetic 16-hex key.
    fn row(key: u64, value: u64) -> String {
        format!("{{\"key\":\"{key:016x}\",\"cycles\":{value}}}")
    }

    /// Builds streams + schedules for `keys`, split by `digest % count`.
    fn split(keys: &[u64], count: u32) -> (Vec<Vec<String>>, Vec<Vec<String>>) {
        let mut streams: Vec<Vec<String>> = vec![Vec::new(); count as usize];
        let mut schedule: Vec<Vec<String>> = vec![Vec::new(); count as usize];
        let mut sorted = keys.to_vec();
        sorted.sort_unstable();
        for &k in &sorted {
            let shard = (k % u64::from(count)) as usize;
            streams[shard].push(row(k, k.wrapping_mul(3)));
            schedule[shard].push(format!("{k:016x}"));
        }
        (streams, schedule)
    }

    fn readers(streams: &[Vec<String>]) -> Vec<std::io::Cursor<String>> {
        streams
            .iter()
            .map(|lines| {
                let mut text = lines.join("\n");
                if !text.is_empty() {
                    text.push('\n');
                }
                std::io::Cursor::new(text)
            })
            .collect()
    }

    #[test]
    fn row_keys_parse_well_formed_rows_only() {
        assert_eq!(row_key(&row(0xabc, 1)), Some("0000000000000abc"));
        assert_eq!(row_key(""), None);
        assert_eq!(row_key("{\"key\":\"short\"}"), None);
        assert_eq!(row_key("{\"key\":\"000000000000ABCD\",\"v\":1}"), None);
        assert_eq!(row_key("{\"key\":\"0123456789abcdef\",\"v\":1"), None);
        assert_eq!(row_key("{\"nokey\":1}"), None);
    }

    #[test]
    fn merge_reproduces_the_unsharded_byte_stream() {
        let keys: Vec<u64> = vec![9, 2, 17, 40, 5, 33, 12, 0xdead_beef];
        let mut unsharded: Vec<String> = keys.iter().map(|&k| row(k, k.wrapping_mul(3))).collect();
        unsharded.sort_unstable();
        let mut want = unsharded.join("\n");
        want.push('\n');

        for count in [1u32, 2, 3, 5] {
            let (streams, schedule) = split(&keys, count);
            let mut sink = Vec::new();
            let rows = merge_shard_streams(readers(&streams), &schedule, &mut sink).unwrap();
            assert_eq!(rows, keys.len() as u64);
            assert_eq!(String::from_utf8(sink).unwrap(), want, "{count} shards");
        }
    }

    #[test]
    fn empty_shards_merge_cleanly() {
        // One key, three shards: two streams are legitimately empty.
        let (streams, schedule) = split(&[3], 3);
        let mut sink = Vec::new();
        let rows = merge_shard_streams(readers(&streams), &schedule, &mut sink).unwrap();
        assert_eq!(rows, 1);
    }

    #[test]
    fn truncated_streams_fail_loudly_without_partial_output() {
        let keys: Vec<u64> = (0..12).collect();
        let (mut streams, schedule) = split(&keys, 3);
        streams[1].pop();
        let mut sink = Vec::new();
        let err = merge_shard_streams(readers(&streams), &schedule, &mut sink).unwrap_err();
        let MergeError::Corrupt { shard, message } = err else {
            panic!("expected a corruption error, got {err:?}");
        };
        assert_eq!(shard, 2);
        assert!(message.contains("truncated"), "{message}");
        assert!(sink.is_empty(), "no partial rows may be emitted");
    }

    /// Mangles shard `shard` of a fresh 3-way split of nine keys with
    /// `breakage`, merges, and asserts the failure message and that no
    /// partial rows reached the sink.
    fn assert_merge_rejects(shard: usize, breakage: impl Fn(&mut Vec<String>), expect: &str) {
        let keys: Vec<u64> = (0..9).collect();
        let (mut streams, schedule) = split(&keys, 3);
        breakage(&mut streams[shard]);
        let mut sink = Vec::new();
        let err = merge_shard_streams(readers(&streams), &schedule, &mut sink).unwrap_err();
        assert!(
            err.to_string().contains(expect),
            "want `{expect}` in `{err}`"
        );
        assert!(sink.is_empty(), "no partial rows may be emitted: {expect}");
    }

    #[test]
    fn corrupt_and_foreign_rows_fail_loudly_without_partial_output() {
        // A torn line (as a crashed shard would leave behind).
        assert_merge_rejects(0, |s| s[0].truncate(10), "not a well-formed");
        // A row that belongs to a different shard's schedule.
        assert_merge_rejects(1, |s| s[0] = row(100, 1), "schedule expects");
        // A duplicated tail row.
        assert_merge_rejects(2, |s| s.push(s.last().unwrap().clone()), "more rows");
        // Corrupted key bytes.
        assert_merge_rejects(
            0,
            |s| s[0] = s[0].replace("00000000000000", "zzzzzzzzzzzzzz"),
            "not a well-formed",
        );
        // A CRLF-translated stream (Windows tooling in the transfer path).
        assert_merge_rejects(
            1,
            |s| {
                for line in s.iter_mut() {
                    line.push('\r');
                }
            },
            "CRLF",
        );
        // A row duplicated *across* shards: the receiving shard's schedule
        // never expects the foreign key.
        assert_merge_rejects(2, |s| s.insert(0, row(0, 0)), "schedule expects");
        // Damage deeper in the row than the key prefix / closing brace:
        // the full-line JSON parse must reject it.
        assert_merge_rejects(
            0,
            |s| s[0] = s[0].replace("\"cycles\":", "\"cycles\"!"),
            "not a well-formed",
        );
    }

    #[test]
    fn streams_losing_their_final_newline_are_truncated_not_repaired() {
        // Cutting the tail of the last row can leave a shorter-but-valid
        // JSON prefix; the lost final newline is what gives the truncation
        // away, and the validator must fail rather than re-terminate it.
        let keys: Vec<u64> = (0..6).collect();
        let (streams, schedule) = split(&keys, 2);
        let mut readers = readers(&streams);
        let mut text = readers.remove(0).into_inner();
        text.pop(); // drop the final newline only: bytes still look row-shaped
        let err = validate_shard_stream(1, std::io::Cursor::new(text), &schedule[0]).unwrap_err();
        assert!(
            err.to_string().contains("without a newline"),
            "a lost final newline must read as truncation: {err}"
        );
    }

    #[test]
    fn validate_shard_stream_returns_the_rows_it_checked() {
        let keys: Vec<u64> = (0..6).collect();
        let (streams, schedule) = split(&keys, 2);
        for (i, reader) in readers(&streams).into_iter().enumerate() {
            let rows = validate_shard_stream(i + 1, reader, &schedule[i]).unwrap();
            assert_eq!(rows, streams[i]);
        }
        // An empty stream against an empty schedule is valid (a shard of a
        // grid smaller than the shard count legitimately owns nothing).
        let empty = std::io::Cursor::new(String::new());
        assert_eq!(
            validate_shard_stream(1, empty, &[]).unwrap(),
            Vec::<String>::new()
        );
    }

    #[test]
    fn schedules_partition_real_job_keys() {
        let generator = GeneratorConfig::small();
        let keys: Vec<JobKey> = [1usize, 2, 4, 8, 16]
            .iter()
            .map(|&lb| {
                JobKey::new(
                    &generator,
                    Benchmark::Cg,
                    &DesignPoint::baseline().with_line_buffers(lb).unwrap(),
                )
            })
            .collect();
        let schedule = shard_key_schedule(&keys, 3);
        assert_eq!(schedule.len(), 3);
        let mut union: Vec<String> = schedule.concat();
        union.sort_unstable();
        let mut want: Vec<String> = keys.iter().map(JobKey::hex).collect();
        want.sort_unstable();
        assert_eq!(union, want, "schedules must cover every key exactly once");
        for (i, keys_of_shard) in schedule.iter().enumerate() {
            assert!(keys_of_shard.is_sorted(), "shard {i} schedule unsorted");
        }
    }
}
