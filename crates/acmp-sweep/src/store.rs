//! The persistent, content-addressed result store.
//!
//! Every simulation result is written under the hex digest of its
//! [`JobKey`](crate::JobKey), as one JSON file in the store directory
//! (default `target/sweep-cache/`).  A later run — any process, any worker
//! count — that derives the same key is served from disk instead of
//! re-simulating, which turns repeated figure runs into warm starts.
//!
//! Entries are self-verifying: the file embeds the full canonical key next
//! to the value, and a load whose embedded key does not match the request
//! (a digest collision, or a stale file from an incompatible revision) is
//! treated as a miss and overwritten.  Writes go to a process-unique
//! temporary file first and are atomically renamed into place, so
//! concurrent sweeps never observe torn entries.

use crate::job::JobKey;
use serde::{Deserialize, Serialize, Value};
use serde_json::json;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// Counters describing how a store behaved over its lifetime.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StoreStats {
    /// Loads served from disk.
    pub hits: u64,
    /// Loads that found no (valid) entry.
    pub misses: u64,
    /// Entries written.
    pub writes: u64,
}

/// An on-disk key → value store addressed by stable content hash.
#[derive(Debug)]
pub struct DiskStore {
    root: PathBuf,
    hits: AtomicU64,
    misses: AtomicU64,
    writes: AtomicU64,
}

impl DiskStore {
    /// Opens (creating if needed) a store rooted at `root`.
    ///
    /// # Errors
    ///
    /// Returns the I/O error if the directory cannot be created.
    pub fn open(root: impl Into<PathBuf>) -> std::io::Result<Self> {
        let root = root.into();
        std::fs::create_dir_all(&root)?;
        Ok(DiskStore {
            root,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            writes: AtomicU64::new(0),
        })
    }

    /// The default store location: `target/sweep-cache` under the current
    /// directory, overridable via the `ACMP_SWEEP_CACHE` environment
    /// variable.
    #[must_use]
    pub fn default_root() -> PathBuf {
        std::env::var_os("ACMP_SWEEP_CACHE")
            .map(PathBuf::from)
            .unwrap_or_else(|| PathBuf::from("target").join("sweep-cache"))
    }

    /// The store directory.
    #[must_use]
    pub fn root(&self) -> &Path {
        &self.root
    }

    fn entry_path(&self, key: &JobKey) -> PathBuf {
        self.root.join(format!("{}.json", key.hex()))
    }

    /// Whether an entry file exists for `key` (without reading or verifying
    /// it, and without touching the hit/miss counters).  A cheap pre-check
    /// for schedulers deciding what work a grid still needs.
    #[must_use]
    pub fn contains(&self, key: &JobKey) -> bool {
        self.entry_path(key).is_file()
    }

    /// Loads the value stored under `key`, verifying the embedded canonical
    /// key.  Any malformed, mismatched or unreadable entry counts as a miss.
    pub fn load<V: Deserialize>(&self, key: &JobKey) -> Option<V> {
        let loaded = self.try_load(key);
        match loaded {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        loaded
    }

    fn try_load<V: Deserialize>(&self, key: &JobKey) -> Option<V> {
        let text = std::fs::read_to_string(self.entry_path(key)).ok()?;
        let envelope: Value = serde_json::from_str(&text).ok()?;
        let fields = envelope.as_object()?;
        let stored_key = serde::get_field(fields, "key").ok()?.as_str()?;
        if stored_key != key.canonical() {
            return None;
        }
        let value = serde::get_field(fields, "value").ok()?;
        V::deserialize(value).ok()
    }

    /// Persists `value` under `key`.
    ///
    /// # Errors
    ///
    /// Returns the I/O or serialisation error; callers may treat a failed
    /// store write as non-fatal (the result is still in memory).
    pub fn save<V: Serialize>(&self, key: &JobKey, value: &V) -> Result<(), serde::Error> {
        let envelope = json!({
            "key": key.canonical(),
            "value": value,
        });
        let final_path = self.entry_path(key);
        let tmp_path = self
            .root
            .join(format!(".{}.tmp.{}", key.hex(), std::process::id()));
        std::fs::write(&tmp_path, serde_json::to_string(&envelope)?)?;
        std::fs::rename(&tmp_path, &final_path).map_err(serde::Error::from)?;
        self.writes.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Lifetime counters of this store handle.
    pub fn stats(&self) -> StoreStats {
        StoreStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            writes: self.writes.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::design_point::DesignPoint;
    use hpc_workloads::{Benchmark, GeneratorConfig};

    fn temp_store(tag: &str) -> DiskStore {
        let dir = std::env::temp_dir().join(format!(
            "acmp-sweep-store-test-{tag}-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        DiskStore::open(dir).expect("temp store")
    }

    fn key(benchmark: Benchmark) -> JobKey {
        JobKey::new(
            &GeneratorConfig::small(),
            benchmark,
            &DesignPoint::baseline(),
        )
    }

    #[test]
    fn save_then_load_round_trips() {
        let store = temp_store("roundtrip");
        let k = key(Benchmark::Cg);
        assert_eq!(store.load::<Vec<u64>>(&k), None);
        store.save(&k, &vec![1u64, 2, 3]).unwrap();
        assert_eq!(store.load::<Vec<u64>>(&k), Some(vec![1, 2, 3]));
        let stats = store.stats();
        assert_eq!((stats.hits, stats.misses, stats.writes), (1, 1, 1));
    }

    #[test]
    fn entries_survive_reopening() {
        let store = temp_store("reopen");
        let k = key(Benchmark::Lu);
        store.save(&k, &7u64).unwrap();
        let reopened = DiskStore::open(store.root().to_path_buf()).unwrap();
        assert_eq!(reopened.load::<u64>(&k), Some(7));
    }

    #[test]
    fn corrupt_and_mismatched_entries_are_misses() {
        let store = temp_store("corrupt");
        let k = key(Benchmark::Ep);
        store.save(&k, &1u64).unwrap();

        // Corrupt the file body.
        let path = store.root().join(format!("{}.json", k.hex()));
        std::fs::write(&path, "not json at all").unwrap();
        assert_eq!(store.load::<u64>(&k), None);

        // A syntactically valid envelope whose embedded key differs (a
        // simulated digest collision) must also be rejected.
        std::fs::write(&path, "{\"key\":\"something else\",\"value\":1}").unwrap();
        assert_eq!(store.load::<u64>(&k), None);
    }

    #[test]
    fn distinct_keys_use_distinct_files() {
        let store = temp_store("distinct");
        store.save(&key(Benchmark::Cg), &1u64).unwrap();
        store.save(&key(Benchmark::Lu), &2u64).unwrap();
        assert_eq!(store.load::<u64>(&key(Benchmark::Cg)), Some(1));
        assert_eq!(store.load::<u64>(&key(Benchmark::Lu)), Some(2));
    }
}
