//! A work-stealing thread pool for simulation jobs.
//!
//! Sweep grids are embarrassingly parallel but wildly unbalanced: a
//! paper-scale LULESH simulation runs an order of magnitude longer than a
//! tiny CG one, and a static split across threads leaves most of the pool
//! idle behind the slowest slice.  The pool therefore gives every worker
//! its own deque, seeded round-robin; a worker pops from the back of its
//! own deque (LIFO, cache-warm) and, when empty, steals from the front of
//! the global injector and then from the front of its siblings' deques
//! (FIFO, the oldest — and statistically largest remaining — work).
//!
//! Built entirely on `std::thread` plus the `parking_lot` shim: the
//! environment is offline, so no rayon/crossbeam.

use parking_lot::Mutex;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};

/// How a finished pool run went, for logs and tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolStats {
    /// Worker threads the pool ran with.
    pub workers: usize,
    /// Jobs executed.
    pub jobs: usize,
    /// Jobs a worker took from a sibling's deque rather than its own.
    pub steals: u64,
    /// Jobs taken from the global injector after the local deque drained.
    pub injector_pops: u64,
}

/// The host-sized worker count: `available_parallelism`, falling back to 4
/// when the platform cannot report it (containers without cpuset info,
/// exotic platforms).  Callers that want a different count say so
/// explicitly — [`SweepEngineBuilder::workers`](crate::SweepEngineBuilder::workers)
/// or `sweep run --workers N`; there is no environment override.
fn host_worker_count() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(4)
}

/// Splits a host's worker budget across `shards` cooperating processes:
/// each shard gets an equal share, never rounded down to zero.  Used by the
/// `--shards N` coordinator; the floor matters in the degenerate cases —
/// more shards than cores, or more shards than grid cells — where a
/// truncating division would otherwise ask a child for a zero-thread pool.
#[must_use]
pub fn split_worker_budget(budget: usize, shards: u32) -> usize {
    (budget / (shards.max(1) as usize)).max(1)
}

/// A bounded work-stealing executor.
///
/// The pool is created per run; workers are scoped threads, so borrowed job
/// data needs no `'static` bound.
#[derive(Debug, Clone, Copy)]
pub struct WorkStealingPool {
    workers: usize,
}

impl WorkStealingPool {
    /// A pool with `workers` threads (at least one).
    #[must_use]
    pub fn new(workers: usize) -> Self {
        WorkStealingPool {
            workers: workers.max(1),
        }
    }

    /// A pool sized to the machine: `available_parallelism`, then a
    /// fallback of 4.  Multi-process runs that must split the machine's
    /// cores pass an explicit count instead (the `--shards N` coordinator
    /// hands each child its share via `--workers`).
    #[must_use]
    pub fn host_sized() -> Self {
        Self::new(host_worker_count())
    }

    /// Number of worker threads.
    #[must_use]
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Runs `f` over every job, returning results in input order plus the
    /// run's scheduling statistics.
    ///
    /// `f` may be called from any worker thread; results are collected
    /// per-worker and merged once at the end, so the only shared hot state
    /// is the deques themselves.
    pub fn run<J, R, F>(&self, jobs: Vec<J>, f: F) -> (Vec<R>, PoolStats)
    where
        J: Send + Sync,
        R: Send,
        F: Fn(&J) -> R + Sync,
    {
        let n_jobs = jobs.len();
        let workers = self.workers.min(n_jobs.max(1));
        let steals = AtomicU64::new(0);
        let injector_pops = AtomicU64::new(0);

        // Job payloads live in a flat slice; the deques move indices around.
        let slots: Vec<Mutex<Option<R>>> = (0..n_jobs).map(|_| Mutex::new(None)).collect();

        // Seed: the first `workers` jobs go one to each local deque (so every
        // thread starts immediately), the rest to the injector in order.
        let deques: Vec<Mutex<VecDeque<usize>>> =
            (0..workers).map(|_| Mutex::new(VecDeque::new())).collect();
        let injector: Mutex<VecDeque<usize>> = Mutex::new(VecDeque::new());
        {
            let seeded = workers.min(n_jobs);
            for (deque, idx) in deques.iter().zip(0..seeded) {
                deque.lock().push_back(idx);
            }
            let mut inj = injector.lock();
            for idx in seeded..n_jobs {
                inj.push_back(idx);
            }
            acmp_obs::histogram!(acmp_obs::names::POOL_QUEUE_DEPTH, inj.len() as u64);
        }

        std::thread::scope(|scope| {
            for me in 0..workers {
                let jobs = &jobs;
                let slots = &slots;
                let deques = &deques;
                let injector = &injector;
                let steals = &steals;
                let injector_pops = &injector_pops;
                let f = &f;
                scope.spawn(move || {
                    let mut worker_span =
                        acmp_obs::span!(acmp_obs::names::POOL_WORKER, worker = me);
                    let (mut my_jobs, mut my_steals, mut my_pops) = (0u64, 0u64, 0u64);
                    loop {
                        // 1. Own deque, newest first.
                        let mut job = deques[me].lock().pop_back();
                        // 2. Global injector, oldest first.
                        if job.is_none() {
                            job = injector.lock().pop_front();
                            if job.is_some() {
                                injector_pops.fetch_add(1, Ordering::Relaxed);
                                my_pops += 1;
                            }
                        }
                        // 3. Steal from siblings, oldest first.
                        if job.is_none() {
                            for other in 1..workers {
                                let victim = (me + other) % workers;
                                job = deques[victim].lock().pop_front();
                                if job.is_some() {
                                    steals.fetch_add(1, Ordering::Relaxed);
                                    my_steals += 1;
                                    break;
                                }
                            }
                        }
                        match job {
                            Some(idx) => {
                                let out = f(&jobs[idx]);
                                *slots[idx].lock() = Some(out);
                                my_jobs += 1;
                            }
                            // Every queue was observed empty.  All jobs were
                            // enqueued before the workers started and jobs never
                            // spawn jobs, so queues only drain: nothing will
                            // reappear and this worker can exit.  Siblings still
                            // executing their last job finish it before they
                            // exit, so every slot is filled by scope end —
                            // idle workers must not spin against the running
                            // workers' locks while the unbalanced tail drains.
                            None => break,
                        }
                    }
                    worker_span.record_field("jobs", my_jobs);
                    worker_span.record_field("steals", my_steals);
                    worker_span.record_field("injector_pops", my_pops);
                });
            }
        });

        acmp_obs::counter!(acmp_obs::names::POOL_JOBS, n_jobs as u64);
        acmp_obs::counter!(acmp_obs::names::POOL_STEALS, steals.load(Ordering::Relaxed));
        acmp_obs::counter!(
            acmp_obs::names::POOL_INJECTOR_POPS,
            injector_pops.load(Ordering::Relaxed)
        );

        let results: Vec<R> = slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    // acmp-lint: allow(unwrap-in-lib) -- the scoped pool joined above; every slot was filled exactly once
                    .expect("scoped pool finished with every job executed")
            })
            .collect();
        (
            results,
            PoolStats {
                workers,
                jobs: n_jobs,
                steals: steals.load(Ordering::Relaxed),
                injector_pops: injector_pops.load(Ordering::Relaxed),
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn results_preserve_input_order() {
        let pool = WorkStealingPool::new(4);
        let jobs: Vec<u64> = (0..100).collect();
        let (out, stats) = pool.run(jobs, |j| j * 2);
        assert_eq!(out, (0..100).map(|j| j * 2).collect::<Vec<_>>());
        assert_eq!(stats.jobs, 100);
        assert_eq!(stats.workers, 4);
    }

    #[test]
    fn every_job_runs_exactly_once() {
        let pool = WorkStealingPool::new(8);
        let calls = AtomicUsize::new(0);
        let (out, _) = pool.run((0..257).collect(), |j: &usize| {
            calls.fetch_add(1, Ordering::Relaxed);
            *j
        });
        assert_eq!(calls.load(Ordering::Relaxed), 257);
        assert_eq!(out.len(), 257);
    }

    #[test]
    fn unbalanced_jobs_get_stolen() {
        // One long job pinned at index 0 (the first worker's deque), many
        // short ones behind it in the injector: the other workers must
        // drain the injector while worker 0 is busy.
        let pool = WorkStealingPool::new(4);
        let jobs: Vec<u64> = (0..64).collect();
        let (out, stats) = pool.run(jobs, |&j| {
            if j == 0 {
                std::thread::sleep(std::time::Duration::from_millis(30));
            }
            j
        });
        assert_eq!(out.len(), 64);
        assert!(
            stats.injector_pops > 0,
            "short jobs should have been taken from the injector"
        );
    }

    #[test]
    fn single_worker_and_empty_input_work() {
        let pool = WorkStealingPool::new(1);
        let (out, stats) = pool.run(vec![1, 2, 3], |j: &i32| j + 1);
        assert_eq!(out, vec![2, 3, 4]);
        assert_eq!(stats.steals, 0, "one worker has nobody to steal from");

        let (empty, stats) = pool.run(Vec::<i32>::new(), |j| *j);
        assert!(empty.is_empty());
        assert_eq!(stats.jobs, 0);
    }

    #[test]
    fn zero_requested_workers_clamps_to_one() {
        let pool = WorkStealingPool::new(0);
        assert_eq!(pool.workers(), 1);
    }

    #[test]
    fn worker_budget_split_never_rounds_to_zero() {
        assert_eq!(split_worker_budget(8, 2), 4);
        assert_eq!(split_worker_budget(8, 3), 2);
        // Degenerate splits — more shards than cores — still give every
        // shard a working pool.
        assert_eq!(split_worker_budget(2, 16), 1);
        assert_eq!(split_worker_budget(0, 4), 1);
        assert_eq!(
            split_worker_budget(4, 0),
            4,
            "a zero shard count is clamped"
        );
    }

    #[test]
    fn host_sized_pool_has_at_least_one_worker() {
        assert!(WorkStealingPool::host_sized().workers() >= 1);
        assert_eq!(WorkStealingPool::new(0).workers(), 1, "zero is clamped");
    }
}
