//! The sweep engine: cached, parallel execution of simulation grids.

use crate::design_point::DesignPoint;
use crate::job::{JobKey, ShardSpec, SweepJob};
use crate::scheduler::{PoolStats, WorkStealingPool};
use crate::sharded::ShardedMap;
use crate::store::{DiskStore, StoreStats};
use hpc_workloads::{Benchmark, GeneratorConfig, TraceGenerator};
use serde_json::json;
use sim_acmp::{Machine, SimResult};
use sim_trace::{read_trace_set_json, write_trace_set_json, TraceSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Snapshot of the engine's cache behaviour.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EngineStats {
    /// Simulations served from the in-memory sharded cache.
    pub memory_hits: u64,
    /// Simulations served from the on-disk store.
    pub disk_hits: u64,
    /// Simulations actually executed.
    pub simulated: u64,
    /// Trace sets actually generated (not served from any cache).
    pub trace_generated: u64,
    /// Trace sets loaded from the on-disk store.
    pub trace_disk_hits: u64,
    /// Counters of the attached disk store, if any.
    pub store: Option<StoreStats>,
}

/// One completed cell of a sweep grid.
#[derive(Debug, Clone)]
pub struct SweepRow {
    /// The simulated workload.
    pub benchmark: Benchmark,
    /// The simulated machine configuration.
    pub design: DesignPoint,
    /// Content-addressed job key (hex digest).
    pub key: String,
    /// The simulation result.
    pub result: Arc<SimResult>,
}

impl SweepRow {
    /// The row as one line of canonical JSON (no trailing newline).
    ///
    /// Field order is fixed and every number is either an integer or a
    /// shortest-round-trip float, so two runs of the same grid produce
    /// byte-identical lines regardless of worker count or row order.
    #[must_use]
    pub fn to_jsonl(&self) -> String {
        let r = &self.result;
        json!({
            "key": self.key,
            "benchmark": self.benchmark.name(),
            "design": self.design,
            "cycles": r.cycles,
            "instructions": r.instructions,
            "parallel_cycles": r.parallel_cycles,
            "serial_cycles": r.serial_cycles,
            "parallel_regions": r.parallel_regions,
            "worker_icache_mpki": r.worker_icache_mpki(),
            "worker_access_ratio": r.worker_access_ratio(),
            "bus_transactions": r.bus.transactions,
        })
        .to_string()
    }
}

/// The outcome of running a grid: all rows (benchmark-major order) plus the
/// scheduler's statistics.
#[derive(Debug, Clone)]
pub struct SweepOutcome {
    /// One row per (benchmark, design) cell, in input order.
    pub rows: Vec<SweepRow>,
    /// How the work-stealing pool behaved.
    pub pool: PoolStats,
}

/// Cached, parallel executor for (benchmark × design point) grids.
///
/// The engine owns three layers, consulted in order:
///
/// 1. a sharded in-memory result cache (lock per shard, not per engine),
/// 2. an optional content-addressed on-disk store (warm starts across
///    processes),
/// 3. the cycle-level simulator itself, fanned out over a work-stealing
///    thread pool.
///
/// Traces are generated once per benchmark in a sharded cache of their own.
#[derive(Debug)]
pub struct SweepEngine {
    generator: GeneratorConfig,
    shard: ShardSpec,
    pool: WorkStealingPool,
    traces: ShardedMap<Benchmark, Arc<TraceSet>>,
    results: ShardedMap<JobKey, Arc<SimResult>>,
    store: Option<DiskStore>,
    memory_hits: AtomicU64,
    disk_hits: AtomicU64,
    simulated: AtomicU64,
    trace_generated: AtomicU64,
    trace_disk_hits: AtomicU64,
}

/// Configures and opens a [`SweepEngine`].
///
/// This is the one construction path for every knob an engine has —
/// host-thread count, keyspace shard, disk store location and how many
/// store generations to keep.  There are no environment-variable
/// side-channels: a caller that wants a non-default value passes it here,
/// so two engines built from the same code are configured identically no
/// matter what the process environment looks like.
///
/// ```no_run
/// use acmp_sweep::prelude::*;
///
/// let engine = SweepEngine::builder(hpc_workloads::GeneratorConfig::default())
///     .workers(4)
///     .store_dir("target/sweep-cache")
///     .kept_generations(2)
///     .build()?;
/// # std::io::Result::Ok(())
/// ```
#[derive(Debug, Clone)]
pub struct SweepEngineBuilder {
    generator: GeneratorConfig,
    workers: Option<usize>,
    shard: ShardSpec,
    store_dir: Option<std::path::PathBuf>,
    kept_generations: Option<u64>,
}

impl SweepEngineBuilder {
    /// Sets the number of host pool threads (≥ 1).  Defaults to the
    /// machine's available parallelism.
    #[must_use]
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = Some(workers);
        self
    }

    /// Restricts the engine to one shard of the job keyspace (see
    /// [`SweepEngine::with_shard`]).  Defaults to the whole keyspace.
    #[must_use]
    pub fn shard(mut self, shard: ShardSpec) -> Self {
        self.shard = shard;
        self
    }

    /// Attaches a content-addressed disk store rooted at `dir`.  Without
    /// this the engine runs purely in memory.
    #[must_use]
    pub fn store_dir(mut self, dir: impl Into<std::path::PathBuf>) -> Self {
        self.store_dir = Some(dir.into());
        self
    }

    /// Keeps only the newest `generations` store generations, evicting the
    /// rest when the store opens.  Only meaningful together with
    /// [`store_dir`](Self::store_dir); the default keeps every generation.
    #[must_use]
    pub fn kept_generations(mut self, generations: u64) -> Self {
        self.kept_generations = Some(generations);
        self
    }

    /// Builds the engine.
    ///
    /// # Errors
    ///
    /// Returns the I/O error if a configured store directory cannot be
    /// created or opened; construction without a store cannot fail.
    pub fn build(self) -> std::io::Result<SweepEngine> {
        let mut engine = SweepEngine::new(self.generator).with_shard(self.shard);
        if let Some(workers) = self.workers {
            engine = engine.with_threads(workers);
        }
        if let Some(dir) = self.store_dir {
            engine = engine.with_disk_store_limited(dir, self.kept_generations)?;
        }
        Ok(engine)
    }
}

impl SweepEngine {
    /// Starts configuring an engine that generates traces with `generator`.
    ///
    /// See [`SweepEngineBuilder`] for the knobs; `build()` on the untouched
    /// builder is equivalent to [`SweepEngine::new`].
    #[must_use]
    pub fn builder(generator: GeneratorConfig) -> SweepEngineBuilder {
        SweepEngineBuilder {
            generator,
            workers: None,
            shard: ShardSpec::whole(),
            store_dir: None,
            kept_generations: None,
        }
    }

    /// Creates an engine generating traces with `generator`, sized to the
    /// host, with no disk store.
    #[must_use]
    pub fn new(generator: GeneratorConfig) -> Self {
        generator.validate();
        SweepEngine {
            generator,
            shard: ShardSpec::whole(),
            pool: WorkStealingPool::host_sized(),
            traces: ShardedMap::new(),
            results: ShardedMap::new(),
            store: None,
            memory_hits: AtomicU64::new(0),
            disk_hits: AtomicU64::new(0),
            simulated: AtomicU64::new(0),
            trace_generated: AtomicU64::new(0),
            trace_disk_hits: AtomicU64::new(0),
        }
    }

    /// Sets the number of pool threads (≥ 1).
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.pool = WorkStealingPool::new(threads);
        self
    }

    /// Restricts the engine to the slice of the job keyspace owned by
    /// `shard`: grid and job-list runs silently skip cells owned by other
    /// shards and return rows only for owned cells.  Direct
    /// [`simulate`](Self::simulate) calls are *not* filtered — the shard
    /// decides what a grid schedules, not what the engine can compute.
    ///
    /// Ownership is `digest % count` over the job key's stable content
    /// hash, so N engines configured with the N distinct shards of one
    /// `count` — in any mix of threads, processes or machines — partition
    /// the grid exactly: every cell runs in exactly one of them.
    #[must_use]
    pub fn with_shard(mut self, shard: ShardSpec) -> Self {
        self.shard = shard;
        self
    }

    /// Attaches a content-addressed disk store rooted at `root`, keeping
    /// every generation.
    ///
    /// # Errors
    ///
    /// Returns the I/O error if the store directory cannot be created.
    pub fn with_disk_store(self, root: impl Into<std::path::PathBuf>) -> std::io::Result<Self> {
        self.with_disk_store_limited(root, None)
    }

    /// [`with_disk_store`](Self::with_disk_store) with a generation bound:
    /// all but the newest `limit` store generations are evicted at open.
    ///
    /// # Errors
    ///
    /// Returns the I/O error if the store directory cannot be created.
    pub fn with_disk_store_limited(
        mut self,
        root: impl Into<std::path::PathBuf>,
        limit: Option<u64>,
    ) -> std::io::Result<Self> {
        self.store = Some(DiskStore::open_limited(root, limit)?);
        Ok(self)
    }

    /// The trace-generation configuration.
    #[must_use]
    pub fn generator(&self) -> &GeneratorConfig {
        &self.generator
    }

    /// Number of *simulated* worker cores (a property of the generator, not
    /// of the host thread pool).
    #[must_use]
    pub fn simulated_workers(&self) -> usize {
        self.generator.num_workers
    }

    /// Number of host threads the pool fans out over.
    #[must_use]
    pub fn threads(&self) -> usize {
        self.pool.workers()
    }

    /// The attached disk store, if any.
    #[must_use]
    pub fn store(&self) -> Option<&DiskStore> {
        self.store.as_ref()
    }

    /// The keyspace shard this engine runs (the whole keyspace unless
    /// [`with_shard`](Self::with_shard) narrowed it).
    #[must_use]
    pub fn shard(&self) -> ShardSpec {
        self.shard
    }

    /// Returns (loading or generating and caching on first use) the trace
    /// set of `benchmark`.
    ///
    /// With a disk store attached, traces are persisted under
    /// [`JobKey::for_traces`] in `sim-trace`'s JSON-lines format, so a
    /// fully warm run does zero trace generation across processes — not
    /// just within one.
    pub fn traces(&self, benchmark: Benchmark) -> Arc<TraceSet> {
        self.traces.get_or_insert_with(benchmark, || {
            Arc::new(self.load_or_generate_traces(benchmark))
        })
    }

    fn load_or_generate_traces(&self, benchmark: Benchmark) -> TraceSet {
        let mut span = acmp_obs::span!(
            acmp_obs::names::TRACE_LOAD_GENERATE,
            benchmark = benchmark.name()
        );
        let key = self
            .store
            .as_ref()
            .map(|_| JobKey::for_traces(&self.generator, benchmark));
        if let (Some(store), Some(key)) = (&self.store, &key) {
            if let Some(text) = store.load::<String>(key) {
                if let Ok(set) = read_trace_set_json(text.as_bytes()) {
                    self.trace_disk_hits.fetch_add(1, Ordering::Relaxed);
                    acmp_obs::counter!(acmp_obs::names::ENGINE_TRACE_DISK_HITS, 1);
                    span.set_name(acmp_obs::names::TRACE_LOAD_DISK_HIT);
                    return set;
                }
                // A verifiable envelope holding an unreadable trace (e.g.
                // an older TRACE_FORMAT_VERSION): regenerate and overwrite.
            }
        }
        let set = TraceGenerator::new(benchmark.profile(), self.generator).generate();
        self.trace_generated.fetch_add(1, Ordering::Relaxed);
        acmp_obs::counter!(acmp_obs::names::ENGINE_TRACE_GENERATED, 1);
        if let (Some(store), Some(key)) = (&self.store, &key) {
            let mut buf = Vec::new();
            if write_trace_set_json(&set, &mut buf).is_ok() {
                if let Ok(text) = String::from_utf8(buf) {
                    // Like result writes, a failed trace write is non-fatal.
                    if store.save(key, &text).is_err() {
                        acmp_obs::logline!(
                            "sweep: warning: trace cache write failed for {benchmark}"
                        );
                    }
                }
            }
        }
        set
    }

    /// Simulates `benchmark` on `design`, consulting the memory cache, then
    /// the disk store, then running the simulator.
    ///
    /// # Panics
    ///
    /// Panics if the simulation fails (cycle limit exceeded), which points
    /// at a configuration or runtime bug rather than a user error.
    pub fn simulate(&self, benchmark: Benchmark, design: &DesignPoint) -> Arc<SimResult> {
        let key = JobKey::new(&self.generator, benchmark, design);
        self.simulate_keyed(benchmark, design, key)
    }

    /// [`simulate`](Self::simulate) with the job key already derived, so
    /// grid runs that need the key for their output rows compute it once.
    fn simulate_keyed(
        &self,
        benchmark: Benchmark,
        design: &DesignPoint,
        key: JobKey,
    ) -> Arc<SimResult> {
        let mut span = acmp_obs::span!(acmp_obs::names::SIMULATE_CELL_SIMULATE);
        if acmp_obs::enabled() {
            span.record_field("benchmark", benchmark.name());
            span.record_field("design", design.to_string());
            span.record_field("key", key.hex());
        }
        if let Some(cached) = self.results.get(&key) {
            self.memory_hits.fetch_add(1, Ordering::Relaxed);
            acmp_obs::counter!(acmp_obs::names::ENGINE_MEMORY_HITS, 1);
            span.set_name(acmp_obs::names::SIMULATE_CELL_MEMORY_HIT);
            return cached;
        }
        if let Some(store) = &self.store {
            if let Some(result) = store.load::<SimResult>(&key) {
                self.disk_hits.fetch_add(1, Ordering::Relaxed);
                acmp_obs::counter!(acmp_obs::names::ENGINE_DISK_HITS, 1);
                span.set_name(acmp_obs::names::SIMULATE_CELL_DISK_HIT);
                return self.results.insert_if_absent(key, Arc::new(result));
            }
        }
        let traces = self.traces(benchmark);
        let config = design.acmp_config(self.simulated_workers());
        let result = Arc::new(
            Machine::with_shared_traces(config, traces)
                .run()
                .unwrap_or_else(|e| panic!("simulation of {benchmark} on {design} failed: {e}")),
        );
        self.simulated.fetch_add(1, Ordering::Relaxed);
        acmp_obs::counter!(acmp_obs::names::ENGINE_SIMULATED, 1);
        if let Some(store) = &self.store {
            // A failed store write is non-fatal: the result stays in memory.
            if store.save(&key, result.as_ref()).is_err() {
                acmp_obs::logline!("sweep: warning: result cache write failed for {key}");
            }
        }
        self.results.insert_if_absent(key, result)
    }

    /// Runs the full `benchmarks` × `designs` grid on the pool, returning
    /// rows in benchmark-major input order.
    pub fn run_grid(&self, benchmarks: &[Benchmark], designs: &[DesignPoint]) -> SweepOutcome {
        self.run_grid_with(benchmarks, designs, |_| {})
    }

    /// [`run_grid`](Self::run_grid) with a per-row completion callback.
    ///
    /// `on_row` is invoked from the worker thread that finished the cell,
    /// as soon as it finishes — this is how the CLI streams live progress.
    pub fn run_grid_with<C>(
        &self,
        benchmarks: &[Benchmark],
        designs: &[DesignPoint],
        on_row: C,
    ) -> SweepOutcome
    where
        C: Fn(&SweepRow) + Sync,
    {
        let jobs: Vec<SweepJob> = benchmarks
            .iter()
            .flat_map(|&benchmark| {
                designs.iter().map(move |design| SweepJob {
                    benchmark,
                    design: design.clone(),
                })
            })
            .collect();
        self.run_jobs_with(jobs, on_row)
    }

    /// Runs an explicit job list on the pool, returning rows in input order.
    pub fn run_jobs(&self, jobs: Vec<SweepJob>) -> SweepOutcome {
        self.run_jobs_with(jobs, |_| {})
    }

    /// [`run_jobs`](Self::run_jobs) with a per-row completion callback.
    pub fn run_jobs_with<C>(&self, jobs: Vec<SweepJob>, on_row: C) -> SweepOutcome
    where
        C: Fn(&SweepRow) + Sync,
    {
        // Cells owned by other shards are dropped here, before anything is
        // scheduled: a shard neither simulates them nor prefetches traces
        // a foreign-only benchmark would need.
        let keyed: Vec<(SweepJob, JobKey)> = jobs
            .into_iter()
            .map(|job| {
                let key = job.key(&self.generator);
                (job, key)
            })
            .filter(|(_, key)| self.shard.owns(key.digest()))
            .collect();

        // Materialise traces up front — one pool job per distinct benchmark
        // that actually needs simulating.  Cell jobs are benchmark-major,
        // so without this a cold grid would start `min(threads, designs)`
        // workers on the same benchmark at once and each would run the full
        // trace generator (the cache's `make` deliberately runs unlocked).
        // Cells already resident in memory or on disk don't need traces; a
        // fully warm run must stay trace-free.  `store.contains` answers
        // from the verified segment index, so a corrupt or key-mismatched
        // entry reads as absent here and its benchmark keeps its prefetch
        // job — trusting an unverified existence check used to let exactly
        // such an entry miss at simulate time and stampede every worker
        // into regenerating the same trace set concurrently.
        let mut need_traces: Vec<Benchmark> = keyed
            .iter()
            .filter(|(_, key)| {
                self.results.get(key).is_none()
                    && !self.store.as_ref().is_some_and(|s| s.contains(key))
            })
            .map(|(job, _)| job.benchmark)
            .collect();
        need_traces.sort_unstable();
        need_traces.dedup();
        self.pool.run(need_traces, |&b| {
            self.traces(b);
        });

        let (rows, pool) = self.pool.run(keyed, |(job, key)| {
            let hex = key.hex();
            let result = self.simulate_keyed(job.benchmark, &job.design, key.clone());
            let row = SweepRow {
                benchmark: job.benchmark,
                design: job.design.clone(),
                key: hex,
                result,
            };
            on_row(&row);
            row
        });
        SweepOutcome { rows, pool }
    }

    /// Runs `f` once per benchmark on the pool, preserving input order.
    ///
    /// This is the escape hatch for experiments that do per-benchmark work
    /// other than plain grid simulation (trace analysis, replay models);
    /// `f` may itself call [`simulate`](Self::simulate) and will hit the
    /// shared caches.
    pub fn run_per_benchmark<T, F>(&self, benchmarks: &[Benchmark], f: F) -> Vec<(Benchmark, T)>
    where
        T: Send,
        F: Fn(Benchmark) -> T + Sync,
    {
        let (rows, _) = self.pool.run(benchmarks.to_vec(), |&b| (b, f(b)));
        rows
    }

    /// Snapshot of cache behaviour since the engine was created.
    pub fn stats(&self) -> EngineStats {
        EngineStats {
            memory_hits: self.memory_hits.load(Ordering::Relaxed),
            disk_hits: self.disk_hits.load(Ordering::Relaxed),
            simulated: self.simulated.load(Ordering::Relaxed),
            trace_generated: self.trace_generated.load(Ordering::Relaxed),
            trace_disk_hits: self.trace_disk_hits.load(Ordering::Relaxed),
            store: self.store.as_ref().map(DiskStore::stats),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_engine() -> SweepEngine {
        SweepEngine::new(GeneratorConfig {
            num_workers: 2,
            parallel_instructions_per_thread: 5_000,
            num_phases: 1,
            seed: 3,
        })
    }

    #[test]
    fn traces_are_cached_and_shared() {
        let engine = small_engine();
        let a = engine.traces(Benchmark::Cg);
        let b = engine.traces(Benchmark::Cg);
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn simulate_hits_the_memory_cache() {
        let engine = small_engine();
        let a = engine.simulate(Benchmark::Cg, &DesignPoint::baseline());
        let b = engine.simulate(Benchmark::Cg, &DesignPoint::baseline());
        assert!(Arc::ptr_eq(&a, &b));
        let stats = engine.stats();
        assert_eq!(stats.simulated, 1);
        assert_eq!(stats.memory_hits, 1);
    }

    #[test]
    fn distinct_designs_with_identical_names_never_collide() {
        let engine = small_engine();
        let mut shrunk = DesignPoint::baseline();
        shrunk.icache_bytes = 8 * 1024;
        assert_eq!(shrunk.name, DesignPoint::baseline().name);
        let a = engine.simulate(Benchmark::Cg, &DesignPoint::baseline());
        let b = engine.simulate(Benchmark::Cg, &shrunk);
        assert!(!Arc::ptr_eq(&a, &b), "same-name points must key separately");
        assert_eq!(engine.stats().simulated, 2);
    }

    #[test]
    fn run_grid_covers_the_cross_product_in_order() {
        let engine = small_engine().with_threads(3);
        let benchmarks = [Benchmark::Cg, Benchmark::Is];
        let designs = [DesignPoint::baseline(), DesignPoint::proposed()];
        let outcome = engine.run_grid(&benchmarks, &designs);
        assert_eq!(outcome.rows.len(), 4);
        assert_eq!(outcome.pool.jobs, 4);
        let cells: Vec<(Benchmark, &str)> = outcome
            .rows
            .iter()
            .map(|r| (r.benchmark, r.design.name.as_str()))
            .collect();
        assert_eq!(
            cells,
            vec![
                (Benchmark::Cg, "baseline"),
                (Benchmark::Cg, "cpc8-16K-4lb-double"),
                (Benchmark::Is, "baseline"),
                (Benchmark::Is, "cpc8-16K-4lb-double"),
            ]
        );
        // Re-running the same grid is served from memory.
        let before = engine.stats().simulated;
        engine.run_grid(&benchmarks, &designs);
        assert_eq!(engine.stats().simulated, before);
    }

    #[test]
    fn sharded_engines_partition_the_grid_exactly() {
        let benchmarks = [Benchmark::Cg, Benchmark::Lu];
        let designs = [
            DesignPoint::baseline(),
            DesignPoint::proposed(),
            DesignPoint::all_shared(),
        ];
        let mut full: Vec<String> = small_engine()
            .run_grid(&benchmarks, &designs)
            .rows
            .iter()
            .map(SweepRow::to_jsonl)
            .collect();
        full.sort_unstable();

        for count in [1u32, 2, 3, 4] {
            let mut union: Vec<String> = Vec::new();
            let mut simulated = 0;
            for index in 0..count {
                let shard = ShardSpec::new(index, count).unwrap();
                let engine = small_engine().with_shard(shard);
                assert_eq!(engine.shard(), shard);
                let outcome = engine.run_grid(&benchmarks, &designs);
                assert_eq!(outcome.pool.jobs, outcome.rows.len());
                union.extend(outcome.rows.iter().map(SweepRow::to_jsonl));
                simulated += engine.stats().simulated;
            }
            union.sort_unstable();
            assert_eq!(union, full, "{count} shards must cover the grid");
            // Disjoint ownership: the six cells simulate exactly once in
            // total, no matter how many shards split them.
            assert_eq!(simulated, 6, "no double work across {count} shards");
        }
    }

    #[test]
    fn disk_store_round_trips_results_across_engines() {
        let dir =
            std::env::temp_dir().join(format!("acmp-sweep-engine-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);

        let cold = small_engine().with_disk_store(&dir).unwrap();
        let a = cold.simulate(Benchmark::Cg, &DesignPoint::baseline());
        assert_eq!(cold.stats().disk_hits, 0);

        // A fresh engine (fresh memory cache) over the same store.
        let warm = small_engine().with_disk_store(&dir).unwrap();
        let b = warm.simulate(Benchmark::Cg, &DesignPoint::baseline());
        assert_eq!(warm.stats().disk_hits, 1);
        assert_eq!(warm.stats().simulated, 0);
        assert_eq!(*a, *b, "disk round trip must be lossless");
    }

    fn store_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "acmp-sweep-engine-test-{tag}-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    /// Corrupts (in place) every segment record line matching `pred`,
    /// returning how many lines were hit.
    fn corrupt_records(dir: &std::path::Path, pred: impl Fn(&str) -> bool) -> usize {
        let mut corrupted = 0;
        for entry in std::fs::read_dir(dir).unwrap().flatten() {
            let name = entry.file_name().to_string_lossy().into_owned();
            if crate::segment::SegmentName::parse(&name).is_none() {
                continue;
            }
            let text = std::fs::read_to_string(entry.path()).unwrap();
            let mangled: Vec<String> = text
                .lines()
                .map(|line| {
                    if pred(line) {
                        corrupted += 1;
                        format!("X{}", &line[1..])
                    } else {
                        line.to_string()
                    }
                })
                .collect();
            std::fs::write(entry.path(), mangled.join("\n")).unwrap();
        }
        corrupted
    }

    #[test]
    fn warm_engine_generates_and_loads_zero_traces() {
        let dir = store_dir("warm-traces");
        let benchmarks = [Benchmark::Cg, Benchmark::Lu];
        let designs = [DesignPoint::baseline(), DesignPoint::proposed()];

        let cold = small_engine().with_disk_store(&dir).unwrap();
        let cold_rows = cold.run_grid(&benchmarks, &designs);
        assert_eq!(cold.stats().trace_generated, 2, "one per benchmark");
        assert_eq!(cold.stats().trace_disk_hits, 0);
        // The store holds one entry per cell plus one per benchmark.
        assert_eq!(cold.stats().store.unwrap().entries, 4 + 2);

        // A fresh engine (fresh process stand-in) over the same store: all
        // cells hit the disk store, so no traces are generated — or even
        // loaded.
        let warm = small_engine().with_disk_store(&dir).unwrap();
        let warm_rows = warm.run_grid(&benchmarks, &designs);
        let stats = warm.stats();
        assert_eq!(stats.simulated, 0);
        assert_eq!(stats.trace_generated, 0, "warm runs must not generate");
        assert_eq!(stats.trace_disk_hits, 0, "fully warm runs skip traces");
        let cold_jsonl: Vec<String> = cold_rows.rows.iter().map(SweepRow::to_jsonl).collect();
        let warm_jsonl: Vec<String> = warm_rows.rows.iter().map(SweepRow::to_jsonl).collect();
        assert_eq!(cold_jsonl, warm_jsonl);

        // A partially warm grid (one new design) reuses the persisted
        // traces instead of regenerating them.
        let wider = small_engine().with_disk_store(&dir).unwrap();
        let mut designs3 = designs.to_vec();
        designs3.push(DesignPoint::all_shared());
        wider.run_grid(&benchmarks, &designs3);
        let stats = wider.stats();
        assert_eq!(stats.simulated, 2, "only the new design's cells run");
        assert_eq!(stats.trace_generated, 0);
        assert_eq!(stats.trace_disk_hits, 2, "traces come from the store");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_result_entry_resimulates_without_regenerating_traces() {
        let dir = store_dir("corrupt-result");
        let benchmarks = [Benchmark::Cg];
        let designs = [DesignPoint::baseline(), DesignPoint::proposed()];
        let cold = small_engine().with_disk_store(&dir).unwrap();
        let cold_rows = cold.run_grid(&benchmarks, &designs);

        // Corrupt both result entries; leave the trace entry intact.
        assert_eq!(corrupt_records(&dir, |l| !l.contains("traces")), 2);

        let warm = small_engine()
            .with_threads(4)
            .with_disk_store(&dir)
            .unwrap();
        let warm_rows = warm.run_grid(&benchmarks, &designs);
        let stats = warm.stats();
        assert_eq!(stats.simulated, 2, "corrupt entries must re-simulate");
        assert_eq!(stats.trace_generated, 0, "traces still come from disk");
        assert_eq!(stats.trace_disk_hits, 1);
        let cold_jsonl: Vec<String> = cold_rows.rows.iter().map(SweepRow::to_jsonl).collect();
        let warm_jsonl: Vec<String> = warm_rows.rows.iter().map(SweepRow::to_jsonl).collect();
        assert_eq!(cold_jsonl, warm_jsonl, "re-simulation must be lossless");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_entries_never_stampede_trace_generation() {
        // The regression this guards: the prefetch filter used to trust an
        // unverified existence check, so a corrupt entry excluded its
        // benchmark from the prefetch, missed at simulate time, and every
        // worker regenerated the same trace set concurrently.
        let dir = store_dir("stampede");
        let benchmarks = [Benchmark::Cg];
        let designs = [
            DesignPoint::baseline(),
            DesignPoint::proposed(),
            DesignPoint::all_shared(),
        ];
        let cold = small_engine().with_disk_store(&dir).unwrap();
        cold.run_grid(&benchmarks, &designs);

        // Corrupt *everything* — results and traces.
        assert_eq!(corrupt_records(&dir, |_| true), 4);

        let warm = small_engine()
            .with_threads(4)
            .with_disk_store(&dir)
            .unwrap();
        warm.run_grid(&benchmarks, &designs);
        let stats = warm.stats();
        assert_eq!(stats.simulated, 3);
        assert_eq!(
            stats.trace_generated, 1,
            "the verified pre-check must route the benchmark through the \
             single prefetch job, not a per-worker stampede"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn jsonl_rows_are_deterministic() {
        let engine = small_engine();
        let outcome = engine.run_grid(&[Benchmark::Cg], &[DesignPoint::baseline()]);
        let again = engine.run_grid(&[Benchmark::Cg], &[DesignPoint::baseline()]);
        assert_eq!(outcome.rows[0].to_jsonl(), again.rows[0].to_jsonl());
        assert!(outcome.rows[0].to_jsonl().starts_with("{\"key\":\""));
    }

    #[test]
    fn run_per_benchmark_preserves_order() {
        let engine = small_engine();
        let out = engine.run_per_benchmark(&[Benchmark::Cg, Benchmark::Lu], |b| b.name().len());
        assert_eq!(out, vec![(Benchmark::Cg, 2), (Benchmark::Lu, 2)]);
    }
}
