//! Grid specifications for the `sweep` CLI.
//!
//! A grid is `benchmarks × design points`, each side given as a
//! comma-separated spec string:
//!
//! * benchmarks — `all`, `quick` (the six-workload CI subset), or a comma
//!   list of benchmark names (`cg,lu,ua`);
//! * designs — any mix of named points and generators:
//!   * `baseline`, `proposed`, `all-shared`, `all-shared-single`,
//!     `worker-shared-32k`
//!   * `naive:2` — naive sharing with the given cores-per-cache degree
//!   * `lb:8` — the baseline with the given number of line buffers
//!   * `shared:16:4:double` — cpc = 8 sharing with `<KiB>:<line
//!     buffers>:<single|double>`
//!   * `figN` presets (`fig07`, `fig09`, `fig10`, `fig11`, `fig12`,
//!     `fig13`) — exactly the design list the corresponding paper figure
//!     sweeps.

use crate::design_point::DesignPoint;
use crate::design_point::DesignPointError;
use crate::job::SweepJob;
use crate::stable_hash;
use hpc_workloads::Benchmark;
use sim_acmp::BusWidth;
use std::collections::HashSet;

/// A parsed `benchmarks × designs` grid.
#[derive(Debug, Clone, PartialEq)]
pub struct GridSpec {
    /// The benchmarks to sweep.
    pub benchmarks: Vec<Benchmark>,
    /// The design points to sweep.
    pub designs: Vec<DesignPoint>,
}

impl GridSpec {
    /// Parses a grid from benchmark and design spec strings.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message naming the offending token.
    pub fn parse(benchmarks: &str, designs: &str) -> Result<Self, String> {
        let grid = GridSpec {
            benchmarks: parse_benchmarks(benchmarks)?,
            designs: parse_designs(designs)?,
        };
        if grid.benchmarks.is_empty() {
            return Err("benchmark spec selects nothing".to_string());
        }
        if grid.designs.is_empty() {
            return Err("design spec selects nothing".to_string());
        }
        Ok(grid)
    }

    /// Number of (benchmark, design) cells.
    #[must_use]
    pub fn cells(&self) -> usize {
        self.benchmarks.len() * self.designs.len()
    }

    /// The grid's cells as an explicit benchmark-major job list — the same
    /// order [`SweepEngine::run_grid`](crate::SweepEngine::run_grid)
    /// schedules.  This is how the sharded CLI computes, without running
    /// anything, which cells each shard owns and which keys its row stream
    /// must carry.
    #[must_use]
    pub fn jobs(&self) -> Vec<SweepJob> {
        self.benchmarks
            .iter()
            .flat_map(|&benchmark| {
                self.designs.iter().map(move |design| SweepJob {
                    benchmark,
                    design: design.clone(),
                })
            })
            .collect()
    }
}

/// The six-workload subset used by quick/CI runs.  This is the single
/// definition: `bench_harness::Scale::Quick` delegates here.
#[must_use]
pub fn quick_benchmarks() -> Vec<Benchmark> {
    vec![
        Benchmark::Cg,
        Benchmark::Lu,
        Benchmark::Ua,
        Benchmark::CoEvp,
        Benchmark::CoMd,
        Benchmark::Lulesh,
    ]
}

fn parse_benchmarks(spec: &str) -> Result<Vec<Benchmark>, String> {
    match spec {
        "all" => Ok(Benchmark::ALL.to_vec()),
        "quick" => Ok(quick_benchmarks()),
        list => list
            .split(',')
            .filter(|t| !t.is_empty())
            .map(|token| {
                Benchmark::from_name(token)
                    .ok_or_else(|| format!("unknown benchmark `{token}` (try `all` or `quick`)"))
            })
            .collect(),
    }
}

fn parse_designs(spec: &str) -> Result<Vec<DesignPoint>, String> {
    let mut designs = Vec::new();
    for token in spec.split(',').filter(|t| !t.is_empty()) {
        designs.extend(parse_design_token(token)?);
    }
    // A preset plus an explicit point may both name the baseline; keep the
    // first occurrence of each distinct point.  Identity is the point's
    // canonical serialized form — the same content the job key hashes — so
    // the dedup is a hashed O(n) pass; the old `Vec::contains` scan over
    // full struct equality was O(n²), which generator tokens like `naive:8`
    // stacked with large `shared:` grids turned into real parse time.
    let mut seen: HashSet<String> = HashSet::with_capacity(designs.len());
    let mut deduped: Vec<DesignPoint> = Vec::with_capacity(designs.len());
    for d in designs {
        if seen.insert(stable_hash::canonical_json(&d)) {
            deduped.push(d);
        }
    }
    Ok(deduped)
}

fn parse_design_token(token: &str) -> Result<Vec<DesignPoint>, String> {
    // Presets use statically known-good parameters, so the fallible
    // constructors cannot fail here.
    // acmp-lint: allow(unwrap-in-lib) -- preset constructor arguments are compile-time constants
    let naive = |cpc| DesignPoint::naive_shared(cpc).expect("preset cpc is valid");
    // acmp-lint: allow(unwrap-in-lib) -- preset constructor arguments are compile-time constants
    let shared = |kib, lb, bus| DesignPoint::shared(kib, lb, bus).expect("preset size is valid");
    let lb = |n| {
        DesignPoint::baseline()
            .with_line_buffers(n)
            // acmp-lint: allow(unwrap-in-lib) -- preset constructor arguments are compile-time constants
            .expect("preset line-buffer count is valid")
    };

    // Figure presets: the exact design lists the paper's figures sweep.
    let preset = match token {
        "fig07" => Some(vec![DesignPoint::baseline(), naive(2), naive(4), naive(8)]),
        "fig08" => Some(vec![DesignPoint::baseline(), naive(8)]),
        "fig09" => Some(vec![lb(2), lb(4), lb(8)]),
        "fig10" => Some(vec![
            DesignPoint::baseline(),
            shared(16, 4, BusWidth::Single),
            shared(16, 8, BusWidth::Single),
            shared(16, 4, BusWidth::Double),
        ]),
        "fig11" => Some(vec![
            DesignPoint::baseline(),
            shared(32, 4, BusWidth::Double),
            shared(16, 4, BusWidth::Double),
        ]),
        "fig12" => Some(vec![
            DesignPoint::baseline(),
            shared(16, 4, BusWidth::Single),
            shared(16, 4, BusWidth::Double),
            shared(16, 8, BusWidth::Single),
            shared(16, 8, BusWidth::Double),
        ]),
        "fig13" => Some(vec![
            DesignPoint::worker_shared_32k_double(),
            DesignPoint::all_shared(),
            DesignPoint::all_shared_single_bus(),
        ]),
        _ => None,
    };
    if let Some(points) = preset {
        return Ok(points);
    }

    // Named single points.
    let named = match token {
        "baseline" => Some(DesignPoint::baseline()),
        "proposed" => Some(DesignPoint::proposed()),
        "all-shared" => Some(DesignPoint::all_shared()),
        "all-shared-single" => Some(DesignPoint::all_shared_single_bus()),
        "worker-shared-32k" => Some(DesignPoint::worker_shared_32k_double()),
        _ => None,
    };
    if let Some(point) = named {
        return Ok(vec![point]);
    }

    // Parameterised generators.  Validation lives in the `DesignPoint`
    // constructors; parsing only turns tokens into numbers and maps the
    // typed [`DesignPointError`] onto the offending spec token.
    let in_token = |e: DesignPointError| format!("{e} in `{token}`");
    let parts: Vec<&str> = token.split(':').collect();
    match parts.as_slice() {
        ["naive", cpc] => {
            let cpc: usize = cpc
                .parse()
                .map_err(|_| format!("bad cores-per-cache in `{token}`"))?;
            Ok(vec![DesignPoint::naive_shared(cpc).map_err(in_token)?])
        }
        ["lb", n] => {
            let n: usize = n
                .parse()
                .map_err(|_| format!("bad line-buffer count in `{token}`"))?;
            Ok(vec![DesignPoint::baseline()
                .with_line_buffers(n)
                .map_err(in_token)?])
        }
        ["shared", kib, lb, bus] => {
            let kib: u64 = kib
                .parse()
                .map_err(|_| format!("bad cache size in `{token}`"))?;
            let lb: usize = lb
                .parse()
                .map_err(|_| format!("bad line-buffer count in `{token}`"))?;
            let bus = match *bus {
                "single" => BusWidth::Single,
                "double" => BusWidth::Double,
                other => return Err(format!("bad bus width `{other}` in `{token}`")),
            };
            Ok(vec![DesignPoint::shared(kib, lb, bus).map_err(in_token)?])
        }
        _ => Err(format!(
            "unknown design spec `{token}` (named point, `naive:N`, `lb:N`, \
             `shared:KiB:LB:single|double`, or a `figNN` preset)"
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn benchmark_specs_parse() {
        assert_eq!(parse_benchmarks("all").unwrap().len(), 24);
        assert_eq!(parse_benchmarks("quick").unwrap().len(), 6);
        assert_eq!(
            parse_benchmarks("cg,lu").unwrap(),
            vec![Benchmark::Cg, Benchmark::Lu]
        );
        assert!(parse_benchmarks("nonsense").is_err());
    }

    #[test]
    fn design_specs_parse() {
        let d = parse_designs("baseline,proposed").unwrap();
        assert_eq!(d.len(), 2);
        assert_eq!(d[0], DesignPoint::baseline());
        assert_eq!(d[1], DesignPoint::proposed());

        let d = parse_designs("naive:4").unwrap();
        assert_eq!(d, vec![DesignPoint::naive_shared(4).unwrap()]);

        let d = parse_designs("shared:16:8:double").unwrap();
        assert_eq!(
            d,
            vec![DesignPoint::shared(16, 8, BusWidth::Double).unwrap()]
        );

        assert!(parse_designs("shared:16:8:triple").is_err());
        assert!(parse_designs("mystery").is_err());
        assert!(parse_designs("lb:0").is_err());
    }

    #[test]
    fn overflowing_cache_sizes_are_rejected_not_wrapped() {
        // u64::MAX parses as a KiB count but wraps when scaled to bytes;
        // that must be a parse error, never a silently tiny cache.
        let huge = format!("shared:{}:4:double", u64::MAX);
        let err = parse_designs(&huge).unwrap_err();
        assert!(err.contains("overflows"), "{err}");
        // The largest non-wrapping size still parses.
        let max_ok = format!("shared:{}:4:double", u64::MAX / 1024);
        assert!(parse_designs(&max_ok).is_ok());
    }

    #[test]
    fn presets_match_the_figures() {
        assert_eq!(parse_designs("fig07").unwrap().len(), 4);
        assert_eq!(parse_designs("fig09").unwrap().len(), 3);
        assert_eq!(parse_designs("fig12").unwrap().len(), 5);
        // fig09 sweeps line buffers on the baseline.
        let d = parse_designs("fig09").unwrap();
        assert_eq!(d[0].line_buffers, 2);
        assert_eq!(d[2].line_buffers, 8);
    }

    #[test]
    fn duplicate_points_are_deduplicated() {
        // fig10 and fig12 share three points; the union keeps one copy each.
        let merged = parse_designs("fig10,fig12").unwrap();
        let fig10 = parse_designs("fig10").unwrap();
        let fig12 = parse_designs("fig12").unwrap();
        assert!(merged.len() < fig10.len() + fig12.len());
        for d in fig10.iter().chain(&fig12) {
            assert!(merged.contains(d));
        }
    }

    #[test]
    fn generator_tokens_dedup_against_presets_and_named_points() {
        // `naive:8` re-derives a fig07 member, `shared:16:4:double` is
        // `proposed` — the hashed dedup must fold them like the old scan.
        let d = parse_designs("fig07,naive:8,proposed,shared:16:4:double").unwrap();
        assert_eq!(d.len(), 5, "{d:?}");
        // Repeated identical tokens collapse to one point.
        assert_eq!(parse_designs("lb:8,lb:8,lb:8").unwrap().len(), 1);
        // Near-duplicates differing in any field survive.
        assert_eq!(
            parse_designs("shared:16:4:double,shared:16:4:single")
                .unwrap()
                .len(),
            2
        );
    }

    #[test]
    fn grid_reports_cell_count() {
        let g = GridSpec::parse("cg,lu", "fig09").unwrap();
        assert_eq!(g.cells(), 6);
        assert!(GridSpec::parse("", "fig09").is_err());
    }

    #[test]
    fn jobs_enumerate_cells_benchmark_major() {
        let g = GridSpec::parse("cg,lu", "baseline,proposed").unwrap();
        let jobs = g.jobs();
        assert_eq!(jobs.len(), g.cells());
        let cells: Vec<(Benchmark, &str)> = jobs
            .iter()
            .map(|j| (j.benchmark, j.design.name.as_str()))
            .collect();
        assert_eq!(
            cells,
            vec![
                (Benchmark::Cg, "baseline"),
                (Benchmark::Cg, "cpc8-16K-4lb-double"),
                (Benchmark::Lu, "baseline"),
                (Benchmark::Lu, "cpc8-16K-4lb-double"),
            ]
        );
    }
}
