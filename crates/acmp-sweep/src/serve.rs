//! `sweep serve`: the long-lived query service over a result store.
//!
//! A dependency-free HTTP server (std [`TcpListener`], one acceptor plus a
//! fixed worker pool, `Connection: close` per request) exposing three
//! endpoints:
//!
//! * **`POST/GET /query`** — accepts the exact `sweep query` grammar
//!   (filters plus `--by METRIC [--top K] [--desc]`; as a POST body of
//!   whitespace-separated tokens or a percent-encoded GET query string)
//!   and answers JSONL **byte-identical** to the offline CLI — both sides
//!   render through [`QueryHit::to_jsonl`].
//! * **`GET /stats`** — the live `acmp-obs-metrics/v1` snapshot (see
//!   [`acmp_obs::METRICS_SCHEMA`]), the same document the CLI writes with
//!   `--metrics-out` and the planned elastic coordinator consumes as its
//!   heartbeat.
//! * **`GET /healthz`** — liveness.
//!
//! Queries are answered from an [`EpochCache`]: each request polls the
//! cache, which detects writer publishes (refresh + snapshot fingerprint)
//! and rolls to a fresh epoch without blocking in-flight readers.  A warm
//! epoch answers with **zero segment value reads** — observable as the
//! absence of `store.value_reads` in `/stats`.
//!
//! A broken client socket is never fatal: the connection is logged,
//! counted (`serve.client_disconnects`), and dropped — the offline CLI's
//! `die_on_write_error` policy explicitly does not apply here.

use crate::store::DiskStore;
use acmp_store::epoch::EpochCache;
use acmp_store::query::{Query, QueryHit};
use parking_lot::Mutex;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;

/// Default worker threads when the caller does not choose.
pub const DEFAULT_WORKERS: usize = 4;

/// One parsed request: method, target, and (for POST) the body.
struct Request {
    method: String,
    target: String,
    body: String,
}

/// Why a `/query` request failed.
enum QueryError {
    /// The client's fault: bad grammar, unknown metric.  Answered 400.
    Client(String),
    /// The store's fault: the epoch could not be (re)built.  Answered 500.
    Server(String),
}

/// The running server: an acceptor thread, a worker pool, and the epoch
/// cache they serve from.  Dropping the server shuts it down.
pub struct Server {
    local_addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Opens the store under `root`, builds the first epoch (so a broken
    /// store fails here, not on the first request), binds `addr`, and
    /// starts serving on `workers` threads.
    ///
    /// # Errors
    ///
    /// Returns the I/O error if the store cannot be opened, the first
    /// epoch cannot be built, or the address cannot be bound.
    pub fn start(root: impl Into<PathBuf>, addr: &str, workers: usize) -> io::Result<Server> {
        let store = DiskStore::open(root)?;
        let cache = Arc::new(EpochCache::new(store));
        cache.current().map_err(|e| {
            io::Error::new(e.kind(), format!("building the first epoch failed: {e}"))
        })?;
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));

        let (sender, receiver) = mpsc::channel::<TcpStream>();
        let receiver = Arc::new(Mutex::new(receiver));
        let workers: Vec<JoinHandle<()>> = (0..workers.max(1))
            .map(|_| {
                let receiver = Arc::clone(&receiver);
                let cache = Arc::clone(&cache);
                std::thread::spawn(move || loop {
                    // Take the next connection with the receiver lock
                    // *released* while handling, so workers drain in
                    // parallel.
                    let next = receiver.lock().recv();
                    match next {
                        Ok(stream) => handle_connection(&cache, stream),
                        Err(_) => break, // acceptor gone: shutdown
                    }
                })
            })
            .collect();

        let acceptor = {
            let shutdown = Arc::clone(&shutdown);
            std::thread::spawn(move || {
                for stream in listener.incoming() {
                    if shutdown.load(Ordering::SeqCst) {
                        break;
                    }
                    match stream {
                        // A send fails only when every worker exited,
                        // which only happens at shutdown.
                        Ok(stream) => drop(sender.send(stream)),
                        Err(e) => {
                            acmp_obs::logline!("serve: accept failed ({e}); still listening");
                        }
                    }
                }
                // `sender` drops here, which stops the workers.
            })
        };

        Ok(Server {
            local_addr,
            shutdown,
            acceptor: Some(acceptor),
            workers,
        })
    }

    /// The bound address (useful with `--addr 127.0.0.1:0`).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Stops accepting, drains the worker pool, and joins every thread.
    /// In-flight requests finish; queued ones are still answered.
    pub fn shutdown(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Unblock the acceptor with one throwaway connection.
        drop(TcpStream::connect(self.local_addr));
        if let Some(acceptor) = self.acceptor.take() {
            drop(acceptor.join());
        }
        for worker in self.workers.drain(..) {
            drop(worker.join());
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Serves one connection end-to-end.  A socket error is the client's
/// problem: log, count, drop — never exit.
fn handle_connection(cache: &EpochCache, mut stream: TcpStream) {
    let mut span = acmp_obs::span!(acmp_obs::names::SERVE_CONNECTION);
    if let Err(e) = serve_one(cache, &mut stream) {
        acmp_obs::counter!(acmp_obs::names::SERVE_CLIENT_DISCONNECTS, 1);
        acmp_obs::logline!("serve: client connection dropped ({e}); still serving");
        span.record_field("disconnected", 1u64);
    }
}

/// Reads one request and writes its response.
fn serve_one(cache: &EpochCache, stream: &mut TcpStream) -> io::Result<()> {
    let Some(request) = read_request(stream)? else {
        return Ok(()); // the client connected and said nothing; fine
    };
    acmp_obs::counter!(acmp_obs::names::SERVE_REQUESTS, 1);
    let (path, raw_query) = match request.target.split_once('?') {
        Some((path, raw)) => (path, raw),
        None => (request.target.as_str(), ""),
    };
    match path {
        "/healthz" => respond(stream, "200 OK", "text/plain", "ok\n"),
        "/stats" => {
            let stats = acmp_obs::registry().snapshot().to_value().to_string();
            respond(stream, "200 OK", "application/json", &format!("{stats}\n"))
        }
        "/query" => {
            let tokens = if request.method == "POST" {
                tokenize_body(&request.body)
            } else {
                tokenize_query_string(raw_query)
            };
            match answer_query(cache, &tokens) {
                Ok(body) => respond(stream, "200 OK", "application/jsonl", &body),
                Err(QueryError::Client(msg)) => {
                    respond(stream, "400 Bad Request", "text/plain", &format!("{msg}\n"))
                }
                Err(QueryError::Server(msg)) => respond(
                    stream,
                    "500 Internal Server Error",
                    "text/plain",
                    &format!("{msg}\n"),
                ),
            }
        }
        _ => respond(
            stream,
            "404 Not Found",
            "text/plain",
            "unknown endpoint; try /query, /stats or /healthz\n",
        ),
    }
}

/// Answers one query from the current epoch.  The `serve.query` span's
/// duration histogram is the service's query latency distribution.
fn answer_query(cache: &EpochCache, tokens: &[String]) -> Result<String, QueryError> {
    let mut span = acmp_obs::span!(acmp_obs::names::SERVE_QUERY);
    let query = parse_query_tokens(tokens).map_err(QueryError::Client)?;
    let epoch = cache
        .current()
        .map_err(|e| QueryError::Server(e.to_string()))?;
    span.record_field("epoch", epoch.seq());
    let catalog = epoch.catalog();
    catalog.validate_query(&query).map_err(QueryError::Client)?;
    let hits = catalog.query(&query);
    span.record_field("hits", hits.len());
    let mut body = String::new();
    for hit in &hits {
        // Shared renderer: the service's bytes are the CLI's bytes.
        body.push_str(&QueryHit::to_jsonl(hit, &query.by));
        body.push('\n');
    }
    Ok(body)
}

/// Parses the `sweep query` token grammar: filters interleaved with
/// `--by METRIC` / `--by=METRIC`, `--top K` / `--top=K`, `--desc`.
///
/// # Errors
///
/// Returns a human-readable message for an unknown option, a missing
/// `--by`, or any filter parse error.
pub fn parse_query_tokens(tokens: &[String]) -> Result<Query, String> {
    let mut filters: Vec<String> = Vec::new();
    let mut by: Option<String> = None;
    let mut top: Option<usize> = None;
    let mut descending = false;
    let mut it = tokens.iter();
    while let Some(token) = it.next() {
        if token == "--by" {
            by = Some(it.next().ok_or("--by needs a value")?.clone());
        } else if let Some(value) = token.strip_prefix("--by=") {
            by = Some(value.to_string());
        } else if token == "--top" || token.starts_with("--top=") {
            let value = match token.strip_prefix("--top=") {
                Some(v) => v.to_string(),
                None => it.next().ok_or("--top needs a value")?.clone(),
            };
            top = Some(
                value
                    .parse::<usize>()
                    .map_err(|_| format!("bad --top `{value}`"))?,
            );
        } else if token == "--desc" {
            descending = true;
        } else if token.starts_with("--") {
            return Err(format!("unknown option `{token}`"));
        } else {
            filters.push(token.clone());
        }
    }
    let by = by.ok_or("a ranking metric (--by METRIC) is required")?;
    Query::parse(&filters, &by, top, descending)
}

/// POST body: whitespace-separated grammar tokens, exactly as they would
/// appear on the `sweep query` command line.
fn tokenize_body(body: &str) -> Vec<String> {
    body.split_whitespace().map(str::to_string).collect()
}

/// GET query string: `&`-separated, percent-encoded grammar tokens
/// (`/query?benchmark=cg&--by=cycles&--top=3`).  A decoded token may
/// itself contain spaces (`--by%20cycles`) and then splits further.
fn tokenize_query_string(raw: &str) -> Vec<String> {
    raw.split('&')
        .map(percent_decode)
        .flat_map(|part| {
            part.split_whitespace()
                .map(str::to_string)
                .collect::<Vec<_>>()
        })
        .collect()
}

/// Decodes `%XX` escapes and `+`-as-space; malformed escapes pass through
/// verbatim (the grammar parser will reject them with a better message).
fn percent_decode(raw: &str) -> String {
    let bytes = raw.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b'%' => match (hex_nibble(bytes.get(i + 1)), hex_nibble(bytes.get(i + 2))) {
                (Some(hi), Some(lo)) => {
                    out.push(hi * 16 + lo);
                    i += 3;
                }
                _ => {
                    out.push(b'%');
                    i += 1;
                }
            },
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

/// One hex digit's value.
fn hex_nibble(byte: Option<&u8>) -> Option<u8> {
    byte.and_then(|b| (*b as char).to_digit(16))
        .map(|d| d as u8)
}

/// Reads one HTTP request (request line, headers, `Content-Length` body).
/// `None` means the client closed before sending a full request line —
/// a clean no-op, not an error.  A body shorter than its declared
/// `Content-Length` *is* an error (the client hung up mid-request).
fn read_request(stream: &mut TcpStream) -> io::Result<Option<Request>> {
    const MAX_HEAD: usize = 64 * 1024;
    let mut buf: Vec<u8> = Vec::new();
    let mut chunk = [0u8; 4096];
    let (head_end, sep) = loop {
        if let Some(found) = find_head_end(&buf) {
            break found;
        }
        if buf.len() > MAX_HEAD {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "request head exceeds 64 KiB",
            ));
        }
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            if buf.is_empty() {
                return Ok(None);
            }
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "client closed mid-request-head",
            ));
        }
        buf.extend_from_slice(&chunk[..n]);
    };

    let head = String::from_utf8_lossy(&buf[..head_end]).into_owned();
    let mut lines = head.lines();
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or("").to_string();
    let target = parts.next().unwrap_or("").to_string();
    if method.is_empty() || target.is_empty() {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("malformed request line `{request_line}`"),
        ));
    }
    let mut content_length = 0usize;
    for line in lines {
        if let Some((name, value)) = line.split_once(':') {
            if name.trim().eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse().unwrap_or(0);
            }
        }
    }

    let mut body = buf[head_end + sep..].to_vec();
    while body.len() < content_length {
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "client closed mid-request-body",
            ));
        }
        body.extend_from_slice(&chunk[..n]);
    }
    body.truncate(content_length);
    Ok(Some(Request {
        method,
        target,
        body: String::from_utf8_lossy(&body).into_owned(),
    }))
}

/// Finds the end of the request head: `(index past the head, separator
/// length)` for the first `\r\n\r\n` (or bare `\n\n`).
fn find_head_end(buf: &[u8]) -> Option<(usize, usize)> {
    buf.windows(4)
        .position(|w| w == b"\r\n\r\n")
        .map(|at| (at, 4))
        .or_else(|| buf.windows(2).position(|w| w == b"\n\n").map(|at| (at, 2)))
}

/// Writes one complete response and closes cleanly.
fn respond(stream: &mut TcpStream, status: &str, content_type: &str, body: &str) -> io::Result<()> {
    let header = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(header.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tokens(parts: &[&str]) -> Vec<String> {
        parts.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn the_token_grammar_matches_the_cli() {
        let q = parse_query_tokens(&tokens(&[
            "benchmark=cg",
            "cycles<=1e6",
            "--by",
            "cycles",
            "--top",
            "3",
            "--desc",
        ]))
        .unwrap();
        assert_eq!(q.by, "cycles");
        assert_eq!(q.top, Some(3));
        assert!(q.descending);
        assert_eq!(q.filters.len(), 2);

        let same = parse_query_tokens(&tokens(&[
            "benchmark=cg",
            "cycles<=1e6",
            "--by=cycles",
            "--top=3",
            "--desc",
        ]))
        .unwrap();
        assert_eq!(q, same);

        assert!(parse_query_tokens(&tokens(&["benchmark=cg"])).is_err());
        assert!(parse_query_tokens(&tokens(&["--wat", "--by", "cycles"])).is_err());
        assert!(parse_query_tokens(&tokens(&["--by", "cycles", "--top", "x"])).is_err());
    }

    #[test]
    fn query_strings_decode_into_grammar_tokens() {
        assert_eq!(
            tokenize_query_string("benchmark=cg&--by=cycles&--top=3"),
            tokens(&["benchmark=cg", "--by=cycles", "--top=3"])
        );
        assert_eq!(
            tokenize_query_string("cycles%3C%3D1e6&--by%20cycles"),
            tokens(&["cycles<=1e6", "--by", "cycles"])
        );
        assert_eq!(tokenize_query_string("a+b"), tokens(&["a", "b"]));
        assert_eq!(percent_decode("100%"), "100%");
    }

    #[test]
    fn request_heads_parse_with_either_line_ending() {
        assert_eq!(find_head_end(b"GET / HTTP/1.1\r\n\r\nrest"), Some((14, 4)));
        assert_eq!(find_head_end(b"GET / HTTP/1.1\n\nrest"), Some((14, 2)));
        assert_eq!(find_head_end(b"GET / HTTP/1.1\r\n"), None);
    }
}
