//! `acmp-sweep` — a parallel, sharded design-space exploration engine with
//! a persistent result store.
//!
//! The paper's conclusions come from sweeping (benchmark × design point)
//! grids: shared-I$ degree, cache size, line buffers, bus bandwidth
//! (Figs. 7–13).  This crate industrialises that workload and is the
//! execution engine behind every figure module, example and bench in the
//! workspace:
//!
//! * [`WorkStealingPool`] — fans simulation jobs out across `std::thread`
//!   workers with per-worker deques and a global injector, so unbalanced
//!   grids keep every core busy;
//! * [`ShardedMap`] — the in-memory result cache, split across
//!   independently locked shards instead of one global mutex;
//! * [`DiskStore`] — the content-addressed on-disk store (stable hash of
//!   generator config + benchmark + design point) that makes repeated runs
//!   warm-start across processes.  The store itself — segment log, key
//!   index, snapshots, catalog, secondary indexes, query planner — lives
//!   in the [`acmp-store`](acmp_store) crate; this crate re-exports its
//!   modules ([`store`], [`segment`], [`compact`], [`stable_hash`],
//!   [`snapshot`], [`catalog`], [`index`], [`query`]) so engine code and
//!   existing callers keep their paths, and implements
//!   [`StoreKey`](acmp_store::StoreKey) for [`JobKey`];
//! * [`SweepEngine`] — ties the three together behind
//!   [`simulate`](SweepEngine::simulate) / [`run_grid`](SweepEngine::run_grid);
//! * [`GridSpec`] — the `benchmarks × designs` spec grammar of the `sweep`
//!   CLI binary (`cargo run -p acmp-sweep --release --bin sweep`);
//! * [`ShardSpec`] + [`merge`] — multi-process sharding: jobs partition by
//!   the stable digest of their [`JobKey`] (`--shard i/N`), shard processes
//!   share one disk store (per-process segment files, index refresh on
//!   miss), and the coordinator (`--shards N`) k-way merges the per-shard
//!   JSONL streams back into the exact bytes an unsharded run emits;
//! * [`SweepManifest`] ([`manifest`]) — multi-*machine* sharding with no
//!   shared filesystem: `sweep --plan` signs a manifest carrying the grid
//!   spec and every shard's expected key schedule, each machine validates
//!   its grid against it before simulating, `sweep merge` recombines the
//!   gathered per-shard JSONL files offline (naming missing or short
//!   shards), and [`DiskStore::export_segments`] /
//!   [`DiskStore::import_segments`] ship one machine's warm store to the
//!   others as a verified bundle.
//!
//! [`DesignPoint`] (the machine configurations the paper evaluates) lives
//! here too, so the engine, the CLI and the spec grammar can name design
//! points without depending on the figure layer above.

pub mod design_point;
pub mod engine;
pub mod grid;
pub mod job;
pub mod manifest;
pub mod merge;
pub mod scheduler;
pub mod serve;
pub mod sharded;

// The storage layers moved to the `acmp-store` crate; re-export its modules
// under their historical paths so `crate::store::…` / `acmp_sweep::segment::…`
// callers keep compiling unchanged.
pub use acmp_store::{
    catalog, compact, epoch, index, query, segment, snapshot, stable_hash, store,
};

pub use acmp_store::{
    Catalog, CatalogSource, Cmp, CompactStats, DiskStore, Epoch, EpochCache, Filter, ImportStats,
    IndexStats, IndexStatus, Query, QueryHit, RawKey, ResultRow, StoreKey, StoreSnapshot,
    StoreStats,
};
pub use design_point::{DesignPoint, DesignPointError};
pub use engine::{EngineStats, SweepEngine, SweepEngineBuilder, SweepOutcome, SweepRow};
pub use grid::GridSpec;
pub use job::{JobKey, ShardSpec, SweepJob};
pub use manifest::{scale_generator, SweepManifest};
pub use merge::MergeError;
pub use scheduler::{PoolStats, WorkStealingPool};
pub use sharded::{relay_prefixed, ShardedMap};

/// Everything a sweep caller needs in one `use`.
///
/// ```no_run
/// use acmp_sweep::prelude::*;
///
/// let generator = hpc_workloads::GeneratorConfig::default();
/// let engine = SweepEngine::builder(generator)
///     .workers(4)
///     .build()
///     .expect("engine construction only fails on store I/O errors");
/// # let _ = engine;
/// ```
pub mod prelude {
    pub use crate::design_point::{DesignPoint, DesignPointError};
    pub use crate::engine::{EngineStats, SweepEngine, SweepEngineBuilder, SweepOutcome, SweepRow};
    pub use crate::grid::GridSpec;
    pub use crate::job::{JobKey, ShardSpec, SweepJob};
    pub use crate::store::DiskStore;
}

#[cfg(test)]
mod crate_tests {
    use super::*;

    #[test]
    fn public_types_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<DesignPoint>();
        assert_send_sync::<SweepEngine>();
        assert_send_sync::<DiskStore>();
        assert_send_sync::<ShardedMap<u64, u64>>();
    }
}
