//! Sweep jobs and their content-addressed keys.

use crate::design_point::DesignPoint;
use crate::stable_hash;
use hpc_workloads::{Benchmark, GeneratorConfig};
use serde_json::json;

/// One unit of work: simulate `benchmark` on `design`.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepJob {
    /// The workload to simulate.
    pub benchmark: Benchmark,
    /// The machine configuration to simulate it on.
    pub design: DesignPoint,
}

impl SweepJob {
    /// Builds the content-addressed key of this job under `generator`.
    #[must_use]
    pub fn key(&self, generator: &GeneratorConfig) -> JobKey {
        JobKey::new(generator, self.benchmark, &self.design)
    }
}

impl std::fmt::Display for SweepJob {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} × {}", self.benchmark, self.design)
    }
}

/// Content-addressed identity of a simulation: the canonical JSON encoding
/// of (generator config, benchmark, full design point).
///
/// Earlier revisions keyed the result cache on `(Benchmark, String)` using
/// [`DesignPoint::name`], which is lossy — two distinct points with the same
/// label would silently collide.  A `JobKey` hashes and compares the
/// *entire* canonical serialized form, so distinct points can never alias,
/// and the digest doubles as the on-disk store filename.
#[derive(Debug, Clone)]
pub struct JobKey {
    canonical: String,
    digest: u64,
}

impl JobKey {
    /// Derives the key for simulating `benchmark` on `design` with traces
    /// from `generator`.
    #[must_use]
    pub fn new(generator: &GeneratorConfig, benchmark: Benchmark, design: &DesignPoint) -> Self {
        let canonical = stable_hash::canonical_json(&json!({
            "generator": generator,
            "benchmark": benchmark,
            "design": design,
        }));
        let digest = stable_hash::fnv1a(canonical.as_bytes());
        JobKey { canonical, digest }
    }

    /// Derives the key under which the *trace set* of `benchmark` (as
    /// produced by `generator`) is persisted.  Traces are design-agnostic,
    /// so the key deliberately carries no design point; the `kind` marker
    /// keeps the canonical form disjoint from every simulation-result key.
    #[must_use]
    pub fn for_traces(generator: &GeneratorConfig, benchmark: Benchmark) -> Self {
        let canonical = stable_hash::canonical_json(&json!({
            "kind": "traces",
            "generator": generator,
            "benchmark": benchmark,
        }));
        let digest = stable_hash::fnv1a(canonical.as_bytes());
        JobKey { canonical, digest }
    }

    /// The canonical JSON this key was derived from.
    #[must_use]
    pub fn canonical(&self) -> &str {
        &self.canonical
    }

    /// The 64-bit stable digest of the canonical form.
    #[must_use]
    pub fn digest(&self) -> u64 {
        self.digest
    }

    /// The digest as the fixed-width hex string used for store filenames
    /// and JSONL `key` columns.
    #[must_use]
    pub fn hex(&self) -> String {
        stable_hash::hex(self.digest)
    }
}

/// Lets a `JobKey` address the store directly (its canonical form is the
/// `{"generator":…}` shape the store's catalog recognises as a result key).
impl acmp_store::StoreKey for JobKey {
    fn canonical(&self) -> &str {
        self.canonical()
    }

    fn digest(&self) -> u64 {
        self.digest()
    }
}

/// One slice of the job keyspace, for multi-process sweeps.
///
/// Shards partition jobs by `digest % count`.  The digest is the stable
/// FNV-1a content hash of the canonical job key, so every process — on any
/// machine — agrees on which shard owns a job without any coordination,
/// and the union of all `count` shards covers the keyspace exactly once:
/// no cell is ever simulated twice across a sharded run.
///
/// The CLI grammar is `i/N` with 1-based `i` (`--shard 2/3` is the second
/// of three shards); internally the index is 0-based.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardSpec {
    index: u32,
    count: u32,
}

impl ShardSpec {
    /// The trivial single-shard spec that owns every job.
    #[must_use]
    pub fn whole() -> Self {
        ShardSpec { index: 0, count: 1 }
    }

    /// Shard `index` (0-based) of `count`.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message when `count` is zero or `index` is
    /// out of range.
    pub fn new(index: u32, count: u32) -> Result<Self, String> {
        if count == 0 {
            return Err("shard count must be ≥ 1".to_string());
        }
        if index >= count {
            return Err(format!(
                "shard index {index} out of range for {count} shards"
            ));
        }
        Ok(ShardSpec { index, count })
    }

    /// Parses the CLI grammar `i/N` with 1-based `i` (e.g. `2/3`).
    ///
    /// # Errors
    ///
    /// Returns a human-readable message for anything that is not `i/N`
    /// with `1 ≤ i ≤ N`.
    pub fn parse(spec: &str) -> Result<Self, String> {
        let (index, count) = spec
            .split_once('/')
            .ok_or_else(|| format!("expected `i/N`, got `{spec}`"))?;
        let index: u32 = index
            .parse()
            .map_err(|_| format!("bad shard index in `{spec}`"))?;
        let count: u32 = count
            .parse()
            .map_err(|_| format!("bad shard count in `{spec}`"))?;
        if index == 0 {
            return Err(format!("shard index is 1-based, got `{spec}`"));
        }
        Self::new(index - 1, count)
    }

    /// The 0-based shard index.
    #[must_use]
    pub fn index(&self) -> u32 {
        self.index
    }

    /// How many shards the keyspace is split into.
    #[must_use]
    pub fn count(&self) -> u32 {
        self.count
    }

    /// Whether this is the trivial 1-of-1 spec owning everything.
    #[must_use]
    pub fn is_whole(&self) -> bool {
        self.count == 1
    }

    /// Whether this shard owns the job with the given stable digest.
    #[must_use]
    pub fn owns(&self, digest: u64) -> bool {
        digest % u64::from(self.count) == u64::from(self.index)
    }

    /// All `count` shards of a `count`-way split, in index order — the
    /// canonical enumeration used by schedules, manifests and coordinators.
    /// A zero `count` yields nothing.
    pub fn all(count: u32) -> impl Iterator<Item = ShardSpec> {
        (0..count).map(move |index| ShardSpec { index, count })
    }
}

impl std::fmt::Display for ShardSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{}", self.index + 1, self.count)
    }
}

// Equality and hashing go through the full canonical form, not the digest:
// a (vanishingly unlikely) digest collision must not merge two distinct
// jobs in the in-memory cache.
impl PartialEq for JobKey {
    fn eq(&self, other: &Self) -> bool {
        self.canonical == other.canonical
    }
}

impl Eq for JobKey {}

impl std::hash::Hash for JobKey {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        // Feed the precomputed stable digest; cheaper than rehashing the
        // canonical string and just as well distributed.
        state.write_u64(self.digest);
    }
}

impl std::fmt::Display for JobKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.hex())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn generator() -> GeneratorConfig {
        GeneratorConfig::small()
    }

    #[test]
    fn equal_inputs_give_equal_keys() {
        let a = JobKey::new(&generator(), Benchmark::Cg, &DesignPoint::baseline());
        let b = JobKey::new(&generator(), Benchmark::Cg, &DesignPoint::baseline());
        assert_eq!(a, b);
        assert_eq!(a.digest(), b.digest());
        assert_eq!(a.hex(), b.hex());
    }

    #[test]
    fn same_name_different_parameters_do_not_collide() {
        // The historical failure mode: identical labels, different machines.
        let mut a = DesignPoint::baseline();
        let mut b = DesignPoint::baseline();
        a.name = "point".to_string();
        b.name = "point".to_string();
        b.icache_bytes = 16 * 1024;
        let ka = JobKey::new(&generator(), Benchmark::Cg, &a);
        let kb = JobKey::new(&generator(), Benchmark::Cg, &b);
        assert_ne!(ka, kb, "lossy name-based keys must not come back");
    }

    #[test]
    fn key_covers_generator_and_benchmark() {
        let design = DesignPoint::proposed();
        let base = JobKey::new(&generator(), Benchmark::Cg, &design);
        let other_bench = JobKey::new(&generator(), Benchmark::Lu, &design);
        let other_gen = JobKey::new(&generator().with_seed(99), Benchmark::Cg, &design);
        assert_ne!(base, other_bench);
        assert_ne!(base, other_gen);
    }

    #[test]
    fn trace_keys_never_collide_with_result_keys() {
        let design = DesignPoint::baseline();
        let result = JobKey::new(&generator(), Benchmark::Cg, &design);
        let traces = JobKey::for_traces(&generator(), Benchmark::Cg);
        assert_ne!(result, traces);
        assert_ne!(
            JobKey::for_traces(&generator(), Benchmark::Cg),
            JobKey::for_traces(&generator(), Benchmark::Lu)
        );
        assert_ne!(
            JobKey::for_traces(&generator(), Benchmark::Cg),
            JobKey::for_traces(&generator().with_seed(99), Benchmark::Cg)
        );
        assert_eq!(
            JobKey::for_traces(&generator(), Benchmark::Cg),
            JobKey::for_traces(&generator(), Benchmark::Cg)
        );
    }

    #[test]
    fn shard_specs_parse_the_cli_grammar() {
        let s = ShardSpec::parse("2/3").unwrap();
        assert_eq!((s.index(), s.count()), (1, 3));
        assert_eq!(s.to_string(), "2/3");
        assert!(!s.is_whole());
        assert_eq!(ShardSpec::parse("1/1").unwrap(), ShardSpec::whole());
        assert!(ShardSpec::whole().is_whole());
        for bad in ["0/3", "4/3", "1-3", "x/3", "1/x", "1/0", "", "2/"] {
            assert!(ShardSpec::parse(bad).is_err(), "`{bad}` must not parse");
        }
    }

    #[test]
    fn all_enumerates_every_shard_in_index_order() {
        let shards: Vec<ShardSpec> = ShardSpec::all(3).collect();
        assert_eq!(shards.len(), 3);
        for (i, shard) in shards.iter().enumerate() {
            assert_eq!(shard.index(), u32::try_from(i).unwrap());
            assert_eq!(shard.count(), 3);
        }
        assert_eq!(ShardSpec::all(0).count(), 0);
        assert_eq!(ShardSpec::all(1).next(), Some(ShardSpec::whole()));
    }

    #[test]
    fn every_digest_is_owned_by_exactly_one_shard() {
        for count in [1u32, 2, 3, 7] {
            for digest in [0u64, 1, 41, 0xdead_beef, u64::MAX] {
                let owners = (0..count)
                    .filter(|&i| ShardSpec::new(i, count).unwrap().owns(digest))
                    .count();
                assert_eq!(owners, 1, "digest {digest:#x} across {count} shards");
            }
        }
    }

    #[test]
    fn hex_is_filename_safe() {
        let k = JobKey::new(&generator(), Benchmark::Cg, &DesignPoint::baseline());
        assert_eq!(k.hex().len(), 16);
        assert!(k.hex().chars().all(|c| c.is_ascii_hexdigit()));
        assert_eq!(k.to_string(), k.hex());
    }
}
