//! Sweep jobs and their content-addressed keys.

use crate::design_point::DesignPoint;
use crate::stable_hash;
use hpc_workloads::{Benchmark, GeneratorConfig};
use serde_json::json;

/// One unit of work: simulate `benchmark` on `design`.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepJob {
    /// The workload to simulate.
    pub benchmark: Benchmark,
    /// The machine configuration to simulate it on.
    pub design: DesignPoint,
}

impl SweepJob {
    /// Builds the content-addressed key of this job under `generator`.
    #[must_use]
    pub fn key(&self, generator: &GeneratorConfig) -> JobKey {
        JobKey::new(generator, self.benchmark, &self.design)
    }
}

impl std::fmt::Display for SweepJob {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} × {}", self.benchmark, self.design)
    }
}

/// Content-addressed identity of a simulation: the canonical JSON encoding
/// of (generator config, benchmark, full design point).
///
/// Earlier revisions keyed the result cache on `(Benchmark, String)` using
/// [`DesignPoint::name`], which is lossy — two distinct points with the same
/// label would silently collide.  A `JobKey` hashes and compares the
/// *entire* canonical serialized form, so distinct points can never alias,
/// and the digest doubles as the on-disk store filename.
#[derive(Debug, Clone)]
pub struct JobKey {
    canonical: String,
    digest: u64,
}

impl JobKey {
    /// Derives the key for simulating `benchmark` on `design` with traces
    /// from `generator`.
    #[must_use]
    pub fn new(generator: &GeneratorConfig, benchmark: Benchmark, design: &DesignPoint) -> Self {
        let canonical = stable_hash::canonical_json(&json!({
            "generator": generator,
            "benchmark": benchmark,
            "design": design,
        }));
        let digest = stable_hash::fnv1a(canonical.as_bytes());
        JobKey { canonical, digest }
    }

    /// Derives the key under which the *trace set* of `benchmark` (as
    /// produced by `generator`) is persisted.  Traces are design-agnostic,
    /// so the key deliberately carries no design point; the `kind` marker
    /// keeps the canonical form disjoint from every simulation-result key.
    #[must_use]
    pub fn for_traces(generator: &GeneratorConfig, benchmark: Benchmark) -> Self {
        let canonical = stable_hash::canonical_json(&json!({
            "kind": "traces",
            "generator": generator,
            "benchmark": benchmark,
        }));
        let digest = stable_hash::fnv1a(canonical.as_bytes());
        JobKey { canonical, digest }
    }

    /// The canonical JSON this key was derived from.
    #[must_use]
    pub fn canonical(&self) -> &str {
        &self.canonical
    }

    /// The 64-bit stable digest of the canonical form.
    #[must_use]
    pub fn digest(&self) -> u64 {
        self.digest
    }

    /// The digest as the fixed-width hex string used for store filenames
    /// and JSONL `key` columns.
    #[must_use]
    pub fn hex(&self) -> String {
        stable_hash::hex(self.digest)
    }
}

// Equality and hashing go through the full canonical form, not the digest:
// a (vanishingly unlikely) digest collision must not merge two distinct
// jobs in the in-memory cache.
impl PartialEq for JobKey {
    fn eq(&self, other: &Self) -> bool {
        self.canonical == other.canonical
    }
}

impl Eq for JobKey {}

impl std::hash::Hash for JobKey {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        // Feed the precomputed stable digest; cheaper than rehashing the
        // canonical string and just as well distributed.
        state.write_u64(self.digest);
    }
}

impl std::fmt::Display for JobKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.hex())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn generator() -> GeneratorConfig {
        GeneratorConfig::small()
    }

    #[test]
    fn equal_inputs_give_equal_keys() {
        let a = JobKey::new(&generator(), Benchmark::Cg, &DesignPoint::baseline());
        let b = JobKey::new(&generator(), Benchmark::Cg, &DesignPoint::baseline());
        assert_eq!(a, b);
        assert_eq!(a.digest(), b.digest());
        assert_eq!(a.hex(), b.hex());
    }

    #[test]
    fn same_name_different_parameters_do_not_collide() {
        // The historical failure mode: identical labels, different machines.
        let mut a = DesignPoint::baseline();
        let mut b = DesignPoint::baseline();
        a.name = "point".to_string();
        b.name = "point".to_string();
        b.icache_bytes = 16 * 1024;
        let ka = JobKey::new(&generator(), Benchmark::Cg, &a);
        let kb = JobKey::new(&generator(), Benchmark::Cg, &b);
        assert_ne!(ka, kb, "lossy name-based keys must not come back");
    }

    #[test]
    fn key_covers_generator_and_benchmark() {
        let design = DesignPoint::proposed();
        let base = JobKey::new(&generator(), Benchmark::Cg, &design);
        let other_bench = JobKey::new(&generator(), Benchmark::Lu, &design);
        let other_gen = JobKey::new(&generator().with_seed(99), Benchmark::Cg, &design);
        assert_ne!(base, other_bench);
        assert_ne!(base, other_gen);
    }

    #[test]
    fn trace_keys_never_collide_with_result_keys() {
        let design = DesignPoint::baseline();
        let result = JobKey::new(&generator(), Benchmark::Cg, &design);
        let traces = JobKey::for_traces(&generator(), Benchmark::Cg);
        assert_ne!(result, traces);
        assert_ne!(
            JobKey::for_traces(&generator(), Benchmark::Cg),
            JobKey::for_traces(&generator(), Benchmark::Lu)
        );
        assert_ne!(
            JobKey::for_traces(&generator(), Benchmark::Cg),
            JobKey::for_traces(&generator().with_seed(99), Benchmark::Cg)
        );
        assert_eq!(
            JobKey::for_traces(&generator(), Benchmark::Cg),
            JobKey::for_traces(&generator(), Benchmark::Cg)
        );
    }

    #[test]
    fn hex_is_filename_safe() {
        let k = JobKey::new(&generator(), Benchmark::Cg, &DesignPoint::baseline());
        assert_eq!(k.hex().len(), 16);
        assert!(k.hex().chars().all(|c| c.is_ascii_hexdigit()));
        assert_eq!(k.to_string(), k.hex());
    }
}
