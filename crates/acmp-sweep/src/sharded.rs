//! A sharded concurrent hash map.
//!
//! The previous experiment layer funnelled every trace and result lookup
//! through one global `Mutex<HashMap>`, so a sweep's worker threads
//! serialized on the cache even though the simulations themselves are
//! independent.  `ShardedMap` splits the table into a fixed power-of-two
//! number of shards, each behind its own `parking_lot::Mutex`; threads only
//! contend when their keys land in the same shard.

use parking_lot::Mutex;
use std::collections::HashMap;
use std::hash::{BuildHasher, Hash, RandomState};

/// Number of shards.  A power of two so shard selection is a mask; 16 is
/// comfortably above the worker counts this workspace runs with.
const NUM_SHARDS: usize = 16;

/// A hash map split across independently locked shards.
#[derive(Debug)]
pub struct ShardedMap<K, V> {
    shards: Vec<Mutex<HashMap<K, V>>>,
    hasher: RandomState,
}

impl<K: Hash + Eq, V: Clone> Default for ShardedMap<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: Hash + Eq, V: Clone> ShardedMap<K, V> {
    /// Creates an empty map.
    #[must_use]
    pub fn new() -> Self {
        ShardedMap {
            shards: (0..NUM_SHARDS)
                .map(|_| Mutex::new(HashMap::new()))
                .collect(),
            hasher: RandomState::new(),
        }
    }

    fn shard(&self, key: &K) -> &Mutex<HashMap<K, V>> {
        let h = self.hasher.hash_one(key) as usize;
        &self.shards[h & (NUM_SHARDS - 1)]
    }

    /// Returns a clone of the value under `key`, if present.
    pub fn get(&self, key: &K) -> Option<V> {
        self.shard(key).lock().get(key).cloned()
    }

    /// Inserts `value` under `key` if the slot is empty and returns the
    /// resident value (the existing one wins a race).
    pub fn insert_if_absent(&self, key: K, value: V) -> V {
        let shard = self.shard(&key);
        let mut guard = shard.lock();
        guard.entry(key).or_insert(value).clone()
    }

    /// Returns the cached value under `key`, computing and caching it with
    /// `make` on a miss.
    ///
    /// `make` runs *outside* the shard lock so an expensive computation
    /// (trace generation, a simulation) never blocks unrelated keys.  Two
    /// threads racing on the same key may both compute; the first insert
    /// wins and both observe the same resident value.
    pub fn get_or_insert_with<F: FnOnce() -> V>(&self, key: K, make: F) -> V {
        if let Some(v) = self.get(&key) {
            return v;
        }
        let value = make();
        self.insert_if_absent(key, value)
    }

    /// Total number of entries across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().len()).sum()
    }

    /// Whether the map holds no entries.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(|s| s.lock().is_empty())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn insert_and_get_round_trip() {
        let map: ShardedMap<u64, String> = ShardedMap::new();
        assert!(map.is_empty());
        for i in 0..100u64 {
            map.insert_if_absent(i, format!("v{i}"));
        }
        assert_eq!(map.len(), 100);
        assert_eq!(map.get(&42).as_deref(), Some("v42"));
        assert_eq!(map.get(&1000), None);
    }

    #[test]
    fn first_insert_wins() {
        let map: ShardedMap<u8, u8> = ShardedMap::new();
        assert_eq!(map.insert_if_absent(1, 10), 10);
        assert_eq!(map.insert_if_absent(1, 20), 10);
        assert_eq!(map.get(&1), Some(10));
    }

    #[test]
    fn get_or_insert_with_computes_once_when_cached() {
        let map: ShardedMap<u8, u8> = ShardedMap::new();
        let calls = AtomicUsize::new(0);
        let mut make = || {
            calls.fetch_add(1, Ordering::Relaxed);
            7
        };
        assert_eq!(map.get_or_insert_with(1, &mut make), 7);
        assert_eq!(map.get_or_insert_with(1, &mut make), 7);
        assert_eq!(calls.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn concurrent_writers_converge() {
        let map: ShardedMap<u64, u64> = ShardedMap::new();
        std::thread::scope(|scope| {
            for t in 0..8u64 {
                let map = &map;
                scope.spawn(move || {
                    for i in 0..64 {
                        map.get_or_insert_with(i, || t * 1000 + i);
                    }
                });
            }
        });
        assert_eq!(map.len(), 64);
        // Every key has exactly one resident value, whoever won.
        for i in 0..64 {
            let v = map.get(&i).unwrap();
            assert_eq!(v % 1000, i);
        }
    }
}
