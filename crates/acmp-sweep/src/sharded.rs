//! A sharded concurrent hash map.
//!
//! The previous experiment layer funnelled every trace and result lookup
//! through one global `Mutex<HashMap>`, so a sweep's worker threads
//! serialized on the cache even though the simulations themselves are
//! independent.  `ShardedMap` splits the table into a fixed power-of-two
//! number of shards, each behind its own `parking_lot::Mutex`; threads only
//! contend when their keys land in the same shard.

use parking_lot::Mutex;
use std::collections::HashMap;
use std::hash::{BuildHasher, Hash, RandomState};

/// Number of shards.  A power of two so shard selection is a mask; 16 is
/// comfortably above the worker counts this workspace runs with.
const NUM_SHARDS: usize = 16;

/// A hash map split across independently locked shards.
#[derive(Debug)]
pub struct ShardedMap<K, V> {
    shards: Vec<Mutex<HashMap<K, V>>>,
    hasher: RandomState,
}

impl<K: Hash + Eq, V: Clone> Default for ShardedMap<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: Hash + Eq, V: Clone> ShardedMap<K, V> {
    /// Creates an empty map.
    #[must_use]
    pub fn new() -> Self {
        ShardedMap {
            shards: (0..NUM_SHARDS)
                .map(|_| Mutex::new(HashMap::new()))
                .collect(),
            hasher: RandomState::new(),
        }
    }

    fn shard(&self, key: &K) -> &Mutex<HashMap<K, V>> {
        let h = self.hasher.hash_one(key) as usize;
        &self.shards[h & (NUM_SHARDS - 1)]
    }

    /// Returns a clone of the value under `key`, if present.
    pub fn get(&self, key: &K) -> Option<V> {
        self.shard(key).lock().get(key).cloned()
    }

    /// Inserts `value` under `key` if the slot is empty and returns the
    /// resident value (the existing one wins a race).
    pub fn insert_if_absent(&self, key: K, value: V) -> V {
        let shard = self.shard(&key);
        let mut guard = shard.lock();
        guard.entry(key).or_insert(value).clone()
    }

    /// Returns the cached value under `key`, computing and caching it with
    /// `make` on a miss.
    ///
    /// `make` runs *outside* the shard lock so an expensive computation
    /// (trace generation, a simulation) never blocks unrelated keys.  Two
    /// threads racing on the same key may both compute; the first insert
    /// wins and both observe the same resident value.
    pub fn get_or_insert_with<F: FnOnce() -> V>(&self, key: K, make: F) -> V {
        if let Some(v) = self.get(&key) {
            return v;
        }
        let value = make();
        self.insert_if_absent(key, value)
    }

    /// Total number of entries across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().len()).sum()
    }

    /// Whether the map holds no entries.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(|s| s.lock().is_empty())
    }
}

/// Relays `reader` to `sink` line by line, prefixing **every** line with
/// `prefix` and flushing after each one.
///
/// This is the shard coordinator's stderr relay: a child's progress,
/// summary, and panic output all stream through here, and each line must
/// carry its `[shard i/N]` tag so interleaved shard output stays
/// attributable.  Unlike `BufRead::lines`, a final partial line (a child
/// that panicked or was killed mid-write, leaving no trailing newline) is
/// still prefixed and emitted — dropping it would hide exactly the output
/// that explains the failure.  Bytes are forwarded as read (no UTF-8
/// round-trip), so even invalid UTF-8 from a dying child survives.
///
/// # Errors
///
/// Returns the first I/O error from `reader` or `sink`; everything relayed
/// before it has already been flushed.
pub fn relay_prefixed<R: std::io::BufRead, W: std::io::Write>(
    mut reader: R,
    sink: &mut W,
    prefix: &str,
) -> std::io::Result<()> {
    let mut buf: Vec<u8> = Vec::new();
    let mut tagged: Vec<u8> = Vec::new();
    loop {
        buf.clear();
        if reader.read_until(b'\n', &mut buf)? == 0 {
            return Ok(());
        }
        let line = buf.strip_suffix(b"\n").unwrap_or(&buf);
        // One `write_all` per line: concurrent relays (one thread per
        // shard) each take the sink's lock once per line, so a tag and
        // its line can never be split by a sibling's output.
        tagged.clear();
        tagged.extend_from_slice(prefix.as_bytes());
        tagged.extend_from_slice(line);
        tagged.push(b'\n');
        sink.write_all(&tagged)?;
        sink.flush()?;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn relay_prefixes_every_line_and_keeps_a_partial_tail() {
        // The child died mid-line: no trailing newline on the last line.
        let child_stderr = b"starting\npanicked at 'boom'".as_slice();
        let mut out: Vec<u8> = Vec::new();
        relay_prefixed(child_stderr, &mut out, "[shard 2/3] ").unwrap();
        assert_eq!(
            String::from_utf8(out).unwrap(),
            "[shard 2/3] starting\n[shard 2/3] panicked at 'boom'\n"
        );
    }

    #[test]
    fn relay_of_an_empty_stream_emits_nothing() {
        let mut out: Vec<u8> = Vec::new();
        relay_prefixed(std::io::empty(), &mut out, "[shard 1/1] ").unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn insert_and_get_round_trip() {
        let map: ShardedMap<u64, String> = ShardedMap::new();
        assert!(map.is_empty());
        for i in 0..100u64 {
            map.insert_if_absent(i, format!("v{i}"));
        }
        assert_eq!(map.len(), 100);
        assert_eq!(map.get(&42).as_deref(), Some("v42"));
        assert_eq!(map.get(&1000), None);
    }

    #[test]
    fn first_insert_wins() {
        let map: ShardedMap<u8, u8> = ShardedMap::new();
        assert_eq!(map.insert_if_absent(1, 10), 10);
        assert_eq!(map.insert_if_absent(1, 20), 10);
        assert_eq!(map.get(&1), Some(10));
    }

    #[test]
    fn get_or_insert_with_computes_once_when_cached() {
        let map: ShardedMap<u8, u8> = ShardedMap::new();
        let calls = AtomicUsize::new(0);
        let mut make = || {
            calls.fetch_add(1, Ordering::Relaxed);
            7
        };
        assert_eq!(map.get_or_insert_with(1, &mut make), 7);
        assert_eq!(map.get_or_insert_with(1, &mut make), 7);
        assert_eq!(calls.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn concurrent_writers_converge() {
        let map: ShardedMap<u64, u64> = ShardedMap::new();
        std::thread::scope(|scope| {
            for t in 0..8u64 {
                let map = &map;
                scope.spawn(move || {
                    for i in 0..64 {
                        map.get_or_insert_with(i, || t * 1000 + i);
                    }
                });
            }
        });
        assert_eq!(map.len(), 64);
        // Every key has exactly one resident value, whoever won.
        for i in 0..64 {
            let v = map.get(&i).unwrap();
            assert_eq!(v % 1000, i);
        }
    }
}
