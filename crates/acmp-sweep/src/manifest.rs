//! Signed shard manifests: the coordination artifact of a multi-machine
//! sweep.
//!
//! A single-host sharded run (`sweep --shards N`) keeps every shard honest
//! implicitly — one coordinator process derives the grid, spawns the
//! children and validates the merge, all from one binary in one directory.
//! Across machines none of that holds: each host runs its own invocation,
//! possibly from a differently built binary, and the merge happens later,
//! offline, wherever the per-shard JSONL files were gathered.  The
//! manifest is the contract that survives that split:
//!
//! * `sweep --plan plan.json --grid … --shards N` captures the grid spec,
//!   trace scale, shard count and — most importantly — the **expected key
//!   schedule** of every shard: exactly the digest-ordered hex job keys
//!   that shard's row stream must carry;
//! * each machine runs `sweep --manifest plan.json --shard i/N`, which
//!   re-derives the schedule from the manifest's grid spec *with its own
//!   binary* and refuses to simulate if the two disagree (catching version
//!   drift in key derivation, design presets or trace configs before any
//!   cycles are burned);
//! * `sweep merge --manifest plan.json shard-*.jsonl` validates every
//!   stream against its scheduled keys and reproduces the byte-exact
//!   unsharded output.
//!
//! The manifest is *signed* in the lightweight integrity sense: a
//! fixed-order FNV-1a digest over every semantic field.  Any edit — a
//! truncated download, a hand-tweaked shard count, a re-ordered schedule —
//! breaks the digest and is rejected at load, so a shard can never
//! silently run against a damaged plan.

use crate::grid::GridSpec;
use crate::job::{JobKey, ShardSpec};
use crate::merge::shard_key_schedule;
use crate::stable_hash;
use hpc_workloads::GeneratorConfig;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::path::Path;

/// Manifest format version this binary reads and writes.
pub const MANIFEST_FORMAT_VERSION: u32 = 1;

/// A signed execution plan for one grid split into `shards` slices.
///
/// The grid travels as the original *spec strings*, not as expanded design
/// lists: every machine re-parses them and re-derives the job keys, and the
/// recomputed schedule must match the one recorded here ([`validate_grid`]
/// (Self::validate_grid)) — so agreement is checked against what each
/// binary would actually simulate, not just against what the planner wrote
/// down.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepManifest {
    /// Manifest format version ([`MANIFEST_FORMAT_VERSION`]).
    pub format: u32,
    /// The `--benchmarks` spec string the grid was planned from.
    pub benchmarks: String,
    /// The `--designs` spec string the grid was planned from.
    pub designs: String,
    /// Trace scale (`quick` or `paper`).
    pub scale: String,
    /// How many shards the keyspace is split into.
    pub shards: u32,
    /// Total grid cells (= total scheduled keys across all shards).
    pub cells: u64,
    /// Per-shard expected key schedule: element `i` holds the sorted hex
    /// job keys shard `i+1/shards` owns — the exact row order its JSONL
    /// stream must follow.
    pub schedule: Vec<Vec<String>>,
    /// FNV-1a digest (fixed-width hex) over every field above, in fixed
    /// order.  Recomputed and checked at every load.
    pub digest: String,
}

/// Maps a `--scale` name to the trace-generator configuration every sweep
/// invocation (planner, shard runner, unsharded run) derives job keys
/// from.  Shared here so the CLI and the manifest can never drift apart.
///
/// # Errors
///
/// Returns a human-readable message for an unknown scale name.
pub fn scale_generator(scale: &str) -> Result<GeneratorConfig, String> {
    match scale {
        "paper" => Ok(GeneratorConfig::paper()),
        "quick" => Ok(GeneratorConfig {
            num_workers: 4,
            parallel_instructions_per_thread: 20_000,
            num_phases: 2,
            seed: 0xC0FF_EE00,
        }),
        other => Err(format!("bad scale `{other}` (quick|paper)")),
    }
}

impl SweepManifest {
    /// Plans `grid` (given as its spec strings) at `scale` across `shards`
    /// slices, deriving every shard's expected key schedule and signing the
    /// result.
    ///
    /// More shards than grid cells is legal: the surplus shards simply get
    /// empty schedules, run as no-ops and contribute empty streams to the
    /// merge.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message when the grid spec, scale or shard
    /// count does not parse.
    pub fn plan(benchmarks: &str, designs: &str, scale: &str, shards: u32) -> Result<Self, String> {
        if shards == 0 {
            return Err("shard count must be ≥ 1".to_string());
        }
        let grid = GridSpec::parse(benchmarks, designs)?;
        let generator = scale_generator(scale)?;
        let keys: Vec<JobKey> = grid.jobs().iter().map(|job| job.key(&generator)).collect();
        let schedule = shard_key_schedule(&keys, shards);
        let mut manifest = SweepManifest {
            format: MANIFEST_FORMAT_VERSION,
            benchmarks: benchmarks.to_string(),
            designs: designs.to_string(),
            scale: scale.to_string(),
            shards,
            cells: keys.len() as u64,
            schedule,
            digest: String::new(),
        };
        manifest.digest = manifest.signature();
        // A plan must never sign something its own load path would reject —
        // that would brand a freshly written, untampered manifest as
        // corrupt on every machine that tries to run it.
        manifest
            .verify()
            .map_err(|e| format!("planned manifest fails its own verification: {e}"))?;
        Ok(manifest)
    }

    /// The digest the manifest's semantic fields should carry: FNV-1a over
    /// their canonical JSON in fixed field order (everything except
    /// `digest` itself).
    #[must_use]
    pub fn signature(&self) -> String {
        let body = serde_json::json!({
            "format": self.format,
            "benchmarks": self.benchmarks,
            "designs": self.designs,
            "scale": self.scale,
            "shards": self.shards,
            "cells": self.cells,
            "schedule": self.schedule,
        });
        stable_hash::hex(stable_hash::fnv1a(body.to_string().as_bytes()))
    }

    /// Structural and integrity checks: supported format, a schedule entry
    /// per shard, well-formed sorted keys with no key owned by two
    /// *different* shards, a cell count matching the schedule — and a
    /// signature that matches the recorded digest, so any tampering or
    /// truncation-with-repair fails here rather than mid-run.
    ///
    /// A key may legitimately appear twice on *one* shard: a grid spec can
    /// list the same cell twice (`--benchmarks cg,cg`), digest partitioning
    /// sends every duplicate to the same shard, and the whole pipeline —
    /// engine, shard streams, validating merge — emits and accepts the
    /// duplicated row.  Only cross-shard duplication is corruption.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message naming the first violated check.
    pub fn verify(&self) -> Result<(), String> {
        if self.format != MANIFEST_FORMAT_VERSION {
            return Err(format!(
                "manifest format {} not supported (this binary reads {MANIFEST_FORMAT_VERSION})",
                self.format
            ));
        }
        if self.shards == 0 {
            return Err("manifest shard count must be ≥ 1".to_string());
        }
        if self.schedule.len() != self.shards as usize {
            return Err(format!(
                "manifest schedules {} shards but declares {}",
                self.schedule.len(),
                self.shards
            ));
        }
        let mut owner: HashMap<&str, usize> = HashMap::new();
        let mut total = 0u64;
        for (i, shard) in self.schedule.iter().enumerate() {
            if !shard.is_sorted() {
                return Err(format!(
                    "shard {}/{} schedule is unsorted",
                    i + 1,
                    self.shards
                ));
            }
            for key in shard {
                if key.len() != 16 || !key.bytes().all(|b| b.is_ascii_hexdigit()) {
                    return Err(format!(
                        "shard {}/{} schedules malformed key `{key}`",
                        i + 1,
                        self.shards
                    ));
                }
                if *owner.entry(key).or_insert(i) != i {
                    return Err(format!("key {key} is scheduled on two shards"));
                }
                total += 1;
            }
        }
        if total != self.cells {
            return Err(format!(
                "manifest declares {} cells but schedules {total} keys",
                self.cells
            ));
        }
        if self.digest != self.signature() {
            return Err(format!(
                "manifest digest mismatch: recorded {}, computed {} — the manifest was \
                 modified or corrupted after planning",
                self.digest,
                self.signature()
            ));
        }
        Ok(())
    }

    /// Re-derives the grid, generator and per-shard key schedule from the
    /// manifest's spec strings *with this binary* and checks them against
    /// the recorded schedule.  A mismatch means the planning binary and
    /// this one disagree about what the grid even is (changed presets,
    /// changed key derivation, changed trace configs) — exactly the drift a
    /// multi-machine run must refuse to simulate through.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message naming the disagreement.
    pub fn validate_grid(&self) -> Result<(GridSpec, GeneratorConfig), String> {
        let _span = acmp_obs::span!(acmp_obs::names::MANIFEST_VALIDATE);
        let grid = GridSpec::parse(&self.benchmarks, &self.designs)
            .map_err(|e| format!("manifest grid spec does not parse here: {e}"))?;
        let generator = scale_generator(&self.scale)?;
        let keys: Vec<JobKey> = grid.jobs().iter().map(|job| job.key(&generator)).collect();
        if keys.len() as u64 != self.cells {
            return Err(format!(
                "manifest plans {} cells, this binary derives {} from the same spec",
                self.cells,
                keys.len()
            ));
        }
        let recomputed = shard_key_schedule(&keys, self.shards);
        if recomputed != self.schedule {
            return Err(
                "manifest key schedule disagrees with this binary's derivation for the same \
                 grid spec — the planning and running binaries have drifted; re-plan with \
                 this binary"
                    .to_string(),
            );
        }
        Ok((grid, generator))
    }

    /// The expected key schedule of one shard.
    ///
    /// # Panics
    ///
    /// Panics if `shard` does not belong to this manifest's split (caller
    /// bug: shard specs are validated against `shards` before use).
    #[must_use]
    pub fn shard_schedule(&self, shard: ShardSpec) -> &[String] {
        assert_eq!(shard.count(), self.shards, "shard of a different split");
        &self.schedule[shard.index() as usize]
    }

    /// Serialises the manifest as one line of canonical JSON.
    #[must_use]
    pub fn to_json(&self) -> String {
        stable_hash::canonical_json(self)
    }

    /// Parses a manifest from JSON, without verifying it; callers follow up
    /// with [`verify`](Self::verify) (or use [`load`](Self::load)).
    ///
    /// # Errors
    ///
    /// Returns a human-readable message for malformed JSON or a missing
    /// field (a truncated manifest fails here).
    pub fn from_json(text: &str) -> Result<Self, String> {
        serde_json::from_str(text).map_err(|e| format!("manifest does not parse: {e}"))
    }

    /// Reads, parses and verifies a manifest file.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message for an unreadable file, malformed
    /// or truncated JSON, or a manifest failing [`verify`](Self::verify).
    pub fn load(path: impl AsRef<Path>) -> Result<Self, String> {
        let path = path.as_ref();
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read manifest {}: {e}", path.display()))?;
        let manifest = Self::from_json(&text)?;
        manifest.verify()?;
        Ok(manifest)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan() -> SweepManifest {
        SweepManifest::plan("cg,lu", "fig09", "quick", 3).unwrap()
    }

    #[test]
    fn plans_verify_and_round_trip_through_json() {
        let manifest = plan();
        manifest.verify().unwrap();
        assert_eq!(manifest.cells, 6);
        assert_eq!(manifest.schedule.len(), 3);
        let total: usize = manifest.schedule.iter().map(Vec::len).sum();
        assert_eq!(total, 6);
        let parsed = SweepManifest::from_json(&manifest.to_json()).unwrap();
        parsed.verify().unwrap();
        assert_eq!(parsed, manifest);
    }

    #[test]
    fn planning_is_deterministic() {
        assert_eq!(plan(), plan());
        assert_eq!(plan().digest, plan().signature());
    }

    #[test]
    fn any_tampering_breaks_the_signature() {
        // Dropping a shard trips whichever check sees it first (the cell
        // count when that shard owned keys, the digest otherwise).
        let mut m = plan();
        m.shards = 2;
        m.schedule.pop();
        assert!(m.verify().is_err(), "{m:?}");

        let mut m = plan();
        m.scale = "paper".to_string();
        assert!(m.verify().unwrap_err().contains("digest mismatch"));

        let mut m = plan();
        let moved = m.schedule[0].pop();
        if let (Some(key), Some(last)) = (moved, m.schedule.last_mut()) {
            last.push(key);
            last.sort_unstable();
        }
        assert!(m.verify().is_err(), "moving a key between shards must fail");
    }

    #[test]
    fn structural_damage_is_named_before_the_digest_check() {
        let mut m = plan();
        m.schedule[0].reverse();
        if m.schedule[0].len() > 1 {
            assert!(m.verify().unwrap_err().contains("unsorted"));
        }

        let mut m = plan();
        let dup = m.schedule.iter().flatten().next().unwrap().clone();
        for shard in m.schedule.iter_mut() {
            if !shard.contains(&dup) {
                shard.push(dup.clone());
                shard.sort_unstable();
                break;
            }
        }
        assert!(m.verify().unwrap_err().contains("two shards"));

        let mut m = plan();
        m.schedule[0].push("not-a-key".to_string());
        m.schedule[0].sort_unstable();
        assert!(m.verify().unwrap_err().contains("malformed key"));

        let mut m = plan();
        m.format = 99;
        assert!(m.verify().unwrap_err().contains("format"));
    }

    #[test]
    fn truncated_json_fails_to_parse() {
        let text = plan().to_json();
        for cut in [1, text.len() / 2, text.len() - 1] {
            assert!(
                SweepManifest::from_json(&text[..cut]).is_err(),
                "a manifest truncated to {cut} bytes must not parse"
            );
        }
    }

    #[test]
    fn grid_validation_accepts_the_planning_binary_and_rejects_drift() {
        let m = plan();
        let (grid, generator) = m.validate_grid().unwrap();
        assert_eq!(grid.cells() as u64, m.cells);
        assert_eq!(generator, scale_generator("quick").unwrap());

        // Simulated drift: the manifest was planned for a different grid
        // than its spec strings now claim (as a binary with changed preset
        // lists would produce).  Re-sign so only validate_grid can catch it.
        let mut drifted = SweepManifest::plan("cg", "fig09", "quick", 3).unwrap();
        drifted.benchmarks = "cg,lu".to_string();
        drifted.cells = 6;
        drifted.digest = drifted.signature();
        assert!(drifted.verify().is_err() || drifted.validate_grid().is_err());

        let mut drifted = plan();
        let key = drifted.schedule.iter_mut().find(|s| !s.is_empty()).unwrap();
        key[0] = "0000000000000000".to_string();
        key.sort_unstable();
        drifted.digest = drifted.signature();
        drifted.verify().unwrap();
        assert!(
            drifted.validate_grid().unwrap_err().contains("drifted"),
            "a re-signed but wrong schedule must fail grid validation"
        );
    }

    #[test]
    fn duplicate_grid_cells_plan_verify_and_stay_on_one_shard() {
        // `--benchmarks cg,cg` lists one cell twice; the rest of the CLI
        // (engine, shard streams, merge) emits and accepts the duplicated
        // row, so planning must too — the duplicates land on one shard by
        // digest partitioning and the manifest loads cleanly.
        let m = SweepManifest::plan("cg,cg", "baseline", "quick", 2).unwrap();
        m.verify().unwrap();
        assert_eq!(m.cells, 2);
        let occupied: Vec<&Vec<String>> = m.schedule.iter().filter(|s| !s.is_empty()).collect();
        assert_eq!(occupied.len(), 1, "duplicates must share one shard");
        assert_eq!(occupied[0].len(), 2);
        assert_eq!(occupied[0][0], occupied[0][1]);
        m.validate_grid().unwrap();
        let round = SweepManifest::from_json(&m.to_json()).unwrap();
        round.verify().unwrap();
    }

    #[test]
    fn more_shards_than_cells_plans_empty_schedules() {
        let m = SweepManifest::plan("cg", "baseline", "quick", 8).unwrap();
        m.verify().unwrap();
        assert_eq!(m.cells, 1);
        let empty = m.schedule.iter().filter(|s| s.is_empty()).count();
        assert_eq!(empty, 7, "seven of eight shards own nothing");
        m.validate_grid().unwrap();
        // Empty shards still answer schedule lookups.
        let spec = ShardSpec::all(8).last().unwrap();
        let _ = m.shard_schedule(spec);
    }

    #[test]
    fn scales_map_to_generators() {
        assert!(scale_generator("quick").is_ok());
        assert_eq!(scale_generator("paper").unwrap(), GeneratorConfig::paper());
        assert!(scale_generator("huge").is_err());
    }

    #[test]
    fn load_reports_missing_files_and_verifies() {
        let dir = std::env::temp_dir().join(format!("acmp-manifest-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        assert!(SweepManifest::load(dir.join("absent.json")).is_err());

        let path = dir.join("plan.json");
        std::fs::write(&path, plan().to_json()).unwrap();
        SweepManifest::load(&path).unwrap();

        // A tampered file fails at load, not at use.
        let tampered = plan().to_json().replace("\"shards\":3", "\"shards\":4");
        std::fs::write(&path, tampered).unwrap();
        assert!(SweepManifest::load(&path).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
