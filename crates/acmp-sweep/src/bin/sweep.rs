//! `sweep` — run a (benchmark × design point) grid on the sweep engine.
//!
//! ```text
//! sweep run --grid fig09                     # quick benchmarks × Fig. 9 designs
//! sweep run --benchmarks all --designs fig12 --workers 8
//! sweep run --benchmarks cg,lu --designs baseline,proposed --out rows.jsonl
//! sweep run --grid fig07 --scale paper --cache-dir /tmp/sweep-cache
//! sweep run --grid fig09 --shards 3          # 3 shard processes, merged output
//! sweep run --grid fig09 --shard 2/3         # this process runs shard 2 only
//! sweep plan plan.json --grid fig09 --shards 2     # sign a multi-machine plan
//! sweep run --manifest plan.json --shard 1/2 --out shard-1.jsonl   # machine 1
//! sweep merge --manifest plan.json --out rows.jsonl shard-1.jsonl shard-2.jsonl
//! sweep store export warm.bundle             # ship a warm store elsewhere
//! sweep store import warm.bundle             # …and absorb it there
//! sweep store compact                        # merge the store into one generation
//! sweep store stats                          # inspect the store, run nothing
//! sweep query benchmark=cg --by cycles --top 3   # rank cached results
//! sweep query family=worker-shared 'cycles<=1e6' --by worker_icache.misses
//! ```
//!
//! The pre-subcommand grammar — the same options as top-level flags, plus
//! `--plan FILE`, `--compact`, `--cache-stats`, `--export-segments` and
//! `--import-segments` — still works as a set of deprecated aliases, so
//! existing scripts keep running unchanged.
//!
//! Result rows stream as JSONL (stdout by default, `--out FILE` otherwise)
//! in stable digest order — every line starts with the fixed-width hex job
//! key, so byte order is key order; progress and the final summary go to
//! stderr, so piping stdout yields pure JSONL.  The summary includes the
//! cache counters; a second identical invocation with the same
//! `--cache-dir` reports `disk-hits > 0`, zero simulations, zero trace
//! generations, and produces byte-identical rows.
//!
//! `--shards N` splits the grid across N child `sweep` processes by stable
//! job-key digest: the children share the cache directory (their appends
//! never collide and no cell is simulated twice), their stderr streams
//! here with a `[shard i/N]` prefix, and their digest-ordered row streams
//! are k-way merged — validated against the expected key schedule — into
//! output byte-identical to an unsharded run.  `--shard i/N` runs a single
//! shard in this process (what the coordinator spawns, and what a manual
//! multi-terminal or multi-machine run uses directly).
//!
//! The **multi-machine** path needs no shared filesystem.  `--plan FILE`
//! signs a manifest carrying the grid spec and every shard's expected key
//! schedule; `--manifest FILE --shard i/N` re-derives the schedule with
//! the local binary and refuses to simulate on any disagreement; the
//! gathered per-shard JSONL files are recombined offline with `sweep
//! merge`, which names every missing or short shard (so stragglers can be
//! re-run individually) and writes nothing unless all streams check out.
//! `--export-segments` / `--import-segments` ship one machine's warm store
//! to the others as a verified bundle.
//!
//! `--compact`, `--cache-stats`, `--export-segments` and
//! `--import-segments` are maintenance modes: they operate on the store
//! named by `--cache-dir` (or the default) and exit without running a
//! grid.
//!
//! `sweep query` answers **from the store alone** — no grid, no engine, no
//! simulation.  Filters conjoin facet equalities (`benchmark=cg`,
//! `family=worker-shared`, `design=NAME`, `scale=HEX`) with metric
//! comparisons (`cycles<=1e6`); `--by METRIC` ranks the survivors and
//! `--top K` cuts the list.  The first query over a store builds and
//! persists the secondary index; every later query answers straight from
//! it with **zero segment value reads**, which `--metrics-out` proves via
//! the `store.value_reads` counter.

// The sweep CLI owns the process stderr contract (progress, summaries,
// usage): the `raw-stderr` lint rule exempts exactly this directory.
#![allow(clippy::print_stderr)]

use acmp_sweep::manifest::{scale_generator, SweepManifest};
use acmp_sweep::merge::{
    merge_shard_streams, merge_validated, shard_key_schedule, validate_shard_stream, MergeError,
};
use acmp_sweep::scheduler::split_worker_budget;
use acmp_sweep::{
    Catalog, CatalogSource, DiskStore, GridSpec, JobKey, Query, ShardSpec, SweepEngine,
    WorkStealingPool,
};
use hpc_workloads::GeneratorConfig;
use std::io::Write;
use std::path::PathBuf;

/// The top-level usage text.  A function, not a const: the metrics schema
/// name is spliced in from its defining constant
/// ([`acmp_obs::METRICS_SCHEMA`]) so the help text can never drift from
/// the writer (the `schema-literal` lint rule bans inline copies).
fn usage() -> String {
    format!(
        "\
usage: sweep run   [options]                 run a grid, or one shard of it
       sweep plan  FILE [options]            sign a multi-machine shard manifest
       sweep merge --manifest plan.json [--out FILE] shard-1.jsonl … shard-N.jsonl
       sweep store compact|stats|export FILE|import FILE [--cache-dir DIR]
       sweep query [FILTER …] --by METRIC [--top K] [--desc] [--cache-dir DIR]
       sweep serve --dir STORE [--addr HOST:PORT] [--workers N]
       sweep trace report TRACE.jsonl [--metrics FILE.json] [--top K]
       sweep [options]                       (deprecated alias grammar, see below)

run options:
  --benchmarks SPEC   all | quick | comma list of names     (default: quick)
  --designs SPEC      design spec (see below)               (default: baseline,proposed)
  --grid PRESET       shorthand for --designs PRESET
  --workers N         pool threads                          (default: nproc)
  --shards N          run the grid as N shard processes sharing the cache,
                      then merge their rows (byte-identical to unsharded);
                      with `sweep plan`, the shard count being planned
  --shard I/N         run only the cells whose stable key digest d has
                      d % N == I-1 (1-based I)
  --scale S           quick | paper trace scale             (default: quick)
  --manifest FILE     run one shard of a planned sweep (needs --shard I/N);
                      the grid and scale come from the manifest, which is
                      digest-checked and re-validated against this binary
  --out FILE          write JSONL rows to FILE              (default: stdout)
  --cache-dir DIR     on-disk result store                  (default: target/sweep-cache)
  --keep-generations N  evict all but the newest N store generations at open
  --no-disk-cache     disable the on-disk store
  --trace-out FILE    write a structured JSONL event trace of the run
                      (spans, log lines; sharded runs fold every child's
                      events in, tagged `shard=i/N`)
  --metrics-out FILE  write aggregated counters and duration histograms
                      as one JSON document (schema {schema})
  --quiet             suppress per-job progress lines
  --help              this text

store subcommands (all honour --cache-dir):
  compact             merge the store's live entries into one generation
                      (and rebuild the persisted query index, if any)
  stats               print store contents and secondary-index statistics
  export FILE         write every live record to FILE as a verified bundle
  import FILE         absorb a bundle exported elsewhere (local keys win)

query filters (conjunctive; see `sweep query --help`):
  benchmark=cg  family=private|worker-shared|all-shared  design=NAME
  scale=HEX16   METRIC<=N  METRIC>=N  METRIC<N  METRIC>N

deprecated aliases: the run options work without the `run` subcommand, and
  --plan FILE / --compact / --cache-stats / --export-segments FILE /
  --import-segments FILE mirror `sweep plan` and the store subcommands.

design specs: baseline proposed all-shared all-shared-single worker-shared-32k
              naive:N  lb:N  shared:KiB:LB:single|double  fig07..fig13 presets",
        schema = acmp_obs::METRICS_SCHEMA
    )
}

const STORE_USAGE: &str = "\
usage: sweep store compact|stats|export FILE|import FILE [--cache-dir DIR]
  compact             merge the store's live entries into one generation
                      (and rebuild the persisted query index, if any)
  stats               print store contents (entries/segments/bytes) and
                      secondary-index statistics (files/rows/postings/buckets
                      and whether the index is fresh or stale)
  export FILE         write every live record to FILE as a verified bundle
  import FILE         absorb a bundle exported elsewhere (local keys win)
  --cache-dir DIR     the store to operate on (default: target/sweep-cache)";

/// `sweep query` usage text — a function for the same reason as
/// [`usage`]: the metrics schema name comes from its defining constant.
fn query_usage() -> String {
    format!(
        "\
usage: sweep query [FILTER …] --by METRIC [--top K] [--desc] [--cache-dir DIR]
                   [--out FILE] [--trace-out FILE] [--metrics-out FILE] [--quiet]
  Ranks the store's cached results without running anything.  Filters are
  conjunctive, one per argument:
    benchmark=cg            facet equality (case-insensitive); the facets
    family=worker-shared    are benchmark, family (private | worker-shared |
    design=NAME             all-shared), design and scale (the 16-hex
    scale=HEX16             generator digest printed in the rows)
    METRIC<=N  METRIC>=N    metric comparison against a finite number;
    METRIC<N   METRIC>N     metrics use flattened dotted names, e.g.
                            cycles, worker_icache.misses, bus.transactions
  Hits stream as JSONL (key, benchmark, family, design, metric, value) in
  ranked order: ascending by --by METRIC (--desc flips), key digest breaks
  ties, --top K cuts the list.  Rows lacking the metric are excluded.
  The first query over a store builds and persists the secondary index;
  later queries (and queries after `store compact`) answer from it with
  zero segment value reads — observable as the absence of the
  store.value_reads counter in --metrics-out.
  --by METRIC       the ranking metric (required)
  --top K           keep only the best K hits
  --desc            rank descending
  --out FILE        write JSONL hits to FILE        (default: stdout)
  --cache-dir DIR   the store to query              (default: target/sweep-cache)
  --trace-out FILE  structured JSONL event trace of the query
  --metrics-out FILE  aggregated counters (schema {schema})
  --quiet           suppress the stderr summary",
        schema = acmp_obs::METRICS_SCHEMA
    )
}

const TRACE_USAGE: &str = "\
usage: sweep trace report TRACE.jsonl [--metrics FILE.json] [--top K]
  Validates a --trace-out trace (and optionally a --metrics-out document)
  strictly against its schema, then prints a per-phase cost breakdown, the
  top-K slowest cells, and a cache-efficiency summary.  A schema violation
  exits non-zero naming the offending line, so this doubles as the trace
  validator in CI.
  --metrics FILE.json   fold a metrics document into the report
  --top K               slowest-cell rows to print (default: 10)";

const MERGE_USAGE: &str = "\
usage: sweep merge --manifest plan.json [--out FILE] shard-1.jsonl … shard-N.jsonl
  Validates every gathered per-shard JSONL stream against the manifest's
  key schedule (slot order = argument order), reports each missing, short
  or corrupt shard by name, and — only when all streams check out — writes
  the merged rows, byte-identical to an unsharded run, to --out (default
  stdout).  Supply one file per shard, in shard order: a shard that owns
  nothing still contributes the (empty) --out file its run produced —
  skipping a middle slot would silently shift every later file into the
  wrong one.";

struct Options {
    benchmarks: String,
    designs: String,
    workers: Option<usize>,
    shards: Option<u32>,
    shard: Option<ShardSpec>,
    scale: String,
    plan: Option<String>,
    manifest: Option<String>,
    out: Option<String>,
    cache_dir: Option<String>,
    keep_generations: Option<u64>,
    disk_cache: bool,
    compact: bool,
    cache_stats: bool,
    export_segments: Option<String>,
    import_segments: Option<String>,
    trace_out: Option<String>,
    metrics_out: Option<String>,
    quiet: bool,
    /// Grid-defining flags the user passed explicitly — with `--manifest`
    /// the grid comes from the manifest, so these conflict and are named
    /// in the error.
    grid_flags: Vec<&'static str>,
}

impl Options {
    fn is_maintenance(&self) -> bool {
        self.compact
            || self.cache_stats
            || self.export_segments.is_some()
            || self.import_segments.is_some()
    }
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        benchmarks: "quick".to_string(),
        designs: "baseline,proposed".to_string(),
        workers: None,
        shards: None,
        shard: None,
        scale: "quick".to_string(),
        plan: None,
        manifest: None,
        out: None,
        cache_dir: None,
        keep_generations: None,
        disk_cache: true,
        compact: false,
        cache_stats: false,
        export_segments: None,
        import_segments: None,
        trace_out: None,
        metrics_out: None,
        quiet: false,
        grid_flags: Vec::new(),
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match arg.as_str() {
            "--benchmarks" => {
                opts.benchmarks = value("--benchmarks")?;
                opts.grid_flags.push("--benchmarks");
            }
            "--designs" => {
                opts.designs = value("--designs")?;
                opts.grid_flags.push("--designs");
            }
            "--grid" => {
                opts.designs = value("--grid")?;
                opts.grid_flags.push("--grid");
            }
            "--workers" => {
                let v = value("--workers")?;
                opts.workers = Some(
                    v.parse::<usize>()
                        .ok()
                        .filter(|&n| n >= 1)
                        .ok_or_else(|| format!("bad worker count `{v}`"))?,
                );
            }
            "--shards" => {
                let v = value("--shards")?;
                opts.shards = Some(
                    v.parse::<u32>()
                        .ok()
                        .filter(|&n| n >= 1)
                        .ok_or_else(|| format!("bad shard count `{v}`"))?,
                );
            }
            "--shard" => {
                let v = value("--shard")?;
                opts.shard =
                    Some(ShardSpec::parse(&v).map_err(|e| format!("bad --shard `{v}`: {e}"))?);
            }
            "--scale" => {
                let v = value("--scale")?;
                scale_generator(&v)?;
                opts.scale = v;
                opts.grid_flags.push("--scale");
            }
            "--plan" => opts.plan = Some(value("--plan")?),
            "--manifest" => opts.manifest = Some(value("--manifest")?),
            "--out" => opts.out = Some(value("--out")?),
            "--cache-dir" => opts.cache_dir = Some(value("--cache-dir")?),
            "--keep-generations" => {
                let v = value("--keep-generations")?;
                opts.keep_generations = Some(
                    v.parse::<u64>()
                        .ok()
                        .filter(|&n| n >= 1)
                        .ok_or_else(|| format!("bad generation count `{v}`"))?,
                );
            }
            "--no-disk-cache" => opts.disk_cache = false,
            "--compact" => opts.compact = true,
            "--cache-stats" => opts.cache_stats = true,
            "--export-segments" => opts.export_segments = Some(value("--export-segments")?),
            "--import-segments" => opts.import_segments = Some(value("--import-segments")?),
            "--trace-out" => opts.trace_out = Some(value("--trace-out")?),
            "--metrics-out" => opts.metrics_out = Some(value("--metrics-out")?),
            "--quiet" => opts.quiet = true,
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown option `{other}`")),
        }
    }
    if opts.shard.is_some() && opts.shards.is_some() {
        return Err("--shard and --shards are mutually exclusive".to_string());
    }
    if opts.plan.is_some() && (opts.manifest.is_some() || opts.shard.is_some()) {
        return Err("--plan only writes a manifest; it conflicts with --manifest/--shard".into());
    }
    if (opts.plan.is_some() || opts.manifest.is_some()) && opts.is_maintenance() {
        return Err("store maintenance flags conflict with --plan/--manifest".to_string());
    }
    if opts.manifest.is_some() {
        if let Some(flag) = opts.grid_flags.first() {
            return Err(format!(
                "{flag} conflicts with --manifest: the grid and scale come from the manifest"
            ));
        }
        if opts.shards.is_some() {
            return Err(
                "--shards conflicts with --manifest; run one shard per machine with --shard i/N"
                    .to_string(),
            );
        }
        if opts.shard.is_none() {
            return Err(
                "--manifest needs --shard i/N (use `sweep merge` to combine gathered streams)"
                    .to_string(),
            );
        }
    }
    Ok(opts)
}

/// The store directory the run will use (ignoring `--no-disk-cache`).
fn cache_root(opts: &Options) -> PathBuf {
    opts.cache_dir
        .clone()
        .map(PathBuf::from)
        .unwrap_or_else(DiskStore::default_root)
}

/// Opens the JSONL sink (`--out FILE` or stdout), exiting on failure.
fn open_sink(out: Option<&String>) -> Box<dyn Write> {
    match out {
        Some(path) => match std::fs::File::create(path) {
            Ok(f) => Box::new(std::io::BufWriter::new(f)),
            Err(e) => {
                eprintln!("sweep: cannot create {path}: {e}");
                std::process::exit(1);
            }
        },
        None => Box::new(std::io::BufWriter::new(std::io::stdout())),
    }
}

/// Exits non-zero after a failed row write or flush.  A broken pipe —
/// `sweep … | head` closing stdout early — exits *quietly*: the non-zero
/// status still marks the stream as truncated (a silent exit 0 would look
/// exactly like a successful short run), but there is no point spamming
/// every pipeline that legitimately stops reading early.
fn die_on_write_error(e: &std::io::Error) -> ! {
    if e.kind() != std::io::ErrorKind::BrokenPipe {
        eprintln!("sweep: write failed: {e}");
    }
    std::process::exit(1);
}

/// Turns on the observability sinks the flags ask for.  Must run before
/// the engine opens its store or simulates anything, so every span of the
/// run lands in the artifacts.
fn enable_observability(opts: &Options) {
    if opts.trace_out.is_some() {
        acmp_obs::enable_events();
    }
    if opts.metrics_out.is_some() {
        acmp_obs::enable_metrics();
    }
}

/// Writes the `--trace-out` / `--metrics-out` artifacts at the end of a
/// run: this process's drained events plus `child_events` already rendered
/// (and shard-tagged) by a coordinator, and the metrics snapshot merged
/// with every child's.  No-ops for sinks that were not requested.
fn write_obs_artifacts(
    opts: &Options,
    child_events: Vec<serde::Value>,
    child_metrics: &[acmp_obs::MetricsSnapshot],
) {
    if let Some(path) = &opts.trace_out {
        let mut values: Vec<serde::Value> = acmp_obs::drain_events()
            .iter()
            .map(acmp_obs::event_to_value)
            .collect();
        values.extend(child_events);
        let result = std::fs::File::create(path).and_then(|f| {
            let mut w = std::io::BufWriter::new(f);
            acmp_obs::write_values(&mut w, &values).and_then(|()| w.flush())
        });
        if let Err(e) = result {
            eprintln!("sweep: cannot write trace {path}: {e}");
            std::process::exit(1);
        }
    }
    if let Some(path) = &opts.metrics_out {
        let mut snapshot = acmp_obs::registry().snapshot();
        for m in child_metrics {
            snapshot.merge(m);
        }
        let mut json = snapshot.to_value().to_string();
        json.push('\n');
        if let Err(e) = std::fs::write(path, json) {
            eprintln!("sweep: cannot write metrics {path}: {e}");
            std::process::exit(1);
        }
    }
}

/// `sweep trace report TRACE.jsonl [--metrics FILE.json] [--top K]`.
fn run_trace(args: &[String]) {
    match args.first().map(String::as_str) {
        Some("report") => {}
        Some("--help" | "-h") => {
            eprintln!("{TRACE_USAGE}");
            std::process::exit(0);
        }
        other => {
            let got = other.map_or_else(String::new, |o| format!(" (got `{o}`)"));
            eprintln!("sweep: `sweep trace` needs the `report` action{got}\n\n{TRACE_USAGE}");
            std::process::exit(2);
        }
    }
    let mut trace_path: Option<String> = None;
    let mut metrics_path: Option<String> = None;
    let mut top = 10usize;
    let mut it = args[1..].iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| match it.next() {
            Some(v) => v.clone(),
            None => {
                eprintln!("sweep trace: {name} needs a value\n\n{TRACE_USAGE}");
                std::process::exit(2);
            }
        };
        match arg.as_str() {
            "--metrics" => metrics_path = Some(value("--metrics")),
            "--top" => {
                let v = value("--top");
                top = match v.parse::<usize>() {
                    Ok(n) if n >= 1 => n,
                    _ => {
                        eprintln!("sweep trace: bad --top `{v}`\n\n{TRACE_USAGE}");
                        std::process::exit(2);
                    }
                };
            }
            "--help" | "-h" => {
                eprintln!("{TRACE_USAGE}");
                std::process::exit(0);
            }
            flag if flag.starts_with("--") => {
                eprintln!("sweep trace: unknown option `{flag}`\n\n{TRACE_USAGE}");
                std::process::exit(2);
            }
            file => {
                if trace_path.replace(file.to_string()).is_some() {
                    eprintln!("sweep trace: exactly one trace file, please\n\n{TRACE_USAGE}");
                    std::process::exit(2);
                }
            }
        }
    }
    let Some(trace_path) = trace_path else {
        eprintln!("sweep trace: a trace file is required\n\n{TRACE_USAGE}");
        std::process::exit(2);
    };
    let text = match std::fs::read_to_string(&trace_path) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("sweep trace: cannot read {trace_path}: {e}");
            std::process::exit(1);
        }
    };
    // Strict parse: any schema violation exits non-zero naming the line,
    // which is what lets CI use `trace report` as the trace validator.
    let events = match acmp_obs::read_trace_values(&text) {
        Ok(events) => events,
        Err(msg) => {
            eprintln!("sweep trace: {trace_path}: {msg}");
            std::process::exit(1);
        }
    };
    let metrics = metrics_path.map(|path| {
        let parsed = std::fs::read_to_string(&path)
            .map_err(|e| e.to_string())
            .and_then(|text| serde_json::from_str::<serde::Value>(&text).map_err(|e| e.to_string()))
            .and_then(|value| acmp_obs::MetricsSnapshot::from_value(&value));
        match parsed {
            Ok(snapshot) => snapshot,
            Err(msg) => {
                eprintln!("sweep trace: {path}: {msg}");
                std::process::exit(1);
            }
        }
    });
    print!(
        "{}",
        acmp_obs::render_report(&events, metrics.as_ref(), top)
    );
}

fn parse_or_die(args: &[String]) -> Options {
    match parse_args(args) {
        Ok(opts) => opts,
        Err(msg) => {
            if msg.is_empty() {
                eprintln!("{}", usage());
                std::process::exit(0);
            }
            eprintln!("sweep: {msg}\n\n{}", usage());
            std::process::exit(2);
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("merge") => run_merge(&args[1..]),
        Some("run") => {
            let opts = parse_or_die(&args[1..]);
            if opts.is_maintenance() {
                eprintln!(
                    "sweep: store maintenance is `sweep store compact|stats|export|import`, \
                     not a `run` flag\n\n{STORE_USAGE}"
                );
                std::process::exit(2);
            }
            if opts.plan.is_some() {
                eprintln!(
                    "sweep: planning is `sweep plan FILE`, not a `run` flag\n\n{}",
                    usage()
                );
                std::process::exit(2);
            }
            dispatch_run(&opts);
        }
        Some("plan") => {
            // `sweep plan FILE [grid flags] --shards N` — sugar over the
            // legacy `--plan FILE` grammar, sharing its conflict checks.
            let Some(file) = args.get(1).filter(|a| !a.starts_with("--")).cloned() else {
                eprintln!(
                    "sweep: `sweep plan` needs a manifest file to write\n\n{}",
                    usage()
                );
                std::process::exit(2);
            };
            let mut legacy = vec!["--plan".to_string(), file.clone()];
            legacy.extend(args[2..].iter().cloned());
            let opts = parse_or_die(&legacy);
            run_plan(&opts, &file);
        }
        Some("store") => run_store(&args[1..]),
        Some("query") => run_query(&args[1..]),
        Some("serve") => run_serve(&args[1..]),
        Some("trace") => run_trace(&args[1..]),
        // Deprecated alias grammar: the run/plan/store options as bare
        // top-level flags.  Kept silently working so existing scripts and
        // CI keep running; new scripts should use the subcommands.
        _ => {
            let opts = parse_or_die(&args);
            if opts.is_maintenance() {
                run_maintenance(&opts);
                return;
            }
            if let Some(path) = opts.plan.clone() {
                run_plan(&opts, &path);
                return;
            }
            dispatch_run(&opts);
        }
    }
}

/// The `run` path shared by `sweep run` and the legacy flag grammar.
fn dispatch_run(opts: &Options) {
    enable_observability(opts);
    if let Some(path) = opts.manifest.clone() {
        run_manifest_shard(opts, &path);
        return;
    }
    let grid = match GridSpec::parse(&opts.benchmarks, &opts.designs) {
        Ok(grid) => grid,
        Err(msg) => {
            eprintln!("sweep: {msg}");
            std::process::exit(2);
        }
    };
    let generator = scale_generator(&opts.scale).expect("scale validated at parse");

    match opts.shards {
        Some(shards) => run_coordinator(opts, &grid, &generator, shards),
        None => run_grid(opts, &grid, &generator, &opts.scale),
    }
}

/// `sweep store compact|stats|export FILE|import FILE [--cache-dir DIR]`.
fn run_store(args: &[String]) {
    let mut opts = parse_or_die(&[]);
    let mut it = args.iter();
    match it.next().map(String::as_str) {
        Some("compact") => opts.compact = true,
        Some("stats") => opts.cache_stats = true,
        Some("export") | Some("import") => {
            let action = args[0].as_str();
            let Some(file) = it.next().filter(|a| !a.starts_with("--")).cloned() else {
                eprintln!("sweep: `sweep store {action}` needs a bundle file\n\n{STORE_USAGE}");
                std::process::exit(2);
            };
            if action == "export" {
                opts.export_segments = Some(file);
            } else {
                opts.import_segments = Some(file);
            }
        }
        Some("--help") | Some("-h") => {
            eprintln!("{STORE_USAGE}");
            std::process::exit(0);
        }
        other => {
            let got = other.map_or_else(String::new, |o| format!(" (got `{o}`)"));
            eprintln!("sweep: `sweep store` needs an action{got}\n\n{STORE_USAGE}");
            std::process::exit(2);
        }
    }
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--cache-dir" => match it.next() {
                Some(dir) => opts.cache_dir = Some(dir.clone()),
                None => {
                    eprintln!("sweep: --cache-dir needs a value\n\n{STORE_USAGE}");
                    std::process::exit(2);
                }
            },
            other => {
                eprintln!("sweep: unknown `sweep store` option `{other}`\n\n{STORE_USAGE}");
                std::process::exit(2);
            }
        }
    }
    run_maintenance(&opts);
}

/// `sweep query [FILTER …] --by METRIC [--top K] [--desc] …` — rank cached
/// results straight from the store's catalog, simulating nothing.
fn run_query(args: &[String]) {
    let mut filters: Vec<String> = Vec::new();
    let mut by: Option<String> = None;
    let mut top: Option<usize> = None;
    let mut descending = false;
    let mut out: Option<String> = None;
    let mut opts = parse_or_die(&[]);
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| {
            it.next().cloned().unwrap_or_else(|| {
                eprintln!("sweep query: {name} needs a value\n\n{}", query_usage());
                std::process::exit(2);
            })
        };
        match arg.as_str() {
            "--by" => by = Some(value("--by")),
            "--top" => {
                let v = value("--top");
                top = Some(v.parse::<usize>().unwrap_or_else(|_| {
                    eprintln!("sweep query: bad --top `{v}`\n\n{}", query_usage());
                    std::process::exit(2);
                }));
            }
            "--desc" => descending = true,
            "--out" => out = Some(value("--out")),
            "--cache-dir" => opts.cache_dir = Some(value("--cache-dir")),
            "--trace-out" => opts.trace_out = Some(value("--trace-out")),
            "--metrics-out" => opts.metrics_out = Some(value("--metrics-out")),
            "--quiet" => opts.quiet = true,
            "--help" | "-h" => {
                eprintln!("{}", query_usage());
                std::process::exit(0);
            }
            flag if flag.starts_with("--") => {
                eprintln!("sweep query: unknown option `{flag}`\n\n{}", query_usage());
                std::process::exit(2);
            }
            filter => filters.push(filter.to_string()),
        }
    }
    let Some(by) = by else {
        eprintln!(
            "sweep query: a ranking metric (--by METRIC) is required\n\n{}",
            query_usage()
        );
        std::process::exit(2);
    };
    let query = match Query::parse(&filters, &by, top, descending) {
        Ok(q) => q,
        Err(msg) => {
            eprintln!("sweep query: {msg}\n\n{}", query_usage());
            std::process::exit(2);
        }
    };

    // Sinks on before the store opens, so index builds land in the trace.
    enable_observability(&opts);
    let root = cache_root(&opts);
    let store = match DiskStore::open(&root) {
        Ok(store) => store,
        Err(e) => {
            eprintln!("sweep: cannot open cache dir {}: {e}", root.display());
            std::process::exit(1);
        }
    };
    let catalog = match Catalog::open(&store) {
        Ok(catalog) => catalog,
        Err(e) => {
            eprintln!(
                "sweep query: cannot build catalog for {}: {e}",
                root.display()
            );
            std::process::exit(1);
        }
    };
    // A scan-built catalog means no (fresh) persisted index existed; persist
    // it so the next query — and the next process — answers warm.
    if catalog.source() == CatalogSource::Scan && !catalog.rows().is_empty() {
        if let Err(e) = catalog.persist(&store) {
            eprintln!(
                "sweep query: cannot persist index under {}: {e}",
                root.display()
            );
            std::process::exit(1);
        }
    }

    // A ranking metric (or filter metric) no row carries is a typo, not an
    // empty design space — refuse it and show the vocabulary.
    if let Err(msg) = catalog.validate_query(&query) {
        eprintln!("sweep query: {msg}");
        std::process::exit(2);
    }

    let hits = catalog.query(&query);
    let mut sink = open_sink(out.as_ref());
    for hit in &hits {
        // The rendering is shared with `sweep serve` so service responses
        // stay byte-identical to the offline CLI.
        if let Err(e) = writeln!(sink, "{}", hit.to_jsonl(&query.by)) {
            die_on_write_error(&e);
        }
    }
    if let Err(e) = sink.flush() {
        die_on_write_error(&e);
    }
    drop(sink);
    if !opts.quiet {
        let source = match catalog.source() {
            CatalogSource::Index => "persisted index",
            CatalogSource::Scan => "value scan (index persisted for next time)",
        };
        eprintln!(
            "query {}: {} hits from {} rows via {source}",
            root.display(),
            hits.len(),
            catalog.rows().len(),
        );
    }
    write_obs_artifacts(&opts, Vec::new(), &[]);
}

const SERVE_USAGE: &str = "\
usage: sweep serve --dir STORE [--addr HOST:PORT] [--workers N]
  Serves the store's cached results over HTTP, long-lived.  Endpoints:
    POST/GET /query     the `sweep query` grammar (POST body = the CLI
                        tokens, GET = &-separated percent-encoded tokens);
                        answers JSONL byte-identical to the offline CLI
    GET /stats          the live acmp-obs metrics snapshot (same schema as
                        --metrics-out); a warm query leaves
                        store.value_reads absent — the zero-read proof
    GET /healthz        liveness
  Writer publishes are picked up automatically (snapshot epoch roll);
  in-flight queries keep their epoch.  SIGTERM exits cleanly.
  --dir DIR       the store to serve (required)
  --addr ADDR     bind address                (default: 127.0.0.1:7878)
  --workers N     connection worker threads   (default: 4)";

fn run_serve(args: &[String]) {
    let mut dir: Option<String> = None;
    let mut addr = "127.0.0.1:7878".to_string();
    let mut workers = acmp_sweep::serve::DEFAULT_WORKERS;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| {
            it.next().cloned().unwrap_or_else(|| {
                eprintln!("sweep serve: {name} needs a value\n\n{SERVE_USAGE}");
                std::process::exit(2);
            })
        };
        match arg.as_str() {
            "--dir" => dir = Some(value("--dir")),
            "--addr" => addr = value("--addr"),
            "--workers" => {
                let v = value("--workers");
                workers = v.parse::<usize>().unwrap_or_else(|_| {
                    eprintln!("sweep serve: bad --workers `{v}`\n\n{SERVE_USAGE}");
                    std::process::exit(2);
                });
            }
            "--help" | "-h" => {
                eprintln!("{SERVE_USAGE}");
                std::process::exit(0);
            }
            other => {
                eprintln!("sweep serve: unknown argument `{other}`\n\n{SERVE_USAGE}");
                std::process::exit(2);
            }
        }
    }
    let Some(dir) = dir else {
        eprintln!("sweep serve: --dir STORE is required\n\n{SERVE_USAGE}");
        std::process::exit(2);
    };
    // Metrics on from the start so /stats reflects the whole process —
    // including whether the first epoch needed any segment value reads.
    acmp_obs::enable_metrics();
    install_sigterm_handler();
    let server = match acmp_sweep::serve::Server::start(&dir, &addr, workers) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("sweep serve: cannot serve {dir}: {e}");
            std::process::exit(1);
        }
    };
    eprintln!(
        "sweep serve: serving {dir} on http://{}",
        server.local_addr()
    );
    // The acceptor and workers own the work; this thread only waits for a
    // signal.  SIGTERM exits 0 via the handler below.
    loop {
        std::thread::park();
    }
}

/// Raw `signal(2)` binding — the container has no signal-handling crate,
/// and all the handler may do is `_exit`, which is async-signal-safe.
#[cfg(unix)]
mod sigterm {
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
        fn _exit(code: i32) -> !;
    }

    const SIGTERM: i32 = 15;

    extern "C" fn exit_cleanly(_signum: i32) {
        // Exit code 0 is the clean-shutdown contract CI asserts.
        unsafe { _exit(0) }
    }

    pub fn install() {
        unsafe {
            signal(SIGTERM, exit_cleanly as *const () as usize);
        }
    }
}

#[cfg(unix)]
fn install_sigterm_handler() {
    sigterm::install();
}

#[cfg(not(unix))]
fn install_sigterm_handler() {}

/// Store maintenance modes: no grid, no engine.
fn run_maintenance(opts: &Options) {
    let root = cache_root(opts);
    let store = match DiskStore::open(&root) {
        Ok(store) => store,
        Err(e) => {
            eprintln!("sweep: cannot open cache dir {}: {e}", root.display());
            std::process::exit(1);
        }
    };
    if opts.compact {
        match store.compact() {
            Ok(cs) => println!(
                "compacted {}: {} live entries into generation {} ({} -> {} segments, {} -> {} bytes, removed {} dead segments, {} tmp files)",
                root.display(),
                cs.live_entries,
                cs.generation,
                cs.segments_before,
                cs.segments_after,
                cs.bytes_before,
                cs.bytes_after,
                cs.removed_segments,
                cs.removed_tmp,
            ),
            Err(e) => {
                eprintln!("sweep: compaction of {} failed: {e}", root.display());
                std::process::exit(1);
            }
        }
        // Compaction copies records verbatim, so a persisted index's
        // content fingerprint stays valid — but rewrite it anyway so the
        // on-disk index is rebuilt deterministically alongside the new
        // generation (and carries fresh row/posting data if it was stale).
        match store.index_stats() {
            Ok(istats) if istats.files > 0 => match Catalog::open(&store) {
                Ok(catalog) => match catalog.persist(&store) {
                    Ok(_) => println!(
                        "rebuilt secondary index: {} rows, {} terms",
                        catalog.rows().len(),
                        catalog.terms(),
                    ),
                    Err(e) => {
                        eprintln!("sweep: index rebuild under {} failed: {e}", root.display());
                        std::process::exit(1);
                    }
                },
                Err(e) => {
                    eprintln!("sweep: index rebuild under {} failed: {e}", root.display());
                    std::process::exit(1);
                }
            },
            Ok(_) => {}
            Err(e) => {
                eprintln!("sweep: cannot inspect index under {}: {e}", root.display());
                std::process::exit(1);
            }
        }
    }
    if let Some(path) = &opts.import_segments {
        let file = match std::fs::File::open(path) {
            Ok(f) => f,
            Err(e) => {
                eprintln!("sweep: cannot open bundle {path}: {e}");
                std::process::exit(1);
            }
        };
        match store.import_segments(std::io::BufReader::new(file)) {
            Ok(stats) => println!(
                "imported {path} into {}: {} records ({} new, {} already present)",
                root.display(),
                stats.records,
                stats.imported,
                stats.skipped,
            ),
            Err(e) => {
                eprintln!("sweep: import of {path} failed: {e}");
                std::process::exit(1);
            }
        }
    }
    if let Some(path) = &opts.export_segments {
        let mut file = match std::fs::File::create(path) {
            Ok(f) => std::io::BufWriter::new(f),
            Err(e) => {
                eprintln!("sweep: cannot create bundle {path}: {e}");
                std::process::exit(1);
            }
        };
        match store.export_segments(&mut file) {
            Ok(records) => println!(
                "exported {} live records from {} to {path}",
                records,
                root.display()
            ),
            Err(e) => {
                eprintln!("sweep: export to {path} failed: {e}");
                let _ = std::fs::remove_file(path);
                std::process::exit(1);
            }
        }
    }
    let stats = store.stats();
    println!(
        "cache {}: entries {}, segments {}, generation {}, live-bytes {}, evicted {}",
        root.display(),
        stats.entries,
        stats.segments,
        stats.generation,
        stats.live_bytes,
        stats.evicted,
    );
    match store.index_stats() {
        Ok(istats) => println!(
            "index {}: files {}, rows {}, postings {}, buckets {}, {}",
            root.display(),
            istats.files,
            istats.rows,
            istats.postings,
            istats.buckets,
            istats.status.label(),
        ),
        Err(e) => {
            eprintln!("sweep: cannot inspect index under {}: {e}", root.display());
            std::process::exit(1);
        }
    }
}

/// `--plan FILE`: sign and write a shard manifest, run nothing.
fn run_plan(opts: &Options, path: &str) {
    let shards = opts.shards.unwrap_or(1);
    let manifest = match SweepManifest::plan(&opts.benchmarks, &opts.designs, &opts.scale, shards) {
        Ok(manifest) => manifest,
        Err(msg) => {
            eprintln!("sweep: {msg}");
            std::process::exit(2);
        }
    };
    let mut json = manifest.to_json();
    json.push('\n');
    if let Err(e) = std::fs::write(path, json) {
        eprintln!("sweep: cannot write manifest {path}: {e}");
        std::process::exit(1);
    }
    eprintln!(
        "sweep: planned {} cells across {} shards at {} scale into {path} (digest {})",
        manifest.cells, manifest.shards, manifest.scale, manifest.digest,
    );
    for shard in ShardSpec::all(manifest.shards) {
        eprintln!(
            "sweep:   shard {shard} owns {} rows — run: sweep run --manifest {path} --shard {shard} --out shard-{}.jsonl",
            manifest.shard_schedule(shard).len(),
            shard.index() + 1,
        );
    }
}

/// `--manifest FILE --shard i/N`: validate, then run one shard of the plan.
fn run_manifest_shard(opts: &Options, path: &str) {
    let shard = opts.shard.expect("checked at parse");
    let manifest = match SweepManifest::load(path) {
        Ok(manifest) => manifest,
        Err(msg) => {
            eprintln!("sweep: {msg}");
            std::process::exit(1);
        }
    };
    if shard.count() != manifest.shards {
        eprintln!(
            "sweep: --shard {shard} does not fit a manifest planned for {} shards",
            manifest.shards
        );
        std::process::exit(2);
    }
    let (grid, generator) = match manifest.validate_grid() {
        Ok(validated) => validated,
        Err(msg) => {
            eprintln!("sweep: manifest {path}: {msg}");
            std::process::exit(1);
        }
    };
    eprintln!(
        "sweep: manifest {path} validated — shard {shard} owns {} of {} cells ({} scale)",
        manifest.shard_schedule(shard).len(),
        manifest.cells,
        manifest.scale,
    );
    // The scale comes from the manifest, not from opts (where --scale is
    // rejected on this path), so the run summary must be told explicitly.
    run_grid(opts, &grid, &generator, &manifest.scale);
}

/// Runs the grid (or one shard of it) in this process.  `scale` is the
/// display name of `generator`'s scale — `opts.scale` on the plain paths,
/// the manifest's scale on `--manifest` runs.
fn run_grid(opts: &Options, grid: &GridSpec, generator: &GeneratorConfig, scale: &str) {
    let shard = opts.shard.unwrap_or_else(ShardSpec::whole);
    let mut builder = SweepEngine::builder(*generator).shard(shard);
    if let Some(n) = opts.workers {
        builder = builder.workers(n);
    }
    let root = cache_root(opts);
    if opts.disk_cache {
        builder = builder.store_dir(&root);
        if let Some(keep) = opts.keep_generations {
            builder = builder.kept_generations(keep);
        }
    }
    let engine = match builder.build() {
        Ok(engine) => engine,
        Err(e) => {
            eprintln!("sweep: cannot open cache dir {}: {e}", root.display());
            std::process::exit(1);
        }
    };

    // One enumeration feeds everything: the owned-cell count below, the
    // jobs the engine runs, and — in the coordinator — the key schedule
    // the merge validates against, so the three can never drift apart.
    let jobs = grid.jobs();
    let total = if shard.is_whole() {
        jobs.len()
    } else {
        jobs.iter()
            .filter(|job| shard.owns(job.key(engine.generator()).digest()))
            .count()
    };

    let mut sink = open_sink(opts.out.as_ref());

    acmp_obs::logline!(
        "sweep: {} benchmarks × {} designs = {} jobs{} on {} workers ({} scale{})",
        grid.benchmarks.len(),
        grid.designs.len(),
        grid.cells(),
        if shard.is_whole() {
            String::new()
        } else {
            format!(", shard {shard} owns {total}")
        },
        engine.threads(),
        scale,
        engine
            .store()
            .map(|s| format!(", cache {}", s.root().display()))
            .unwrap_or_else(|| ", no disk cache".to_string()),
    );

    let start = acmp_obs::Stopwatch::start();
    let done = std::sync::atomic::AtomicUsize::new(0);
    // Progress streams from the worker threads as each cell finishes; the
    // JSONL rows themselves are written afterwards in stable digest order.
    let outcome = engine.run_jobs_with(jobs, |row| {
        let n = done.fetch_add(1, std::sync::atomic::Ordering::Relaxed) + 1;
        if !opts.quiet {
            acmp_obs::logline!(
                "[{n}/{total}] {} × {}: {} cycles",
                row.benchmark,
                row.design,
                row.result.cycles
            );
        }
    });
    let wall = start.elapsed_secs();

    // Rows are emitted sorted by line bytes — digest order, since every
    // line starts with the fixed-width hex job key.  A shard's stream is
    // therefore a sorted sub-sequence of the unsharded output, which is
    // what lets the coordinator's validated k-way merge reproduce the
    // unsharded bytes exactly.
    let mut lines: Vec<String> = outcome.rows.iter().map(|row| row.to_jsonl()).collect();
    lines.sort_unstable();
    for line in &lines {
        if let Err(e) = writeln!(sink, "{line}") {
            die_on_write_error(&e);
        }
    }
    if let Err(e) = sink.flush() {
        die_on_write_error(&e);
    }

    let stats = engine.stats();
    acmp_obs::logline!(
        "sweep: done in {wall:.2}s — jobs {total}, workers {}, simulated {}, memory-hits {}, disk-hits {}, trace-gens {}, trace-disk-hits {}, steals {}, injector-pops {}",
        engine.threads(), stats.simulated, stats.memory_hits, stats.disk_hits,
        stats.trace_generated, stats.trace_disk_hits, outcome.pool.steals,
        outcome.pool.injector_pops,
    );
    if let Some(store) = stats.store {
        acmp_obs::logline!(
            "sweep: store — hits {}, misses {}, writes {}, entries {}, segments {}, generation {}",
            store.hits,
            store.misses,
            store.writes,
            store.entries,
            store.segments,
            store.generation
        );
    }
    write_obs_artifacts(opts, Vec::new(), &[]);
}

/// Spawns `shards` child shard processes over one store and merges their
/// row streams into output byte-identical to an unsharded run.
fn run_coordinator(opts: &Options, grid: &GridSpec, generator: &GeneratorConfig, shards: u32) {
    let keys: Vec<JobKey> = grid.jobs().iter().map(|job| job.key(generator)).collect();
    let schedule = shard_key_schedule(&keys, shards);

    // Shards split the host between them instead of each sizing its pool
    // to the whole machine; the split never hands a child zero workers,
    // even with more shards than cores.
    let budget = opts
        .workers
        .unwrap_or_else(|| WorkStealingPool::host_sized().workers());
    let per_shard = split_worker_budget(budget, shards);

    let store_root = opts.disk_cache.then(|| cache_root(opts));
    let exe = match std::env::current_exe() {
        Ok(path) => path,
        Err(e) => {
            eprintln!("sweep: cannot locate the sweep binary: {e}");
            std::process::exit(1);
        }
    };
    let shard_dir = std::env::temp_dir().join(format!("sweep-shards-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&shard_dir);
    if let Err(e) = std::fs::create_dir_all(&shard_dir) {
        eprintln!("sweep: cannot create {}: {e}", shard_dir.display());
        std::process::exit(1);
    }

    acmp_obs::logline!(
        "sweep: {} benchmarks × {} designs = {} jobs across {shards} shard processes, {per_shard} workers each ({} scale{})",
        grid.benchmarks.len(),
        grid.designs.len(),
        grid.cells(),
        opts.scale,
        store_root
            .as_ref()
            .map(|root| format!(", cache {}", root.display()))
            .unwrap_or_else(|| ", no disk cache".to_string()),
    );

    let start = acmp_obs::Stopwatch::start();
    let mut children: Vec<(u32, std::process::Child, PathBuf)> = Vec::new();
    for i in 1..=shards {
        let out_path = shard_dir.join(format!("shard-{i}.jsonl"));
        let mut cmd = std::process::Command::new(&exe);
        cmd.arg("run")
            .arg("--benchmarks")
            .arg(&opts.benchmarks)
            .arg("--designs")
            .arg(&opts.designs)
            .arg("--scale")
            .arg(&opts.scale)
            .arg("--shard")
            .arg(format!("{i}/{shards}"))
            .arg("--workers")
            .arg(per_shard.to_string())
            .arg("--out")
            .arg(&out_path)
            .stdin(std::process::Stdio::null())
            .stdout(std::process::Stdio::null())
            .stderr(std::process::Stdio::piped());
        match &store_root {
            Some(root) => {
                cmd.arg("--cache-dir").arg(root);
                if let Some(keep) = opts.keep_generations {
                    cmd.arg("--keep-generations").arg(keep.to_string());
                }
            }
            None => {
                cmd.arg("--no-disk-cache");
            }
        }
        if opts.quiet {
            cmd.arg("--quiet");
        }
        // Children write their own observability artifacts into the shard
        // directory; the coordinator folds them into its own after the
        // merge, tagging every child event `shard=i/N`.
        if opts.trace_out.is_some() {
            cmd.arg("--trace-out")
                .arg(shard_dir.join(format!("trace-{i}.jsonl")));
        }
        if opts.metrics_out.is_some() {
            cmd.arg("--metrics-out")
                .arg(shard_dir.join(format!("metrics-{i}.json")));
        }
        match cmd.spawn() {
            Ok(child) => children.push((i, child, out_path)),
            Err(e) => {
                eprintln!("sweep: cannot spawn shard {i}/{shards}: {e}");
                for (_, child, _) in &mut children {
                    let _ = child.kill();
                    let _ = child.wait();
                }
                let _ = std::fs::remove_dir_all(&shard_dir);
                std::process::exit(1);
            }
        }
    }

    // Relay every child's stderr (progress and summary lines) with a shard
    // prefix, live, while waiting for them all to finish.
    let mut relays = Vec::new();
    for (i, child, _) in &mut children {
        relays.push((*i, child.stderr.take().expect("stderr was piped")));
    }
    let mut failed = false;
    std::thread::scope(|scope| {
        for (i, stderr) in relays {
            scope.spawn(move || {
                // Tags every relayed line — panics and a killed child's
                // partial final line included — and flushes per line.
                let _ = acmp_sweep::relay_prefixed(
                    std::io::BufReader::new(stderr),
                    &mut std::io::stderr(),
                    &format!("[shard {i}/{shards}] "),
                );
            });
        }
        for (i, child, _) in &mut children {
            match child.wait() {
                Ok(status) if status.success() => {}
                Ok(status) => {
                    eprintln!("sweep: shard {i}/{shards} failed: {status}");
                    failed = true;
                }
                Err(e) => {
                    eprintln!("sweep: waiting for shard {i}/{shards} failed: {e}");
                    failed = true;
                }
            }
        }
    });
    if failed {
        let _ = std::fs::remove_dir_all(&shard_dir);
        std::process::exit(1);
    }

    let mut streams = Vec::with_capacity(children.len());
    for (i, _, path) in &children {
        match std::fs::File::open(path) {
            Ok(f) => streams.push(std::io::BufReader::new(f)),
            Err(e) => {
                eprintln!(
                    "sweep: shard {i}/{shards} left no row stream at {}: {e}",
                    path.display()
                );
                let _ = std::fs::remove_dir_all(&shard_dir);
                std::process::exit(1);
            }
        }
    }

    // Merge into memory first: the merge validates every stream against
    // the expected key schedule, and the `--out` target (possibly a
    // previous run's good output) must not even be opened — let alone
    // truncated — unless every stream checked out.  Any error down here is
    // a read-side failure (corrupt stream or shard-file I/O): report it
    // and keep the shard streams on disk for post-mortem.
    let mut merged: Vec<u8> = Vec::new();
    let rows = match merge_shard_streams(streams, &schedule, &mut merged) {
        Ok(rows) => rows,
        Err(e @ MergeError::Corrupt { .. }) => {
            eprintln!("sweep: merge failed: {e}");
            eprintln!("sweep: shard streams kept in {}", shard_dir.display());
            std::process::exit(1);
        }
        Err(MergeError::Io(e)) => {
            eprintln!("sweep: reading a shard stream failed: {e}");
            eprintln!("sweep: shard streams kept in {}", shard_dir.display());
            std::process::exit(1);
        }
    };

    // Fold the children's observability artifacts in *before* the shard
    // directory goes away.  A child that ran can't have skipped writing
    // them, so an unreadable artifact is a real failure — report it and
    // keep the directory for post-mortem.
    let mut child_events: Vec<serde::Value> = Vec::new();
    let mut child_metrics: Vec<acmp_obs::MetricsSnapshot> = Vec::new();
    for i in 1..=shards {
        if opts.trace_out.is_some() {
            let path = shard_dir.join(format!("trace-{i}.jsonl"));
            let values = std::fs::read_to_string(&path)
                .map_err(|e| e.to_string())
                .and_then(|text| acmp_obs::read_trace_values(&text));
            match values {
                Ok(mut values) => {
                    let tag = format!("{i}/{shards}");
                    for value in &mut values {
                        acmp_obs::tag_shard(value, &tag);
                    }
                    child_events.extend(values);
                }
                Err(msg) => {
                    eprintln!("sweep: shard {i}/{shards} trace {}: {msg}", path.display());
                    eprintln!("sweep: shard artifacts kept in {}", shard_dir.display());
                    std::process::exit(1);
                }
            }
        }
        if opts.metrics_out.is_some() {
            let path = shard_dir.join(format!("metrics-{i}.json"));
            let snapshot = std::fs::read_to_string(&path)
                .map_err(|e| e.to_string())
                .and_then(|text| {
                    serde_json::from_str::<serde::Value>(&text).map_err(|e| e.to_string())
                })
                .and_then(|value| acmp_obs::MetricsSnapshot::from_value(&value));
            match snapshot {
                Ok(snapshot) => child_metrics.push(snapshot),
                Err(msg) => {
                    eprintln!(
                        "sweep: shard {i}/{shards} metrics {}: {msg}",
                        path.display()
                    );
                    eprintln!("sweep: shard artifacts kept in {}", shard_dir.display());
                    std::process::exit(1);
                }
            }
        }
    }
    let _ = std::fs::remove_dir_all(&shard_dir);

    let mut sink = open_sink(opts.out.as_ref());
    if let Err(e) = sink.write_all(&merged).and_then(|()| sink.flush()) {
        die_on_write_error(&e);
    }
    acmp_obs::logline!(
        "sweep: merged {shards} shard streams — {rows} rows in {:.2}s",
        start.elapsed_secs()
    );
    write_obs_artifacts(opts, child_events, &child_metrics);
}

/// `sweep merge`: recombine gathered per-shard JSONL files offline.
fn run_merge(args: &[String]) {
    let mut manifest_path: Option<String> = None;
    let mut out: Option<String> = None;
    let mut files: Vec<String> = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| match it.next() {
            Some(v) => v.clone(),
            None => {
                eprintln!("sweep merge: {name} needs a value\n\n{MERGE_USAGE}");
                std::process::exit(2);
            }
        };
        match arg.as_str() {
            "--manifest" => manifest_path = Some(value("--manifest")),
            "--out" => out = Some(value("--out")),
            "--help" | "-h" => {
                eprintln!("{MERGE_USAGE}");
                std::process::exit(0);
            }
            flag if flag.starts_with("--") => {
                eprintln!("sweep merge: unknown option `{flag}`\n\n{MERGE_USAGE}");
                std::process::exit(2);
            }
            file => files.push(file.to_string()),
        }
    }
    let Some(manifest_path) = manifest_path else {
        eprintln!("sweep merge: a --manifest is required\n\n{MERGE_USAGE}");
        std::process::exit(2);
    };
    let manifest = match SweepManifest::load(&manifest_path) {
        Ok(manifest) => manifest,
        Err(msg) => {
            eprintln!("sweep merge: {msg}");
            std::process::exit(1);
        }
    };
    if files.len() > manifest.schedule.len() {
        eprintln!(
            "sweep merge: {} shard files supplied for a {}-shard plan",
            files.len(),
            manifest.shards
        );
        std::process::exit(2);
    }

    // Validate every stream before writing anything, so one pass reports
    // *all* the missing / short / corrupt shards — the operator re-runs the
    // stragglers named here, not one per attempt.
    let mut buffered: Vec<Vec<String>> = Vec::with_capacity(manifest.schedule.len());
    let mut unusable = 0u32;
    for (i, schedule) in manifest.schedule.iter().enumerate() {
        let slot = ShardSpec::all(manifest.shards)
            .nth(i)
            .expect("schedule length was verified");
        // Slot i is argument i, unconditionally — even a shard that owns
        // nothing needs its (empty) file supplied, because accepting an
        // omitted middle slot would silently shift every later file into
        // the wrong slot and misattribute the resulting failures.
        let outcome: Result<Vec<String>, String> = match files.get(i) {
            None => Err(format!(
                "missing — no stream supplied for its {} scheduled rows; run: sweep run \
                 --manifest {manifest_path} --shard {slot} --out shard-{}.jsonl",
                schedule.len(),
                i + 1,
            )),
            Some(path) => match std::fs::File::open(path) {
                Err(e) => Err(format!("missing — cannot open {path}: {e}")),
                Ok(file) => {
                    match validate_shard_stream(i + 1, std::io::BufReader::new(file), schedule) {
                        Ok(rows) => Ok(rows),
                        Err(MergeError::Io(e)) => Err(format!("unreadable — {path}: {e}")),
                        Err(MergeError::Corrupt { message, .. }) => {
                            let kind = if message.contains("truncated") {
                                "short"
                            } else {
                                "corrupt"
                            };
                            Err(format!("{kind} — {message} ({path}); re-run this shard"))
                        }
                    }
                }
            },
        };
        match outcome {
            Ok(rows) => {
                eprintln!(
                    "sweep merge: shard {slot}: ok — {} of {} scheduled rows",
                    rows.len(),
                    schedule.len()
                );
                buffered.push(rows);
            }
            Err(msg) => {
                eprintln!("sweep merge: shard {slot}: {msg}");
                unusable += 1;
                buffered.push(Vec::new());
            }
        }
    }
    if unusable > 0 {
        eprintln!(
            "sweep merge: {unusable} of {} shard streams unusable; wrote nothing",
            manifest.shards
        );
        std::process::exit(1);
    }

    // Every stream checked out; only now may the sink be opened.
    let mut merged: Vec<u8> = Vec::new();
    let rows = merge_validated(&buffered, &mut merged).expect("writing to memory cannot fail");
    let mut sink = open_sink(out.as_ref());
    if let Err(e) = sink.write_all(&merged).and_then(|()| sink.flush()) {
        die_on_write_error(&e);
    }
    eprintln!(
        "sweep merge: merged {} shard streams — {rows} rows, byte-identical to an unsharded run",
        manifest.shards
    );
}
