//! `sweep` — run a (benchmark × design point) grid on the sweep engine.
//!
//! ```text
//! sweep --grid fig09                         # quick benchmarks × Fig. 9 designs
//! sweep --benchmarks all --designs fig12 --workers 8
//! sweep --benchmarks cg,lu --designs baseline,proposed --out rows.jsonl
//! sweep --grid fig07 --scale paper --cache-dir /tmp/sweep-cache
//! sweep --compact                            # merge the store into one generation
//! sweep --cache-stats                        # inspect the store, run nothing
//! ```
//!
//! Result rows stream as JSONL (stdout by default, `--out FILE` otherwise);
//! progress and the final summary go to stderr, so piping stdout yields
//! pure JSONL.  The summary includes the cache counters; a second identical
//! invocation with the same `--cache-dir` reports `disk-hits > 0`, zero
//! simulations, zero trace generations, and produces byte-identical rows.
//!
//! `--compact` and `--cache-stats` are maintenance modes: they operate on
//! the store named by `--cache-dir` (or the default) and exit without
//! running a grid.

use acmp_sweep::{DiskStore, GridSpec, SweepEngine};
use hpc_workloads::GeneratorConfig;
use std::io::Write;

const USAGE: &str = "\
usage: sweep [options]
  --benchmarks SPEC   all | quick | comma list of names     (default: quick)
  --designs SPEC      design spec (see below)               (default: baseline,proposed)
  --grid PRESET       shorthand for --designs PRESET
  --workers N         pool threads                          (default: nproc)
  --scale S           quick | paper trace scale             (default: quick)
  --out FILE          write JSONL rows to FILE              (default: stdout)
  --cache-dir DIR     on-disk result store                  (default: target/sweep-cache)
  --no-disk-cache     disable the on-disk store
  --compact           compact the store into one generation, then exit
  --cache-stats       print store contents (entries/segments/bytes), then exit
  --quiet             suppress per-job progress lines
  --help              this text

design specs: baseline proposed all-shared all-shared-single worker-shared-32k
              naive:N  lb:N  shared:KiB:LB:single|double  fig07..fig13 presets";

struct Options {
    benchmarks: String,
    designs: String,
    workers: Option<usize>,
    scale: String,
    out: Option<String>,
    cache_dir: Option<String>,
    disk_cache: bool,
    compact: bool,
    cache_stats: bool,
    quiet: bool,
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        benchmarks: "quick".to_string(),
        designs: "baseline,proposed".to_string(),
        workers: None,
        scale: "quick".to_string(),
        out: None,
        cache_dir: None,
        disk_cache: true,
        compact: false,
        cache_stats: false,
        quiet: false,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match arg.as_str() {
            "--benchmarks" => opts.benchmarks = value("--benchmarks")?,
            "--designs" => opts.designs = value("--designs")?,
            "--grid" => opts.designs = value("--grid")?,
            "--workers" => {
                let v = value("--workers")?;
                opts.workers = Some(
                    v.parse::<usize>()
                        .ok()
                        .filter(|&n| n >= 1)
                        .ok_or_else(|| format!("bad worker count `{v}`"))?,
                );
            }
            "--scale" => {
                let v = value("--scale")?;
                if v != "quick" && v != "paper" {
                    return Err(format!("bad scale `{v}` (quick|paper)"));
                }
                opts.scale = v;
            }
            "--out" => opts.out = Some(value("--out")?),
            "--cache-dir" => opts.cache_dir = Some(value("--cache-dir")?),
            "--no-disk-cache" => opts.disk_cache = false,
            "--compact" => opts.compact = true,
            "--cache-stats" => opts.cache_stats = true,
            "--quiet" => opts.quiet = true,
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown option `{other}`")),
        }
    }
    Ok(opts)
}

fn generator(scale: &str) -> GeneratorConfig {
    match scale {
        "paper" => GeneratorConfig::paper(),
        _ => GeneratorConfig {
            num_workers: 4,
            parallel_instructions_per_thread: 20_000,
            num_phases: 2,
            seed: 0xC0FF_EE00,
        },
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_args(&args) {
        Ok(opts) => opts,
        Err(msg) => {
            if msg.is_empty() {
                eprintln!("{USAGE}");
                std::process::exit(0);
            }
            eprintln!("sweep: {msg}\n\n{USAGE}");
            std::process::exit(2);
        }
    };

    // Store maintenance modes: no grid, no engine.
    if opts.compact || opts.cache_stats {
        let root = opts
            .cache_dir
            .clone()
            .map(std::path::PathBuf::from)
            .unwrap_or_else(DiskStore::default_root);
        let store = match DiskStore::open(&root) {
            Ok(store) => store,
            Err(e) => {
                eprintln!("sweep: cannot open cache dir {}: {e}", root.display());
                std::process::exit(1);
            }
        };
        if opts.compact {
            match store.compact() {
                Ok(cs) => println!(
                    "compacted {}: {} live entries into generation {} ({} -> {} segments, {} -> {} bytes, removed {} dead segments, {} tmp files)",
                    root.display(),
                    cs.live_entries,
                    cs.generation,
                    cs.segments_before,
                    cs.segments_after,
                    cs.bytes_before,
                    cs.bytes_after,
                    cs.removed_segments,
                    cs.removed_tmp,
                ),
                Err(e) => {
                    eprintln!("sweep: compaction of {} failed: {e}", root.display());
                    std::process::exit(1);
                }
            }
        }
        let stats = store.stats();
        println!(
            "cache {}: entries {}, segments {}, generation {}, live-bytes {}, evicted {}",
            root.display(),
            stats.entries,
            stats.segments,
            stats.generation,
            stats.live_bytes,
            stats.evicted,
        );
        return;
    }

    let grid = match GridSpec::parse(&opts.benchmarks, &opts.designs) {
        Ok(grid) => grid,
        Err(msg) => {
            eprintln!("sweep: {msg}");
            std::process::exit(2);
        }
    };

    let mut engine = SweepEngine::new(generator(&opts.scale));
    if let Some(n) = opts.workers {
        engine = engine.with_threads(n);
    }
    if opts.disk_cache {
        let root = opts
            .cache_dir
            .clone()
            .map(std::path::PathBuf::from)
            .unwrap_or_else(DiskStore::default_root);
        engine = match engine.with_disk_store_limited(&root, DiskStore::default_generation_limit())
        {
            Ok(engine) => engine,
            Err(e) => {
                eprintln!("sweep: cannot open cache dir {}: {e}", root.display());
                std::process::exit(1);
            }
        };
    }

    let mut sink: Box<dyn Write> = match &opts.out {
        Some(path) => match std::fs::File::create(path) {
            Ok(f) => Box::new(std::io::BufWriter::new(f)),
            Err(e) => {
                eprintln!("sweep: cannot create {path}: {e}");
                std::process::exit(1);
            }
        },
        None => Box::new(std::io::BufWriter::new(std::io::stdout())),
    };

    eprintln!(
        "sweep: {} benchmarks × {} designs = {} jobs on {} workers ({} scale{})",
        grid.benchmarks.len(),
        grid.designs.len(),
        grid.cells(),
        engine.threads(),
        opts.scale,
        engine
            .store()
            .map(|s| format!(", cache {}", s.root().display()))
            .unwrap_or_else(|| ", no disk cache".to_string()),
    );

    let start = std::time::Instant::now();
    let total = grid.cells();
    let done = std::sync::atomic::AtomicUsize::new(0);
    // Progress streams from the worker threads as each cell finishes; the
    // JSONL rows themselves are written afterwards in stable input order.
    let outcome = engine.run_grid_with(&grid.benchmarks, &grid.designs, |row| {
        let n = done.fetch_add(1, std::sync::atomic::Ordering::Relaxed) + 1;
        if !opts.quiet {
            eprintln!(
                "[{n}/{total}] {} × {}: {} cycles",
                row.benchmark, row.design, row.result.cycles
            );
        }
    });
    let wall = start.elapsed().as_secs_f64();

    for row in &outcome.rows {
        if let Err(e) = writeln!(sink, "{}", row.to_jsonl()) {
            eprintln!("sweep: write failed: {e}");
            std::process::exit(1);
        }
    }
    if let Err(e) = sink.flush() {
        eprintln!("sweep: flush failed: {e}");
        std::process::exit(1);
    }

    let stats = engine.stats();
    eprintln!(
        "sweep: done in {wall:.2}s — jobs {total}, simulated {}, memory-hits {}, disk-hits {}, trace-gens {}, trace-disk-hits {}, steals {}, injector-pops {}",
        stats.simulated, stats.memory_hits, stats.disk_hits, stats.trace_generated,
        stats.trace_disk_hits, outcome.pool.steals, outcome.pool.injector_pops,
    );
    if let Some(store) = stats.store {
        eprintln!(
            "sweep: store — hits {}, misses {}, writes {}, entries {}, segments {}, generation {}",
            store.hits, store.misses, store.writes, store.entries, store.segments, store.generation
        );
    }
}
