//! The typed catalog: a [`ResultRow`] view over the store's result records.
//!
//! Result records (canonical keys of the `{"generator":…,"benchmark":…,
//! "design":…}` shape the sweep engine mints) are projected into a
//! first-class row schema: benchmark, design family (derived from the
//! design's sharing mode), design name, scale (the stable digest of the
//! generator config) and every numeric metric of the stored value,
//! flattened with dotted paths (`cycles`, `bus.transactions`, …).  Trace
//! records and foreign keys are excluded.
//!
//! A [`Catalog`] is opened against a [`StoreSnapshot`], so its row set is
//! one coherent generation view.  Opening first tries the persisted
//! secondary index (see [`crate::index`]): when the index's fingerprint
//! matches the snapshot's live result set, rows and postings are loaded
//! without touching a single segment value; otherwise the catalog is built
//! by scanning the snapshot's record values (each fetch counted by
//! `acmp_obs::names::STORE_VALUE_READS`) and can then be
//! [persisted](Catalog::persist) for the next opener.

use crate::index;
use crate::query::{Filter, Query, QueryHit};
use crate::snapshot::StoreSnapshot;
use crate::stable_hash;
use crate::store::DiskStore;
use serde::Value;
use std::collections::BTreeMap;
use std::io;

/// Whether a canonical key names a sweep *result* record (as opposed to a
/// trace set or a foreign key).  Result keys are canonical JSON whose first
/// field is the generator config, which is exactly how the engine's
/// `JobKey` lays them out.
#[must_use]
pub fn is_result_key(canonical: &str) -> bool {
    canonical.starts_with("{\"generator\":")
}

/// One result record, projected into the catalog schema.
#[derive(Debug, Clone, PartialEq)]
pub struct ResultRow {
    /// The record's key digest (the store's address for it).
    pub digest: u64,
    /// The benchmark, as serialised in the key (e.g. `Cg`).
    pub benchmark: String,
    /// The design family, derived from the design's sharing mode
    /// (`private`, `worker-shared`, `all-shared`).
    pub family: String,
    /// The design point's name (e.g. `baseline-2lb`).
    pub design: String,
    /// The scale: the stable digest (16-hex) of the generator config
    /// embedded in the key.
    pub scale: String,
    /// Numeric metrics of the stored value, flattened with dotted paths and
    /// sorted by name.
    pub metrics: Vec<(String, Value)>,
}

impl ResultRow {
    /// The key digest formatted the way the store names entries.
    #[must_use]
    pub fn key_hex(&self) -> String {
        stable_hash::hex(self.digest)
    }

    /// Looks up a metric by its flattened name.
    #[must_use]
    pub fn metric(&self, name: &str) -> Option<&Value> {
        self.metrics
            .binary_search_by(|(n, _)| n.as_str().cmp(name))
            .ok()
            .map(|i| &self.metrics[i].1)
    }

    /// A metric's numeric value as `f64`.
    #[must_use]
    pub fn metric_f64(&self, name: &str) -> Option<f64> {
        self.metric(name).and_then(number)
    }
}

/// The numeric interpretation of a metric [`Value`].
#[must_use]
pub fn number(v: &Value) -> Option<f64> {
    match v {
        Value::UInt(n) => Some(*n as f64),
        Value::Int(n) => Some(*n as f64),
        Value::Float(f) if f.is_finite() => Some(*f),
        _ => None,
    }
}

/// How a catalog came to be: loaded from a fresh persisted index, or built
/// by scanning segment values.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CatalogSource {
    /// Loaded from a persisted index segment whose fingerprint matched the
    /// key index — zero segment value reads.
    Index,
    /// Built by scanning record values (no index, or a stale one).
    Scan,
}

/// The typed, queryable view over a snapshot's result records: digest-sorted
/// [`ResultRow`]s plus the term postings the query planner intersects.
#[derive(Debug)]
pub struct Catalog {
    rows: Vec<ResultRow>,
    /// Term → sorted row ordinals.  Terms are the equality facets
    /// (`benchmark=cg`, `family=private`, `design=…`, `scale=…`) and the
    /// bucketed metric facets (`cycles#20`).
    postings: BTreeMap<String, Vec<u32>>,
    fingerprint: u64,
    source: CatalogSource,
}

impl Catalog {
    /// Opens the catalog for `store`: snapshots the live record set, then
    /// loads the persisted secondary index if its fingerprint matches, or
    /// builds rows by scanning the snapshot's record values otherwise.
    ///
    /// # Errors
    ///
    /// Returns the I/O error if the snapshot cannot be taken or a pinned
    /// record cannot be read back during a build.
    pub fn open(store: &DiskStore) -> io::Result<Catalog> {
        let snapshot = store.snapshot()?;
        Self::open_at(store, &snapshot)
    }

    /// [`open`](Catalog::open) against an already-taken snapshot.
    ///
    /// # Errors
    ///
    /// Returns the I/O error if a pinned record cannot be read back during
    /// a build.
    pub fn open_at(store: &DiskStore, snapshot: &StoreSnapshot) -> io::Result<Catalog> {
        let fingerprint = index::snapshot_fingerprint(snapshot);
        if let Some((rows, postings)) = index::load_index(store.root(), fingerprint) {
            return Ok(Catalog {
                rows,
                postings,
                fingerprint,
                source: CatalogSource::Index,
            });
        }
        let rows = Self::scan_rows(snapshot)?;
        let postings = index::build_postings(&rows);
        Ok(Catalog {
            rows,
            postings,
            fingerprint,
            source: CatalogSource::Scan,
        })
    }

    /// Builds the row set by reading every result record's value out of the
    /// snapshot — the cold path the persisted index exists to avoid.
    fn scan_rows(snapshot: &StoreSnapshot) -> io::Result<Vec<ResultRow>> {
        let mut span = acmp_obs::span!(acmp_obs::names::STORE_INDEX_BUILD);
        let mut rows = Vec::new();
        for (i, meta) in snapshot.iter().enumerate() {
            if !is_result_key(meta.canonical) {
                continue;
            }
            let digest = meta.digest;
            let line = snapshot.read_record(i)?;
            let Some((canonical, _, value_json)) = crate::segment::scan_record_parts(&line) else {
                continue;
            };
            if let Some(row) = row_from_record(digest, &canonical, value_json) {
                rows.push(row);
            }
        }
        span.record_field("rows", rows.len() as u64);
        Ok(rows)
    }

    /// The digest-sorted result rows.
    #[must_use]
    pub fn rows(&self) -> &[ResultRow] {
        &self.rows
    }

    /// Term postings (sorted row ordinals per term).
    #[must_use]
    pub(crate) fn postings(&self) -> &BTreeMap<String, Vec<u32>> {
        &self.postings
    }

    /// Number of distinct posting terms (facet values plus metric buckets).
    #[must_use]
    pub fn terms(&self) -> usize {
        self.postings.len()
    }

    /// The key-index fingerprint this catalog corresponds to.
    #[must_use]
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// Whether this catalog was served from the persisted index or built by
    /// a value scan.
    #[must_use]
    pub fn source(&self) -> CatalogSource {
        self.source
    }

    /// Persists this catalog as an index segment under the store directory
    /// (and retires older index segments), so the next opener with the same
    /// live result set answers without any value scan.
    ///
    /// # Errors
    ///
    /// Returns the I/O error if the index segment cannot be written or
    /// renamed into place.
    pub fn persist(&self, store: &DiskStore) -> io::Result<std::path::PathBuf> {
        index::write_index(store, self)
    }

    /// Answers `query` entirely from the catalog: postings intersection for
    /// the facet filters, bucket pruning plus exact comparison for metric
    /// filters, then top-k ranking by the requested metric.
    #[must_use]
    pub fn query(&self, query: &Query) -> Vec<QueryHit<'_>> {
        crate::query::run(self, query)
    }

    /// The metric names at least one row carries with a numeric value,
    /// sorted and deduplicated — the vocabulary `--by` and metric filters
    /// draw from.
    #[must_use]
    pub fn known_metrics(&self) -> Vec<&str> {
        let mut names: Vec<&str> = self
            .rows
            .iter()
            .flat_map(|row| row.metrics.iter())
            .filter(|(_, value)| number(value).is_some())
            .map(|(name, _)| name.as_str())
            .collect();
        names.sort_unstable();
        names.dedup();
        names
    }

    /// Checks that `query`'s ranking metric and every metric-comparison
    /// filter name a metric some row actually carries.  Without this, a
    /// typo like `--by cylces` silently ranks zero rows and reads as an
    /// empty design space.  An empty catalog validates trivially: there is
    /// no vocabulary to check against, and "0 rows" is already the honest
    /// answer.
    ///
    /// # Errors
    ///
    /// Returns a message naming the unknown metric and listing the known
    /// metric names.
    pub fn validate_query(&self, query: &Query) -> Result<(), String> {
        if self.rows.is_empty() {
            return Ok(());
        }
        let known = self.known_metrics();
        let check = |metric: &str| {
            if known.binary_search(&metric).is_ok() {
                Ok(())
            } else {
                Err(format!(
                    "unknown metric `{metric}` (no row carries it); known metrics: {}",
                    known.join(", ")
                ))
            }
        };
        check(&query.by)?;
        for filter in &query.filters {
            if let Filter::Metric { metric, .. } = filter {
                check(metric)?;
            }
        }
        Ok(())
    }
}

/// Projects one verified result record into a [`ResultRow`].  `None` when
/// the key or value does not have the expected shape (a foreign record in a
/// shared store) — the row is then simply not part of the catalog.
#[must_use]
pub fn row_from_record(digest: u64, canonical: &str, value_json: &str) -> Option<ResultRow> {
    let key: Value = serde_json::from_str(canonical).ok()?;
    let key_fields = key.as_object()?;
    let generator = serde::get_field(key_fields, "generator").ok()?;
    let benchmark = serde::get_field(key_fields, "benchmark")
        .ok()?
        .as_str()?
        .to_string();
    let design = serde::get_field(key_fields, "design").ok()?.as_object()?;
    let design_name = serde::get_field(design, "name").ok()?.as_str()?.to_string();
    let family = family_of(serde::get_field(design, "sharing").ok()?)?;
    let scale = stable_hash::hex(stable_hash::fnv1a(generator.to_string().as_bytes()));

    let value: Value = serde_json::from_str(value_json).ok()?;
    let mut metrics = Vec::new();
    flatten_metrics("", &value, &mut metrics);
    if metrics.is_empty() {
        return None;
    }
    metrics.sort_by(|(a, _), (b, _)| a.cmp(b));
    Some(ResultRow {
        digest,
        benchmark,
        family,
        design: design_name,
        scale,
        metrics,
    })
}

/// Derives the design family from a serialised sharing mode: the enum
/// variant name (plain string for unit variants, single tag for struct
/// variants), kebab-cased — `Private` → `private`, `WorkerShared {…}` →
/// `worker-shared`.
fn family_of(sharing: &Value) -> Option<String> {
    let variant = match sharing {
        Value::String(s) => s.as_str(),
        Value::Object(fields) if fields.len() == 1 => fields[0].0.as_str(),
        _ => return None,
    };
    let mut out = String::with_capacity(variant.len() + 2);
    for (i, c) in variant.chars().enumerate() {
        if c.is_ascii_uppercase() {
            if i > 0 {
                out.push('-');
            }
            out.push(c.to_ascii_lowercase());
        } else {
            out.push(c);
        }
    }
    Some(out)
}

/// Flattens every numeric leaf of a value into dotted-path metrics.
/// Arrays are skipped (per-core vectors would explode the schema); nested
/// objects recurse.
fn flatten_metrics(prefix: &str, value: &Value, out: &mut Vec<(String, Value)>) {
    match value {
        Value::UInt(_) | Value::Int(_) | Value::Float(_)
            if !prefix.is_empty() && number(value).is_some() =>
        {
            out.push((prefix.to_string(), value.clone()));
        }
        Value::Object(fields) => {
            for (name, v) in fields {
                let path = if prefix.is_empty() {
                    name.clone()
                } else {
                    format!("{prefix}.{name}")
                };
                flatten_metrics(&path, v, out);
            }
        }
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result_canonical(benchmark: &str, design: &str, sharing: &str) -> String {
        format!(
            "{{\"generator\":{{\"seed\":7}},\"benchmark\":\"{benchmark}\",\
             \"design\":{{\"name\":\"{design}\",\"sharing\":{sharing}}}}}"
        )
    }

    #[test]
    fn result_keys_are_recognised() {
        assert!(is_result_key(&result_canonical(
            "Cg",
            "baseline",
            "\"Private\""
        )));
        assert!(!is_result_key("{\"kind\":\"traces\",\"generator\":{}}"));
        assert!(!is_result_key("arbitrary test key"));
    }

    #[test]
    fn rows_project_the_record_schema() {
        let canonical = result_canonical(
            "Cg",
            "shared-64k",
            "{\"WorkerShared\":{\"cores_per_cache\":8}}",
        );
        let value = "{\"cycles\":100,\"bus\":{\"transactions\":7},\"cores\":[1,2],\"name\":\"x\"}";
        let row = row_from_record(42, &canonical, value).expect("a well-formed record");
        assert_eq!(row.benchmark, "Cg");
        assert_eq!(row.family, "worker-shared");
        assert_eq!(row.design, "shared-64k");
        assert_eq!(row.scale.len(), 16);
        assert_eq!(
            row.metrics,
            vec![
                ("bus.transactions".to_string(), Value::UInt(7)),
                ("cycles".to_string(), Value::UInt(100)),
            ],
            "arrays and strings are not metrics"
        );
        assert_eq!(row.metric_f64("cycles"), Some(100.0));
        assert_eq!(row.metric("absent"), None);
    }

    #[test]
    fn families_kebab_case_the_variant_name() {
        assert_eq!(
            family_of(&Value::String("Private".into())).as_deref(),
            Some("private")
        );
        assert_eq!(
            family_of(&Value::String("AllShared".into())).as_deref(),
            Some("all-shared")
        );
        let tagged = Value::Object(vec![("WorkerShared".to_string(), Value::Null)]);
        assert_eq!(family_of(&tagged).as_deref(), Some("worker-shared"));
        assert_eq!(family_of(&Value::Null), None);
    }

    #[test]
    fn malformed_records_are_skipped_not_fatal() {
        assert!(row_from_record(1, "not json", "{}").is_none());
        assert!(row_from_record(1, "{\"generator\":1}", "{\"cycles\":1}").is_none());
        let canonical = result_canonical("Cg", "baseline", "\"Private\"");
        assert!(row_from_record(1, &canonical, "\"no metrics\"").is_none());
    }
}
