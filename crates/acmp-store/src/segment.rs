//! Packed segment files: the on-disk unit of the generational store.
//!
//! A segment is an append-only text file holding one *record* per line.
//! Each record is a self-verifying envelope:
//!
//! ```text
//! {"key":"<escaped canonical key>","crc":"<16-hex fnv1a>","value":<json>}
//! ```
//!
//! The layout is produced only by [`encode_record`], so readers may rely on
//! the exact field order and the absence of whitespace: [`scan_record`]
//! recovers the canonical key and verifies the value checksum *without*
//! parsing the value, which keeps index construction at store open cheap
//! even when segments hold multi-megabyte trace entries.  A torn tail (a
//! crash mid-append) or a corrupted line fails the scan and is skipped —
//! never served.
//!
//! Segment files are named `seg-<generation:08>-<pid>-<seq:04>.seg`.  The
//! generation number is the store's eviction and compaction unit: every
//! store handle appends into a fresh generation, and
//! [`compact`](crate::store::DiskStore::compact) merges all live records
//! into the next one.  The `<pid>-<seq>` suffix makes names unique across
//! concurrently writing processes, so no two writers ever share a file.

use crate::stable_hash;

/// Extension of live segment files.
pub const SEGMENT_EXT: &str = "seg";

/// Extension of in-flight temporary files (compaction output before its
/// rename).  Orphans with this extension are junk from a crashed writer and
/// are removed by [`compact`](crate::store::DiskStore::compact).
pub const TMP_EXT: &str = "tmp";

/// Target size of one segment file.  Appends roll to a new segment once the
/// active one crosses this, so single files stay comfortably mappable and
/// compaction can stream them.
pub const SEGMENT_TARGET_BYTES: u64 = 8 * 1024 * 1024;

/// Magic token opening an export bundle (`sweep store export`).  The token
/// predates the store's extraction into its own crate and is kept verbatim
/// so bundles interchange across versions.
pub const EXPORT_MAGIC: &str = "acmp-sweep-segments";

/// Export bundle format version this binary reads and writes.
pub const EXPORT_FORMAT_VERSION: u32 = 1;

/// Encodes the header line of an export bundle (no trailing newline):
/// magic, format version, record count, and an FNV-1a digest over all the
/// record bytes that follow (each record line including its newline).  The
/// digest catches whole-record truncation, which per-record checksums
/// cannot see.
#[must_use]
pub fn encode_export_header(records: u64, digest: u64) -> String {
    format!(
        "{EXPORT_MAGIC} {EXPORT_FORMAT_VERSION} {records} {}",
        crate::stable_hash::hex(digest)
    )
}

/// Parses an export bundle header line into (format version, record count,
/// body digest); `None` for anything that is not one.
#[must_use]
pub fn parse_export_header(line: &str) -> Option<(u32, u64, u64)> {
    let mut parts = line.split(' ');
    if parts.next() != Some(EXPORT_MAGIC) {
        return None;
    }
    let format = parts.next()?.parse().ok()?;
    let records = parts.next()?.parse().ok()?;
    let digest_hex = parts.next()?;
    if digest_hex.len() != 16 || parts.next().is_some() {
        return None;
    }
    let digest = u64::from_str_radix(digest_hex, 16).ok()?;
    Some((format, records, digest))
}

/// Parsed identity of a segment file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct SegmentName {
    /// The generation the segment belongs to (major sort key).
    pub generation: u64,
    /// Process that wrote the segment.
    pub pid: u32,
    /// Per-process sequence number.
    pub seq: u64,
}

impl SegmentName {
    /// The file name this identity encodes to.
    #[must_use]
    pub fn file_name(&self) -> String {
        format!(
            "seg-{:08}-{}-{:04}.{SEGMENT_EXT}",
            self.generation, self.pid, self.seq
        )
    }

    /// Parses a segment file name; `None` for anything that is not one.
    #[must_use]
    pub fn parse(name: &str) -> Option<Self> {
        let stem = name
            .strip_prefix("seg-")?
            .strip_suffix(&format!(".{SEGMENT_EXT}"))?;
        let mut parts = stem.split('-');
        let generation = parts.next()?.parse().ok()?;
        let pid = parts.next()?.parse().ok()?;
        let seq = parts.next()?.parse().ok()?;
        if parts.next().is_some() {
            return None;
        }
        Some(SegmentName {
            generation,
            pid,
            seq,
        })
    }
}

/// Lists every segment file under `dir` with its parsed name, sorted by
/// (generation, pid, seq) — the store's deterministic replay order, which
/// decides which duplicate of a key wins.  Non-segment entries are skipped.
/// Shared by the store's open scan and its cross-process index refresh.
///
/// # Errors
///
/// Returns the I/O error if the directory cannot be read.
pub fn list_segments(
    dir: &std::path::Path,
) -> std::io::Result<Vec<(SegmentName, std::path::PathBuf)>> {
    let mut found = Vec::new();
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        if let Some(seg) = name.to_str().and_then(SegmentName::parse) {
            found.push((seg, entry.path()));
        }
    }
    found.sort_unstable_by_key(|(seg, _)| *seg);
    Ok(found)
}

/// Encodes one record line (no trailing newline) from a canonical key and
/// the already-serialised value JSON.
#[must_use]
pub fn encode_record(canonical: &str, value_json: &str) -> String {
    let crc = stable_hash::hex(stable_hash::fnv1a(value_json.as_bytes()));
    let mut line = String::with_capacity(canonical.len() + value_json.len() + 48);
    line.push_str("{\"key\":\"");
    escape_into(canonical, &mut line);
    line.push_str("\",\"crc\":\"");
    line.push_str(&crc);
    line.push_str("\",\"value\":");
    line.push_str(value_json);
    line.push('}');
    line
}

fn escape_into(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

/// One verified record found while scanning a segment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScannedRecord {
    /// The unescaped canonical key embedded in the record.
    pub canonical: String,
    /// Byte offset of the record line within the segment file.
    pub offset: u64,
    /// Length of the record line in bytes (without the newline).
    pub len: u64,
    /// The record's verified value checksum — the content identity the
    /// secondary-index fingerprint folds, so an overwrite that changes a
    /// value without changing its length is still detected as staleness.
    pub crc: u64,
}

/// Verifies one record line and recovers its canonical key without parsing
/// the value: the line must have the exact [`encode_record`] layout and the
/// value bytes must match the embedded checksum.  Returns `None` for torn,
/// truncated or corrupted lines.
#[must_use]
pub fn scan_record(line: &str) -> Option<String> {
    scan_record_parts(line).map(|(canonical, _, _)| canonical)
}

/// [`scan_record`], but yielding all three verified parts: the canonical
/// key, the value checksum, and the raw value JSON slice.
#[must_use]
pub fn scan_record_parts(line: &str) -> Option<(String, u64, &str)> {
    let rest = line.strip_prefix("{\"key\":\"")?;
    let (canonical, consumed) = unescape_string_body(rest)?;
    let rest = &rest[consumed..];
    let rest = rest.strip_prefix("\",\"crc\":\"")?;
    if rest.len() < 16 || !rest.is_char_boundary(16) {
        return None;
    }
    let (crc_hex, rest) = rest.split_at(16);
    if !crc_hex.bytes().all(|b| b.is_ascii_hexdigit()) {
        return None;
    }
    let value = rest.strip_prefix("\",\"value\":")?.strip_suffix('}')?;
    let crc = u64::from_str_radix(crc_hex, 16).ok()?;
    if stable_hash::fnv1a(value.as_bytes()) != crc {
        return None;
    }
    Some((canonical, crc, value))
}

/// Unescapes a JSON string body up to (not including) its closing quote.
/// Returns the unescaped text and the number of input bytes consumed.
fn unescape_string_body(s: &str) -> Option<(String, usize)> {
    let bytes = s.as_bytes();
    let mut out = String::new();
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'"' => return Some((out, i)),
            b'\\' => {
                let esc = *bytes.get(i + 1)?;
                match esc {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'u' => {
                        let hex = s.get(i + 2..i + 6)?;
                        let c = u32::from_str_radix(hex, 16).ok().and_then(char::from_u32)?;
                        out.push(c);
                        i += 4;
                    }
                    _ => return None,
                }
                i += 2;
            }
            _ => {
                let c = s[i..].chars().next()?;
                out.push(c);
                i += c.len_utf8();
            }
        }
    }
    None
}

/// Scans a whole segment's bytes, yielding every verified record with its
/// byte span.  Unverifiable lines — torn tails, corruption, even invalid
/// UTF-8 — are skipped silently (they must read as absent, never abort the
/// scan), and offsets stay byte-accurate regardless.
#[must_use]
pub fn scan_segment(bytes: &[u8]) -> Vec<ScannedRecord> {
    let mut records = Vec::new();
    let mut offset = 0u64;
    for line in bytes.split_inclusive(|&b| b == b'\n') {
        let body = line.strip_suffix(b"\n").unwrap_or(line);
        if let Some((canonical, crc, _)) =
            std::str::from_utf8(body).ok().and_then(scan_record_parts)
        {
            records.push(ScannedRecord {
                canonical,
                offset,
                len: body.len() as u64,
                crc,
            });
        }
        offset += line.len() as u64;
    }
    records
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn segment_names_round_trip() {
        let n = SegmentName {
            generation: 7,
            pid: 1234,
            seq: 3,
        };
        assert_eq!(n.file_name(), "seg-00000007-1234-0003.seg");
        assert_eq!(SegmentName::parse(&n.file_name()), Some(n));
        assert_eq!(SegmentName::parse("seg-x-1-2.seg"), None);
        assert_eq!(SegmentName::parse("other.json"), None);
        assert_eq!(SegmentName::parse(".seg-00000001-1-0001.tmp"), None);
    }

    #[test]
    fn names_sort_by_generation_first() {
        let old = SegmentName {
            generation: 1,
            pid: 99999,
            seq: 9,
        };
        let new = SegmentName {
            generation: 2,
            pid: 1,
            seq: 0,
        };
        assert!(old < new);
    }

    #[test]
    fn list_segments_orders_by_replay_order_and_skips_junk() {
        let dir = std::env::temp_dir().join(format!("acmp-seg-list-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let names = [
            SegmentName {
                generation: 2,
                pid: 1,
                seq: 0,
            },
            SegmentName {
                generation: 1,
                pid: 99,
                seq: 7,
            },
            SegmentName {
                generation: 1,
                pid: 99,
                seq: 2,
            },
        ];
        for n in &names {
            std::fs::write(dir.join(n.file_name()), "").unwrap();
        }
        std::fs::write(dir.join("stray.tmp"), "").unwrap();
        std::fs::write(dir.join("notes.txt"), "").unwrap();
        let listed: Vec<SegmentName> = list_segments(&dir)
            .unwrap()
            .into_iter()
            .map(|(seg, _)| seg)
            .collect();
        assert_eq!(listed, vec![names[2], names[1], names[0]]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn export_headers_round_trip() {
        let line = encode_export_header(42, 0xdead_beef_0000_1111);
        assert_eq!(
            parse_export_header(&line),
            Some((EXPORT_FORMAT_VERSION, 42, 0xdead_beef_0000_1111))
        );
        for bad in [
            "",
            "acmp-sweep-segments",
            "acmp-sweep-segments 1 42",
            "acmp-sweep-segments 1 42 beef",
            "acmp-sweep-segments x 42 0123456789abcdef",
            "other-magic 1 42 0123456789abcdef",
            "acmp-sweep-segments 1 42 0123456789abcdef extra",
        ] {
            assert_eq!(parse_export_header(bad), None, "`{bad}`");
        }
    }

    #[test]
    fn records_encode_and_scan() {
        let canonical = "{\"generator\":{\"seed\":7},\"benchmark\":\"cg\"}";
        let line = encode_record(canonical, "{\"cycles\":42}");
        assert_eq!(scan_record(&line).as_deref(), Some(canonical));
    }

    #[test]
    fn corrupted_records_fail_the_scan() {
        let line = encode_record("{\"k\":1}", "[1,2,3]");
        // Flip a value byte: checksum mismatch.
        let corrupt = line.replace("[1,2,3]", "[1,2,4]");
        assert_eq!(scan_record(&corrupt), None);
        // Torn tail: any truncation breaks the layout or the checksum.
        for cut in 1..line.len() {
            assert_eq!(scan_record(&line[..line.len() - cut]), None, "cut {cut}");
        }
        assert_eq!(scan_record(""), None);
        assert_eq!(scan_record("not a record"), None);
    }

    #[test]
    fn multibyte_corruption_is_rejected_without_panicking() {
        // A crc field corrupted to multibyte text must not panic the
        // scanner on a non-char-boundary split.
        let line = "{\"key\":\"k\",\"crc\":\"ああああああああ\",\"value\":1}";
        assert_eq!(scan_record(line), None);
    }

    #[test]
    fn scan_segment_skips_bad_lines_and_keeps_offsets() {
        let a = encode_record("key-a", "1");
        let b = encode_record("key-b", "[2]");
        let text = format!("{a}\ngarbage line\n{b}\n{}", &a[..a.len() - 3]);
        let records = scan_segment(text.as_bytes());
        assert_eq!(records.len(), 2);
        assert_eq!(records[0].canonical, "key-a");
        assert_eq!(records[0].offset, 0);
        assert_eq!(records[0].len, a.len() as u64);
        assert_eq!(records[1].canonical, "key-b");
        let b_offset = a.len() as u64 + 1 + "garbage line\n".len() as u64;
        assert_eq!(records[1].offset, b_offset);
        // The record bytes can be sliced back out of the text verbatim.
        let r = &records[1];
        let span = r.offset as usize..(r.offset + r.len) as usize;
        assert_eq!(&text[span], b);
    }

    #[test]
    fn invalid_utf8_lines_are_skipped_with_exact_offsets() {
        let a = encode_record("key-a", "1");
        let b = encode_record("key-b", "2");
        let mut bytes = Vec::new();
        bytes.extend_from_slice(a.as_bytes());
        bytes.push(b'\n');
        bytes.extend_from_slice(&[0xFF, 0xFE, 0x80]); // not UTF-8
        bytes.push(b'\n');
        bytes.extend_from_slice(b.as_bytes());
        let records = scan_segment(&bytes);
        assert_eq!(records.len(), 2);
        assert_eq!(records[0].canonical, "key-a");
        assert_eq!(records[1].canonical, "key-b");
        assert_eq!(records[1].offset, a.len() as u64 + 1 + 4);
    }

    #[test]
    fn escaped_keys_survive() {
        let canonical = "line\none\t\"quoted\" \\ backslash \u{1} control";
        let line = encode_record(canonical, "null");
        assert_eq!(scan_record(&line).as_deref(), Some(canonical));
    }
}
