//! `acmp-store` — the layered, generational result store behind the sweep
//! stack.
//!
//! The crate is organised as explicit layers, each built strictly on the
//! one below:
//!
//! 1. **Segment log** ([`segment`]) — append-only packed segment files of
//!    self-verifying records (`{"key":…,"crc":…,"value":…}` per line).
//! 2. **Key index** ([`store`]) — [`DiskStore`] scans the log once at open
//!    and keeps an in-memory index of *verified* records, addressed by the
//!    stable FNV-1a digest ([`stable_hash`]) of a canonical key.
//! 3. **Snapshot** ([`snapshot`]) — [`StoreSnapshot`] pins the live record
//!    set *and* open file handles to every backing segment, so concurrent
//!    appends and even compactions never change what an open snapshot
//!    reads.
//! 4. **Catalog** ([`catalog`]) — a typed [`ResultRow`] view (benchmark,
//!    design family, scale, flattened numeric metrics) over the result
//!    records of a snapshot.
//! 5. **Secondary indexes** ([`index`]) — the catalog persisted as an
//!    index segment: digest-sorted rows plus sorted-postings/bitmap lists
//!    over benchmark × design-family × bucketed metric values, fingerprinted
//!    against the key index so staleness is detected at open and the index
//!    is rebuilt deterministically after maintenance.
//! 6. **Queries** ([`query`]) — a conjunctive filter grammar with top-k
//!    ranking ([`Query`]) answered entirely from the catalog: a warm query
//!    performs zero segment value reads (counted by
//!    `acmp_obs::names::STORE_VALUE_READS`).
//!
//! The store is key-type agnostic: anything implementing [`StoreKey`] — a
//! canonical string plus its precomputed digest — can be stored.  The sweep
//! engine's `JobKey` implements it; [`RawKey`] is the plain owned variant
//! for tools and tests.

pub mod catalog;
pub mod compact;
pub mod epoch;
pub mod index;
pub mod query;
pub mod segment;
pub mod snapshot;
pub mod stable_hash;
pub mod store;

pub use catalog::{Catalog, CatalogSource, ResultRow};
pub use compact::CompactStats;
pub use epoch::{Epoch, EpochCache};
pub use index::{IndexStats, IndexStatus};
pub use query::{Cmp, Filter, Query, QueryHit};
pub use snapshot::StoreSnapshot;
pub use store::{DiskStore, ImportStats, StoreStats};

/// A key the store can address: a canonical (deterministic) string identity
/// plus its precomputed [`stable_hash::fnv1a`] digest.  The digest indexes;
/// the canonical string disambiguates digest collisions, so implementors
/// must keep the two consistent (`digest == fnv1a(canonical)`).
pub trait StoreKey {
    /// The canonical string identity of this key.
    fn canonical(&self) -> &str;
    /// The FNV-1a digest of [`canonical`](StoreKey::canonical).
    fn digest(&self) -> u64;
}

/// The plain owned [`StoreKey`]: a canonical string with its digest
/// computed at construction.  Used by tools (and tests) that address the
/// store without a domain key type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RawKey {
    canonical: String,
    digest: u64,
}

impl RawKey {
    /// Wraps a canonical string, computing its digest.
    #[must_use]
    pub fn new(canonical: impl Into<String>) -> Self {
        let canonical = canonical.into();
        let digest = stable_hash::fnv1a(canonical.as_bytes());
        RawKey { canonical, digest }
    }
}

impl StoreKey for RawKey {
    fn canonical(&self) -> &str {
        &self.canonical
    }

    fn digest(&self) -> u64 {
        self.digest
    }
}

#[cfg(test)]
mod crate_tests {
    use super::*;

    #[test]
    fn raw_keys_precompute_their_digest() {
        let k = RawKey::new("{\"generator\":1}");
        assert_eq!(k.canonical(), "{\"generator\":1}");
        assert_eq!(k.digest(), stable_hash::fnv1a(b"{\"generator\":1}"));
    }

    #[test]
    fn public_types_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<DiskStore>();
        assert_send_sync::<StoreSnapshot>();
        assert_send_sync::<Catalog>();
    }
}
