//! The persistent, content-addressed result store.
//!
//! Results (and trace sets) are packed into append-only **segment files**
//! (see [`crate::segment`]) under the store directory (default
//! `target/sweep-cache/`).  A later run — any process, any worker count —
//! that derives the same [`StoreKey`](crate::StoreKey) is served from disk
//! instead of re-simulating, which turns repeated figure runs into warm
//! starts.
//!
//! Opening a store scans every segment once and builds an in-memory index
//! of *verified* records: a record whose layout or value checksum does not
//! hold (a torn append, bit rot) is never indexed, so
//! [`contains`](DiskStore::contains) answers from verified entries only and
//! schedulers can trust it.  Loads additionally re-verify the embedded
//! canonical key, so even a digest collision reads as a miss rather than as
//! somebody else's data.
//!
//! Writes append under a store-wide writer lock — two threads saving the
//! same key serialise instead of racing on a shared temporary file (the
//! failure mode of the old one-file-per-entry layout), and a failed append
//! truncates itself away instead of leaving junk behind.
//!
//! Concurrent *processes* (shard sweeps over one cache directory) cooperate
//! without locks: every process appends to its own segment files (names
//! embed the pid), and a load miss triggers a directory
//! [refresh](DiskStore::refresh) that folds segments other processes have
//! published since into this handle's index — so one shard's results and
//! trace sets become visible to the others mid-run, without reopening.
//!
//! Every store handle appends into a fresh **generation**;
//! [`compact`](DiskStore::compact) merges all live records into the next
//! generation and deletes everything older, and
//! [`open_limited`](DiskStore::open_limited) evicts generations beyond a
//! configured bound at open, so the directory's growth stays bounded.

use crate::segment::{self, SegmentName, SEGMENT_TARGET_BYTES, TMP_EXT};
use crate::{stable_hash, StoreKey};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize, Value};
use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, SystemTime};

/// How far in the past a directory mtime must be before
/// [`refresh`](DiskStore::refresh) trusts it as a change detector: within
/// this margin a concurrent publish could land in the same timestamp
/// granule as the listing and stay invisible, so recent listings are never
/// cached.
const DIR_MTIME_TRUST_MARGIN: Duration = Duration::from_secs(2);

/// Counters describing how a store behaved over its lifetime, plus a
/// snapshot of its current contents.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StoreStats {
    /// Loads served from disk.
    pub hits: u64,
    /// Loads that found no (valid) entry.
    pub misses: u64,
    /// Entries written.
    pub writes: u64,
    /// Live (indexed, verified) entries.
    pub entries: u64,
    /// Segment files currently backing the index.
    pub segments: u64,
    /// Generation new appends go to.
    pub generation: u64,
    /// Total bytes of live records (excluding dead overwritten ones).
    pub live_bytes: u64,
    /// Segment files deleted by generation eviction at open.
    pub evicted: u64,
    /// Full directory listings performed by [`refresh`](DiskStore::refresh)
    /// (the open-time replay is not counted).  Stays flat across repeated
    /// misses against an unchanged directory — that is the point of the
    /// mtime cache and the in-margin `(mtime, name-set digest)` memo.
    pub dir_scans: u64,
}

/// What one [`import_segments`](DiskStore::import_segments) call did.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ImportStats {
    /// Records the bundle carried.
    pub records: u64,
    /// Records appended to this store.
    pub imported: u64,
    /// Records skipped because their key was already live here.
    pub skipped: u64,
}

/// Where one live record lives on disk.
#[derive(Debug, Clone)]
pub(crate) struct IndexEntry {
    pub(crate) canonical: String,
    pub(crate) segment: usize,
    pub(crate) offset: u64,
    pub(crate) len: u64,
    /// The record's verified value checksum — folded into the secondary
    /// index fingerprint so value changes read as staleness.
    pub(crate) crc: u64,
}

/// The active append target of this store handle.
#[derive(Debug)]
pub(crate) struct ActiveSegment {
    pub(crate) file: File,
    pub(crate) segment: usize,
    pub(crate) len: u64,
}

/// Everything the index lock protects.
#[derive(Debug, Default)]
pub(crate) struct Inner {
    /// Segment id → path.  Ids are positional and stable until a compact.
    pub(crate) segments: Vec<PathBuf>,
    /// Key digest → live record location.  Collisions on the 64-bit digest
    /// are resolved by the canonical string stored in the entry.
    pub(crate) index: HashMap<u64, IndexEntry>,
    pub(crate) active: Option<ActiveSegment>,
    /// Generation this handle appends to.
    pub(crate) generation: u64,
    /// Total bytes of live records.
    pub(crate) live_bytes: u64,
    /// The store directory's mtime as of the last full listing, when old
    /// enough to trust (see [`DIR_MTIME_TRUST_MARGIN`]).  Segment files are
    /// only ever created, renamed or deleted — all of which touch the
    /// directory mtime — so an unchanged mtime lets a refresh skip the
    /// whole re-listing.
    pub(crate) dir_seen: Option<SystemTime>,
    /// The `(mtime, name-set digest)` of the store directory as of the
    /// last full listing, consulted only while the mtime is still too
    /// recent for [`dir_seen`](Self::dir_seen) (see
    /// [`DIR_MTIME_TRUST_MARGIN`]).  Without it, every load miss inside
    /// the margin re-listed (parsed, sorted, folded) the whole directory.
    /// The digest covers the *names* of the segment/index files present —
    /// not the directory's size, which a `.tmp` → `seg-*` publish rename
    /// leaves unchanged (the entry count is the same and directory sizes
    /// are block-granular), and not its mtime, which the same rename can
    /// leave unchanged within one timestamp granule.  A publish always
    /// changes the name set, so the memo can never mask one.
    pub(crate) last_listing: Option<(Option<SystemTime>, u64)>,
    /// Full directory listings performed by refresh (for [`StoreStats`]).
    pub(crate) dir_scans: u64,
}

/// An on-disk key → value store addressed by stable content hash, packed
/// into generational segment files.
#[derive(Debug)]
pub struct DiskStore {
    root: PathBuf,
    pub(crate) inner: Mutex<Inner>,
    hits: AtomicU64,
    misses: AtomicU64,
    writes: AtomicU64,
    evicted: AtomicU64,
}

impl DiskStore {
    /// Opens (creating if needed) a store rooted at `root`, keeping every
    /// generation.
    ///
    /// # Errors
    ///
    /// Returns the I/O error if the directory cannot be created or scanned.
    pub fn open(root: impl Into<PathBuf>) -> std::io::Result<Self> {
        Self::open_limited(root, None)
    }

    /// Opens a store, evicting all but the newest `limit` generations of
    /// segment files first (when `limit` is `Some`).  Entries written after
    /// open always land in a generation newer than any existing one, so a
    /// session's own writes are never evicted by its *own* open.  Like
    /// [`compact`](DiskStore::compact), eviction deletes files by path and
    /// therefore must not race sweeps running concurrently in other
    /// processes on the same store (see `compact.rs`'s module docs).
    ///
    /// # Errors
    ///
    /// Returns the I/O error if the directory cannot be created or scanned.
    pub fn open_limited(root: impl Into<PathBuf>, limit: Option<u64>) -> std::io::Result<Self> {
        let root = root.into();
        let mut span = acmp_obs::span!(acmp_obs::names::STORE_OPEN);
        if acmp_obs::enabled() {
            span.record_field("root", root.display().to_string());
        }
        std::fs::create_dir_all(&root)?;

        // Collect and order the segment files: generation first, then
        // (pid, seq), so replay order — and therefore which duplicate of a
        // key wins — is deterministic.
        let mut found = segment::list_segments(&root)?;

        // Generation eviction: keep only the newest `limit` distinct
        // generations; delete the segment files of everything older.
        let mut evicted = 0u64;
        if let Some(limit) = limit {
            let mut generations: Vec<u64> = found.iter().map(|(s, _)| s.generation).collect();
            generations.dedup();
            if generations.len() as u64 > limit {
                let cutoff = generations[generations.len() - limit.max(1) as usize];
                found.retain(|(seg, path)| {
                    if seg.generation < cutoff {
                        let _ = std::fs::remove_file(path);
                        evicted += 1;
                        false
                    } else {
                        true
                    }
                });
            }
        }

        let max_generation = found.iter().map(|(s, _)| s.generation).max().unwrap_or(0);

        // Build the verified index.  Later records (newer generations, or
        // later appends within one) override earlier ones.
        let mut inner = Inner {
            generation: max_generation + 1,
            ..Inner::default()
        };
        for (name, path) in found {
            index_segment_file(&mut inner, name, path);
        }

        Ok(DiskStore {
            root,
            inner: Mutex::new(inner),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            writes: AtomicU64::new(0),
            evicted: AtomicU64::new(evicted),
        })
    }

    /// The default store location: `target/sweep-cache` under the current
    /// directory.  A different location is an explicit choice — `--cache-dir`
    /// on the CLI, [`store_dir`](crate::SweepEngineBuilder::store_dir) on
    /// the builder — never an environment variable.
    #[must_use]
    pub fn default_root() -> PathBuf {
        PathBuf::from("target").join("sweep-cache")
    }

    /// The store directory.
    #[must_use]
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Whether a *verified* entry exists for `key`.  This is answered from
    /// the in-memory index (built from checksummed records at open, kept
    /// current by this handle's writes), so a corrupt or key-mismatched
    /// record on disk reads as absent — schedulers deciding what work a
    /// grid still needs can rely on the answer.  Does not touch the
    /// hit/miss counters.
    #[must_use]
    pub fn contains(&self, key: &dyn StoreKey) -> bool {
        let inner = self.inner.lock();
        inner
            .index
            .get(&key.digest())
            .is_some_and(|e| e.canonical == key.canonical())
    }

    /// Loads the value stored under `key`, verifying the embedded canonical
    /// key.  Any malformed, mismatched or unreadable entry counts as a miss.
    ///
    /// A miss first [refreshes](Self::refresh) the index and retries: in a
    /// sharded run, another process may have appended the entry to its own
    /// segment file since this handle last scanned the directory, and the
    /// retry turns what would have been a redundant re-simulation (or trace
    /// regeneration) into a hit.
    pub fn load<V: Deserialize>(&self, key: &dyn StoreKey) -> Option<V> {
        let mut loaded = self.try_load(key);
        if loaded.is_none() && self.refresh() > 0 {
            loaded = self.try_load(key);
        }
        match loaded {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        loaded
    }

    /// Merges segment files that appeared in the store directory since this
    /// handle last looked — appends from concurrent shard processes (or
    /// other handles in this one) — into the verified index, returning how
    /// many new segment files were indexed.  Newly discovered records
    /// override older index entries exactly as an open's replay would.
    ///
    /// Called automatically when a [`load`](Self::load) misses.  The
    /// re-listing is incremental: the directory's mtime is remembered after
    /// every full listing (segment publishes always touch it), so a miss
    /// against an unchanged directory costs one `stat` instead of a full
    /// walk, and already-folded segment files are never re-read either way.
    /// [`contains`](Self::contains) deliberately stays index-only:
    /// schedulers probe it per cell while planning, and the load path
    /// re-checks the directory anyway.
    pub fn refresh(&self) -> usize {
        let mut span = acmp_obs::span!(acmp_obs::names::STORE_REFRESH);
        let mut inner = self.inner.lock();
        let meta = std::fs::metadata(&self.root).ok();
        let modified = meta.as_ref().and_then(|m| m.modified().ok());
        if inner.dir_seen.is_some() && inner.dir_seen == modified {
            span.record_field("segments_indexed", 0u64);
            span.record_field("listing_skipped", 1u64);
            return 0;
        }
        // acmp-lint: allow(nondeterminism) -- the clock only gates directory re-listing (a cache of the filesystem), never result bytes
        let now = SystemTime::now();
        // Inside the trust margin `dir_seen` can never be cached, but that
        // must not mean a full listing per miss: if the directory's mtime
        // and segment/index *name set* still match what the last listing
        // saw, nothing was published since and the walk (parse, sort, fold)
        // is skipped.  The name-set digest — not the directory size, which
        // a `.tmp` → `seg-*` publish rename leaves unchanged — is what
        // makes this memo rename-sensitive.  `dir_seen` stays empty, so
        // one catch-up listing happens once the mtime ages past the
        // margin.
        if trusted_dir_mtime(modified, now).is_none() {
            if let Some((seen_mtime, seen_digest)) = inner.last_listing {
                if seen_mtime == modified && listing_digest(&self.root) == Some(seen_digest) {
                    span.record_field("segments_indexed", 0u64);
                    span.record_field("listing_skipped", 1u64);
                    return 0;
                }
            }
        }
        inner.dir_scans += 1;
        // Digest before the listing: a file published in between is seen
        // by the listing but missing from the memo, which only costs one
        // extra (harmless) walk on the next in-margin refresh.  The other
        // order could memoize a name the fold below never indexed.
        let names_digest = listing_digest(&self.root);
        let Ok(found) = segment::list_segments(&self.root) else {
            return 0;
        };
        inner.dir_seen = trusted_dir_mtime(modified, now);
        inner.last_listing = names_digest.map(|digest| (modified, digest));
        let known: std::collections::HashSet<&Path> =
            inner.segments.iter().map(PathBuf::as_path).collect();
        let fresh: Vec<(SegmentName, PathBuf)> = found
            .into_iter()
            .filter(|(_, path)| !known.contains(path.as_path()))
            .collect();
        let mut indexed = 0;
        for (name, path) in fresh {
            if index_segment_file(&mut inner, name, path) {
                indexed += 1;
            }
        }
        span.record_field("segments_indexed", indexed);
        indexed
    }

    fn try_load<V: Deserialize>(&self, key: &dyn StoreKey) -> Option<V> {
        let (path, offset, len) = {
            let inner = self.inner.lock();
            let entry = inner.index.get(&key.digest())?;
            if entry.canonical != key.canonical() {
                return None;
            }
            (
                inner.segments[entry.segment].clone(),
                entry.offset,
                entry.len,
            )
        };
        acmp_obs::counter!(acmp_obs::names::STORE_VALUE_READS, 1);
        let text = read_span(&path, offset, len).ok()?;
        let envelope: Value = serde_json::from_str(&text).ok()?;
        let fields = envelope.as_object()?;
        let stored_key = serde::get_field(fields, "key").ok()?.as_str()?;
        if stored_key != key.canonical() {
            return None;
        }
        let value = serde::get_field(fields, "value").ok()?;
        V::deserialize(value).ok()
    }

    /// Persists `value` under `key`, appending a checksummed record to the
    /// active segment (rolling to a new segment past the size target).
    ///
    /// # Errors
    ///
    /// Returns the I/O or serialisation error; callers may treat a failed
    /// store write as non-fatal (the result is still in memory).  A failed
    /// append is truncated away, so it cannot be observed by later opens.
    pub fn save<V: Serialize>(&self, key: &dyn StoreKey, value: &V) -> Result<(), serde::Error> {
        let value_json = serde_json::to_string(value)?;
        let mut line = segment::encode_record(key.canonical(), &value_json);
        line.push('\n');
        let mut inner = self.inner.lock();
        self.append_record_line(&mut inner, key.canonical(), &line)
            .map_err(serde::Error::from)
    }

    /// Appends one already-encoded record line (newline included) to the
    /// active segment and indexes it.  Shared by [`save`](Self::save) and
    /// [`import_segments`](Self::import_segments), which receives its lines
    /// pre-encoded from another store's export.
    fn append_record_line(
        &self,
        inner: &mut Inner,
        canonical: &str,
        line: &str,
    ) -> std::io::Result<()> {
        let _span = acmp_obs::span!(acmp_obs::names::STORE_APPEND);
        self.ensure_active(inner, line.len() as u64)?;
        let (write_result, segment, offset) = {
            // acmp-lint: allow(unwrap-in-lib) -- ensure_active just succeeded, so an active segment is installed
            let active = inner.active.as_mut().expect("ensure_active installs one");
            let offset = active.len;
            let result = active
                .file
                .write_all(line.as_bytes())
                .and_then(|()| active.file.flush());
            if result.is_ok() {
                active.len += line.len() as u64;
            }
            (result, active.segment, offset)
        };
        if let Err(e) = write_result {
            // Claw the partial append back; if even that fails, retire the
            // segment so the next save starts a fresh file.  Either way the
            // torn record fails verification and is never indexed.
            let truncated = inner
                .active
                .as_mut()
                .is_some_and(|a| a.file.set_len(offset).is_ok());
            if !truncated {
                inner.active = None;
            }
            return Err(e);
        }
        let record_len = line.len() as u64 - 1;
        let crc = segment::scan_record_parts(line.trim_end_matches('\n'))
            .map(|(_, crc, _)| crc)
            .unwrap_or(0);
        let entry = IndexEntry {
            canonical: canonical.to_string(),
            segment,
            offset,
            len: record_len,
            crc,
        };
        let digest = crate::stable_hash::fnv1a(canonical.as_bytes());
        if let Some(old) = inner.index.insert(digest, entry) {
            inner.live_bytes -= old.len;
        }
        inner.live_bytes += record_len;
        self.writes.fetch_add(1, Ordering::Relaxed);
        acmp_obs::counter!(acmp_obs::names::STORE_APPEND_BYTES, line.len() as u64);
        Ok(())
    }

    /// Writes every live record into `sink` as a portable **export
    /// bundle**: one header line (magic, format version, record count,
    /// FNV-1a digest over the body bytes) followed by the record lines in
    /// stable digest order.  Records are copied verbatim — each keeps its
    /// own value checksum — so equal stores export byte-identical bundles,
    /// and [`import_segments`](Self::import_segments) on another machine
    /// can verify the transfer end to end.  Returns the record count.
    ///
    /// # Errors
    ///
    /// Returns the I/O error if a segment cannot be read back or `sink`
    /// cannot be written.
    pub fn export_segments<W: Write>(&self, sink: &mut W) -> std::io::Result<u64> {
        let mut span = acmp_obs::span!(acmp_obs::names::STORE_EXPORT);
        // Snapshot the live spans under the lock, but read them back
        // outside it: segments are append-only, so a snapshotted span's
        // bytes never change, and a large export must not block every
        // concurrent save for the duration of its file I/O.  (Compaction
        // deletes segment files and must not run concurrently — the same
        // offline-maintenance discipline it already demands.)
        let mut spans: Vec<(u64, PathBuf, u64, u64)> = {
            let inner = self.inner.lock();
            inner
                .index
                .iter()
                .map(|(digest, entry)| {
                    (
                        *digest,
                        inner.segments[entry.segment].clone(),
                        entry.offset,
                        entry.len,
                    )
                })
                .collect()
        };
        spans.sort_unstable_by_key(|&(digest, ..)| digest);
        let records = spans.len() as u64;
        // The header carries a digest of the whole body, so the body is
        // walked twice — once to fold the digest, once to write — rather
        // than materialised in memory: bundles hold every live record
        // *including multi-megabyte trace sets*, and exporting must not
        // cost a store's worth of RAM.  Append-only segments make the two
        // passes read identical bytes.
        let mut digest = crate::stable_hash::fnv1a_init();
        for (_, path, offset, len) in &spans {
            let record = read_span(path, *offset, *len)?;
            digest = crate::stable_hash::fnv1a_fold(digest, record.as_bytes());
            digest = crate::stable_hash::fnv1a_fold(digest, b"\n");
        }
        writeln!(sink, "{}", segment::encode_export_header(records, digest))?;
        let mut body_bytes = 0u64;
        for (_, path, offset, len) in &spans {
            let record = read_span(path, *offset, *len)?;
            sink.write_all(record.as_bytes())?;
            sink.write_all(b"\n")?;
            body_bytes += record.len() as u64 + 1;
        }
        sink.flush()?;
        span.record_field("records", records);
        acmp_obs::counter!(acmp_obs::names::STORE_EXPORT_BYTES, body_bytes);
        Ok(records)
    }

    /// Imports an export bundle produced by
    /// [`export_segments`](Self::export_segments) on another store —
    /// typically another machine's warm cache.  The whole bundle is
    /// verified *before* anything is appended: the header must parse, the
    /// body digest must match (catching truncated transfers), every record
    /// must pass its own checksum, and the record count must agree.  Only
    /// then are records appended — into this handle's fresh generation,
    /// following the same replay-order rules a concurrent shard's segments
    /// obey on [`refresh`](Self::refresh).  Records whose key is already
    /// live here are skipped, so importing is idempotent and never
    /// overrides data this store already trusts.
    ///
    /// # Errors
    ///
    /// Returns `InvalidData` for a damaged bundle (with nothing imported),
    /// or the I/O error if reading `source` or appending fails.
    pub fn import_segments<R: std::io::BufRead>(
        &self,
        mut source: R,
    ) -> std::io::Result<ImportStats> {
        let invalid = |msg: String| std::io::Error::new(std::io::ErrorKind::InvalidData, msg);
        let mut header = String::new();
        source.read_line(&mut header)?;
        let Some((format, records, digest)) =
            segment::parse_export_header(header.trim_end_matches('\n'))
        else {
            return Err(invalid(
                "not an acmp-sweep segment export (unrecognised header)".to_string(),
            ));
        };
        if format != segment::EXPORT_FORMAT_VERSION {
            return Err(invalid(format!(
                "export format {format} not supported (this binary reads {})",
                segment::EXPORT_FORMAT_VERSION
            )));
        }
        // One pass over the body: fold the digest over the raw bytes as
        // they stream in and verify each record's own checksum, keeping
        // only the (single) buffered copy needed for the
        // verify-everything-then-append contract — not a second whole-body
        // String on top of it.
        let mut span = acmp_obs::span!(acmp_obs::names::STORE_IMPORT);
        let mut folded = crate::stable_hash::fnv1a_init();
        let mut verified: Vec<(String, String)> = Vec::new();
        let mut buf: Vec<u8> = Vec::new();
        let mut body_bytes = 0u64;
        loop {
            buf.clear();
            if source.read_until(b'\n', &mut buf)? == 0 {
                break;
            }
            body_bytes += buf.len() as u64;
            folded = crate::stable_hash::fnv1a_fold(folded, &buf);
            let bytes = buf.strip_suffix(b"\n").unwrap_or(&buf);
            let record = std::str::from_utf8(bytes).ok().and_then(|text| {
                segment::scan_record(text).map(|canonical| (canonical, text.to_string()))
            });
            let Some((canonical, line)) = record else {
                return Err(invalid(format!(
                    "export record {} fails verification; nothing was imported",
                    verified.len() + 1
                )));
            };
            verified.push((canonical, line));
        }
        if folded != digest {
            return Err(invalid(
                "export body digest mismatch — the bundle was truncated or corrupted in \
                 transit; nothing was imported"
                    .to_string(),
            ));
        }
        if verified.len() as u64 != records {
            return Err(invalid(format!(
                "export header declares {records} records, body holds {}; nothing was \
                 imported",
                verified.len()
            )));
        }

        let mut stats = ImportStats {
            records,
            ..ImportStats::default()
        };
        let mut inner = self.inner.lock();
        for (canonical, line) in verified {
            let key_digest = crate::stable_hash::fnv1a(canonical.as_bytes());
            let already_live = inner
                .index
                .get(&key_digest)
                .is_some_and(|e| e.canonical == canonical);
            if already_live {
                stats.skipped += 1;
                continue;
            }
            let mut line = line;
            line.push('\n');
            self.append_record_line(&mut inner, &canonical, &line)?;
            stats.imported += 1;
        }
        span.record_field("imported", stats.imported);
        span.record_field("skipped", stats.skipped);
        acmp_obs::counter!(acmp_obs::names::STORE_IMPORT_BYTES, body_bytes);
        Ok(stats)
    }

    /// Makes sure `inner.active` can take another `upcoming` bytes, creating
    /// or rolling the segment file as needed.
    fn ensure_active(&self, inner: &mut Inner, upcoming: u64) -> Result<(), std::io::Error> {
        let roll = match &inner.active {
            Some(active) => active.len > 0 && active.len + upcoming > SEGMENT_TARGET_BYTES,
            None => true,
        };
        if !roll {
            return Ok(());
        }
        let name = SegmentName {
            generation: inner.generation,
            pid: std::process::id(),
            seq: next_segment_seq(),
        };
        let path = self.root.join(name.file_name());
        let file = OpenOptions::new().create(true).append(true).open(&path)?;
        let len = file.metadata()?.len();
        let segment = inner.segments.len();
        inner.segments.push(path);
        inner.active = Some(ActiveSegment { file, segment, len });
        Ok(())
    }

    /// Builds a fresh `.tmp` path unique to this process *and* call, so
    /// concurrent writers (threads or processes) never share one.
    pub(crate) fn unique_tmp_path(&self, label: &str) -> PathBuf {
        static TMP_COUNTER: AtomicU64 = AtomicU64::new(0);
        let n = TMP_COUNTER.fetch_add(1, Ordering::Relaxed);
        self.root
            .join(format!(".{label}-{}-{n}.{TMP_EXT}", std::process::id()))
    }

    /// Lifetime counters and a content snapshot of this store handle.
    pub fn stats(&self) -> StoreStats {
        let inner = self.inner.lock();
        StoreStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            writes: self.writes.load(Ordering::Relaxed),
            entries: inner.index.len() as u64,
            segments: inner.segments.len() as u64,
            generation: inner.generation,
            live_bytes: inner.live_bytes,
            evicted: self.evicted.load(Ordering::Relaxed),
            dir_scans: inner.dir_scans,
        }
    }
}

/// Hands out process-unique segment sequence numbers.  Sequence numbers
/// are shared by every store handle in the process (not per-handle), so
/// two handles opened on the same root can never compute the same
/// `(generation, pid, seq)` and silently share — or truncate — one
/// another's segment file.
pub(crate) fn next_segment_seq() -> u64 {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    SEQ.fetch_add(1, Ordering::Relaxed)
}

/// Scans one segment file into the index.  Raw bytes, not UTF-8: a corrupt
/// (even non-UTF-8) line must read as absent, never abort the scan.  An
/// unreadable segment — e.g. deleted by a concurrent open's eviction
/// between a directory listing and this read — likewise reads as absent
/// (and is not registered, so a later refresh may retry it).  Returns
/// whether the file was registered.
///
/// Which duplicate of a key wins follows segment replay order, not
/// discovery order: a refresh can discover a segment that *sorts before*
/// one already indexed (a stale handle appending into an old generation
/// while a newer generation is already visible), and its records must not
/// override the later-replaying ones a fresh open would prefer.  An open's
/// own scan passes segments pre-sorted, so the guard never fires there.
fn index_segment_file(inner: &mut Inner, name: SegmentName, path: PathBuf) -> bool {
    let Ok(bytes) = std::fs::read(&path) else {
        return false;
    };
    let segment_id = inner.segments.len();
    inner.segments.push(path);
    for record in segment::scan_segment(&bytes) {
        let digest = crate::stable_hash::fnv1a(record.canonical.as_bytes());
        let later_already_indexed = inner.index.get(&digest).is_some_and(|existing| {
            replay_name(&inner.segments[existing.segment])
                .is_some_and(|existing_name| existing_name > name)
        });
        if later_already_indexed {
            continue;
        }
        let entry = IndexEntry {
            canonical: record.canonical,
            segment: segment_id,
            offset: record.offset,
            len: record.len,
            crc: record.crc,
        };
        if let Some(old) = inner.index.insert(digest, entry) {
            inner.live_bytes -= old.len;
        }
        inner.live_bytes += record.len;
    }
    true
}

/// Filters a just-observed directory mtime down to one safe to cache as a
/// change detector: only an mtime the clock has certainly advanced past is
/// trusted, because a publish landing in the same timestamp granule as the
/// listing would otherwise compare equal and stay invisible forever.
fn trusted_dir_mtime(modified: Option<SystemTime>, now: SystemTime) -> Option<SystemTime> {
    modified.filter(|m| {
        now.duration_since(*m)
            .is_ok_and(|age| age >= DIR_MTIME_TRUST_MARGIN)
    })
}

/// Digest of the segment/index file *names* under `root` — the cheap,
/// rename-sensitive half of the in-margin refresh memo.  Only names are
/// read (no per-file stat, no record parsing), so this costs one
/// `read_dir` pass; `None` means the directory could not be read, which
/// disables the memo rather than trusting it.
fn listing_digest(root: &Path) -> Option<u64> {
    let mut names: Vec<String> = std::fs::read_dir(root)
        .ok()?
        .filter_map(|entry| entry.ok()?.file_name().into_string().ok())
        .filter(|name| {
            let ext = Path::new(name).extension().and_then(|e| e.to_str());
            ext == Some(segment::SEGMENT_EXT) || ext == Some(crate::index::INDEX_EXT)
        })
        .collect();
    names.sort_unstable();
    let mut acc = stable_hash::fnv1a_init();
    for name in &names {
        acc = stable_hash::fnv1a_fold(acc, name.as_bytes());
        acc = stable_hash::fnv1a_fold(acc, b"\n");
    }
    Some(acc)
}

/// The replay-order identity of an indexed segment file, parsed back from
/// its path.  Every indexed segment was created with a
/// [`SegmentName`]-shaped file name, so `None` only ever means an exotic
/// path this store did not mint — treated as replaying first.
fn replay_name(path: &Path) -> Option<SegmentName> {
    path.file_name()?.to_str().and_then(SegmentName::parse)
}

/// Reads `len` bytes at `offset` of `path` as UTF-8.
pub(crate) fn read_span(path: &Path, offset: u64, len: u64) -> std::io::Result<String> {
    let mut file = File::open(path)?;
    file.seek(SeekFrom::Start(offset))?;
    let mut buf = vec![0u8; len as usize];
    file.read_exact(&mut buf)?;
    String::from_utf8(buf).map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::segment::{EXPORT_MAGIC as SEGMENT_EXPORT_MAGIC, SEGMENT_EXT};
    use crate::RawKey;

    fn temp_root(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "acmp-store-store-test-{tag}-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn temp_store(tag: &str) -> DiskStore {
        DiskStore::open(temp_root(tag)).expect("temp store")
    }

    /// A result-shaped canonical key, as the sweep engine's `JobKey` mints
    /// them — the store itself only sees [`StoreKey`]s.
    fn key(benchmark: &str) -> RawKey {
        RawKey::new(format!(
            "{{\"generator\":{{\"seed\":7}},\"benchmark\":\"{benchmark}\",\
             \"design\":{{\"name\":\"baseline\",\"sharing\":\"Private\"}}}}"
        ))
    }

    fn segment_files(root: &Path) -> Vec<String> {
        let mut names: Vec<String> = std::fs::read_dir(root)
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .filter(|n| n.ends_with(&format!(".{SEGMENT_EXT}")))
            .collect();
        names.sort_unstable();
        names
    }

    #[test]
    fn save_then_load_round_trips() {
        let store = temp_store("roundtrip");
        let k = key("cg");
        assert_eq!(store.load::<Vec<u64>>(&k), None);
        store.save(&k, &vec![1u64, 2, 3]).unwrap();
        assert!(store.contains(&k));
        assert_eq!(store.load::<Vec<u64>>(&k), Some(vec![1, 2, 3]));
        let stats = store.stats();
        assert_eq!((stats.hits, stats.misses, stats.writes), (1, 1, 1));
        assert_eq!(stats.entries, 1);
        assert_eq!(stats.segments, 1);
    }

    #[test]
    fn entries_survive_reopening() {
        let store = temp_store("reopen");
        let k = key("lu");
        store.save(&k, &7u64).unwrap();
        let reopened = DiskStore::open(store.root().to_path_buf()).unwrap();
        assert!(reopened.contains(&k));
        assert_eq!(reopened.load::<u64>(&k), Some(7));
        // The reopened handle appends into a fresh generation.
        assert_eq!(reopened.stats().generation, store.stats().generation + 1);
    }

    #[test]
    fn many_entries_pack_into_one_segment() {
        let store = temp_store("pack");
        let keys: Vec<RawKey> = (1..=50).map(|lb| key(&format!("cg-lb{lb}"))).collect();
        for (i, k) in keys.iter().enumerate() {
            store.save(k, &(i as u64)).unwrap();
        }
        assert_eq!(store.stats().entries, 50);
        assert_eq!(
            segment_files(store.root()).len(),
            1,
            "small entries must share one segment file"
        );
        for (i, k) in keys.iter().enumerate() {
            assert_eq!(store.load::<u64>(k), Some(i as u64));
        }
    }

    #[test]
    fn corrupt_and_mismatched_entries_are_misses() {
        let root = temp_root("corrupt");
        {
            let store = DiskStore::open(&root).unwrap();
            store.save(&key("ep"), &1u64).unwrap();
            store.save(&key("lu"), &2u64).unwrap();
        }
        // Corrupt the first record's value bytes in place (same length, so
        // the second record's span is untouched).
        let seg = &segment_files(&root)[0];
        let path = root.join(seg);
        let text = std::fs::read_to_string(&path).unwrap();
        let corrupted = text.replacen("\"value\":1", "\"value\":9", 1);
        assert_ne!(text, corrupted, "fixture must actually corrupt a record");
        std::fs::write(&path, corrupted).unwrap();

        let store = DiskStore::open(&root).unwrap();
        // The corrupted record fails its checksum at open: not indexed.
        assert!(!store.contains(&key("ep")));
        assert_eq!(store.load::<u64>(&key("ep")), None);
        // Its intact neighbour is unaffected.
        assert_eq!(store.load::<u64>(&key("lu")), Some(2));
    }

    #[test]
    fn distinct_keys_use_distinct_entries() {
        let store = temp_store("distinct");
        store.save(&key("cg"), &1u64).unwrap();
        store.save(&key("lu"), &2u64).unwrap();
        assert_eq!(store.load::<u64>(&key("cg")), Some(1));
        assert_eq!(store.load::<u64>(&key("lu")), Some(2));
        assert_eq!(store.stats().entries, 2);
    }

    #[test]
    fn concurrent_same_key_writers_never_publish_a_torn_entry() {
        // The regression this guards: the old layout derived one temporary
        // file from (key, pid), so two threads saving the same key raced —
        // one renamed while the other was mid-write, publishing torn bytes.
        let store = temp_store("same-key-race");
        let k = key("cg");
        std::thread::scope(|scope| {
            for t in 0..8u64 {
                let store = &store;
                let k = &k;
                scope.spawn(move || {
                    for i in 0..16 {
                        store.save(k, &vec![t, i]).unwrap();
                    }
                });
            }
        });
        // Whatever interleaving happened, the store holds one complete,
        // verifiable entry for the key — both in this handle...
        let live = store.load::<Vec<u64>>(&k).expect("a live entry survives");
        assert_eq!(live.len(), 2);
        assert_eq!(store.stats().writes, 128);
        // ...and after a fresh open that re-verifies every record on disk.
        let reopened = DiskStore::open(store.root().to_path_buf()).unwrap();
        assert_eq!(
            reopened
                .load::<Vec<u64>>(&k)
                .expect("still verifiable")
                .len(),
            2
        );
    }

    #[test]
    fn overwrites_keep_only_the_newest_value_live() {
        let store = temp_store("overwrite");
        let k = key("cg");
        store.save(&k, &1u64).unwrap();
        let bytes_after_first = store.stats().live_bytes;
        store.save(&k, &2u64).unwrap();
        assert_eq!(store.load::<u64>(&k), Some(2));
        let stats = store.stats();
        assert_eq!(stats.entries, 1);
        assert_eq!(
            stats.live_bytes, bytes_after_first,
            "live bytes must not count the dead first record"
        );
        // Reopening replays in order: the newer record still wins.
        let reopened = DiskStore::open(store.root().to_path_buf()).unwrap();
        assert_eq!(reopened.load::<u64>(&k), Some(2));
    }

    #[test]
    fn generation_eviction_drops_old_generations_at_open() {
        let root = temp_root("evict");
        // Session 1 writes k1 into generation 1.
        {
            let store = DiskStore::open(&root).unwrap();
            store.save(&key("cg"), &1u64).unwrap();
        }
        // Session 2 writes k2 into generation 2.
        {
            let store = DiskStore::open(&root).unwrap();
            store.save(&key("lu"), &2u64).unwrap();
        }
        // A bounded open keeps only the newest generation: k1 is evicted,
        // k2 survives, and the old segment file is gone from disk.
        let store = DiskStore::open_limited(&root, Some(1)).unwrap();
        assert_eq!(store.load::<u64>(&key("cg")), None);
        assert_eq!(store.load::<u64>(&key("lu")), Some(2));
        assert_eq!(store.stats().evicted, 1);
        assert_eq!(segment_files(&root).len(), 1);
        // An unbounded open never evicts.
        let root2 = temp_root("evict-unbounded");
        {
            let store = DiskStore::open(&root2).unwrap();
            store.save(&key("cg"), &1u64).unwrap();
        }
        let store = DiskStore::open(&root2).unwrap();
        assert_eq!(store.stats().evicted, 0);
        assert_eq!(store.load::<u64>(&key("cg")), Some(1));
    }

    #[test]
    fn two_handles_on_one_root_never_share_a_segment_file() {
        // Both handles open before either writes, so they agree on the
        // generation; the process-global sequence counter must still keep
        // their segment files distinct (a shared file would corrupt both
        // handles' index offsets).
        let root = temp_root("two-handles");
        let a = DiskStore::open(&root).unwrap();
        let b = DiskStore::open(&root).unwrap();
        a.save(&key("cg"), &1u64).unwrap();
        b.save(&key("lu"), &2u64).unwrap();
        a.save(&key("ep"), &3u64).unwrap();
        assert_eq!(segment_files(&root).len(), 2, "one segment per handle");
        assert_eq!(a.load::<u64>(&key("cg")), Some(1));
        assert_eq!(a.load::<u64>(&key("ep")), Some(3));
        assert_eq!(b.load::<u64>(&key("lu")), Some(2));
        // A fresh open sees all three entries from both files.
        let merged = DiskStore::open(&root).unwrap();
        assert_eq!(merged.stats().entries, 3);
        assert_eq!(merged.load::<u64>(&key("lu")), Some(2));
    }

    #[test]
    fn load_misses_refresh_the_index_across_handles() {
        // Two handles stand in for two shard processes on one store: the
        // reader opened before the writer wrote anything, so its index is
        // stale — the miss path must rescan the directory and find the
        // writer's freshly published segment instead of reporting absent.
        let root = temp_root("refresh-load");
        let reader = DiskStore::open(&root).unwrap();
        let writer = DiskStore::open(&root).unwrap();
        writer.save(&key("cg"), &7u64).unwrap();
        assert_eq!(reader.load::<u64>(&key("cg")), Some(7));
        let stats = reader.stats();
        assert_eq!((stats.hits, stats.misses), (1, 0), "refresh makes it a hit");
    }

    #[test]
    fn dir_mtimes_are_trusted_only_past_the_margin() {
        let now = SystemTime::now();
        let old = now - Duration::from_secs(60);
        let recent = now - Duration::from_millis(500);
        let future = now + Duration::from_secs(60);
        assert_eq!(trusted_dir_mtime(Some(old), now), Some(old));
        assert_eq!(
            trusted_dir_mtime(Some(recent), now),
            None,
            "same-granule publishes could still be invisible"
        );
        assert_eq!(trusted_dir_mtime(Some(future), now), None);
        assert_eq!(trusted_dir_mtime(None, now), None);
    }

    #[test]
    fn refresh_skips_the_walk_when_the_directory_mtime_is_unchanged() {
        let root = temp_root("refresh-skip");
        let store = DiskStore::open(&root).unwrap();
        store.save(&key("cg"), &1u64).unwrap();
        // Backdate the directory past the trust margin so this refresh
        // caches its mtime after walking.
        let past = SystemTime::now() - Duration::from_secs(600);
        set_dir_mtime(&root, past);
        assert_eq!(store.refresh(), 0, "own segment is already indexed");
        // A foreign writer publishes a segment; pinning the directory
        // mtime back to the cached value makes the store's stat conclude
        // "unchanged", so the refresh skips the walk entirely and the new
        // segment stays invisible.
        let writer = DiskStore::open(&root).unwrap();
        writer.save(&key("lu"), &2u64).unwrap();
        set_dir_mtime(&root, past);
        assert_eq!(store.refresh(), 0);
        assert!(!store.contains(&key("lu")));
        // Any mtime change re-arms the walk and the segment is folded in.
        set_dir_mtime(&root, past + Duration::from_secs(30));
        assert_eq!(store.refresh(), 1);
        assert!(store.contains(&key("lu")));
    }

    #[test]
    fn misses_inside_the_trust_margin_list_the_directory_once() {
        // The directory mtime is "now", inside DIR_MTIME_TRUST_MARGIN, so
        // `dir_seen` cannot be cached.  Before the (mtime, name-set) memo,
        // every one of the misses below walked the directory again.
        let root = temp_root("refresh-memo");
        let reader = DiskStore::open(&root).unwrap();
        let writer = DiskStore::open(&root).unwrap();
        writer.save(&key("cg"), &1u64).unwrap();
        assert_eq!(reader.load::<u64>(&key("cg")), Some(1));
        let scans = reader.stats().dir_scans;
        assert!(scans >= 1, "the stale first load must have listed");
        for _ in 0..5 {
            assert_eq!(reader.load::<u64>(&key("absent")), None);
        }
        // At most one more listing is tolerated (the catch-up walk, if the
        // margin expired mid-test on a slow machine) — never one per miss.
        let after = reader.stats().dir_scans;
        assert!(
            after <= scans + 1,
            "5 misses against an unchanged directory cost {} listings",
            after - scans
        );
        // A new publish bumps the directory mtime, which invalidates the
        // memo: the next miss re-lists and finds the fresh segment.
        let late = DiskStore::open(&root).unwrap();
        late.save(&key("lu"), &2u64).unwrap();
        assert_eq!(reader.load::<u64>(&key("lu")), Some(2));
        assert!(
            reader.stats().dir_scans > after,
            "the publish re-armed the walk"
        );
    }

    #[test]
    fn rename_publish_in_the_same_mtime_granule_is_not_masked() {
        // A publish is a `.tmp` → `seg-*` rename: it does not change the
        // directory's *size* (same entry count, block-granular sizes) and
        // can land in the same mtime granule as the memoized listing.  The
        // old `(mtime, size)` memo answered "unchanged" for exactly this
        // shape and masked the publish until the granule rolled over; the
        // name-set digest sees the rename.
        let root = temp_root("rename-publish");
        let reader = DiskStore::open(&root).unwrap();
        // Build a publishable segment in a scratch store.
        let scratch = temp_root("rename-publish-src");
        let writer = DiskStore::open(&scratch).unwrap();
        writer.save(&key("lu"), &2u64).unwrap();
        let seg_name = segment_files(&scratch).pop().expect("writer segment");
        // Pin a whole-second mtime (so it can be pinned *back* exactly)
        // inside the trust margin, then arm the in-margin memo.
        let granule = SystemTime::now();
        set_dir_mtime(&root, granule);
        assert_eq!(reader.refresh(), 0, "empty store, nothing to fold");
        let scans = reader.stats().dir_scans;
        // Publish via tmp-write + rename, then pin the directory mtime
        // back into the granule the memo recorded.
        let tmp = root.join(format!("incoming.{TMP_EXT}"));
        std::fs::copy(scratch.join(&seg_name), &tmp).unwrap();
        std::fs::rename(&tmp, root.join(&seg_name)).unwrap();
        set_dir_mtime(&root, granule);
        // mtime matches the memo byte-for-byte; only the segment name set
        // differs.  The very next refresh must fold the publish.
        assert_eq!(reader.refresh(), 1, "the rename-published segment folds");
        assert_eq!(reader.load::<u64>(&key("lu")), Some(2));
        assert!(reader.stats().dir_scans > scans, "a full listing ran");
    }

    /// Pins a directory's mtime to a whole-second epoch value.
    fn set_dir_mtime(dir: &Path, when: SystemTime) {
        let secs = when
            .duration_since(SystemTime::UNIX_EPOCH)
            .expect("test times are past the epoch")
            .as_secs();
        let status = std::process::Command::new("touch")
            .arg("-d")
            .arg(format!("@{secs}"))
            .arg(dir)
            .status()
            .expect("touch is available");
        assert!(status.success());
    }

    #[test]
    fn explicit_refresh_updates_contains() {
        let root = temp_root("refresh-contains");
        let reader = DiskStore::open(&root).unwrap();
        let writer = DiskStore::open(&root).unwrap();
        writer.save(&key("lu"), &1u64).unwrap();
        // `contains` answers from the index only; a stale view reads
        // absent until an explicit (or load-triggered) refresh.
        assert!(!reader.contains(&key("lu")));
        assert_eq!(reader.refresh(), 1);
        assert!(reader.contains(&key("lu")));
        // Nothing new: a second refresh is a no-op.
        assert_eq!(reader.refresh(), 0);
    }

    #[test]
    fn refresh_respects_replay_order_across_generations() {
        let root = temp_root("refresh-order");
        // `stale` will keep appending into generation 1 even after newer
        // generations exist on disk.
        let stale = DiskStore::open(&root).unwrap();
        let reader = DiskStore::open(&root).unwrap();
        {
            let seeder = DiskStore::open(&root).unwrap();
            seeder.save(&key("ep"), &0u64).unwrap();
        }
        // Opened after generation 1 has a segment: appends to generation 2.
        let newer = DiskStore::open(&root).unwrap();
        newer.save(&key("cg"), &2u64).unwrap();
        assert_eq!(reader.load::<u64>(&key("cg")), Some(2));

        // The stale handle now writes the same key into generation 1.  A
        // fresh open replays generation 1 *before* generation 2, so the
        // generation-2 record must keep winning — including in the
        // reader's refreshed view, even though it discovers the
        // generation-1 segment last.
        stale.save(&key("cg"), &1u64).unwrap();
        assert_eq!(reader.refresh(), 1);
        assert_eq!(reader.load::<u64>(&key("cg")), Some(2));
        let fresh = DiskStore::open(&root).unwrap();
        assert_eq!(fresh.load::<u64>(&key("cg")), Some(2));
    }

    #[test]
    fn export_import_round_trips_between_stores() {
        // Machine A's warm store, exported and imported into machine B's.
        let a = temp_store("export-a");
        a.save(&key("cg"), &vec![1u64, 2]).unwrap();
        a.save(&key("lu"), &vec![3u64]).unwrap();
        let mut bundle = Vec::new();
        assert_eq!(a.export_segments(&mut bundle).unwrap(), 2);

        let b = temp_store("export-b");
        b.save(&key("lu"), &vec![3u64]).unwrap(); // overlap
        let stats = b.import_segments(std::io::Cursor::new(&bundle)).unwrap();
        assert_eq!(stats.records, 2);
        assert_eq!(stats.imported, 1, "only the missing key is appended");
        assert_eq!(stats.skipped, 1, "the live key is never overridden");
        assert_eq!(b.load::<Vec<u64>>(&key("cg")), Some(vec![1, 2]));
        assert_eq!(b.load::<Vec<u64>>(&key("lu")), Some(vec![3]));

        // Idempotent: importing the same bundle again appends nothing.
        let again = b.import_segments(std::io::Cursor::new(&bundle)).unwrap();
        assert_eq!((again.imported, again.skipped), (0, 2));

        // The imported records survive a fresh verified open.
        let reopened = DiskStore::open(b.root().to_path_buf()).unwrap();
        assert_eq!(reopened.stats().entries, 2);
        assert_eq!(reopened.load::<Vec<u64>>(&key("cg")), Some(vec![1, 2]));
    }

    #[test]
    fn equal_stores_export_identical_bundles() {
        let a = temp_store("export-det-a");
        let b = temp_store("export-det-b");
        for store in [&a, &b] {
            store.save(&key("cg"), &7u64).unwrap();
            store.save(&key("ep"), &9u64).unwrap();
        }
        let (mut ba, mut bb) = (Vec::new(), Vec::new());
        a.export_segments(&mut ba).unwrap();
        b.export_segments(&mut bb).unwrap();
        assert_eq!(ba, bb, "bundles must be byte-deterministic");
    }

    #[test]
    fn damaged_bundles_import_nothing() {
        let a = temp_store("import-damage-src");
        a.save(&key("cg"), &1u64).unwrap();
        a.save(&key("lu"), &2u64).unwrap();
        let mut bundle = Vec::new();
        a.export_segments(&mut bundle).unwrap();
        let text = String::from_utf8(bundle).unwrap();

        let assert_rejected = |tag: &str, damaged: &str, expect: &str| {
            let store = temp_store(&format!("import-damage-{tag}"));
            let err = store
                .import_segments(std::io::Cursor::new(damaged.as_bytes()))
                .unwrap_err();
            assert_eq!(err.kind(), std::io::ErrorKind::InvalidData, "{tag}");
            assert!(err.to_string().contains(expect), "{tag}: {err}");
            assert_eq!(store.stats().entries, 0, "{tag}: must import nothing");
            assert_eq!(store.stats().writes, 0, "{tag}: must append nothing");
        };

        // Truncated mid-record (a cut-off transfer): the partial tail line
        // fails its own record verification.
        assert_rejected("truncated", &text[..text.len() - 10], "fails verification");
        // A record's value bytes flipped in transit: the per-record
        // checksum catches it as the stream is scanned.
        let flipped = text.replacen("\"value\":1", "\"value\":7", 1);
        assert_ne!(flipped, text);
        assert_rejected("flipped", &flipped, "fails verification");
        // A whole record line dropped: every surviving record verifies, so
        // only the body digest (and count) can see the loss.
        let mut lines: Vec<&str> = text.lines().collect();
        lines.remove(1);
        let mut dropped = lines.join("\n");
        dropped.push('\n');
        assert_rejected("dropped-line", &dropped, "digest mismatch");
        // Not a bundle at all.
        assert_rejected("garbage", "hello world\n", "unrecognised header");
        // Unsupported future format.
        let future = text.replacen(
            &format!(
                "{} {}",
                SEGMENT_EXPORT_MAGIC,
                segment::EXPORT_FORMAT_VERSION
            ),
            &format!("{} {}", SEGMENT_EXPORT_MAGIC, 99),
            1,
        );
        assert_rejected("future", &future, "not supported");
    }

    #[test]
    fn default_root_is_fixed_and_environment_free() {
        assert_eq!(
            DiskStore::default_root(),
            std::path::Path::new("target").join("sweep-cache")
        );
    }
}
