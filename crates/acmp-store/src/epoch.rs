//! The snapshot-epoch cache: what lets a long-lived reader (the `sweep
//! serve` process) answer concurrent queries from one coherent store view
//! while writers keep publishing.
//!
//! An [`Epoch`] pins a [`StoreSnapshot`] (keeping every backing segment
//! readable via its open handles, even across a concurrent compaction
//! that unlinks the paths) together with the [`Catalog`] validated
//! against it.  Readers obtain the current epoch as an `Arc` and answer
//! entirely from its in-memory catalog — **zero segment value reads**
//! when the persisted index was fresh at build time.
//!
//! [`EpochCache::current`] is the poll point: it runs
//! [`DiskStore::refresh`] (rename-sensitive since the name-set memo fix)
//! and compares the snapshot fingerprint against the pinned epoch.  A
//! changed fingerprint rolls to a new epoch *without blocking in-flight
//! readers* — they keep their `Arc` to the old epoch, and the old
//! snapshot's file handles drop when the last reader finishes, so open
//! descriptors stay bounded by (segments × epochs-in-flight) with
//! epochs-in-flight almost always 1.  A roll whose catalog had to be
//! scan-built persists the index so the next roll (or process) loads it
//! with zero value reads.
//!
//! A rebuild that fails mid-roll (a racing compaction can delete a
//! segment between the listing and the scan) keeps serving the previous
//! epoch and retries on the next poll — staleness over an outage.

use crate::catalog::{Catalog, CatalogSource};
use crate::index;
use crate::snapshot::StoreSnapshot;
use crate::store::DiskStore;
use parking_lot::Mutex;
use std::io;
use std::sync::Arc;

/// One coherent, immutable store view: a pinned snapshot and the catalog
/// validated against it.  Cheaply shared (`Arc`) across reader threads.
#[derive(Debug)]
pub struct Epoch {
    seq: u64,
    fingerprint: u64,
    snapshot: StoreSnapshot,
    catalog: Catalog,
}

impl Epoch {
    /// Monotone epoch number, starting at 1 for the first build.
    #[must_use]
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// The snapshot fingerprint this epoch was validated against.
    #[must_use]
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// The pinned snapshot (live records + open segment handles).
    #[must_use]
    pub fn snapshot(&self) -> &StoreSnapshot {
        &self.snapshot
    }

    /// The catalog answering queries for this epoch.
    #[must_use]
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }
}

/// The cache: a [`DiskStore`] handle plus the currently pinned epoch.
///
/// Lock order: `roll` is always taken before `current`, never the
/// reverse — `current` is only ever held for a pointer read or swap.
#[derive(Debug)]
pub struct EpochCache {
    store: DiskStore,
    /// The pinned epoch; `None` only before the first successful build.
    current: Mutex<Option<Arc<Epoch>>>,
    /// Serialises rebuilds so concurrent pollers that both observe a stale
    /// fingerprint do not scan the store twice.
    roll: Mutex<()>,
}

impl EpochCache {
    /// Wraps an open store.  No epoch is built yet; the first
    /// [`current`](EpochCache::current) call builds it.
    #[must_use]
    pub fn new(store: DiskStore) -> Self {
        EpochCache {
            store,
            current: Mutex::new(None),
            roll: Mutex::new(()),
        }
    }

    /// The underlying store handle.
    #[must_use]
    pub fn store(&self) -> &DiskStore {
        &self.store
    }

    /// Returns the epoch matching the store's current on-disk state,
    /// refreshing the store and rolling to a new epoch if a writer
    /// published since the pinned one.  In-flight holders of older epochs
    /// are unaffected.
    ///
    /// # Errors
    ///
    /// Returns the I/O error only when no epoch exists yet *and* the
    /// first build fails; once an epoch is pinned, a failed rebuild
    /// (e.g. a racing compaction) serves the previous epoch instead.
    pub fn current(&self) -> io::Result<Arc<Epoch>> {
        match self.poll() {
            Ok(epoch) => Ok(epoch),
            Err(e) => {
                let previous = self.current.lock().clone();
                match previous {
                    Some(epoch) => {
                        acmp_obs::logline!(
                            "epoch rebuild failed ({e}); serving epoch {} until the next poll",
                            epoch.seq()
                        );
                        Ok(epoch)
                    }
                    None => Err(e),
                }
            }
        }
    }

    /// Refreshes, fingerprints, and returns a matching (possibly new)
    /// epoch.
    fn poll(&self) -> io::Result<Arc<Epoch>> {
        self.store.refresh();
        let snapshot = self.store.snapshot()?;
        let fingerprint = index::snapshot_fingerprint(&snapshot);
        if let Some(epoch) = self.pinned(fingerprint) {
            return Ok(epoch);
        }
        self.roll_to(fingerprint, snapshot)
    }

    /// The pinned epoch, if it matches `fingerprint`.
    fn pinned(&self, fingerprint: u64) -> Option<Arc<Epoch>> {
        let current = self.current.lock();
        current
            .as_ref()
            .filter(|e| e.fingerprint == fingerprint)
            .cloned()
    }

    /// Builds and installs the epoch for `fingerprint`.  One roll at a
    /// time: pollers that queued behind the winner find the fresh epoch
    /// on the re-check and skip their own build.
    fn roll_to(&self, fingerprint: u64, snapshot: StoreSnapshot) -> io::Result<Arc<Epoch>> {
        let _rolling = self.roll.lock();
        if let Some(epoch) = self.pinned(fingerprint) {
            return Ok(epoch);
        }
        let catalog = Catalog::open_at(&self.store, &snapshot)?;
        // A scan-built catalog means no fresh persisted index existed;
        // persist it so the next roll — and the next process — answers
        // with zero value reads.  Failure to persist is not failure to
        // serve.
        if catalog.source() == CatalogSource::Scan && !catalog.rows().is_empty() {
            if let Err(e) = catalog.persist(&self.store) {
                acmp_obs::logline!("epoch index persist failed ({e}); serving from memory");
            }
        }
        let mut current = self.current.lock();
        let seq = current.as_ref().map_or(1, |prev| prev.seq + 1);
        if seq > 1 {
            acmp_obs::counter!(acmp_obs::names::STORE_EPOCH_ROLLS, 1);
        }
        let epoch = Arc::new(Epoch {
            seq,
            fingerprint,
            snapshot,
            catalog,
        });
        *current = Some(Arc::clone(&epoch));
        Ok(epoch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RawKey;
    use std::path::PathBuf;

    fn temp_root(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "acmp-store-epoch-test-{tag}-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn result_key(benchmark: &str) -> RawKey {
        RawKey::new(format!(
            "{{\"generator\":{{\"seed\":7}},\"benchmark\":\"{benchmark}\",\
             \"design\":{{\"name\":\"base\",\"sharing\":\"Private\"}}}}"
        ))
    }

    fn save_result(store: &DiskStore, benchmark: &str, cycles: u64) {
        let value: serde::Value =
            serde_json::from_str(&format!("{{\"cycles\":{cycles}}}")).unwrap();
        store.save(&result_key(benchmark), &value).unwrap();
    }

    #[test]
    fn repeated_polls_reuse_the_pinned_epoch() {
        let root = temp_root("reuse");
        let store = DiskStore::open(&root).unwrap();
        save_result(&store, "Cg", 100);
        let cache = EpochCache::new(store);
        let first = cache.current().unwrap();
        assert_eq!(first.seq(), 1);
        assert_eq!(first.catalog().rows().len(), 1);
        let again = cache.current().unwrap();
        assert!(Arc::ptr_eq(&first, &again), "no publish, no roll");
    }

    #[test]
    fn a_publish_rolls_the_epoch_without_touching_held_ones() {
        let root = temp_root("roll");
        let store = DiskStore::open(&root).unwrap();
        save_result(&store, "Cg", 100);
        let cache = EpochCache::new(store);
        let first = cache.current().unwrap();
        // A foreign writer publishes a new segment.
        let writer = DiskStore::open(&root).unwrap();
        save_result(&writer, "Lu", 300);
        let second = cache.current().unwrap();
        assert_eq!(second.seq(), 2);
        assert_eq!(second.catalog().rows().len(), 2);
        // The held epoch still answers its own coherent view.
        assert_eq!(first.catalog().rows().len(), 1);
        assert_ne!(first.fingerprint(), second.fingerprint());
    }

    #[test]
    fn a_held_epoch_survives_compaction_of_its_segments() {
        let root = temp_root("compact");
        let store = DiskStore::open(&root).unwrap();
        save_result(&store, "Cg", 100);
        let cache = EpochCache::new(store);
        let held = cache.current().unwrap();
        // Compaction rewrites into a new generation and unlinks the old
        // segments; the held epoch's snapshot handles keep them readable.
        let writer = DiskStore::open(&root).unwrap();
        save_result(&writer, "Lu", 300);
        writer.compact().unwrap();
        let line = held.snapshot().read_record(0).unwrap();
        assert!(line.contains("\"cycles\":100"), "{line}");
        // And the next poll serves the compacted view.
        let fresh = cache.current().unwrap();
        assert_eq!(fresh.catalog().rows().len(), 2);
    }
}
