//! Immutable generation snapshots: a cheap consistent view of the store.
//!
//! A [`StoreSnapshot`] captures, under the store lock, the live record set
//! *and an open file handle to every backing segment*.  That pair is what
//! makes the view immutable for free:
//!
//! * segments are append-only, so a snapshotted record's `(offset, len)`
//!   span never changes underneath the snapshot, no matter how much is
//!   appended after it;
//! * compaction and generation eviction delete segments *by path* —
//!   unlinking a file a snapshot holds open leaves its bytes readable
//!   through the retained handle until the snapshot is dropped (standard
//!   POSIX unlink semantics).
//!
//! So concurrent appends, compactions and evictions never change what an
//! open snapshot reads; re-reading any record returns byte-identical data
//! for the snapshot's whole lifetime.  The [`Catalog`](crate::Catalog) is
//! built over a snapshot for exactly this reason: its row set corresponds
//! to one coherent generation view even while a sweep keeps writing.

use crate::store::DiskStore;
use crate::StoreKey;
use std::fs::File;
use std::io;
use std::path::PathBuf;
use std::sync::Arc;

/// One live record pinned by a snapshot.
#[derive(Debug, Clone)]
struct SnapshotEntry {
    digest: u64,
    canonical: String,
    segment: usize,
    offset: u64,
    len: u64,
    crc: u64,
}

/// Metadata of one snapshotted record (no value bytes — reading those is
/// explicit and counted).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecordMeta<'a> {
    /// The key digest of the record.
    pub digest: u64,
    /// The canonical key of the record.
    pub canonical: &'a str,
    /// Record line length in bytes (without the newline).
    pub len: u64,
    /// The record's verified value checksum.
    pub crc: u64,
}

/// An immutable view of a store's live record set, pinned against
/// concurrent appends, compactions and evictions by retained file handles.
/// Entries iterate in stable digest order.
#[derive(Debug)]
pub struct StoreSnapshot {
    entries: Vec<SnapshotEntry>,
    /// Open handle per snapshotted segment id; `None` if the file could
    /// not be opened at snapshot time (its entries then error on read).
    files: Vec<Option<Arc<File>>>,
    /// Segment paths, kept for error messages and the non-unix fallback.
    paths: Vec<PathBuf>,
}

impl DiskStore {
    /// Takes a snapshot of the current live record set.  The segments
    /// backing every live record are opened (and held open) before the
    /// store lock is released, so nothing that happens to the store
    /// afterwards can change what this snapshot reads.
    ///
    /// # Errors
    ///
    /// Returns the I/O error only if the snapshot metadata cannot be
    /// assembled; an individual unreadable segment surfaces later, on the
    /// first read of one of its records.
    pub fn snapshot(&self) -> io::Result<StoreSnapshot> {
        let inner = self.inner.lock();
        let paths: Vec<PathBuf> = inner.segments.clone();
        let files: Vec<Option<Arc<File>>> = paths
            .iter()
            .map(|p| File::open(p).ok().map(Arc::new))
            .collect();
        let mut entries: Vec<SnapshotEntry> = inner
            .index
            .iter()
            .map(|(digest, e)| SnapshotEntry {
                digest: *digest,
                canonical: e.canonical.clone(),
                segment: e.segment,
                offset: e.offset,
                len: e.len,
                crc: e.crc,
            })
            .collect();
        entries.sort_unstable_by(|a, b| {
            a.digest
                .cmp(&b.digest)
                .then_with(|| a.canonical.cmp(&b.canonical))
        });
        Ok(StoreSnapshot {
            entries,
            files,
            paths,
        })
    }
}

impl StoreSnapshot {
    /// Number of live records in the snapshot.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the snapshot holds no records.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates the records' metadata in digest order.
    pub fn iter(&self) -> impl Iterator<Item = RecordMeta<'_>> {
        self.entries.iter().map(|e| RecordMeta {
            digest: e.digest,
            canonical: &e.canonical,
            len: e.len,
            crc: e.crc,
        })
    }

    /// Reads the raw record line of the `i`-th entry (digest order).  This
    /// is a segment value fetch and counts against
    /// `acmp_obs::names::STORE_VALUE_READS`.
    ///
    /// # Errors
    ///
    /// Returns the I/O error if the pinned segment cannot be read.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn read_record(&self, i: usize) -> io::Result<String> {
        let entry = &self.entries[i];
        acmp_obs::counter!(acmp_obs::names::STORE_VALUE_READS, 1);
        let mut buf = vec![0u8; entry.len as usize];
        match &self.files[entry.segment] {
            Some(file) => read_exact_at(file, &mut buf, entry.offset)?,
            None => {
                return Err(io::Error::new(
                    io::ErrorKind::NotFound,
                    format!(
                        "segment {} was unreadable at snapshot time",
                        self.paths[entry.segment].display()
                    ),
                ))
            }
        }
        String::from_utf8(buf).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
    }

    /// Reads the record stored under `key` in this snapshot, if present.
    pub fn get(&self, key: &dyn StoreKey) -> Option<io::Result<String>> {
        let i = self.entries.partition_point(|e| e.digest < key.digest());
        self.entries[i..]
            .iter()
            .take_while(|e| e.digest == key.digest())
            .position(|e| e.canonical == key.canonical())
            .map(|off| self.read_record(i + off))
    }
}

/// Positional read that never moves a shared file cursor: snapshots share
/// their handles across threads, so reads must not seek.
#[cfg(unix)]
fn read_exact_at(file: &File, buf: &mut [u8], offset: u64) -> io::Result<()> {
    use std::os::unix::fs::FileExt;
    file.read_exact_at(buf, offset)
}

#[cfg(not(unix))]
fn read_exact_at(file: &File, buf: &mut [u8], offset: u64) -> io::Result<()> {
    // No positional read off unix; clone the handle so the shared cursor
    // is untouched.  (The clone shares the descriptor's offset on some
    // platforms, but windows `seek_read` semantics are covered by the
    // unix path in practice — this fallback is best-effort.)
    use std::io::{Read, Seek, SeekFrom};
    let mut own = file.try_clone()?;
    own.seek(SeekFrom::Start(offset))?;
    own.read_exact(buf)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RawKey;

    fn temp_root(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "acmp-store-snapshot-test-{tag}-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn key(name: &str) -> RawKey {
        RawKey::new(format!("{{\"generator\":1,\"benchmark\":\"{name}\"}}"))
    }

    #[test]
    fn snapshots_iterate_in_digest_order() {
        let store = DiskStore::open(temp_root("order")).unwrap();
        for n in ["cg", "lu", "ep", "mg"] {
            store.save(&key(n), &n.to_string()).unwrap();
        }
        let snap = store.snapshot().unwrap();
        assert_eq!(snap.len(), 4);
        let digests: Vec<u64> = snap.iter().map(|m| m.digest).collect();
        let mut sorted = digests.clone();
        sorted.sort_unstable();
        assert_eq!(digests, sorted);
    }

    #[test]
    fn snapshot_reads_survive_compaction_and_new_appends() {
        let store = DiskStore::open(temp_root("stable")).unwrap();
        let k = key("cg");
        store.save(&k, &vec![1u64, 2, 3]).unwrap();
        let snap = store.snapshot().unwrap();
        let before = snap.get(&k).unwrap().unwrap();

        // Overwrite the key, append more, and compact — which deletes the
        // very segment file the snapshot pinned.
        store.save(&k, &vec![9u64]).unwrap();
        store.save(&key("lu"), &7u64).unwrap();
        store.compact().unwrap();

        // The snapshot still reads the pre-compaction bytes, exactly.
        let after = snap.get(&k).unwrap().unwrap();
        assert_eq!(before, after);
        assert!(after.contains("[1,2,3]"));
        // The store itself serves the new value.
        assert_eq!(store.load::<Vec<u64>>(&k), Some(vec![9]));
    }

    #[test]
    fn snapshot_get_misses_absent_keys() {
        let store = DiskStore::open(temp_root("miss")).unwrap();
        store.save(&key("cg"), &1u64).unwrap();
        let snap = store.snapshot().unwrap();
        assert!(snap.get(&key("lu")).is_none());
    }
}
