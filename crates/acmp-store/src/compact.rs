//! Store compaction: merge live records into a new generation.
//!
//! Appends never rewrite old data, so a long-lived store accumulates dead
//! records (overwritten keys) and segment files from many sessions.
//! [`DiskStore::compact`] copies every *live* record — byte-identically, in
//! stable digest order — into freshly written segment files of the next
//! generation, then deletes all older segments and any orphaned `.tmp`
//! files left behind by crashed writers.  The whole new generation is
//! written to uniquely named temporary files first and renamed into place
//! only once complete, so a failed or crashed write phase leaves the old
//! generation fully intact (plus at worst some orphan `.tmp` files for the
//! *next* compaction to sweep up — the sweep skips temporaries owned by
//! other live processes, so concurrent compactions of a shared store don't
//! delete each other's work in flight).
//!
//! Compaction (like generation-limited eviction) deletes segment files by
//! path, so it must not race *ordinary writers in other processes*: a
//! sweep process concurrently appending to the same store would keep
//! writing into an unlinked segment and lose those cached entries when it
//! exits.  `sweep store compact` is a maintenance command; run it while no
//! sweep is using the store, the same discipline any log-structured
//! store's offline compaction expects.  (Readers holding a
//! [`StoreSnapshot`](crate::StoreSnapshot) are safe regardless: snapshots
//! pin open file handles, and an unlinked segment stays readable through
//! them.)
//!
//! Compaction copies records byte-identically, so the content fingerprint
//! the secondary indexes are validated against (see [`crate::index`]) is
//! unchanged by it — a persisted index stays valid across a compact, and
//! `sweep store compact` still rebuilds it afterwards so the on-disk index
//! segment always reflects a single deterministic build of the current
//! generation.

use crate::segment::{SegmentName, SEGMENT_EXT, SEGMENT_TARGET_BYTES, TMP_EXT};
use crate::store::{next_segment_seq, read_span, DiskStore, IndexEntry, Inner};
use std::collections::HashMap;
use std::fs::OpenOptions;
use std::io::Write;
use std::path::PathBuf;

/// What one compaction pass did.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CompactStats {
    /// Live entries carried into the new generation.
    pub live_entries: u64,
    /// Segment files before compaction.
    pub segments_before: u64,
    /// Segment files after compaction.
    pub segments_after: u64,
    /// Bytes of segment data before compaction (live + dead).
    pub bytes_before: u64,
    /// Bytes of segment data after compaction (live only).
    pub bytes_after: u64,
    /// Old segment files deleted.
    pub removed_segments: u64,
    /// Orphaned temporary files deleted.
    pub removed_tmp: u64,
    /// The generation the live entries now live in.
    pub generation: u64,
}

impl DiskStore {
    /// Merges all live entries into segment files of a new generation,
    /// deletes every older segment and any orphaned `.tmp` files, and
    /// re-points the index at the new files.  Records are copied verbatim,
    /// so compaction can never alter a stored value.
    ///
    /// # Errors
    ///
    /// Returns the I/O error if the new segments cannot be written or
    /// renamed; in that case the store (on disk and in memory) is left as
    /// it was, and the new generation's temporaries and partial outputs
    /// are removed.
    pub fn compact(&self) -> std::io::Result<CompactStats> {
        let _span = acmp_obs::span!(acmp_obs::names::STORE_COMPACT);
        let mut inner = self.inner.lock();
        let new_generation = inner.generation + 1;
        let segments_before = inner.segments.len() as u64;
        let bytes_before: u64 = inner
            .segments
            .iter()
            .map(|p| std::fs::metadata(p).map(|m| m.len()).unwrap_or(0))
            .sum();

        // Copy live records out in stable digest order, so two compactions
        // of equal content produce identical segment files.
        let mut digests: Vec<u64> = inner.index.keys().copied().collect();
        digests.sort_unstable();

        let (new_paths, new_index, live_bytes) =
            self.write_new_generation(&inner, &digests, new_generation)?;

        // The new generation is durable; retire everything older.
        let mut removed_segments = 0u64;
        for old in &inner.segments {
            if std::fs::remove_file(old).is_ok() {
                removed_segments += 1;
            }
        }
        let removed_tmp = self.remove_orphaned_tmp_files();

        inner.segments = new_paths;
        inner.index = new_index;
        inner.active = None;
        inner.generation = new_generation;
        inner.live_bytes = live_bytes;

        Ok(CompactStats {
            live_entries: inner.index.len() as u64,
            segments_before,
            segments_after: inner.segments.len() as u64,
            bytes_before,
            bytes_after: inner
                .segments
                .iter()
                .map(|p| std::fs::metadata(p).map(|m| m.len()).unwrap_or(0))
                .sum(),
            removed_segments,
            removed_tmp,
            generation: new_generation,
        })
    }

    /// Writes all live records into new-generation segment files.  The
    /// entire generation goes to unique `.tmp` files first and is renamed
    /// into place only once *every* output is complete, so a failed write
    /// phase can never leave a partial new generation that a later
    /// generation-limited open would prefer over the intact old one.  On
    /// any error, every temporary and already-renamed output is removed.
    #[allow(clippy::type_complexity)]
    fn write_new_generation(
        &self,
        inner: &Inner,
        digests: &[u64],
        generation: u64,
    ) -> std::io::Result<(Vec<PathBuf>, HashMap<u64, IndexEntry>, u64)> {
        let mut new_index: HashMap<u64, IndexEntry> = HashMap::new();
        let mut live_bytes = 0u64;
        let mut sealed: Vec<(PathBuf, u64)> = Vec::new();
        let mut active: Option<(PathBuf, std::fs::File, u64)> = None;

        let mut write_all = || -> std::io::Result<()> {
            for &digest in digests {
                let entry = &inner.index[&digest];
                let record = read_span(&inner.segments[entry.segment], entry.offset, entry.len)?;

                // Roll to a new output segment past the size target.
                if active.as_ref().is_some_and(|(_, _, len)| {
                    *len > 0 && len + entry.len + 1 > SEGMENT_TARGET_BYTES
                }) {
                    if let Some((path, file, len)) = active.take() {
                        drop(file);
                        sealed.push((path, len));
                    }
                }
                if active.is_none() {
                    let tmp_path = self.unique_tmp_path("compact");
                    let file = OpenOptions::new()
                        .create_new(true)
                        .write(true)
                        .open(&tmp_path)?;
                    active = Some((tmp_path, file, 0));
                }
                // acmp-lint: allow(unwrap-in-lib) -- the None arm directly above just installed it
                let (_, file, len) = active.as_mut().expect("just installed");
                let offset = *len;
                file.write_all(record.as_bytes())?;
                file.write_all(b"\n")?;
                *len += entry.len + 1;
                new_index.insert(
                    digest,
                    IndexEntry {
                        canonical: entry.canonical.clone(),
                        // Outputs are sealed (and later renamed) in order,
                        // so this record's segment id is the sealed count.
                        segment: sealed.len(),
                        offset,
                        len: entry.len,
                        crc: entry.crc,
                    },
                );
                live_bytes += entry.len;
            }
            if let Some((path, file, len)) = active.take() {
                drop(file);
                sealed.push((path, len));
            }
            Ok(())
        };
        if let Err(e) = write_all() {
            for (path, _) in &sealed {
                let _ = std::fs::remove_file(path);
            }
            if let Some((path, _, _)) = &active {
                let _ = std::fs::remove_file(path);
            }
            return Err(e);
        }

        // Every output is complete and durable under its temporary name;
        // promote the whole generation.  A failure mid-way rolls back both
        // the renamed outputs and the remaining temporaries.
        let mut new_paths: Vec<PathBuf> = Vec::with_capacity(sealed.len());
        for (i, (tmp_path, _)) in sealed.iter().enumerate() {
            let name = SegmentName {
                generation,
                pid: std::process::id(),
                seq: next_segment_seq(),
            };
            let final_path = self.root().join(name.file_name());
            if let Err(e) = std::fs::rename(tmp_path, &final_path) {
                for renamed in &new_paths {
                    let _ = std::fs::remove_file(renamed);
                }
                for (pending, _) in &sealed[i..] {
                    let _ = std::fs::remove_file(pending);
                }
                return Err(e);
            }
            new_paths.push(final_path);
        }
        Ok((new_paths, new_index, live_bytes))
    }

    /// Deletes orphaned `.tmp` files in the store directory.  Called under
    /// the store lock once the new generation is in place.  A temporary is
    /// an orphan when it belongs to this process (ours are all renamed or
    /// rolled back by now), to a process that no longer exists, or doesn't
    /// carry a recognisable owner at all — in-flight temporaries of *other
    /// live* processes compacting the same store are left alone.
    fn remove_orphaned_tmp_files(&self) -> u64 {
        let mut removed = 0u64;
        if let Ok(dir) = std::fs::read_dir(self.root()) {
            for entry in dir.flatten() {
                let name = entry.file_name();
                let Some(name) = name.to_str() else { continue };
                if !name.ends_with(&format!(".{TMP_EXT}")) {
                    continue;
                }
                let orphaned = match tmp_owner_pid(name) {
                    Some(pid) => pid == std::process::id() || !process_alive(pid),
                    None => true,
                };
                if orphaned && std::fs::remove_file(entry.path()).is_ok() {
                    removed += 1;
                }
            }
        }
        removed
    }
}

/// Extracts the owner pid from a `.{label}-{pid}-{counter}.tmp` name (the
/// layout `DiskStore::unique_tmp_path` produces).
fn tmp_owner_pid(name: &str) -> Option<u32> {
    let stem = name.strip_suffix(&format!(".{TMP_EXT}"))?;
    let mut parts = stem.rsplit('-');
    let _counter = parts.next()?;
    parts.next()?.parse().ok()
}

/// Whether a process with the given pid currently exists.
#[cfg(target_os = "linux")]
fn process_alive(pid: u32) -> bool {
    std::path::Path::new("/proc").join(pid.to_string()).exists()
}

/// Off Linux there is no cheap portable liveness probe; err on the side of
/// keeping other owners' temporaries.
#[cfg(not(target_os = "linux"))]
fn process_alive(_pid: u32) -> bool {
    true
}

/// Whether a directory entry name looks like a live segment file.  Exposed
/// for tests and the CLI's directory accounting.
#[must_use]
pub fn is_segment_file_name(name: &str) -> bool {
    SegmentName::parse(name).is_some() && name.ends_with(&format!(".{SEGMENT_EXT}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RawKey;
    use std::path::Path;

    fn temp_root(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "acmp-store-compact-test-{tag}-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn keys(n: usize) -> Vec<RawKey> {
        (1..=n)
            .map(|lb| {
                RawKey::new(format!(
                    "{{\"generator\":{{\"seed\":7}},\"benchmark\":\"cg\",\
                     \"design\":{{\"name\":\"lb{lb}\",\"sharing\":\"Private\"}}}}"
                ))
            })
            .collect()
    }

    fn dir_file_count(root: &Path) -> usize {
        std::fs::read_dir(root).unwrap().count()
    }

    #[test]
    fn compaction_preserves_entries_byte_identically() {
        let root = temp_root("roundtrip");
        let store = DiskStore::open(&root).unwrap();
        let keys = keys(20);
        for (i, k) in keys.iter().enumerate() {
            store.save(k, &vec![i as u64; 4]).unwrap();
        }
        // Overwrite half the keys so the log holds dead records.
        for (i, k) in keys.iter().enumerate().filter(|(i, _)| i % 2 == 0) {
            store.save(k, &vec![i as u64; 8]).unwrap();
        }
        let before: Vec<Vec<u64>> = keys
            .iter()
            .map(|k| store.load::<Vec<u64>>(k).unwrap())
            .collect();
        let live_before = store.stats().live_bytes;

        let cs = store.compact().unwrap();
        assert_eq!(cs.live_entries, 20);
        assert!(cs.removed_segments >= 1);
        assert!(
            cs.bytes_after < cs.bytes_before,
            "dropping dead records must shrink the store: {cs:?}"
        );
        assert_eq!(store.stats().live_bytes, live_before);
        assert_eq!(store.stats().entries, 20);

        // Values must round-trip unchanged through the compacted store,
        // from this handle and from a fresh open.
        let after: Vec<Vec<u64>> = keys
            .iter()
            .map(|k| store.load::<Vec<u64>>(k).unwrap())
            .collect();
        assert_eq!(before, after);
        let reopened = DiskStore::open(&root).unwrap();
        for (k, want) in keys.iter().zip(&before) {
            assert_eq!(&reopened.load::<Vec<u64>>(k).unwrap(), want);
        }
    }

    #[test]
    fn compaction_is_deterministic() {
        let write = |root: &Path| {
            let store = DiskStore::open(root).unwrap();
            for (i, k) in keys(10).iter().enumerate() {
                store.save(k, &(i as u64)).unwrap();
            }
            store.compact().unwrap();
            let mut segs: Vec<Vec<u8>> = std::fs::read_dir(root)
                .unwrap()
                .filter(|e| {
                    is_segment_file_name(&e.as_ref().unwrap().file_name().to_string_lossy())
                })
                .map(|e| std::fs::read(e.unwrap().path()).unwrap())
                .collect();
            segs.sort_unstable();
            segs
        };
        let a = temp_root("det-a");
        let b = temp_root("det-b");
        assert_eq!(write(&a), write(&b));
    }

    #[test]
    fn compaction_removes_dead_segments_and_orphaned_tmp_files() {
        let root = temp_root("cleanup");
        // Session 1 and 2 each leave a segment; plus orphaned tmp files (as
        // a crashed compaction or torn writer would): one from a pid that
        // cannot exist, one with no recognisable owner — and one owned by a
        // process that is certainly alive (pid 1), which must survive.
        for v in [1u64, 2] {
            let store = DiskStore::open(&root).unwrap();
            store.save(&keys(1)[0], &v).unwrap();
        }
        std::fs::write(root.join(".compact-4000000000-0.tmp"), "junk").unwrap();
        std::fs::write(root.join("stray.tmp"), "more junk").unwrap();
        std::fs::write(root.join(".compact-1-0.tmp"), "in flight").unwrap();

        let store = DiskStore::open(&root).unwrap();
        let cs = store.compact().unwrap();
        assert_eq!(cs.removed_segments, 2);
        assert_eq!(cs.removed_tmp, 2);
        assert_eq!(cs.segments_after, 1);
        assert!(
            root.join(".compact-1-0.tmp").exists(),
            "a live process's in-flight temporary must not be swept"
        );
        assert_eq!(
            dir_file_count(&root),
            2,
            "only the compacted segment and the live temporary remain"
        );
        assert_eq!(store.load::<u64>(&keys(1)[0]), Some(2));
    }

    #[test]
    fn compacting_an_empty_store_is_a_no_op() {
        let root = temp_root("empty");
        let store = DiskStore::open(&root).unwrap();
        let cs = store.compact().unwrap();
        assert_eq!(cs.live_entries, 0);
        assert_eq!(cs.segments_after, 0);
        assert_eq!(dir_file_count(&root), 0);
    }

    #[test]
    fn appends_after_compaction_land_in_the_new_generation() {
        let root = temp_root("append-after");
        let store = DiskStore::open(&root).unwrap();
        let ks = keys(3);
        store.save(&ks[0], &1u64).unwrap();
        let cs = store.compact().unwrap();
        store.save(&ks[1], &2u64).unwrap();
        assert_eq!(store.stats().generation, cs.generation);
        assert_eq!(store.load::<u64>(&ks[0]), Some(1));
        assert_eq!(store.load::<u64>(&ks[1]), Some(2));
        // A bounded reopen sees one generation and keeps everything.
        let reopened = DiskStore::open_limited(&root, Some(1)).unwrap();
        assert_eq!(reopened.stats().evicted, 0);
        assert_eq!(reopened.load::<u64>(&ks[0]), Some(1));
        assert_eq!(reopened.load::<u64>(&ks[1]), Some(2));
    }
}
