//! A stable, platform-independent content hash.
//!
//! Job keys and on-disk store filenames must be identical across runs,
//! processes and machines, so `std::hash::Hasher` (randomly seeded, and
//! explicitly not stable across releases) is out.  This module implements
//! 64-bit FNV-1a over the canonical JSON encoding of a value: the serde
//! shim's [`Value`] printer is deterministic (object fields keep insertion
//! order, floats use shortest round-trip formatting), so equal values always
//! produce equal digests.

use serde::Serialize;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// 64-bit FNV-1a over a byte string.
#[must_use]
pub fn fnv1a(bytes: &[u8]) -> u64 {
    fnv1a_fold(fnv1a_init(), bytes)
}

/// The initial FNV-1a state, for incremental hashing with [`fnv1a_fold`].
#[must_use]
pub fn fnv1a_init() -> u64 {
    FNV_OFFSET
}

/// Folds more bytes into an FNV-1a state.  `fnv1a_fold(fnv1a_init(), all)`
/// equals folding `all` in any chunking — which is what lets large
/// streams (store export bundles) be digested without materialising them.
#[must_use]
pub fn fnv1a_fold(mut state: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        state ^= u64::from(b);
        state = state.wrapping_mul(FNV_PRIME);
    }
    state
}

/// The canonical (deterministic, compact) JSON encoding of a value.
#[must_use]
pub fn canonical_json<T: Serialize + ?Sized>(value: &T) -> String {
    value.serialize().to_string()
}

/// Digest of a serialisable value: FNV-1a over its canonical JSON.
#[must_use]
pub fn digest<T: Serialize + ?Sized>(value: &T) -> u64 {
    fnv1a(canonical_json(value).as_bytes())
}

/// Formats a digest the way the on-disk store names its entries.
#[must_use]
pub fn hex(digest: u64) -> String {
    format!("{digest:016x}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_matches_reference_vectors() {
        // Published FNV-1a test vectors.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x8594_4171_f739_67e8);
    }

    #[test]
    fn incremental_folding_matches_one_shot_hashing() {
        let data = b"the quick brown fox jumps over the lazy dog";
        for split in [0, 1, 10, data.len()] {
            let state = fnv1a_fold(fnv1a_init(), &data[..split]);
            assert_eq!(fnv1a_fold(state, &data[split..]), fnv1a(data), "{split}");
        }
    }

    #[test]
    fn digest_is_stable_across_calls() {
        let a = digest(&vec![1u64, 2, 3]);
        let b = digest(&vec![1u64, 2, 3]);
        assert_eq!(a, b);
        assert_ne!(a, digest(&vec![1u64, 2, 4]));
    }

    #[test]
    fn hex_is_fixed_width() {
        assert_eq!(hex(0).len(), 16);
        assert_eq!(hex(u64::MAX), "ffffffffffffffff");
    }
}
