//! Persisted secondary indexes: sorted postings (or bitmaps) over the
//! catalog's facets, written as index segments beside the data segments.
//!
//! An index segment (`idx-<gen>-<pid>-<seq>.idx`) holds the complete
//! [`ResultRow`](crate::ResultRow) set plus a postings list per *term*:
//!
//! * equality facets — `benchmark=cg`, `family=worker-shared`,
//!   `design=baseline-2lb`, `scale=<16-hex generator digest>`;
//! * bucketed metric facets — `cycles#20`, where the bucket is the
//!   metric value's binary exponent (see [`metric_bucket`]).
//!
//! Dense terms store their row ordinals as a bitmap of 64-bit words
//! instead of a sorted list, whichever is smaller.
//!
//! The file is self-validating: its header carries a **fingerprint** of
//! the key index it was built from (folded over the digest-sorted result
//! entries' `(digest, len, crc)` triples) and a digest of its own body.
//! On open, the fingerprint is recomputed from the live key index — a
//! metadata-only operation — and compared; any mismatch (new results,
//! overwrites, a foreign writer) silently demotes the opener to a value
//! scan.  Because compaction copies records verbatim, the triples — and
//! hence the fingerprint — survive `store compact`: a rebuilt index over
//! unchanged data validates against the same fingerprint and answers
//! byte-identically.

use crate::catalog::{Catalog, ResultRow};
use crate::snapshot::StoreSnapshot;
use crate::stable_hash;
use crate::store::DiskStore;
use serde::Value;
use std::collections::BTreeMap;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Extension of index segment files.
pub const INDEX_EXT: &str = "idx";

/// Magic token opening an index segment header.
pub const INDEX_MAGIC: &str = "acmp-store-index";

/// Index segment format version.
pub const INDEX_FORMAT_VERSION: u32 = 1;

/// Freshness of the persisted secondary index relative to the key index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IndexStatus {
    /// No index segment exists.
    Absent,
    /// An index segment's fingerprint matches the live key index.
    Fresh,
    /// Index segments exist, but none matches — queries will scan.
    Stale,
}

impl IndexStatus {
    /// The lowercase label `store stats` prints.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            IndexStatus::Absent => "absent",
            IndexStatus::Fresh => "fresh",
            IndexStatus::Stale => "stale",
        }
    }
}

/// Shape of the persisted secondary index, as reported by `store stats`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IndexStats {
    /// Index segment files on disk.
    pub files: u64,
    /// Result rows in the newest index segment.
    pub rows: u64,
    /// Postings lists in the newest index segment.
    pub postings: u64,
    /// Distinct bucketed metric terms among those postings.
    pub buckets: u64,
    /// Freshness relative to the live key index.
    pub status: IndexStatus,
}

/// The bucket a metric value indexes under: the value's unbiased binary
/// exponent for positive values, `-1` for zero, negatives and NaN.  Pure
/// bit extraction, so identical on every platform — a prerequisite for
/// byte-stable index segments.
#[must_use]
pub fn metric_bucket(v: f64) -> i64 {
    if v > 0.0 {
        ((v.to_bits() >> 52) & 0x7ff) as i64 - 1023
    } else {
        -1
    }
}

/// Fingerprint of a snapshot's result records: an fnv1a fold over the
/// digest-sorted `(digest, len, crc)` triples.  Metadata-only (no value
/// reads), and invariant under compaction since records are copied
/// verbatim.
#[must_use]
pub fn snapshot_fingerprint(snapshot: &StoreSnapshot) -> u64 {
    let mut acc = stable_hash::fnv1a_init();
    for meta in snapshot.iter() {
        if !crate::catalog::is_result_key(meta.canonical) {
            continue;
        }
        acc = stable_hash::fnv1a_fold(acc, &meta.digest.to_le_bytes());
        acc = stable_hash::fnv1a_fold(acc, &meta.len.to_le_bytes());
        acc = stable_hash::fnv1a_fold(acc, &meta.crc.to_le_bytes());
    }
    acc
}

/// Builds the term → sorted-row-ordinals postings for a digest-sorted row
/// set.  Terms are lowercase; metric terms use `<metric>#<bucket>`.
#[must_use]
pub(crate) fn build_postings(rows: &[ResultRow]) -> BTreeMap<String, Vec<u32>> {
    let mut postings: BTreeMap<String, Vec<u32>> = BTreeMap::new();
    for (i, row) in rows.iter().enumerate() {
        let ordinal = i as u32;
        let mut add = |term: String| postings.entry(term).or_default().push(ordinal);
        add(format!("benchmark={}", row.benchmark.to_ascii_lowercase()));
        add(format!("family={}", row.family.to_ascii_lowercase()));
        add(format!("design={}", row.design.to_ascii_lowercase()));
        add(format!("scale={}", row.scale.to_ascii_lowercase()));
        for (name, value) in &row.metrics {
            if let Some(v) = crate::catalog::number(value) {
                add(format!("{name}#{}", metric_bucket(v)));
            }
        }
    }
    postings
}

/// File name of an index segment. Mirrors the data segment scheme with a
/// distinct prefix and extension so [`crate::segment::SegmentName::parse`]
/// (and hence segment listing, import and compaction) never picks one up.
#[must_use]
fn index_file_name(generation: u64, pid: u32, seq: u64) -> String {
    format!("idx-{generation:08}-{pid}-{seq:04}.{INDEX_EXT}")
}

/// All index segment files under `root`, name-sorted ascending (the last
/// entry is the newest by generation/pid/seq).
fn list_index_files(root: &Path) -> Vec<PathBuf> {
    let Ok(entries) = fs::read_dir(root) else {
        return Vec::new();
    };
    let mut files: Vec<PathBuf> = entries
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| {
            p.extension().and_then(|e| e.to_str()) == Some(INDEX_EXT)
                && p.file_name()
                    .and_then(|n| n.to_str())
                    .is_some_and(|n| n.starts_with("idx-"))
        })
        .collect();
    files.sort();
    files
}

/// Parsed header of an index segment: `(rows, postings, fingerprint,
/// body digest)`.
fn parse_header(line: &str) -> Option<(u64, u64, u64, u64)> {
    let mut parts = line.split(' ');
    if parts.next() != Some(INDEX_MAGIC) {
        return None;
    }
    if parts.next()?.parse::<u32>().ok()? != INDEX_FORMAT_VERSION {
        return None;
    }
    let rows = parts.next()?.parse().ok()?;
    let postings = parts.next()?.parse().ok()?;
    let fingerprint = parse_hex(parts.next()?)?;
    let body = parse_hex(parts.next()?)?;
    if parts.next().is_some() {
        return None;
    }
    Some((rows, postings, fingerprint, body))
}

fn parse_hex(s: &str) -> Option<u64> {
    if s.len() != 16 {
        return None;
    }
    u64::from_str_radix(s, 16).ok()
}

/// Serialises one row as a deterministic JSON line.
fn encode_row(row: &ResultRow) -> String {
    let metrics = Value::Object(
        row.metrics
            .iter()
            .map(|(n, v)| (n.clone(), v.clone()))
            .collect(),
    );
    Value::Object(vec![
        (
            "digest".to_string(),
            Value::String(stable_hash::hex(row.digest)),
        ),
        (
            "benchmark".to_string(),
            Value::String(row.benchmark.clone()),
        ),
        ("family".to_string(), Value::String(row.family.clone())),
        ("design".to_string(), Value::String(row.design.clone())),
        ("scale".to_string(), Value::String(row.scale.clone())),
        ("metrics".to_string(), metrics),
    ])
    .to_string()
}

fn decode_row(line: &str) -> Option<ResultRow> {
    let v: Value = serde_json::from_str(line).ok()?;
    let fields = v.as_object()?;
    let digest = parse_hex(serde::get_field(fields, "digest").ok()?.as_str()?)?;
    let string = |name: &str| -> Option<String> {
        Some(serde::get_field(fields, name).ok()?.as_str()?.to_string())
    };
    let metrics = serde::get_field(fields, "metrics")
        .ok()?
        .as_object()?
        .to_vec();
    Some(ResultRow {
        digest,
        benchmark: string("benchmark")?,
        family: string("family")?,
        design: string("design")?,
        scale: string("scale")?,
        metrics,
    })
}

/// Serialises one postings list, choosing the smaller of a sorted ordinal
/// list (~32 bits per row) and a bitmap over the row universe (1 bit per
/// row).
fn encode_posting(term: &str, ordinals: &[u32], universe: usize) -> String {
    let as_bitmap = ordinals.len() * 32 > universe;
    let payload = if as_bitmap {
        let words = universe.div_ceil(64);
        let mut bits = vec![0u64; words];
        for &o in ordinals {
            bits[o as usize / 64] |= 1u64 << (o as usize % 64);
        }
        (
            "bitmap".to_string(),
            Value::Array(
                bits.into_iter()
                    .map(|w| Value::String(stable_hash::hex(w)))
                    .collect(),
            ),
        )
    } else {
        (
            "rows".to_string(),
            Value::Array(
                ordinals
                    .iter()
                    .map(|&o| Value::UInt(u64::from(o)))
                    .collect(),
            ),
        )
    };
    Value::Object(vec![
        ("term".to_string(), Value::String(term.to_string())),
        payload,
    ])
    .to_string()
}

fn decode_posting(line: &str) -> Option<(String, Vec<u32>)> {
    let v: Value = serde_json::from_str(line).ok()?;
    let fields = v.as_object()?;
    let term = serde::get_field(fields, "term").ok()?.as_str()?.to_string();
    if let Ok(rows) = serde::get_field(fields, "rows") {
        let Value::Array(items) = rows else {
            return None;
        };
        let mut out = Vec::with_capacity(items.len());
        for item in items {
            match item {
                Value::UInt(n) => out.push(u32::try_from(*n).ok()?),
                _ => return None,
            }
        }
        return Some((term, out));
    }
    let Value::Array(words) = serde::get_field(fields, "bitmap").ok()? else {
        return None;
    };
    let mut out = Vec::new();
    for (w, word) in words.iter().enumerate() {
        let mut bits = parse_hex(word.as_str()?)?;
        while bits != 0 {
            let b = bits.trailing_zeros();
            out.push(u32::try_from(w * 64 + b as usize).ok()?);
            bits &= bits - 1;
        }
    }
    Some((term, out))
}

/// Writes `catalog` as a new index segment under the store directory and
/// retires every older index segment.  Returns the new file's path.
///
/// # Errors
///
/// Returns the I/O error if the segment cannot be written or renamed into
/// place.
pub(crate) fn write_index(store: &DiskStore, catalog: &Catalog) -> io::Result<PathBuf> {
    let rows = catalog.rows();
    let postings = catalog.postings();
    let mut body = String::new();
    for row in rows {
        body.push_str(&encode_row(row));
        body.push('\n');
    }
    for (term, ordinals) in postings {
        body.push_str(&encode_posting(term, ordinals, rows.len()));
        body.push('\n');
    }
    let header = format!(
        "{INDEX_MAGIC} {INDEX_FORMAT_VERSION} {} {} {} {}\n",
        rows.len(),
        postings.len(),
        stable_hash::hex(catalog.fingerprint()),
        stable_hash::hex(stable_hash::fnv1a(body.as_bytes())),
    );

    let stats = store.stats();
    let final_path = store.root().join(index_file_name(
        stats.generation,
        std::process::id(),
        crate::store::next_segment_seq(),
    ));
    let tmp = store.unique_tmp_path("index");
    fs::write(&tmp, format!("{header}{body}"))?;
    fs::rename(&tmp, &final_path)?;
    for old in list_index_files(store.root()) {
        if old != final_path {
            let _ = fs::remove_file(old);
        }
    }
    Ok(final_path)
}

/// A decoded index body: digest-sorted rows and term-sorted postings.
pub(crate) type LoadedIndex = (Vec<ResultRow>, BTreeMap<String, Vec<u32>>);

/// Loads the persisted index matching `fingerprint`, if a valid one
/// exists.  Any header, digest or body inconsistency returns `None` — the
/// caller falls back to a scan, never to corrupt data.
#[must_use]
pub(crate) fn load_index(root: &Path, fingerprint: u64) -> Option<LoadedIndex> {
    for path in list_index_files(root).into_iter().rev() {
        let Ok(text) = fs::read_to_string(&path) else {
            continue;
        };
        let mut lines = text.lines();
        let Some((row_count, posting_count, fp, body_digest)) = lines.next().and_then(parse_header)
        else {
            continue;
        };
        if fp != fingerprint {
            continue;
        }
        let body = &text[text.find('\n').map(|i| i + 1).unwrap_or(text.len())..];
        if stable_hash::fnv1a(body.as_bytes()) != body_digest {
            continue;
        }
        let mut rows = Vec::with_capacity(row_count as usize);
        let mut postings = BTreeMap::new();
        let mut ok = true;
        for line in lines {
            if (rows.len() as u64) < row_count {
                match decode_row(line) {
                    Some(row) => rows.push(row),
                    None => {
                        ok = false;
                        break;
                    }
                }
            } else {
                match decode_posting(line) {
                    Some((term, ordinals)) => {
                        postings.insert(term, ordinals);
                    }
                    None => {
                        ok = false;
                        break;
                    }
                }
            }
        }
        if ok && rows.len() as u64 == row_count && postings.len() as u64 == posting_count {
            return Some((rows, postings));
        }
    }
    None
}

impl DiskStore {
    /// Shape and freshness of the persisted secondary index, for
    /// `store stats`.  Metadata-only: reads index segment headers and the
    /// key index, never segment values.
    ///
    /// # Errors
    ///
    /// Returns the I/O error if the live key index cannot be snapshotted.
    pub fn index_stats(&self) -> io::Result<IndexStats> {
        let snapshot = self.snapshot()?;
        let fingerprint = snapshot_fingerprint(&snapshot);
        let files = list_index_files(self.root());
        if files.is_empty() {
            return Ok(IndexStats {
                files: 0,
                rows: 0,
                postings: 0,
                buckets: 0,
                status: IndexStatus::Absent,
            });
        }
        let mut stats = IndexStats {
            files: files.len() as u64,
            rows: 0,
            postings: 0,
            buckets: 0,
            status: IndexStatus::Stale,
        };
        // Shape comes from the newest segment; freshness from whichever
        // segment (if any) matches the live fingerprint.
        if let Some(newest) = files.last() {
            if let Ok(text) = fs::read_to_string(newest) {
                let mut lines = text.lines();
                if let Some((rows, postings, fp, _)) = lines.next().and_then(parse_header) {
                    stats.rows = rows;
                    stats.postings = postings;
                    stats.buckets = lines
                        .skip(rows as usize)
                        .filter_map(decode_posting)
                        .filter(|(term, _)| term.contains('#'))
                        .count() as u64;
                    if fp == fingerprint {
                        stats.status = IndexStatus::Fresh;
                    }
                }
            }
        }
        if stats.status != IndexStatus::Fresh && files.len() > 1 {
            for path in files.iter().rev().skip(1) {
                let header = read_first_line(path);
                if header
                    .as_deref()
                    .and_then(parse_header)
                    .is_some_and(|(_, _, fp, _)| fp == fingerprint)
                {
                    stats.status = IndexStatus::Fresh;
                    break;
                }
            }
        }
        Ok(stats)
    }
}

fn read_first_line(path: &Path) -> Option<String> {
    use std::io::BufRead;
    let file = fs::File::open(path).ok()?;
    let mut line = String::new();
    std::io::BufReader::new(file).read_line(&mut line).ok()?;
    Some(line.trim_end().to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::Catalog;
    use crate::RawKey;

    fn temp_root(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "acmp-store-index-test-{tag}-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn result_key(benchmark: &str, design: &str) -> RawKey {
        RawKey::new(format!(
            "{{\"generator\":{{\"seed\":7}},\"benchmark\":\"{benchmark}\",\
             \"design\":{{\"name\":\"{design}\",\"sharing\":\"Private\"}}}}"
        ))
    }

    fn value(cycles: u64) -> serde::Value {
        serde_json::from_str(&format!("{{\"cycles\":{cycles},\"ipc\":0.5}}")).unwrap()
    }

    #[test]
    fn metric_buckets_follow_the_binary_exponent() {
        assert_eq!(metric_bucket(1.0), 0);
        assert_eq!(metric_bucket(2.0), 1);
        assert_eq!(metric_bucket(3.9), 1);
        assert_eq!(metric_bucket(1024.0), 10);
        // 0.5's exponent bucket collides with the non-positive bucket by
        // construction; pruning stays conservative, so this is harmless.
        assert_eq!(metric_bucket(0.5), -1);
        assert_eq!(metric_bucket(0.0), -1);
        assert_eq!(metric_bucket(-5.0), -1);
        assert_eq!(metric_bucket(f64::NAN), -1);
    }

    #[test]
    fn postings_round_trip_in_both_representations() {
        // Sparse: a few ordinals in a large universe -> sorted list.
        let sparse = encode_posting("benchmark=cg", &[0, 17, 40_000], 100_000);
        assert!(sparse.contains("\"rows\""));
        assert_eq!(
            decode_posting(&sparse),
            Some(("benchmark=cg".to_string(), vec![0, 17, 40_000]))
        );
        // Dense: most ordinals of a small universe -> bitmap.
        let all: Vec<u32> = (0..100).collect();
        let dense = encode_posting("family=private", &all, 100);
        assert!(dense.contains("\"bitmap\""));
        assert_eq!(
            decode_posting(&dense),
            Some(("family=private".to_string(), all))
        );
    }

    #[test]
    fn fingerprint_survives_compaction_but_not_new_results() {
        let store = DiskStore::open(temp_root("fp")).unwrap();
        store.save(&result_key("cg", "a"), &value(10)).unwrap();
        store.save(&result_key("lu", "a"), &value(20)).unwrap();
        let before = snapshot_fingerprint(&store.snapshot().unwrap());

        store.compact().unwrap();
        let compacted = snapshot_fingerprint(&store.snapshot().unwrap());
        assert_eq!(
            before, compacted,
            "verbatim record copies keep the fingerprint"
        );

        store.save(&result_key("ep", "a"), &value(30)).unwrap();
        let grown = snapshot_fingerprint(&store.snapshot().unwrap());
        assert_ne!(before, grown);
    }

    #[test]
    fn persisted_index_round_trips_and_reports_fresh() {
        let store = DiskStore::open(temp_root("roundtrip")).unwrap();
        for (b, d, c) in [("cg", "a", 10), ("cg", "b", 20), ("lu", "a", 30)] {
            store.save(&result_key(b, d), &value(c)).unwrap();
        }
        let built = Catalog::open(&store).unwrap();
        assert_eq!(built.source(), crate::CatalogSource::Scan);
        built.persist(&store).unwrap();

        let stats = store.index_stats().unwrap();
        assert_eq!(stats.status, IndexStatus::Fresh);
        assert_eq!(stats.rows, 3);
        assert!(stats.postings > 0);
        assert!(stats.buckets > 0);

        let reopened = Catalog::open(&store).unwrap();
        assert_eq!(reopened.source(), crate::CatalogSource::Index);
        assert_eq!(reopened.rows(), built.rows());
        assert_eq!(reopened.postings(), built.postings());
    }

    #[test]
    fn new_writes_make_the_index_stale_and_openers_fall_back() {
        let store = DiskStore::open(temp_root("stale")).unwrap();
        store.save(&result_key("cg", "a"), &value(10)).unwrap();
        Catalog::open(&store).unwrap().persist(&store).unwrap();
        assert_eq!(store.index_stats().unwrap().status, IndexStatus::Fresh);

        store.save(&result_key("lu", "a"), &value(20)).unwrap();
        assert_eq!(store.index_stats().unwrap().status, IndexStatus::Stale);
        let catalog = Catalog::open(&store).unwrap();
        assert_eq!(catalog.source(), crate::CatalogSource::Scan);
        assert_eq!(catalog.rows().len(), 2);
    }

    #[test]
    fn index_files_are_invisible_to_the_segment_listing() {
        let store = DiskStore::open(temp_root("invisible")).unwrap();
        store.save(&result_key("cg", "a"), &value(10)).unwrap();
        let segments_before = store.stats().segments;
        Catalog::open(&store).unwrap().persist(&store).unwrap();

        // A fresh handle lists the directory from scratch; the idx file
        // must not be picked up as a data segment.
        let reopened = DiskStore::open(store.root().to_path_buf()).unwrap();
        assert_eq!(reopened.stats().segments, segments_before);
        assert_eq!(reopened.stats().entries, 1);
    }

    #[test]
    fn corrupt_index_segments_are_rejected() {
        let store = DiskStore::open(temp_root("corrupt")).unwrap();
        store.save(&result_key("cg", "a"), &value(10)).unwrap();
        let path = Catalog::open(&store).unwrap().persist(&store).unwrap();

        let mut text = fs::read_to_string(&path).unwrap();
        text = text.replace("\"cycles\"", "\"cycl3s\"");
        fs::write(&path, text).unwrap();

        let catalog = Catalog::open(&store).unwrap();
        assert_eq!(
            catalog.source(),
            crate::CatalogSource::Scan,
            "body digest mismatch"
        );
    }
}
