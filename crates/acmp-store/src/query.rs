//! The sweep query language: conjunctive filters plus top-k ranking,
//! answered entirely from the [`Catalog`].
//!
//! # Grammar
//!
//! A query is a conjunction of filters, each one token:
//!
//! * **facet equality** — `benchmark=cg`, `family=worker-shared`,
//!   `design=baseline-2lb`, `scale=<16-hex>`; only those four fields admit
//!   `=`, and matching is case-insensitive;
//! * **metric comparison** — `<metric><op><number>` with op one of `<=`,
//!   `>=`, `<`, `>`, e.g. `cycles<=1000000` or `worker_icache.misses>0`.
//!
//! Ranking is by a metric (`--by cycles`), ascending by default
//! (`--desc` flips it), truncated to the top-k.  Rows lacking the ranking
//! metric are excluded.  Ties break on the key digest, so results are
//! fully deterministic.
//!
//! # Execution
//!
//! Facet filters intersect the catalog's postings lists.  Metric filters
//! prune via the bucketed metric postings — a comparison against `c` can
//! only be satisfied in buckets on `c`'s side of [`metric_bucket`]`(c)` —
//! then apply the exact comparison to the surviving rows' in-catalog
//! metric values.  Nothing ever touches a segment value: a query over a
//! warm catalog performs **zero** segment value reads, observable through
//! `acmp_obs::names::STORE_VALUE_READS`.

use crate::catalog::{Catalog, ResultRow};
use crate::index::metric_bucket;
use std::fmt;

/// Comparison operator of a metric filter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Cmp {
    /// `<=`
    Le,
    /// `>=`
    Ge,
    /// `<`
    Lt,
    /// `>`
    Gt,
}

impl Cmp {
    /// Whether `value` compares against `bound` under this operator.
    #[must_use]
    pub fn admits(&self, value: f64, bound: f64) -> bool {
        match self {
            Cmp::Le => value <= bound,
            Cmp::Ge => value >= bound,
            Cmp::Lt => value < bound,
            Cmp::Gt => value > bound,
        }
    }

    /// The operator's surface syntax.
    #[must_use]
    pub fn token(&self) -> &'static str {
        match self {
            Cmp::Le => "<=",
            Cmp::Ge => ">=",
            Cmp::Lt => "<",
            Cmp::Gt => ">",
        }
    }
}

/// The facet fields that admit `=` filters.
pub const FACET_FIELDS: [&str; 4] = ["benchmark", "family", "design", "scale"];

/// One conjunct of a query.
#[derive(Debug, Clone, PartialEq)]
pub enum Filter {
    /// Facet equality, e.g. `benchmark=cg`.  `value` is stored lowercased.
    Field {
        /// One of [`FACET_FIELDS`].
        field: String,
        /// The required value (lowercase).
        value: String,
    },
    /// Metric comparison, e.g. `cycles<=1000000`.
    Metric {
        /// Flattened metric name (`cycles`, `bus.transactions`, …).
        metric: String,
        /// The comparison operator.
        cmp: Cmp,
        /// The bound.
        value: f64,
    },
}

impl Filter {
    /// Parses one filter token of the grammar.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message when the token fits no production.
    pub fn parse(token: &str) -> Result<Filter, String> {
        // Two-char operators first so `<=` is not read as `<` + `=…`.
        for (op, cmp) in [
            ("<=", Cmp::Le),
            (">=", Cmp::Ge),
            ("<", Cmp::Lt),
            (">", Cmp::Gt),
        ] {
            if let Some(at) = token.find(op) {
                let metric = token[..at].trim();
                let bound = token[at + op.len()..].trim();
                if metric.is_empty() {
                    return Err(format!("filter `{token}`: missing metric before `{op}`"));
                }
                let value: f64 = bound
                    .parse()
                    .map_err(|_| format!("filter `{token}`: `{bound}` is not a number"))?;
                if !value.is_finite() {
                    return Err(format!("filter `{token}`: bound must be finite"));
                }
                return Ok(Filter::Metric {
                    metric: metric.to_string(),
                    cmp,
                    value,
                });
            }
        }
        if let Some(at) = token.find('=') {
            let field = token[..at].trim().to_ascii_lowercase();
            let value = token[at + 1..].trim().to_ascii_lowercase();
            if !FACET_FIELDS.contains(&field.as_str()) {
                return Err(format!(
                    "filter `{token}`: `=` applies to {} (metrics use <=, >=, <, >)",
                    FACET_FIELDS.join("/")
                ));
            }
            if value.is_empty() {
                return Err(format!("filter `{token}`: missing value after `=`"));
            }
            return Ok(Filter::Field { field, value });
        }
        Err(format!(
            "filter `{token}`: expected field=value or metric<op>number"
        ))
    }
}

impl fmt::Display for Filter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Filter::Field { field, value } => write!(f, "{field}={value}"),
            Filter::Metric { metric, cmp, value } => {
                write!(f, "{metric}{}{value}", cmp.token())
            }
        }
    }
}

/// A complete query: conjunctive filters, the ranking metric, and the cut.
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    /// All filters; a row must satisfy every one.
    pub filters: Vec<Filter>,
    /// The metric results are ranked by.  Rows lacking it are excluded.
    pub by: String,
    /// Keep only the first `top` rows after ranking (`None` = all).
    pub top: Option<usize>,
    /// Rank descending instead of ascending.
    pub descending: bool,
}

impl Query {
    /// Parses filter tokens into a query ranked by `by`.
    ///
    /// # Errors
    ///
    /// Returns the first filter parse error.
    pub fn parse(
        filters: &[String],
        by: &str,
        top: Option<usize>,
        descending: bool,
    ) -> Result<Query, String> {
        let filters = filters
            .iter()
            .map(|t| Filter::parse(t))
            .collect::<Result<Vec<_>, _>>()?;
        if by.trim().is_empty() {
            return Err("ranking metric (--by) must not be empty".to_string());
        }
        Ok(Query {
            filters,
            by: by.trim().to_string(),
            top,
            descending,
        })
    }
}

/// One ranked query result.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QueryHit<'a> {
    /// The matching catalog row.
    pub row: &'a ResultRow,
    /// The row's value of the ranking metric.
    pub value: f64,
}

impl QueryHit<'_> {
    /// Renders this hit as the one JSONL line shape shared by `sweep
    /// query` and `sweep serve` — a single renderer is what makes the two
    /// byte-identical by construction.  `by` is the query's ranking
    /// metric; `value` is the row's stored metric value (so integers stay
    /// integers), falling back to the ranked float.
    #[must_use]
    pub fn to_jsonl(&self, by: &str) -> String {
        let value = self
            .row
            .metric(by)
            .cloned()
            .unwrap_or(serde::Value::Float(self.value));
        serde::Value::Object(vec![
            ("key".to_string(), serde::Value::String(self.row.key_hex())),
            (
                "benchmark".to_string(),
                serde::Value::String(self.row.benchmark.clone()),
            ),
            (
                "family".to_string(),
                serde::Value::String(self.row.family.clone()),
            ),
            (
                "design".to_string(),
                serde::Value::String(self.row.design.clone()),
            ),
            ("metric".to_string(), serde::Value::String(by.to_string())),
            ("value".to_string(), value),
        ])
        .to_string()
    }
}

/// Intersection of two sorted ordinal lists.
fn intersect(a: &[u32], b: &[u32]) -> Vec<u32> {
    let mut out = Vec::with_capacity(a.len().min(b.len()));
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out
}

/// Sorted union of several sorted ordinal lists.
fn union(lists: &[&Vec<u32>]) -> Vec<u32> {
    let mut out: Vec<u32> = lists.iter().flat_map(|l| l.iter().copied()).collect();
    out.sort_unstable();
    out.dedup();
    out
}

/// Runs `query` against `catalog`.  See the module docs for semantics.
#[must_use]
pub(crate) fn run<'a>(catalog: &'a Catalog, query: &Query) -> Vec<QueryHit<'a>> {
    let mut span = acmp_obs::span!(acmp_obs::names::STORE_QUERY);
    span.record_field("filters", query.filters.len());

    let rows = catalog.rows();
    let postings = catalog.postings();
    // `None` means "all rows" — avoids materialising the universe when the
    // first filter is already selective.
    let mut candidates: Option<Vec<u32>> = None;
    let narrow = |set: Vec<u32>, candidates: &mut Option<Vec<u32>>| {
        *candidates = Some(match candidates.take() {
            Some(prev) => intersect(&prev, &set),
            None => set,
        });
    };

    for filter in &query.filters {
        match filter {
            Filter::Field { field, value } => {
                let term = format!("{field}={value}");
                let set = postings.get(&term).cloned().unwrap_or_default();
                narrow(set, &mut candidates);
            }
            Filter::Metric { metric, cmp, value } => {
                // Bucket pruning: a row can satisfy the comparison only if
                // its bucket is on the bound's side of bucket(value).  The
                // exact comparison below is always applied, so pruning can
                // be conservative.
                let pivot = metric_bucket(*value);
                let prefix = format!("{metric}#");
                let allowed: Vec<&Vec<u32>> = postings
                    .range(prefix.clone()..)
                    .take_while(|(term, _)| term.starts_with(&prefix))
                    .filter(|(term, _)| {
                        term[prefix.len()..]
                            .parse::<i64>()
                            .is_ok_and(|b| match cmp {
                                // Bucket -1 (zero/negatives, and 0.5..1 by
                                // construction) can always hold a value below
                                // the bound; positive buckets are monotone.
                                Cmp::Le | Cmp::Lt => b == -1 || b <= pivot,
                                // A non-positive bound is satisfied by every
                                // positive value, whatever its bucket.
                                Cmp::Ge | Cmp::Gt => *value <= 0.0 || b >= pivot,
                            })
                    })
                    .map(|(_, ordinals)| ordinals)
                    .collect();
                narrow(union(&allowed), &mut candidates);
            }
        }
    }

    let universe: Vec<u32>;
    let candidates: &[u32] = match &candidates {
        Some(c) => c,
        None => {
            universe = (0..rows.len() as u32).collect();
            &universe
        }
    };

    let mut hits: Vec<QueryHit<'a>> = candidates
        .iter()
        .map(|&o| &rows[o as usize])
        .filter(|row| {
            query.filters.iter().all(|f| match f {
                Filter::Field { .. } => true, // postings are exact
                Filter::Metric { metric, cmp, value } => row
                    .metric_f64(metric)
                    .is_some_and(|v| cmp.admits(v, *value)),
            })
        })
        .filter_map(|row| {
            row.metric_f64(&query.by)
                .map(|value| QueryHit { row, value })
        })
        .collect();

    hits.sort_by(|a, b| {
        let values = if query.descending {
            b.value.total_cmp(&a.value)
        } else {
            a.value.total_cmp(&b.value)
        };
        values.then_with(|| a.row.digest.cmp(&b.row.digest))
    });
    if let Some(top) = query.top {
        hits.truncate(top);
    }
    span.record_field("hits", hits.len());
    hits
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::DiskStore;
    use crate::RawKey;
    use std::path::PathBuf;

    #[test]
    fn filters_parse_per_the_grammar() {
        assert_eq!(
            Filter::parse("benchmark=CG"),
            Ok(Filter::Field {
                field: "benchmark".into(),
                value: "cg".into()
            })
        );
        assert_eq!(
            Filter::parse("cycles<=1e6"),
            Ok(Filter::Metric {
                metric: "cycles".into(),
                cmp: Cmp::Le,
                value: 1e6
            })
        );
        assert_eq!(
            Filter::parse("worker_icache.misses>0"),
            Ok(Filter::Metric {
                metric: "worker_icache.misses".into(),
                cmp: Cmp::Gt,
                value: 0.0
            })
        );
        assert!(Filter::parse("cycles=5").is_err(), "`=` is facet-only");
        assert!(Filter::parse("benchmark").is_err());
        assert!(Filter::parse("cycles<abc").is_err());
        assert!(Filter::parse("cycles<inf").is_err());
    }

    fn temp_root(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "acmp-store-query-test-{tag}-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn seeded_catalog(tag: &str) -> Catalog {
        let store = DiskStore::open(temp_root(tag)).unwrap();
        for (benchmark, design, sharing, cycles) in [
            ("Cg", "base", "\"Private\"", 100u64),
            ("Cg", "s64", "{\"WorkerShared\":{\"ways\":4}}", 80),
            ("Cg", "all", "\"AllShared\"", 120),
            ("Lu", "base", "\"Private\"", 300),
            ("Lu", "s64", "{\"WorkerShared\":{\"ways\":4}}", 250),
        ] {
            let key = RawKey::new(format!(
                "{{\"generator\":{{\"seed\":7}},\"benchmark\":\"{benchmark}\",\
                 \"design\":{{\"name\":\"{design}\",\"sharing\":{sharing}}}}}"
            ));
            let value: serde::Value =
                serde_json::from_str(&format!("{{\"cycles\":{cycles},\"ipc\":0.5}}")).unwrap();
            store.save(&key, &value).unwrap();
        }
        Catalog::open(&store).unwrap()
    }

    fn query(filters: &[&str], by: &str, top: Option<usize>, desc: bool) -> Query {
        let filters: Vec<String> = filters.iter().map(|s| s.to_string()).collect();
        Query::parse(&filters, by, top, desc).unwrap()
    }

    #[test]
    fn facet_filters_intersect_and_rank() {
        let catalog = seeded_catalog("facets");
        let hits = catalog.query(&query(&["benchmark=cg"], "cycles", None, false));
        let got: Vec<(&str, f64)> = hits
            .iter()
            .map(|h| (h.row.design.as_str(), h.value))
            .collect();
        assert_eq!(got, vec![("s64", 80.0), ("base", 100.0), ("all", 120.0)]);

        let hits = catalog.query(&query(
            &["benchmark=cg", "family=worker-shared"],
            "cycles",
            None,
            false,
        ));
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].row.design, "s64");
    }

    #[test]
    fn metric_filters_apply_exact_comparisons() {
        let catalog = seeded_catalog("metrics");
        let hits = catalog.query(&query(&["cycles<=120", "cycles>80"], "cycles", None, false));
        let got: Vec<f64> = hits.iter().map(|h| h.value).collect();
        assert_eq!(
            got,
            vec![100.0, 120.0],
            "80 excluded by strict >, 250/300 by <="
        );
    }

    #[test]
    fn top_k_and_desc_shape_the_cut() {
        let catalog = seeded_catalog("topk");
        let hits = catalog.query(&query(&[], "cycles", Some(2), true));
        let got: Vec<f64> = hits.iter().map(|h| h.value).collect();
        assert_eq!(got, vec![300.0, 250.0]);
    }

    #[test]
    fn query_results_match_a_brute_force_scan() {
        let catalog = seeded_catalog("brute");
        let q = query(&["family=private"], "cycles", None, false);
        let hits = catalog.query(&q);
        let mut brute: Vec<(u64, f64)> = catalog
            .rows()
            .iter()
            .filter(|r| r.family == "private")
            .filter_map(|r| r.metric_f64("cycles").map(|v| (r.digest, v)))
            .collect();
        brute.sort_by(|a, b| a.1.total_cmp(&b.1).then_with(|| a.0.cmp(&b.0)));
        let got: Vec<(u64, f64)> = hits.iter().map(|h| (h.row.digest, h.value)).collect();
        assert_eq!(got, brute);
    }

    #[test]
    fn rows_missing_the_ranking_metric_are_excluded() {
        let catalog = seeded_catalog("missing");
        assert!(catalog
            .query(&query(&[], "no.such.metric", None, false))
            .is_empty());
    }

    #[test]
    fn unknown_metrics_are_rejected_with_the_vocabulary() {
        let catalog = seeded_catalog("vocab");
        assert_eq!(catalog.known_metrics(), vec!["cycles", "ipc"]);
        let err = catalog
            .validate_query(&query(&[], "cylces", None, false))
            .unwrap_err();
        assert!(
            err.contains("`cylces`") && err.contains("cycles, ipc"),
            "{err}"
        );
        let err = catalog
            .validate_query(&query(&["cylces<=100"], "cycles", None, false))
            .unwrap_err();
        assert!(err.contains("`cylces`"), "{err}");
        assert!(catalog
            .validate_query(&query(&["benchmark=cg", "ipc>0"], "cycles", None, false))
            .is_ok());
        // An empty catalog has no vocabulary to check against.
        let store = DiskStore::open(temp_root("vocab-empty")).unwrap();
        let empty = Catalog::open(&store).unwrap();
        assert!(empty
            .validate_query(&query(&[], "cycles", None, false))
            .is_ok());
    }

    #[test]
    fn hits_render_the_shared_jsonl_shape() {
        let catalog = seeded_catalog("jsonl");
        let hits = catalog.query(&query(&["benchmark=cg"], "cycles", Some(1), false));
        let line = hits[0].to_jsonl("cycles");
        assert!(line.starts_with("{\"key\":\""), "{line}");
        assert!(
            line.ends_with("\"metric\":\"cycles\",\"value\":80}"),
            "stored integers must render as integers: {line}"
        );
    }
}
