//! Property-based tests of the snapshot and query layers: under
//! *arbitrary* interleavings of appends, overwrites, compactions,
//! refreshes and foreign-handle writes,
//!
//! 1. an open snapshot's reads are **byte-stable** — every record re-reads
//!    identically after the interleaving ran, even though compaction
//!    deleted the very segment files the snapshot pinned; and
//! 2. `Catalog::query` answers — whether the catalog was built by a value
//!    scan or loaded from the persisted index — equal a brute-force scan
//!    of the same snapshot, row for row, in order.
//!
//! These are the invariants the `sweep query` path trusts: (1) makes the
//! catalog a coherent generation view, (2) makes the bitmap-indexed warm
//! path interchangeable with the cold one.

use acmp_store::catalog::{is_result_key, row_from_record};
use acmp_store::{segment, Catalog, Cmp, DiskStore, Filter, Query, ResultRow, StoreSnapshot};
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

static CASE: AtomicUsize = AtomicUsize::new(0);

fn temp_root() -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "acmp-store-snapshot-props-{}-{}",
        std::process::id(),
        CASE.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

const BENCHMARKS: [&str; 3] = ["Cg", "Lu", "Ep"];
const SHARINGS: [&str; 3] = [
    "\"Private\"",
    "{\"WorkerShared\":{\"cores_per_cache\":8}}",
    "\"AllShared\"",
];

fn result_key(slot: u64) -> acmp_store::RawKey {
    let benchmark = BENCHMARKS[(slot % 3) as usize];
    let sharing = SHARINGS[((slot / 3) % 3) as usize];
    acmp_store::RawKey::new(format!(
        "{{\"generator\":{{\"seed\":7}},\"benchmark\":\"{benchmark}\",\
         \"design\":{{\"name\":\"d{slot}\",\"sharing\":{sharing}}}}}"
    ))
}

fn value(seed: u64) -> serde::Value {
    serde_json::from_str(&format!(
        "{{\"cycles\":{},\"ipc\":0.25,\"bus\":{{\"transactions\":{}}}}}",
        seed % 997 + 1,
        seed % 31
    ))
    .expect("literal json")
}

/// Applies one interleaving step.  `writer` is a second handle on the same
/// root, standing in for a concurrent shard process.
fn apply_op(store: &DiskStore, writer: &DiskStore, op: u8, seed: u64) {
    match op % 5 {
        // Append a (possibly new) result record.
        0 => store.save(&result_key(seed % 12), &value(seed)).unwrap(),
        // Overwrite a key from the seeded range with a different value.
        1 => store
            .save(&result_key(seed % 4), &value(seed ^ 0x5a5a))
            .unwrap(),
        // Compact: rewrites every live record into a new generation and
        // deletes the old segment files.
        2 => {
            store.compact().unwrap();
        }
        // Foreign append through the second handle.
        3 => writer.save(&result_key(seed % 12), &value(seed)).unwrap(),
        // Fold foreign segments into this handle's index.
        _ => {
            store.refresh();
        }
    }
}

fn read_all(snapshot: &StoreSnapshot) -> Vec<String> {
    (0..snapshot.len())
        .map(|i| {
            snapshot
                .read_record(i)
                .expect("pinned records stay readable")
        })
        .collect()
}

/// Brute-force evaluation of `query` straight off the snapshot's records,
/// bypassing catalog, postings and buckets entirely.
fn brute_force(snapshot: &StoreSnapshot, query: &Query) -> Vec<(u64, f64)> {
    let mut rows: Vec<ResultRow> = Vec::new();
    for (i, meta) in snapshot.iter().enumerate() {
        if !is_result_key(meta.canonical) {
            continue;
        }
        let line = snapshot.read_record(i).unwrap();
        let (canonical, _, value_json) =
            segment::scan_record_parts(&line).expect("stored records are well-formed");
        if let Some(row) = row_from_record(meta.digest, &canonical, value_json) {
            rows.push(row);
        }
    }
    let matches = |row: &ResultRow, filter: &Filter| match filter {
        Filter::Field { field, value } => {
            let facet = match field.as_str() {
                "benchmark" => &row.benchmark,
                "family" => &row.family,
                "design" => &row.design,
                "scale" => &row.scale,
                _ => return false,
            };
            facet.to_ascii_lowercase() == *value
        }
        Filter::Metric { metric, cmp, value } => {
            row.metric_f64(metric).is_some_and(|v| match cmp {
                Cmp::Le => v <= *value,
                Cmp::Ge => v >= *value,
                Cmp::Lt => v < *value,
                Cmp::Gt => v > *value,
            })
        }
    };
    let mut hits: Vec<(u64, f64)> = rows
        .iter()
        .filter(|row| query.filters.iter().all(|f| matches(row, f)))
        .filter_map(|row| row.metric_f64(&query.by).map(|v| (row.digest, v)))
        .collect();
    hits.sort_by(|a, b| {
        let values = if query.descending {
            b.1.total_cmp(&a.1)
        } else {
            a.1.total_cmp(&b.1)
        };
        values.then_with(|| a.0.cmp(&b.0))
    });
    if let Some(top) = query.top {
        hits.truncate(top);
    }
    hits
}

/// The query grid each case checks: facet-only, metric-only, mixed, and an
/// unfiltered top-k, with the case's cut and direction applied.
fn queries(bound: u64, top: Option<usize>, descending: bool) -> Vec<Query> {
    let specs: Vec<Vec<String>> = vec![
        vec!["benchmark=cg".to_string()],
        vec![format!("cycles<={bound}")],
        vec![
            "family=worker-shared".to_string(),
            "bus.transactions>=1".to_string(),
        ],
        Vec::new(),
    ];
    specs
        .iter()
        .map(|filters| {
            Query::parse(filters, "cycles", top, descending).expect("filters are well-formed")
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn snapshot_reads_are_byte_stable_under_any_interleaving(
        ops in prop::collection::vec((0u8..5, any::<u64>()), 0..24),
    ) {
        let root = temp_root();
        let store = DiskStore::open(&root).unwrap();
        let writer = DiskStore::open(&root).unwrap();
        for slot in 0..4u64 {
            store.save(&result_key(slot), &value(slot)).unwrap();
        }
        let snapshot = store.snapshot().unwrap();
        let before = read_all(&snapshot);

        for (op, seed) in &ops {
            apply_op(&store, &writer, *op, *seed);
        }

        prop_assert_eq!(&read_all(&snapshot), &before);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn queries_equal_a_brute_force_scan_of_the_same_snapshot(
        ops in prop::collection::vec((0u8..5, any::<u64>()), 0..16),
        bound in 1u64..1500,
        top in prop::option::of(0usize..6),
        descending in any::<bool>(),
    ) {
        let root = temp_root();
        let store = DiskStore::open(&root).unwrap();
        let writer = DiskStore::open(&root).unwrap();
        for slot in 0..6u64 {
            store.save(&result_key(slot), &value(slot * 131)).unwrap();
        }
        for (op, seed) in &ops {
            apply_op(&store, &writer, *op, *seed);
        }
        store.refresh();

        let snapshot = store.snapshot().unwrap();
        let scanned = Catalog::open_at(&store, &snapshot).unwrap();
        scanned.persist(&store).unwrap();
        let indexed = Catalog::open_at(&store, &snapshot).unwrap();
        prop_assert_eq!(
            indexed.source(),
            acmp_store::CatalogSource::Index,
            "persisting must make the next open answer from the index"
        );

        for query in queries(bound, top, descending) {
            let want = brute_force(&snapshot, &query);
            for catalog in [&scanned, &indexed] {
                let got: Vec<(u64, f64)> = catalog
                    .query(&query)
                    .iter()
                    .map(|hit| (hit.row.digest, hit.value))
                    .collect();
                prop_assert_eq!(
                    &got, &want,
                    "query {:?} (source {:?}) diverged from the brute-force scan",
                    query, catalog.source()
                );
            }
        }
        let _ = std::fs::remove_dir_all(&root);
    }
}
