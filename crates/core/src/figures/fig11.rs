//! Figure 11: worker I-cache MPKI when a single I-cache (32 KB or 16 KB) is
//! shared by all eight lean cores, expressed as a percentage of the
//! private-32 KB baseline MPKI; the absolute baseline MPKI is reported next
//! to each benchmark (the labels above the paper's bars).

use crate::report::TextTable;
use crate::{DesignPoint, ExperimentContext};
use hpc_workloads::Benchmark;
use serde::{Deserialize, Serialize};
use sim_acmp::BusWidth;

/// One benchmark's miss-analysis row.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Figure11Row {
    /// The benchmark.
    pub benchmark: Benchmark,
    /// Absolute worker MPKI with private 32 KB I-caches (the labels above
    /// the bars in the paper).
    pub private_mpki: f64,
    /// Shared 32 KB MPKI as a percentage of the private MPKI.
    pub shared_32k_percent: f64,
    /// Shared 16 KB MPKI as a percentage of the private MPKI.
    pub shared_16k_percent: f64,
}

/// The Figure 11 table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Figure11 {
    /// Per-benchmark rows.
    pub rows: Vec<Figure11Row>,
}

/// Runs the baseline and the two shared-capacity configurations (cpc = 8,
/// double bus so bandwidth does not perturb the miss behaviour).
pub fn compute(ctx: &ExperimentContext, benchmarks: &[Benchmark]) -> Figure11 {
    let designs = [
        DesignPoint::baseline(),
        DesignPoint::shared(32, 4, BusWidth::Double).expect("figure design is valid"),
        DesignPoint::shared(16, 4, BusWidth::Double).expect("figure design is valid"),
    ];
    ctx.sweep(benchmarks, &designs);
    let rows = benchmarks
        .iter()
        .map(|&b| {
            let private = ctx.simulate(b, &DesignPoint::baseline());
            let shared32 = ctx.simulate(
                b,
                &DesignPoint::shared(32, 4, BusWidth::Double).expect("figure design is valid"),
            );
            let shared16 = ctx.simulate(
                b,
                &DesignPoint::shared(16, 4, BusWidth::Double).expect("figure design is valid"),
            );
            let base = private.worker_icache_mpki();
            let percent = |mpki: f64| {
                if base <= 0.0 {
                    // The paper's bars are also near-meaningless when the
                    // baseline MPKI is 0.00; report 100% (no change).
                    100.0
                } else {
                    mpki / base * 100.0
                }
            };
            Figure11Row {
                benchmark: b,
                private_mpki: base,
                shared_32k_percent: percent(shared32.worker_icache_mpki()),
                shared_16k_percent: percent(shared16.worker_icache_mpki()),
            }
        })
        .collect();
    Figure11 { rows }
}

impl Figure11 {
    /// Mean reduction of the shared 32 KB configuration relative to private
    /// caches, over the benchmarks whose baseline MPKI is non-zero
    /// (the paper reports ≈ 50 % on average).
    pub fn mean_reduction_32k(&self) -> f64 {
        let meaningful: Vec<f64> = self
            .rows
            .iter()
            .filter(|r| r.private_mpki > 0.0)
            .map(|r| 1.0 - r.shared_32k_percent / 100.0)
            .collect();
        crate::report::arithmetic_mean(&meaningful)
    }
}

impl std::fmt::Display for Figure11 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "Figure 11: shared-I-cache MPKI relative to private 32KB caches (cpc=8)"
        )?;
        let mut t = TextTable::new(vec![
            "benchmark",
            "private MPKI",
            "shared 32K [%]",
            "shared 16K [%]",
        ]);
        for r in &self.rows {
            t.row(vec![
                r.benchmark.name().to_string(),
                format!("{:.2}", r.private_mpki),
                format!("{:.1}", r.shared_32k_percent),
                format!("{:.1}", r.shared_16k_percent),
            ]);
        }
        write!(f, "{t}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::figures::test_support::tiny_context;

    #[test]
    fn sharing_reduces_the_mpki_of_the_miss_heavy_benchmark() {
        let ctx = tiny_context();
        let fig = compute(&ctx, &[Benchmark::CoEvp, Benchmark::Cg]);
        let coevp = fig
            .rows
            .iter()
            .find(|r| r.benchmark == Benchmark::CoEvp)
            .unwrap();
        assert!(
            coevp.private_mpki > 0.1,
            "CoEVP has a visible baseline MPKI"
        );
        assert!(
            coevp.shared_32k_percent < 100.0,
            "sharing must reduce CoEVP's MPKI, got {:.1}%",
            coevp.shared_32k_percent
        );
        assert!(
            coevp.shared_16k_percent <= 110.0,
            "even a 16KB shared cache should be close to (or below) the private MPKI"
        );
        assert!(fig.to_string().contains("private MPKI"));
    }
}
