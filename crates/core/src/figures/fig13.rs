//! Figure 13: sharing a single I-cache among **all** cores (master included)
//! versus sharing only among the workers, as a function of the serial code
//! fraction.

use crate::report::TextTable;
use crate::{DesignPoint, ExperimentContext};
use hpc_workloads::Benchmark;
use serde::{Deserialize, Serialize};

/// The outlier groups discussed in Section VI-E.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Figure13Group {
    /// Default behaviour: the ratio grows with the serial fraction
    /// (~1 % slowdown per 5 % of serial code).
    Default,
    /// High code locality in serial code hides the shared-cache latency
    /// (CoMD with four line buffers).
    SerialLocality,
    /// Long serial basic blocks make the master behave like a worker
    /// (nab, CoEVP).
    LongSerialBlocks,
    /// Scalability limit: adding the master to a single bus congests it
    /// (EP, FT, UA with a single bus).
    ScalabilityLimit,
}

/// One benchmark's all-shared vs worker-shared comparison.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Figure13Row {
    /// The benchmark.
    pub benchmark: Benchmark,
    /// Serial-code fraction of the master thread, in percent (x-axis).
    pub serial_percent: f64,
    /// Execution time of the all-shared configuration normalized to the
    /// worker-shared configuration (y-axis), both with a double bus.
    pub ratio_double_bus: f64,
    /// The same ratio when the all-shared configuration only has a single
    /// bus (exposes the Group 3 scalability limit).
    pub ratio_single_bus: f64,
    /// The outlier group the benchmark belongs to.
    pub group: Figure13Group,
}

/// The Figure 13 table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Figure13 {
    /// Per-benchmark rows.
    pub rows: Vec<Figure13Row>,
}

/// Classifies a benchmark into the paper's outlier groups.
pub fn group_of(benchmark: Benchmark) -> Figure13Group {
    match benchmark {
        Benchmark::CoMd => Figure13Group::SerialLocality,
        Benchmark::Nab | Benchmark::CoEvp => Figure13Group::LongSerialBlocks,
        Benchmark::Ep | Benchmark::Ft | Benchmark::Ua => Figure13Group::ScalabilityLimit,
        _ => Figure13Group::Default,
    }
}

/// Runs the worker-shared and all-shared configurations (32 KB shared cache
/// so capacity does not confound the master's join).
pub fn compute(ctx: &ExperimentContext, benchmarks: &[Benchmark]) -> Figure13 {
    let designs = [
        DesignPoint::worker_shared_32k_double(),
        DesignPoint::all_shared(),
        DesignPoint::all_shared_single_bus(),
    ];
    ctx.sweep(benchmarks, &designs);
    let rows = benchmarks
        .iter()
        .map(|&b| {
            let worker_shared = ctx.simulate(b, &DesignPoint::worker_shared_32k_double());
            let all_shared = ctx.simulate(b, &DesignPoint::all_shared());
            let all_shared_single = ctx.simulate(b, &DesignPoint::all_shared_single_bus());
            Figure13Row {
                benchmark: b,
                serial_percent: b.profile().serial_fraction * 100.0,
                ratio_double_bus: all_shared.cycles as f64 / worker_shared.cycles as f64,
                ratio_single_bus: all_shared_single.cycles as f64 / worker_shared.cycles as f64,
                group: group_of(b),
            }
        })
        .collect();
    Figure13 { rows }
}

impl std::fmt::Display for Figure13 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "Figure 13: all-shared vs worker-shared execution-time ratio vs serial code fraction"
        )?;
        let mut t = TextTable::new(vec![
            "benchmark",
            "serial %",
            "ratio (double bus)",
            "ratio (single bus)",
            "group",
        ]);
        for r in &self.rows {
            t.row(vec![
                r.benchmark.name().to_string(),
                format!("{:.1}", r.serial_percent),
                format!("{:.3}", r.ratio_double_bus),
                format!("{:.3}", r.ratio_single_bus),
                format!("{:?}", r.group),
            ]);
        }
        write!(f, "{t}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::figures::test_support::tiny_context;

    #[test]
    fn all_shared_is_never_dramatically_faster_and_groups_are_stable() {
        let ctx = tiny_context();
        let fig = compute(&ctx, &[Benchmark::CoMd, Benchmark::Lu]);
        for r in &fig.rows {
            assert!(
                r.ratio_double_bus > 0.95,
                "{}: sharing with the master cannot make things much faster",
                r.benchmark
            );
            assert!(r.ratio_single_bus >= r.ratio_double_bus - 0.05);
        }
        assert_eq!(group_of(Benchmark::CoMd), Figure13Group::SerialLocality);
        assert_eq!(group_of(Benchmark::Nab), Figure13Group::LongSerialBlocks);
        assert_eq!(group_of(Benchmark::Ua), Figure13Group::ScalabilityLimit);
        assert_eq!(group_of(Benchmark::Lu), Figure13Group::Default);
        assert!(fig.to_string().contains("serial %"));
    }
}
