//! Figure 10: more line buffers vs more bandwidth when a single 16 KB
//! I-cache is shared by all eight workers (cpc = 8), normalized to the
//! private-32 KB baseline.

use crate::report::TextTable;
use crate::{DesignPoint, ExperimentContext};
use hpc_workloads::Benchmark;
use serde::{Deserialize, Serialize};
use sim_acmp::BusWidth;

/// One benchmark's normalized execution times for the three cpc = 8 design
/// alternatives.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Figure10Row {
    /// The benchmark.
    pub benchmark: Benchmark,
    /// Naive sharing: 4 line buffers, single bus.
    pub naive_4lb_single: f64,
    /// More line buffers: 8 line buffers, single bus.
    pub more_buffers_8lb_single: f64,
    /// More bandwidth: 4 line buffers, double bus.
    pub more_bandwidth_4lb_double: f64,
}

/// The Figure 10 table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Figure10 {
    /// Per-benchmark rows.
    pub rows: Vec<Figure10Row>,
}

/// Runs the three cpc = 8 / 16 KB design alternatives against the baseline.
pub fn compute(ctx: &ExperimentContext, benchmarks: &[Benchmark]) -> Figure10 {
    let designs = [
        DesignPoint::baseline(),
        DesignPoint::shared(16, 4, BusWidth::Single).expect("figure design is valid"),
        DesignPoint::shared(16, 8, BusWidth::Single).expect("figure design is valid"),
        DesignPoint::shared(16, 4, BusWidth::Double).expect("figure design is valid"),
    ];
    ctx.sweep(benchmarks, &designs);
    let rows = benchmarks
        .iter()
        .map(|&b| {
            let baseline = ctx.simulate(b, &DesignPoint::baseline());
            let norm = |design: &DesignPoint| {
                ctx.simulate(b, design).cycles as f64 / baseline.cycles as f64
            };
            Figure10Row {
                benchmark: b,
                naive_4lb_single: norm(
                    &DesignPoint::shared(16, 4, BusWidth::Single).expect("figure design is valid"),
                ),
                more_buffers_8lb_single: norm(
                    &DesignPoint::shared(16, 8, BusWidth::Single).expect("figure design is valid"),
                ),
                more_bandwidth_4lb_double: norm(
                    &DesignPoint::shared(16, 4, BusWidth::Double).expect("figure design is valid"),
                ),
            }
        })
        .collect();
    Figure10 { rows }
}

impl Figure10 {
    /// Mean normalized execution time of the double-bus design (the paper's
    /// headline: no performance loss).
    pub fn mean_double_bus(&self) -> f64 {
        crate::report::arithmetic_mean(
            &self
                .rows
                .iter()
                .map(|r| r.more_bandwidth_4lb_double)
                .collect::<Vec<_>>(),
        )
    }
}

impl std::fmt::Display for Figure10 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "Figure 10: line buffers vs bandwidth (cpc=8, 16KB shared), normalized execution time"
        )?;
        let mut t = TextTable::new(vec![
            "benchmark",
            "4lb/single (naive)",
            "8lb/single (buffers)",
            "4lb/double (bandwidth)",
        ]);
        for r in &self.rows {
            t.row(vec![
                r.benchmark.name().to_string(),
                format!("{:.3}", r.naive_4lb_single),
                format!("{:.3}", r.more_buffers_8lb_single),
                format!("{:.3}", r.more_bandwidth_4lb_double),
            ]);
        }
        write!(f, "{t}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::figures::test_support::tiny_context;

    #[test]
    fn both_remedies_help_or_are_neutral_relative_to_naive_sharing() {
        let ctx = tiny_context();
        let fig = compute(&ctx, &[Benchmark::Lu, Benchmark::Ua]);
        for r in &fig.rows {
            assert!(
                r.more_bandwidth_4lb_double <= r.naive_4lb_single + 0.02,
                "{}: doubling the bandwidth should not be slower than naive sharing",
                r.benchmark
            );
            assert!(
                r.more_buffers_8lb_single <= r.naive_4lb_single + 0.02,
                "{}: more line buffers should not be slower than naive sharing",
                r.benchmark
            );
        }
        assert!(fig.mean_double_bus() > 0.8);
        assert!(fig.to_string().contains("bandwidth"));
    }
}
