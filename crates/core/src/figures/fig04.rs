//! Figure 4: percentage of static and dynamic instruction sharing across
//! all threads of an eight-core run (parallel sections only).

use crate::report::TextTable;
use crate::ExperimentContext;
use hpc_workloads::Benchmark;
use serde::{Deserialize, Serialize};
use sim_trace::SharingStats;

/// One benchmark's instruction-sharing percentages.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Figure4Row {
    /// The benchmark.
    pub benchmark: Benchmark,
    /// Percentage of the static parallel footprint executed by all threads.
    pub static_sharing_percent: f64,
    /// Percentage of dynamically executed parallel instructions common to
    /// all threads.
    pub dynamic_sharing_percent: f64,
}

/// The Figure 4 table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Figure4 {
    /// Per-benchmark rows.
    pub rows: Vec<Figure4Row>,
}

/// Computes the sharing percentages across all generated threads.
pub fn compute(ctx: &ExperimentContext, benchmarks: &[Benchmark]) -> Figure4 {
    let rows = ctx
        .run_parallel(benchmarks, |b| {
            let traces = ctx.traces(b);
            let sharing = SharingStats::from_trace_set(&traces);
            Figure4Row {
                benchmark: b,
                static_sharing_percent: sharing.static_sharing * 100.0,
                dynamic_sharing_percent: sharing.dynamic_sharing * 100.0,
            }
        })
        .into_iter()
        .map(|(_, row)| row)
        .collect();
    Figure4 { rows }
}

impl Figure4 {
    /// Mean dynamic sharing percentage (the paper reports ≈ 99 %).
    pub fn mean_dynamic_sharing(&self) -> f64 {
        crate::report::arithmetic_mean(
            &self
                .rows
                .iter()
                .map(|r| r.dynamic_sharing_percent)
                .collect::<Vec<_>>(),
        )
    }
}

impl std::fmt::Display for Figure4 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "Figure 4: instruction sharing across threads [%] (parallel sections only)"
        )?;
        let mut t = TextTable::new(vec!["benchmark", "static", "dynamic"]);
        for r in &self.rows {
            t.row(vec![
                r.benchmark.name().to_string(),
                format!("{:.1}", r.static_sharing_percent),
                format!("{:.1}", r.dynamic_sharing_percent),
            ]);
        }
        write!(f, "{t}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::figures::test_support::{tiny_benchmarks, tiny_context};

    #[test]
    fn dynamic_sharing_is_about_99_percent() {
        let ctx = tiny_context();
        let fig = compute(&ctx, &tiny_benchmarks());
        for r in &fig.rows {
            assert!(
                r.dynamic_sharing_percent > 90.0,
                "{}: dynamic sharing {:.1}%",
                r.benchmark,
                r.dynamic_sharing_percent
            );
            assert!(r.static_sharing_percent > 30.0);
            assert!(r.static_sharing_percent <= 100.0);
        }
        assert!(fig.mean_dynamic_sharing() > 95.0);
        assert!(fig.to_string().contains("dynamic"));
    }
}
