//! Figure 1: potential speedup of symmetric and asymmetric CMPs as a
//! function of the serial code fraction (Hill-Marty model, 16 BCE budget).

use crate::report::{fmt3, TextTable};
use acmp_analytic::{figure1_series, Figure1Point};
use serde::{Deserialize, Serialize};

/// The Figure 1 result: one row per serial-fraction sample.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Figure1 {
    /// Sampled points (serial fraction 0–30 %).
    pub points: Vec<Figure1Point>,
}

/// Computes the figure with `points` samples between 0 and 30 % serial code.
pub fn compute(points: usize) -> Figure1 {
    Figure1 {
        points: figure1_series(points),
    }
}

impl Figure1 {
    /// The smallest serial fraction (in percent) at which the asymmetric CMP
    /// outperforms both symmetric designs — the paper's "above 2 %" claim.
    pub fn acmp_crossover_percent(&self) -> Option<f64> {
        self.points
            .iter()
            .find(|p| p.asymmetric > p.symmetric_small && p.asymmetric > p.symmetric_big)
            .map(|p| p.serial_percent)
    }
}

impl std::fmt::Display for Figure1 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "Figure 1: speedup vs serial code fraction (16 BCE budget, big core = 4 BCE)"
        )?;
        let mut t = TextTable::new(vec![
            "serial %",
            "symmetric (4 big)",
            "symmetric (16 small)",
            "asymmetric (1+12)",
        ]);
        for p in &self.points {
            t.row(vec![
                format!("{:.1}", p.serial_percent),
                fmt3(p.symmetric_big),
                fmt3(p.symmetric_small),
                fmt3(p.asymmetric),
            ]);
        }
        write!(f, "{t}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crossover_matches_the_paper_claim() {
        let fig = compute(301);
        let crossover = fig.acmp_crossover_percent().expect("ACMP eventually wins");
        assert!(
            crossover <= 4.0,
            "the ACMP should win above ~2% serial code, crossover at {crossover:.1}%"
        );
    }

    #[test]
    fn display_contains_every_series() {
        let fig = compute(4);
        let s = fig.to_string();
        assert!(s.contains("asymmetric"));
        assert!(s.contains("16 small"));
        assert_eq!(s.lines().count(), 4 + 3);
    }
}
