//! Figure 2: average dynamic basic-block length (bytes) in serial and
//! parallel code, per benchmark, plus the arithmetic mean.

use crate::report::{arithmetic_mean, TextTable};
use crate::ExperimentContext;
use hpc_workloads::Benchmark;
use serde::{Deserialize, Serialize};
use sim_trace::TraceStats;

/// One benchmark's basic-block lengths.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Figure2Row {
    /// The benchmark.
    pub benchmark: Benchmark,
    /// Average dynamic basic-block length in serial code, in bytes.
    pub serial_bytes: f64,
    /// Average dynamic basic-block length in parallel code, in bytes.
    pub parallel_bytes: f64,
}

/// The Figure 2 table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Figure2 {
    /// Per-benchmark rows, in the paper's order.
    pub rows: Vec<Figure2Row>,
}

/// Computes the figure by characterising the master thread's trace of each
/// benchmark, exactly as the paper instruments only the master thread.
pub fn compute(ctx: &ExperimentContext, benchmarks: &[Benchmark]) -> Figure2 {
    let rows = ctx
        .run_parallel(benchmarks, |b| {
            let traces = ctx.traces(b);
            let stats = TraceStats::from_trace(traces.master());
            Figure2Row {
                benchmark: b,
                serial_bytes: stats.serial.avg_basic_block_bytes(),
                parallel_bytes: stats.parallel.avg_basic_block_bytes(),
            }
        })
        .into_iter()
        .map(|(_, row)| row)
        .collect();
    Figure2 { rows }
}

impl Figure2 {
    /// Arithmetic mean of the serial basic-block lengths.
    pub fn mean_serial(&self) -> f64 {
        arithmetic_mean(&self.rows.iter().map(|r| r.serial_bytes).collect::<Vec<_>>())
    }

    /// Arithmetic mean of the parallel basic-block lengths.
    pub fn mean_parallel(&self) -> f64 {
        arithmetic_mean(
            &self
                .rows
                .iter()
                .map(|r| r.parallel_bytes)
                .collect::<Vec<_>>(),
        )
    }
}

impl std::fmt::Display for Figure2 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "Figure 2: average dynamic basic block length [bytes]")?;
        let mut t = TextTable::new(vec!["benchmark", "serial", "parallel"]);
        for r in &self.rows {
            t.row(vec![
                r.benchmark.name().to_string(),
                format!("{:.0}", r.serial_bytes),
                format!("{:.0}", r.parallel_bytes),
            ]);
        }
        t.row(vec![
            "amean".to_string(),
            format!("{:.0}", self.mean_serial()),
            format!("{:.0}", self.mean_parallel()),
        ]);
        write!(f, "{t}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::figures::test_support::{tiny_benchmarks, tiny_context};

    #[test]
    fn parallel_blocks_are_longer_except_for_the_known_exceptions() {
        let ctx = tiny_context();
        let fig = compute(&ctx, &tiny_benchmarks());
        assert_eq!(fig.rows.len(), 3);
        for r in &fig.rows {
            match r.benchmark {
                Benchmark::CoEvp | Benchmark::Nab => {
                    assert!(r.serial_bytes > r.parallel_bytes, "{}", r.benchmark)
                }
                _ => assert!(r.parallel_bytes > r.serial_bytes, "{}", r.benchmark),
            }
        }
        assert!(fig.mean_parallel() > 0.0);
        assert!(fig.to_string().contains("amean"));
    }
}
