//! Figure 3: I-cache MPKI in serial and parallel code regions, measured on a
//! private 32 KB, 8-way, 64 B-line, LRU I-cache.

use crate::report::TextTable;
use crate::ExperimentContext;
use hpc_workloads::Benchmark;
use serde::{Deserialize, Serialize};
use sim_cache::{CacheConfig, SetAssocCache};
use sim_trace::{Region, SyncEvent, ThreadTrace, TraceRecord};

/// One benchmark's per-region MPKI.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Figure3Row {
    /// The benchmark.
    pub benchmark: Benchmark,
    /// I-cache MPKI of the serial code regions.
    pub serial_mpki: f64,
    /// I-cache MPKI of the parallel code regions.
    pub parallel_mpki: f64,
}

/// The Figure 3 table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Figure3 {
    /// Per-benchmark rows.
    pub rows: Vec<Figure3Row>,
}

/// Replays the master thread's instruction addresses through a standard
/// 32 KB I-cache, split by region, and reports misses per kilo-instruction.
pub fn compute(ctx: &ExperimentContext, benchmarks: &[Benchmark]) -> Figure3 {
    let rows = ctx
        .run_parallel(benchmarks, |b| {
            let traces = ctx.traces(b);
            let (serial_mpki, parallel_mpki) = replay_mpki(traces.master());
            Figure3Row {
                benchmark: b,
                serial_mpki,
                parallel_mpki,
            }
        })
        .into_iter()
        .map(|(_, row)| row)
        .collect();
    Figure3 { rows }
}

/// Replays one thread's trace through a 32 KB I-cache and returns
/// `(serial MPKI, parallel MPKI)`.
pub fn replay_mpki(trace: &ThreadTrace) -> (f64, f64) {
    let mut cache = SetAssocCache::new(CacheConfig::icache_32k());
    let mut region = Region::Serial;
    let mut counts = [(0u64, 0u64); 2]; // (instructions, misses) per region
    for rec in trace.records() {
        match rec {
            TraceRecord::Sync(SyncEvent::ParallelStart { .. }) => region = Region::Parallel,
            TraceRecord::Sync(SyncEvent::ParallelEnd) => region = Region::Serial,
            _ => {
                if let Some(addr) = rec.addr() {
                    let idx = match region {
                        Region::Serial => 0,
                        Region::Parallel => 1,
                    };
                    counts[idx].0 += 1;
                    if !cache.access(addr.raw()).is_hit() {
                        counts[idx].1 += 1;
                    }
                }
            }
        }
    }
    let mpki = |(instrs, misses): (u64, u64)| {
        if instrs == 0 {
            0.0
        } else {
            misses as f64 * 1000.0 / instrs as f64
        }
    };
    (mpki(counts[0]), mpki(counts[1]))
}

impl std::fmt::Display for Figure3 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "Figure 3: I-cache MPKI per region (32KB, 8-way, 64B lines, LRU)"
        )?;
        let mut t = TextTable::new(vec!["benchmark", "serial", "parallel"]);
        for r in &self.rows {
            t.row(vec![
                r.benchmark.name().to_string(),
                format!("{:.2}", r.serial_mpki),
                format!("{:.2}", r.parallel_mpki),
            ]);
        }
        write!(f, "{t}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::figures::test_support::{tiny_benchmarks, tiny_context};

    #[test]
    fn parallel_mpki_is_negligible_except_for_coevp() {
        let ctx = tiny_context();
        let fig = compute(&ctx, &tiny_benchmarks());
        // At the tiny test scale cold misses are not fully amortised, so the
        // absolute MPKI levels are checked by the paper-scale integration
        // test; here we check the qualitative ordering.
        for r in &fig.rows {
            assert!(
                r.serial_mpki > r.parallel_mpki,
                "{}: serial code misses more than parallel code",
                r.benchmark
            );
        }
        let coevp = fig
            .rows
            .iter()
            .find(|r| r.benchmark == Benchmark::CoEvp)
            .unwrap();
        assert!(
            coevp.parallel_mpki > 0.3,
            "CoEVP is the one benchmark with visible parallel MPKI, got {:.2}",
            coevp.parallel_mpki
        );
        assert!(fig.to_string().contains("Figure 3"));
    }
}
