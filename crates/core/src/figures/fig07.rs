//! Figure 7: naive sharing — execution time for cpc ∈ {2, 4, 8} (32 KB
//! shared I-cache, four line buffers, single bus), normalized to the
//! private-I-cache baseline.

use crate::report::TextTable;
use crate::{DesignPoint, ExperimentContext};
use hpc_workloads::Benchmark;
use serde::{Deserialize, Serialize};

/// One benchmark's normalized execution times.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Figure7Row {
    /// The benchmark.
    pub benchmark: Benchmark,
    /// Baseline execution time in cycles (the normalisation reference).
    pub baseline_cycles: u64,
    /// Normalized execution time with two workers per I-cache.
    pub cpc2: f64,
    /// Normalized execution time with four workers per I-cache.
    pub cpc4: f64,
    /// Normalized execution time with eight workers per I-cache.
    pub cpc8: f64,
}

/// The Figure 7 table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Figure7 {
    /// Per-benchmark rows.
    pub rows: Vec<Figure7Row>,
}

/// Runs the baseline and the three naive-sharing configurations.
pub fn compute(ctx: &ExperimentContext, benchmarks: &[Benchmark]) -> Figure7 {
    // One grid sweep at (benchmark × design) job granularity; the row
    // assembly below reads the warm cache.
    let designs = [
        DesignPoint::baseline(),
        DesignPoint::naive_shared(2).expect("figure cpc is valid"),
        DesignPoint::naive_shared(4).expect("figure cpc is valid"),
        DesignPoint::naive_shared(8).expect("figure cpc is valid"),
    ];
    ctx.sweep(benchmarks, &designs);
    let rows = benchmarks
        .iter()
        .map(|&b| {
            let baseline = ctx.simulate(b, &DesignPoint::baseline());
            let norm = |cpc: usize| {
                let r = ctx.simulate(
                    b,
                    &DesignPoint::naive_shared(cpc).expect("figure cpc is valid"),
                );
                r.cycles as f64 / baseline.cycles as f64
            };
            Figure7Row {
                benchmark: b,
                baseline_cycles: baseline.cycles,
                cpc2: norm(2),
                cpc4: norm(4),
                cpc8: norm(8),
            }
        })
        .collect();
    Figure7 { rows }
}

impl Figure7 {
    /// The largest cpc = 8 slowdown across benchmarks (the paper reports up
    /// to 18 %, for UA).
    pub fn worst_cpc8_slowdown(&self) -> f64 {
        self.rows.iter().map(|r| r.cpc8).fold(0.0, f64::max) - 1.0
    }
}

impl std::fmt::Display for Figure7 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "Figure 7: naive sharing — normalized execution time (32KB shared, 4 line buffers, single bus)"
        )?;
        let mut t = TextTable::new(vec!["benchmark", "cpc=2", "cpc=4", "cpc=8"]);
        for r in &self.rows {
            t.row(vec![
                r.benchmark.name().to_string(),
                format!("{:.3}", r.cpc2),
                format!("{:.3}", r.cpc4),
                format!("{:.3}", r.cpc8),
            ]);
        }
        write!(f, "{t}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::figures::test_support::tiny_context;

    #[test]
    fn sharing_degree_monotonically_costs_performance_or_is_neutral() {
        let ctx = tiny_context();
        let fig = compute(&ctx, &[Benchmark::Cg, Benchmark::Lu]);
        for r in &fig.rows {
            assert!(r.baseline_cycles > 0);
            // Small tolerance: sharing can be neutral or mildly beneficial.
            assert!(
                r.cpc2 > 0.9 && r.cpc2 < 1.3,
                "{}: cpc2={}",
                r.benchmark,
                r.cpc2
            );
            assert!(
                r.cpc8 >= r.cpc2 - 0.05,
                "{}: deeper sharing should not be faster",
                r.benchmark
            );
        }
        assert!(fig.worst_cpc8_slowdown() < 0.5);
        assert!(fig.to_string().contains("cpc=8"));
    }
}
