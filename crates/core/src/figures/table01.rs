//! Table I: configuration parameters of the simulated ACMP.

use crate::report::TextTable;
use serde::{Deserialize, Serialize};
use sim_acmp::AcmpConfig;

/// One configuration parameter of Table I.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TableRow {
    /// Parameter name.
    pub parameter: String,
    /// Parameter value(s).
    pub value: String,
}

/// The rendered Table I.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Table1 {
    /// All rows, in the paper's order.
    pub rows: Vec<TableRow>,
}

/// Builds Table I from the default machine configuration, so the printed
/// table always matches what the simulator actually uses.
pub fn compute() -> Table1 {
    let cfg = AcmpConfig::default();
    let row = |p: &str, v: String| TableRow {
        parameter: p.to_string(),
        value: v,
    };
    let rows = vec![
        row(
            "ACMP",
            format!("1 master and {} worker cores", cfg.num_workers),
        ),
        row(
            "master core",
            format!(
                "commit width {}, IPC values from an Intel i7-class core",
                cfg.master_core.commit_width
            ),
        ),
        row(
            "worker core",
            format!(
                "commit width {}, IPC values from an ARM Cortex-A9-class core",
                cfg.worker_core.commit_width
            ),
        ),
        row(
            "cores-per-cache (cpc)",
            "1, 2, 4, 8 (1 = private I-caches)".to_string(),
        ),
        row(
            "I-cache",
            format!(
                "{} KB, {}-way, {} B lines, {}-cycle latency (16 KB variant for the shared design)",
                cfg.worker_icache.size_bytes / 1024,
                cfg.worker_icache.associativity,
                cfg.worker_icache.line_size,
                cfg.worker_icache.latency
            ),
        ),
        row(
            "line buffers",
            format!(
                "2, 4 or 8 per core, {} B wide (baseline: {})",
                cfg.worker_core.frontend.line_size, cfg.worker_core.frontend.line_buffers
            ),
        ),
        row(
            "I-interconnect",
            format!(
                "single or double bus, {}-cycle latency + contention, {} B wide, round-robin",
                cfg.bus.latency, cfg.bus.width_bytes
            ),
        ),
        row(
            "fetch predictor",
            format!(
                "{} KB gshare + {}-entry loop predictor",
                cfg.worker_core.frontend.predictor.gshare_entries * 2 / 8 / 1024,
                cfg.worker_core.frontend.predictor.loop_entries
            ),
        ),
        row(
            "L2 cache",
            format!(
                "{} MB, {}-way, {}-cycle latency, {} B lines",
                cfg.l2.cache.size_bytes / (1024 * 1024),
                cfg.l2.cache.associativity,
                cfg.l2.cache.latency,
                cfg.l2.cache.line_size
            ),
        ),
        row(
            "L2-DRAM bus",
            format!(
                "{}-cycle latency + contention, 32 B wide",
                cfg.l2.dram_bus_latency
            ),
        ),
        row(
            "DRAM",
            "unlimited size, Micron DDR3-1600-like timing".to_string(),
        ),
    ];
    Table1 { rows }
}

impl std::fmt::Display for Table1 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "Table I: configuration parameters of the simulated ACMP")?;
        let mut t = TextTable::new(vec!["parameter", "value"]);
        for r in &self.rows {
            t.row(vec![r.parameter.clone(), r.value.clone()]);
        }
        write!(f, "{t}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_matches_the_paper_parameters() {
        let t = compute();
        let text = t.to_string();
        assert!(text.contains("8 worker cores"));
        assert!(text.contains("32 KB, 8-way, 64 B lines, 1-cycle latency"));
        assert!(text.contains("16 KB gshare + 256-entry loop predictor"));
        assert!(text.contains("1 MB, 32-way, 20-cycle latency"));
        assert!(text.contains("DDR3-1600"));
        assert!(t.rows.len() >= 10);
    }
}
