//! Figure 12: execution time, energy and area of the cpc = 8 / 16 KB design
//! points (4 or 8 line buffers × single or double bus), averaged across the
//! benchmarks and normalized to the private-I-cache baseline.

use crate::report::{arithmetic_mean, TextTable};
use crate::{DesignPoint, ExperimentContext};
use hpc_workloads::Benchmark;
use power_model::ClusterActivity;
use serde::{Deserialize, Serialize};
use sim_acmp::{BusWidth, SimResult};

/// One design point's normalized execution time, energy and area.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Figure12Row {
    /// Design-point label.
    pub design: String,
    /// Mean execution time normalized to the baseline.
    pub execution_time: f64,
    /// Mean energy normalized to the baseline.
    pub energy: f64,
    /// Cluster area normalized to the baseline.
    pub area: f64,
}

/// The Figure 12 table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Figure12 {
    /// One row per design point (baseline first).
    pub rows: Vec<Figure12Row>,
}

fn activity(result: &SimResult) -> ClusterActivity {
    let lb: u64 = result
        .cores
        .iter()
        .skip(1)
        .map(|c| c.line_buffers.line_requests)
        .sum();
    ClusterActivity {
        cycles: result.cycles,
        instructions: result.worker_instructions(),
        icache_accesses: result.worker_icache.accesses,
        line_buffer_accesses: lb,
        bus_transactions: result.bus.transactions,
    }
}

/// Runs every benchmark on the baseline and the four cpc = 8 design points
/// and averages the normalized metrics.
pub fn compute(ctx: &ExperimentContext, benchmarks: &[Benchmark]) -> Figure12 {
    let designs = [
        DesignPoint::baseline(),
        DesignPoint::shared(16, 4, BusWidth::Single).expect("figure design is valid"),
        DesignPoint::shared(16, 4, BusWidth::Double).expect("figure design is valid"),
        DesignPoint::shared(16, 8, BusWidth::Single).expect("figure design is valid"),
        DesignPoint::shared(16, 8, BusWidth::Double).expect("figure design is valid"),
    ];
    // One engine-level fan-out over the whole 5-design grid; the per-design
    // loop below then reads the warm cache.
    ctx.sweep(benchmarks, &designs);

    let num_workers = ctx.num_workers();
    let baseline_design = designs[0].cluster_design(num_workers);
    let baseline_area = baseline_design.area().total_mm2();

    let mut rows = Vec::new();
    for design in &designs {
        let cluster = design.cluster_design(num_workers);
        let results = ctx.simulate_all(benchmarks, design);

        let mut time_ratios = Vec::new();
        let mut energy_ratios = Vec::new();
        for (b, result) in &results {
            let baseline = ctx.simulate(*b, &designs[0]);
            let base_energy = baseline_design.energy(&activity(&baseline)).total_mj();
            let energy = cluster.energy(&activity(result)).total_mj();
            time_ratios.push(result.cycles as f64 / baseline.cycles as f64);
            energy_ratios.push(energy / base_energy);
        }

        rows.push(Figure12Row {
            design: design.name.clone(),
            execution_time: arithmetic_mean(&time_ratios),
            energy: arithmetic_mean(&energy_ratios),
            area: cluster.area().total_mm2() / baseline_area,
        });
    }
    Figure12 { rows }
}

impl Figure12 {
    /// The paper's preferred design point (16 KB, 4 line buffers, double
    /// bus).
    pub fn proposed(&self) -> Option<&Figure12Row> {
        self.rows
            .iter()
            .find(|r| r.design == DesignPoint::proposed().name)
    }
}

impl std::fmt::Display for Figure12 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "Figure 12: execution time, energy and area (cpc=8, 16KB shared), normalized to baseline"
        )?;
        let mut t = TextTable::new(vec!["design", "exec time", "energy", "area"]);
        for r in &self.rows {
            t.row(vec![
                r.design.clone(),
                format!("{:.3}", r.execution_time),
                format!("{:.3}", r.energy),
                format!("{:.3}", r.area),
            ]);
        }
        write!(f, "{t}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::figures::test_support::tiny_context;

    #[test]
    fn proposed_design_saves_area_without_large_slowdown() {
        let ctx = tiny_context();
        let fig = compute(&ctx, &[Benchmark::Cg, Benchmark::Lu]);
        assert_eq!(fig.rows.len(), 5);
        let baseline = &fig.rows[0];
        assert!((baseline.execution_time - 1.0).abs() < 1e-9);
        assert!((baseline.area - 1.0).abs() < 1e-9);
        let proposed = fig.proposed().expect("proposed design present");
        assert!(
            proposed.area < 0.95,
            "sharing the I-cache must save cluster area, got {:.3}",
            proposed.area
        );
        assert!(
            proposed.execution_time < 1.1,
            "the double-bus design should be close to baseline performance"
        );
        assert!(fig.to_string().contains("exec time"));
    }
}
