//! Figure 9: I-cache access ratio (lines fetched from the I-cache divided by
//! the total number of line fetch requests) for 2, 4 and 8 line buffers.

use crate::report::TextTable;
use crate::{DesignPoint, ExperimentContext};
use hpc_workloads::Benchmark;
use serde::{Deserialize, Serialize};

/// One benchmark's access ratios.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Figure9Row {
    /// The benchmark.
    pub benchmark: Benchmark,
    /// Access ratio (in percent) with two line buffers.
    pub lb2_percent: f64,
    /// Access ratio (in percent) with four line buffers.
    pub lb4_percent: f64,
    /// Access ratio (in percent) with eight line buffers.
    pub lb8_percent: f64,
}

/// The Figure 9 table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Figure9 {
    /// Per-benchmark rows.
    pub rows: Vec<Figure9Row>,
}

/// Measures the worker cores' access ratio on the baseline machine with 2,
/// 4 and 8 line buffers.
pub fn compute(ctx: &ExperimentContext, benchmarks: &[Benchmark]) -> Figure9 {
    let designs: Vec<DesignPoint> = [2, 4, 8]
        .iter()
        .map(|&n| {
            DesignPoint::baseline()
                .with_line_buffers(n)
                .expect("figure line-buffer count is valid")
        })
        .collect();
    ctx.sweep(benchmarks, &designs);
    let rows = benchmarks
        .iter()
        .map(|&b| {
            let ratio = |n: usize| {
                let design = DesignPoint::baseline()
                    .with_line_buffers(n)
                    .expect("figure line-buffer count is valid");
                let r = ctx.simulate(b, &design);
                r.worker_access_ratio() * 100.0
            };
            Figure9Row {
                benchmark: b,
                lb2_percent: ratio(2),
                lb4_percent: ratio(4),
                lb8_percent: ratio(8),
            }
        })
        .collect();
    Figure9 { rows }
}

impl std::fmt::Display for Figure9 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "Figure 9: I-cache access ratio [%] vs number of line buffers"
        )?;
        let mut t = TextTable::new(vec!["benchmark", "2 buffers", "4 buffers", "8 buffers"]);
        for r in &self.rows {
            t.row(vec![
                r.benchmark.name().to_string(),
                format!("{:.1}", r.lb2_percent),
                format!("{:.1}", r.lb4_percent),
                format!("{:.1}", r.lb8_percent),
            ]);
        }
        write!(f, "{t}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::figures::test_support::tiny_context;

    #[test]
    fn more_line_buffers_never_increase_the_access_ratio() {
        let ctx = tiny_context();
        let fig = compute(&ctx, &[Benchmark::Cg, Benchmark::Lu, Benchmark::Ua]);
        for r in &fig.rows {
            assert!(
                r.lb8_percent <= r.lb4_percent + 2.0 && r.lb4_percent <= r.lb2_percent + 2.0,
                "{}: access ratio should not grow with more buffers ({:.1} / {:.1} / {:.1})",
                r.benchmark,
                r.lb2_percent,
                r.lb4_percent,
                r.lb8_percent
            );
            assert!(r.lb2_percent <= 100.0 && r.lb8_percent >= 0.0);
        }
        // CG's tiny kernel fits in the buffers; LU's streaming body does not.
        let cg = fig
            .rows
            .iter()
            .find(|r| r.benchmark == Benchmark::Cg)
            .unwrap();
        let lu = fig
            .rows
            .iter()
            .find(|r| r.benchmark == Benchmark::Lu)
            .unwrap();
        assert!(
            cg.lb4_percent < lu.lb4_percent,
            "short-basic-block benchmarks have lower access ratios (CG {:.1}% vs LU {:.1}%)",
            cg.lb4_percent,
            lu.lb4_percent
        );
    }
}
