//! One module per table/figure of the paper.
//!
//! Every module exposes a `compute` function that takes an
//! [`ExperimentContext`](crate::ExperimentContext) (and, where applicable,
//! the list of benchmarks) and returns a typed result table whose rows match
//! the series the paper plots.  The harness binaries in `bench-harness`
//! print these tables; `EXPERIMENTS.md` records a reference run next to the
//! paper's reported values.
//!
//! | Module | Paper artefact |
//! |---|---|
//! | [`fig01`] | Fig. 1 — Hill-Marty speedup vs serial fraction |
//! | [`fig02`] | Fig. 2 — average dynamic basic-block length |
//! | [`fig03`] | Fig. 3 — I-cache MPKI, serial vs parallel code |
//! | [`fig04`] | Fig. 4 — instruction sharing across threads |
//! | [`table01`] | Table I — simulated ACMP configuration |
//! | [`fig07`] | Fig. 7 — naive sharing, normalized execution time |
//! | [`fig08`] | Fig. 8 — normalized CPI stacks at cpc = 8 |
//! | [`fig09`] | Fig. 9 — I-cache access ratio vs line buffers |
//! | [`fig10`] | Fig. 10 — more line buffers vs more bandwidth |
//! | [`fig11`] | Fig. 11 — shared-I-cache MPKI relative to private |
//! | [`fig12`] | Fig. 12 — execution time, energy and area |
//! | [`fig13`] | Fig. 13 — all-shared vs worker-shared vs serial fraction |

pub mod fig01;
pub mod fig02;
pub mod fig03;
pub mod fig04;
pub mod fig07;
pub mod fig08;
pub mod fig09;
pub mod fig10;
pub mod fig11;
pub mod fig12;
pub mod fig13;
pub mod table01;

#[cfg(test)]
pub(crate) mod test_support {
    use crate::ExperimentContext;
    use hpc_workloads::{Benchmark, GeneratorConfig};

    /// A deliberately tiny context so figure unit tests stay fast.
    pub fn tiny_context() -> ExperimentContext {
        ExperimentContext::new(GeneratorConfig {
            num_workers: 2,
            parallel_instructions_per_thread: 5_000,
            num_phases: 1,
            seed: 5,
        })
    }

    /// A small but representative benchmark subset.
    pub fn tiny_benchmarks() -> Vec<Benchmark> {
        vec![Benchmark::Cg, Benchmark::Lu, Benchmark::CoEvp]
    }
}
