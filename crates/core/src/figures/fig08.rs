//! Figure 8: normalized CPI stack of the worker cores at the highest
//! sharing degree (cpc = 8, 32 KB shared, four line buffers, single bus).
//!
//! Each benchmark's bar is normalized to the baseline (private I-caches)
//! execution time: the first component is the baseline CPI and the remaining
//! components are the extra stall cycles the shared configuration adds,
//! split into I-bus latency, I-bus congestion, I-cache latency, branch
//! misses and the rest.

use crate::report::TextTable;
use crate::{DesignPoint, ExperimentContext};
use hpc_workloads::Benchmark;
use serde::{Deserialize, Serialize};

/// One benchmark's normalized CPI stack.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Figure8Row {
    /// The benchmark.
    pub benchmark: Benchmark,
    /// Baseline CPI component (1.0 would mean the shared design adds
    /// nothing).
    pub baseline_cpi: f64,
    /// Extra stall fraction waiting for granted bus transfers.
    pub ibus_latency: f64,
    /// Extra stall fraction waiting for the bus grant.
    pub ibus_congestion: f64,
    /// Extra stall fraction waiting for I-cache miss fills.
    pub icache_latency: f64,
    /// Extra stall fraction from branch mispredictions.
    pub branch_miss: f64,
    /// Remaining difference.
    pub rest: f64,
}

impl Figure8Row {
    /// Total normalized execution time of the shared configuration
    /// (the top of the stacked bar).
    pub fn total(&self) -> f64 {
        self.baseline_cpi
            + self.ibus_latency
            + self.ibus_congestion
            + self.icache_latency
            + self.branch_miss
            + self.rest
    }
}

/// The Figure 8 table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Figure8 {
    /// Per-benchmark rows.
    pub rows: Vec<Figure8Row>,
}

/// Runs the baseline and the cpc = 8 naive-sharing configuration and splits
/// the cycle difference by stall cause.
pub fn compute(ctx: &ExperimentContext, benchmarks: &[Benchmark]) -> Figure8 {
    ctx.sweep(
        benchmarks,
        &[
            DesignPoint::baseline(),
            DesignPoint::naive_shared(8).expect("figure cpc is valid"),
        ],
    );
    let rows = benchmarks
        .iter()
        .map(|&b| {
            let baseline = ctx.simulate(b, &DesignPoint::baseline());
            let shared = ctx.simulate(
                b,
                &DesignPoint::naive_shared(8).expect("figure cpc is valid"),
            );
            let base_cycles = baseline.cycles as f64;

            let base_stack = baseline.worker_cpi_stack();
            let shared_stack = shared.worker_cpi_stack();
            let workers = (baseline.cores.len() - 1).max(1) as f64;

            // Extra stall cycles per worker, averaged, relative to the
            // baseline execution time.
            let delta = |s: u64, b: u64| (s as f64 - b as f64).max(0.0) / workers / base_cycles;
            let ibus_latency = delta(shared_stack.ibus_latency, base_stack.ibus_latency);
            let ibus_congestion = delta(shared_stack.ibus_congestion, base_stack.ibus_congestion);
            let icache_latency = delta(shared_stack.icache_latency, base_stack.icache_latency);
            let branch_miss = delta(shared_stack.branch_miss, base_stack.branch_miss);

            let total = shared.cycles as f64 / base_cycles;
            let rest =
                (total - 1.0 - ibus_latency - ibus_congestion - icache_latency - branch_miss)
                    .max(0.0);
            Figure8Row {
                benchmark: b,
                baseline_cpi: 1.0,
                ibus_latency,
                ibus_congestion,
                icache_latency,
                branch_miss,
                rest,
            }
        })
        .collect();
    Figure8 { rows }
}

impl std::fmt::Display for Figure8 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "Figure 8: normalized CPI stack at cpc=8 (components relative to baseline execution time)"
        )?;
        let mut t = TextTable::new(vec![
            "benchmark",
            "baseline",
            "i-bus lat",
            "i-bus cong",
            "i$ lat",
            "branch",
            "rest",
            "total",
        ]);
        for r in &self.rows {
            t.row(vec![
                r.benchmark.name().to_string(),
                format!("{:.3}", r.baseline_cpi),
                format!("{:.3}", r.ibus_latency),
                format!("{:.3}", r.ibus_congestion),
                format!("{:.3}", r.icache_latency),
                format!("{:.3}", r.branch_miss),
                format!("{:.3}", r.rest),
                format!("{:.3}", r.total()),
            ]);
        }
        write!(f, "{t}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::figures::test_support::tiny_context;

    #[test]
    fn stack_total_matches_normalized_execution_time() {
        let ctx = tiny_context();
        let fig = compute(&ctx, &[Benchmark::Lu]);
        let row = &fig.rows[0];
        assert!(
            row.total() >= 1.0,
            "the shared design cannot beat its own baseline component"
        );
        assert!(row.baseline_cpi == 1.0);
        assert!(row.ibus_latency >= 0.0 && row.ibus_congestion >= 0.0);
        assert!(fig.to_string().contains("i-bus cong"));
    }
}
