//! Experiment execution: trace generation, simulation, caching and
//! parallel sweeps.

use crate::design_point::DesignPoint;
use hpc_workloads::{Benchmark, GeneratorConfig, TraceGenerator};
use parking_lot::Mutex;
use sim_acmp::{Machine, SimResult};
use sim_trace::TraceSet;
use std::collections::HashMap;
use std::sync::Arc;

/// Shared state for a set of experiments: traces are generated once per
/// benchmark and simulation results are cached per (benchmark, design
/// point), so the figure modules can be composed without repeating work.
#[derive(Debug)]
pub struct ExperimentContext {
    generator: GeneratorConfig,
    traces: Mutex<HashMap<Benchmark, Arc<TraceSet>>>,
    results: Mutex<HashMap<(Benchmark, String), Arc<SimResult>>>,
}

impl ExperimentContext {
    /// Creates a context that generates traces with `generator`.
    pub fn new(generator: GeneratorConfig) -> Self {
        generator.validate();
        ExperimentContext {
            generator,
            traces: Mutex::new(HashMap::new()),
            results: Mutex::new(HashMap::new()),
        }
    }

    /// A context at the scale used by the figure harnesses (eight workers).
    pub fn paper_scale() -> Self {
        Self::new(GeneratorConfig::paper())
    }

    /// The trace-generation configuration in use.
    pub fn generator(&self) -> &GeneratorConfig {
        &self.generator
    }

    /// Number of worker cores simulated.
    pub fn num_workers(&self) -> usize {
        self.generator.num_workers
    }

    /// Returns (generating and caching on first use) the trace set of
    /// `benchmark`.
    pub fn traces(&self, benchmark: Benchmark) -> Arc<TraceSet> {
        if let Some(t) = self.traces.lock().get(&benchmark) {
            return Arc::clone(t);
        }
        let generated =
            Arc::new(TraceGenerator::new(benchmark.profile(), self.generator).generate());
        let mut guard = self.traces.lock();
        Arc::clone(guard.entry(benchmark).or_insert(generated))
    }

    /// Simulates `benchmark` on `design`, caching the result.
    ///
    /// # Panics
    ///
    /// Panics if the simulation fails (cycle limit exceeded), which points
    /// at a configuration or runtime bug rather than a user error.
    pub fn simulate(&self, benchmark: Benchmark, design: &DesignPoint) -> Arc<SimResult> {
        let key = (benchmark, design.name.clone());
        if let Some(r) = self.results.lock().get(&key) {
            return Arc::clone(r);
        }
        let traces = self.traces(benchmark);
        let config = design.acmp_config(self.num_workers());
        let result = Arc::new(
            Machine::new(config, &traces)
                .run()
                .unwrap_or_else(|e| panic!("simulation of {benchmark} on {design} failed: {e}")),
        );
        let mut guard = self.results.lock();
        Arc::clone(guard.entry(key).or_insert(result))
    }

    /// Simulates every benchmark in `benchmarks` on `design`, running the
    /// per-benchmark simulations on worker threads.
    pub fn simulate_all(
        &self,
        benchmarks: &[Benchmark],
        design: &DesignPoint,
    ) -> Vec<(Benchmark, Arc<SimResult>)> {
        self.run_parallel(benchmarks, |b| self.simulate(b, design))
    }

    /// Runs `f` for every benchmark on a pool of worker threads, preserving
    /// the input order in the returned vector.
    pub fn run_parallel<T, F>(&self, benchmarks: &[Benchmark], f: F) -> Vec<(Benchmark, T)>
    where
        T: Send,
        F: Fn(Benchmark) -> T + Sync,
    {
        let results: Mutex<Vec<Option<(Benchmark, T)>>> =
            Mutex::new((0..benchmarks.len()).map(|_| None).collect());
        let parallelism = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4)
            .min(benchmarks.len().max(1));
        let next = std::sync::atomic::AtomicUsize::new(0);

        std::thread::scope(|scope| {
            for _ in 0..parallelism {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    if i >= benchmarks.len() {
                        break;
                    }
                    let b = benchmarks[i];
                    let value = f(b);
                    results.lock()[i] = Some((b, value));
                });
            }
        });

        results
            .into_inner()
            .into_iter()
            .map(|r| r.expect("every benchmark was processed"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_ctx() -> ExperimentContext {
        ExperimentContext::new(GeneratorConfig {
            num_workers: 2,
            parallel_instructions_per_thread: 5_000,
            num_phases: 1,
            seed: 3,
        })
    }

    #[test]
    fn traces_are_cached_and_shared() {
        let ctx = small_ctx();
        let a = ctx.traces(Benchmark::Cg);
        let b = ctx.traces(Benchmark::Cg);
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn simulations_are_cached_per_design_point() {
        let ctx = small_ctx();
        let a = ctx.simulate(Benchmark::Cg, &DesignPoint::baseline());
        let b = ctx.simulate(Benchmark::Cg, &DesignPoint::baseline());
        assert!(Arc::ptr_eq(&a, &b));
        let c = ctx.simulate(Benchmark::Cg, &DesignPoint::proposed());
        assert!(!Arc::ptr_eq(&a, &c));
    }

    #[test]
    fn parallel_sweep_preserves_order() {
        let ctx = small_ctx();
        let benchmarks = [Benchmark::Cg, Benchmark::Is, Benchmark::Ep];
        let results = ctx.simulate_all(&benchmarks, &DesignPoint::baseline());
        let names: Vec<_> = results.iter().map(|(b, _)| *b).collect();
        assert_eq!(names, benchmarks);
        for (b, r) in &results {
            assert_eq!(r.instructions, ctx.traces(*b).total_instructions());
        }
    }

    #[test]
    fn run_parallel_with_custom_closure() {
        let ctx = small_ctx();
        let out = ctx.run_parallel(&[Benchmark::Cg, Benchmark::Lu], |b| b.name().len());
        assert_eq!(out, vec![(Benchmark::Cg, 2), (Benchmark::Lu, 2)]);
    }
}
