//! Experiment execution, backed by the `acmp-sweep` engine.
//!
//! [`ExperimentContext`] is the figure modules' view of the sweep engine:
//! trace generation, the sharded in-memory result cache, the optional
//! content-addressed on-disk store and the work-stealing thread pool all
//! live in [`acmp_sweep::SweepEngine`]; this type adds the grid-prefetch
//! idiom the figure modules share (sweep the full benchmark × design grid
//! at job granularity, then read the now-warm cache while assembling rows).

use crate::design_point::DesignPoint;
use acmp_sweep::{EngineStats, SweepEngine, SweepOutcome};
use hpc_workloads::{Benchmark, GeneratorConfig};
use sim_acmp::SimResult;
use sim_trace::TraceSet;
use std::sync::Arc;

/// Shared state for a set of experiments: traces are generated once per
/// benchmark and simulation results are cached per (benchmark, design
/// point), so the figure modules can be composed without repeating work.
///
/// Results are keyed on the content hash of the *entire* design point (plus
/// benchmark and generator config), never on the design's display name, so
/// distinct points can never collide.
#[derive(Debug)]
pub struct ExperimentContext {
    engine: SweepEngine,
}

impl ExperimentContext {
    /// Creates a context that generates traces with `generator`.
    pub fn new(generator: GeneratorConfig) -> Self {
        ExperimentContext {
            engine: SweepEngine::builder(generator)
                .build()
                .expect("building without a disk store cannot fail"),
        }
    }

    /// Wraps an already-configured engine (custom thread count, disk
    /// store).
    pub fn from_engine(engine: SweepEngine) -> Self {
        ExperimentContext { engine }
    }

    /// A context at the scale used by the figure harnesses (eight workers).
    pub fn paper_scale() -> Self {
        Self::new(GeneratorConfig::paper())
    }

    /// Attaches the content-addressed on-disk result store rooted at
    /// `root`, making repeated runs warm-start across processes.
    ///
    /// # Errors
    ///
    /// Returns the I/O error if the store directory cannot be created.
    pub fn with_disk_cache(self, root: impl Into<std::path::PathBuf>) -> std::io::Result<Self> {
        Ok(ExperimentContext {
            engine: self.engine.with_disk_store(root)?,
        })
    }

    /// Restricts the context to one shard of the job keyspace: grid sweeps
    /// run (and return) only the cells whose stable key digest the shard
    /// owns.  This is the multi-process idiom behind `sweep --shards N` —
    /// contexts configured with the N distinct shards of one count
    /// partition a grid exactly, with no cell simulated twice.
    pub fn with_shard(self, shard: acmp_sweep::ShardSpec) -> Self {
        ExperimentContext {
            engine: self.engine.with_shard(shard),
        }
    }

    /// The underlying sweep engine.
    pub fn engine(&self) -> &SweepEngine {
        &self.engine
    }

    /// The attached on-disk result store, if [`with_disk_cache`]
    /// (Self::with_disk_cache) attached one.  This is the figure harnesses'
    /// hook into the multi-machine warm-start path:
    /// [`export_segments`](acmp_sweep::DiskStore::export_segments) the
    /// store on the machine that already ran, ship the bundle, and
    /// [`import_segments`](acmp_sweep::DiskStore::import_segments) it
    /// wherever the next figure run happens — the warm run then reports
    /// zero simulations and zero trace generations.
    pub fn store(&self) -> Option<&acmp_sweep::DiskStore> {
        self.engine.store()
    }

    /// The trace-generation configuration in use.
    pub fn generator(&self) -> &GeneratorConfig {
        self.engine.generator()
    }

    /// Number of worker cores simulated.
    pub fn num_workers(&self) -> usize {
        self.engine.simulated_workers()
    }

    /// Returns (generating and caching on first use) the trace set of
    /// `benchmark`.
    pub fn traces(&self, benchmark: Benchmark) -> Arc<TraceSet> {
        self.engine.traces(benchmark)
    }

    /// Simulates `benchmark` on `design`, caching the result.
    ///
    /// # Panics
    ///
    /// Panics if the simulation fails (cycle limit exceeded), which points
    /// at a configuration or runtime bug rather than a user error.
    pub fn simulate(&self, benchmark: Benchmark, design: &DesignPoint) -> Arc<SimResult> {
        self.engine.simulate(benchmark, design)
    }

    /// Runs the full `benchmarks` × `designs` grid on the work-stealing
    /// pool and returns every cell.
    ///
    /// This is the figure modules' prefetch idiom: one call fans the grid
    /// out at (benchmark, design) job granularity — rather than only across
    /// benchmarks — and subsequent [`simulate`](Self::simulate) calls for
    /// those cells are cache hits.
    pub fn sweep(&self, benchmarks: &[Benchmark], designs: &[DesignPoint]) -> SweepOutcome {
        self.engine.run_grid(benchmarks, designs)
    }

    /// Simulates every benchmark in `benchmarks` on `design` on the pool,
    /// preserving input order.
    pub fn simulate_all(
        &self,
        benchmarks: &[Benchmark],
        design: &DesignPoint,
    ) -> Vec<(Benchmark, Arc<SimResult>)> {
        self.sweep(benchmarks, std::slice::from_ref(design))
            .rows
            .into_iter()
            .map(|row| (row.benchmark, row.result))
            .collect()
    }

    /// Runs `f` for every benchmark on the work-stealing pool, preserving
    /// the input order in the returned vector.
    ///
    /// For plain grid simulation prefer [`sweep`](Self::sweep), which
    /// schedules at cell granularity; this is the escape hatch for
    /// experiments doing other per-benchmark work (trace analysis, replay
    /// models).
    pub fn run_parallel<T, F>(&self, benchmarks: &[Benchmark], f: F) -> Vec<(Benchmark, T)>
    where
        T: Send,
        F: Fn(Benchmark) -> T + Sync,
    {
        self.engine.run_per_benchmark(benchmarks, f)
    }

    /// Snapshot of the engine's cache behaviour.
    pub fn stats(&self) -> EngineStats {
        self.engine.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_ctx() -> ExperimentContext {
        ExperimentContext::new(GeneratorConfig {
            num_workers: 2,
            parallel_instructions_per_thread: 5_000,
            num_phases: 1,
            seed: 3,
        })
    }

    #[test]
    fn traces_are_cached_and_shared() {
        let ctx = small_ctx();
        let a = ctx.traces(Benchmark::Cg);
        let b = ctx.traces(Benchmark::Cg);
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn simulations_are_cached_per_design_point() {
        let ctx = small_ctx();
        let a = ctx.simulate(Benchmark::Cg, &DesignPoint::baseline());
        let b = ctx.simulate(Benchmark::Cg, &DesignPoint::baseline());
        assert!(Arc::ptr_eq(&a, &b));
        let c = ctx.simulate(Benchmark::Cg, &DesignPoint::proposed());
        assert!(!Arc::ptr_eq(&a, &c));
    }

    #[test]
    fn same_name_different_parameters_never_collide() {
        // The historical bug this layer must never regrow: two design
        // points sharing a display name are still distinct cache entries.
        let ctx = small_ctx();
        let mut doppelganger = DesignPoint::proposed();
        doppelganger.name = DesignPoint::baseline().name;
        let a = ctx.simulate(Benchmark::Cg, &DesignPoint::baseline());
        let b = ctx.simulate(Benchmark::Cg, &doppelganger);
        assert!(!Arc::ptr_eq(&a, &b));
        assert_ne!(a.cycles, b.cycles);
    }

    #[test]
    fn parallel_sweep_preserves_order() {
        let ctx = small_ctx();
        let benchmarks = [Benchmark::Cg, Benchmark::Is, Benchmark::Ep];
        let results = ctx.simulate_all(&benchmarks, &DesignPoint::baseline());
        let names: Vec<_> = results.iter().map(|(b, _)| *b).collect();
        assert_eq!(names, benchmarks);
        for (b, r) in &results {
            assert_eq!(r.instructions, ctx.traces(*b).total_instructions());
        }
    }

    #[test]
    fn sweep_prefetches_the_grid() {
        let ctx = small_ctx();
        let benchmarks = [Benchmark::Cg, Benchmark::Lu];
        let designs = [DesignPoint::baseline(), DesignPoint::proposed()];
        let outcome = ctx.sweep(&benchmarks, &designs);
        assert_eq!(outcome.rows.len(), 4);
        let simulated = ctx.stats().simulated;
        assert_eq!(simulated, 4);
        // Every cell is now a memory hit.
        ctx.simulate(Benchmark::Lu, &DesignPoint::proposed());
        assert_eq!(ctx.stats().simulated, simulated);
    }

    #[test]
    fn sharded_contexts_partition_a_sweep() {
        let benchmarks = [Benchmark::Cg];
        let designs = [
            DesignPoint::baseline(),
            DesignPoint::proposed(),
            DesignPoint::all_shared(),
        ];
        let full = small_ctx();
        let all_keys: Vec<String> = full
            .sweep(&benchmarks, &designs)
            .rows
            .into_iter()
            .map(|r| r.key)
            .collect();

        let mut union: Vec<String> = Vec::new();
        let mut simulated = 0;
        for index in 0..2 {
            let ctx = small_ctx().with_shard(acmp_sweep::ShardSpec::new(index, 2).unwrap());
            let outcome = ctx.sweep(&benchmarks, &designs);
            simulated += ctx.stats().simulated;
            union.extend(outcome.rows.into_iter().map(|r| r.key));
        }
        let mut want = all_keys;
        want.sort_unstable();
        union.sort_unstable();
        assert_eq!(union, want, "two shards must cover the grid exactly");
        assert_eq!(simulated, 3, "no cell may simulate twice across shards");
    }

    #[test]
    fn warm_stores_transfer_between_contexts_via_export_import() {
        // Machine A runs a grid cold; its store is exported, shipped and
        // imported into machine B's empty store; B's run is fully warm.
        let dir = std::env::temp_dir().join(format!(
            "acmp-core-experiment-transfer-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let benchmarks = [Benchmark::Cg, Benchmark::Lu];
        let designs = [DesignPoint::baseline(), DesignPoint::proposed()];

        let a = small_ctx().with_disk_cache(dir.join("machine-a")).unwrap();
        let rows_a = a.sweep(&benchmarks, &designs);
        assert_eq!(a.stats().simulated, 4);
        let mut bundle = Vec::new();
        a.store().unwrap().export_segments(&mut bundle).unwrap();

        let b = small_ctx().with_disk_cache(dir.join("machine-b")).unwrap();
        b.store()
            .unwrap()
            .import_segments(std::io::Cursor::new(&bundle))
            .unwrap();
        let rows_b = b.sweep(&benchmarks, &designs);
        assert_eq!(b.stats().simulated, 0, "imported store must be fully warm");
        assert_eq!(b.stats().trace_generated, 0);
        let jsonl =
            |o: &SweepOutcome| -> Vec<String> { o.rows.iter().map(|r| r.to_jsonl()).collect() };
        assert_eq!(jsonl(&rows_a), jsonl(&rows_b));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn contexts_without_a_disk_cache_expose_no_store() {
        assert!(small_ctx().store().is_none());
    }

    #[test]
    fn run_parallel_with_custom_closure() {
        let ctx = small_ctx();
        let out = ctx.run_parallel(&[Benchmark::Cg, Benchmark::Lu], |b| b.name().len());
        assert_eq!(out, vec![(Benchmark::Cg, 2), (Benchmark::Lu, 2)]);
    }
}
