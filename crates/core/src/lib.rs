//! Shared L1 instruction cache among lean cores on an asymmetric CMP.
//!
//! This is the top-level library of the reproduction of Milic et al.,
//! *"Sharing the Instruction Cache Among Lean Cores on an Asymmetric CMP for
//! HPC Applications"* (ISPASS 2017).  It ties the lower-level crates
//! together:
//!
//! * [`hpc_workloads`] — the 24 calibrated benchmark profiles and the
//!   synthetic trace generator,
//! * [`sim_acmp`] — the cycle-level ACMP simulator (cores, shared I-caches,
//!   buses, runtime),
//! * [`power_model`] — the McPAT/CACTI-style area and energy model,
//! * [`acmp_analytic`] — the Hill-Marty model behind Figure 1,
//! * [`acmp_sweep`] — the parallel design-space exploration engine
//!   (work-stealing scheduler, sharded result cache, persistent
//!   content-addressed store, the `sweep` CLI),
//!
//! and exposes the experiment layer used by the examples, the integration
//! tests and the benchmark harness:
//!
//! * [`DesignPoint`] — the machine configurations evaluated in the paper
//!   (baseline, naive sharing, more line buffers, more bandwidth, the
//!   proposed 16 KB double-bus design, all-shared), re-exported from
//!   `acmp-sweep`,
//! * [`ExperimentContext`] — the figure modules' view of the sweep engine:
//!   traces once per benchmark, grid runs fanned out over the
//!   work-stealing pool, results cached by content hash,
//! * [`figures`] — one module per table/figure of the paper, each computing
//!   the same rows/series the paper reports.
//!
//! # Quick start
//!
//! ```
//! use shared_icache::{DesignPoint, ExperimentContext};
//! use hpc_workloads::{Benchmark, GeneratorConfig};
//!
//! // A reduced-scale context so the example runs quickly.
//! let ctx = ExperimentContext::new(GeneratorConfig::small());
//! let baseline = ctx.simulate(Benchmark::Cg, &DesignPoint::baseline());
//! let proposed = ctx.simulate(Benchmark::Cg, &DesignPoint::proposed());
//! let slowdown = proposed.cycles as f64 / baseline.cycles as f64;
//! assert!(slowdown < 1.2);
//! ```

pub mod experiment;
pub mod figures;
pub mod report;

// `DesignPoint` lives in `acmp-sweep` (the execution engine needs to name
// design points without depending on this crate); re-exported here so
// downstream code keeps using `shared_icache::DesignPoint`.
pub use acmp_sweep::design_point;
pub use acmp_sweep::{DesignPoint, DesignPointError};
pub use experiment::ExperimentContext;
pub use report::{arithmetic_mean, geometric_mean, TextTable};

// Re-export the crates a downstream user needs to drive the library.
pub use acmp_analytic;
pub use acmp_sweep;
pub use hpc_workloads;
pub use power_model;
pub use sim_acmp;
pub use sim_trace;

#[cfg(test)]
mod crate_tests {
    use super::*;

    #[test]
    fn public_types_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<DesignPoint>();
        assert_send_sync::<ExperimentContext>();
    }
}
