//! Small reporting helpers shared by the figure modules and the harnesses.

/// Arithmetic mean; 0 for an empty slice.
pub fn arithmetic_mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

/// Geometric mean; 0 for an empty slice.
///
/// # Panics
///
/// Panics if any value is not strictly positive.
pub fn geometric_mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    assert!(
        values.iter().all(|v| *v > 0.0),
        "geometric mean requires positive values"
    );
    (values.iter().map(|v| v.ln()).sum::<f64>() / values.len() as f64).exp()
}

/// A minimal fixed-width text table used by the `Display` impls of the
/// figure types and by the harness binaries.
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        TextTable {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row.
    ///
    /// # Panics
    ///
    /// Panics if the row length does not match the header.
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) -> &mut Self {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(
            cells.len(),
            self.header.len(),
            "row has {} cells but the table has {} columns",
            cells.len(),
            self.header.len()
        );
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Returns `true` if the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

impl std::fmt::Display for TextTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let write_row = |f: &mut std::fmt::Formatter<'_>, cells: &[String]| -> std::fmt::Result {
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    write!(f, "  ")?;
                }
                write!(f, "{cell:>width$}", width = widths[i])?;
            }
            writeln!(f)
        };
        write_row(f, &self.header)?;
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len().saturating_sub(1));
        writeln!(f, "{}", "-".repeat(total))?;
        for row in &self.rows {
            write_row(f, row)?;
        }
        Ok(())
    }
}

/// Formats a float with three decimal places (the precision used in the
/// result tables).
pub fn fmt3(v: f64) -> String {
    format!("{v:.3}")
}

/// Formats a float as a percentage with one decimal place.
pub fn fmt_pct(v: f64) -> String {
    format!("{:.1}%", v * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn means() {
        assert_eq!(arithmetic_mean(&[]), 0.0);
        assert!((arithmetic_mean(&[1.0, 2.0, 3.0]) - 2.0).abs() < 1e-12);
        assert_eq!(geometric_mean(&[]), 0.0);
        assert!((geometric_mean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert!((geometric_mean(&[2.0, 2.0, 2.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "positive values")]
    fn geometric_mean_rejects_zero() {
        geometric_mean(&[1.0, 0.0]);
    }

    #[test]
    fn table_renders_aligned_columns() {
        let mut t = TextTable::new(vec!["bench", "value"]);
        t.row(vec!["BT", "1.000"]);
        t.row(vec!["LULESH", "0.980"]);
        let s = t.to_string();
        assert!(s.contains("bench"));
        assert!(s.contains("LULESH"));
        assert!(s.lines().count() >= 4);
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "columns")]
    fn mismatched_row_is_rejected() {
        let mut t = TextTable::new(vec!["a", "b"]);
        t.row(vec!["only-one"]);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt3(1.23456), "1.235");
        assert_eq!(fmt_pct(0.113), "11.3%");
    }
}
