//! Line buffers (prefetch / loop buffers).
//!
//! Each core owns a small set of line buffers, each holding one I-cache line
//! (64 B).  Before accessing the I-cache, the front-end checks whether the
//! line containing the head of the FTQ is already present; if so, the
//! instructions are extracted from the buffer and **no request is sent to
//! the I-cache** — this is what keeps the shared-I-cache access rate (and
//! therefore the bus contention) low, and is measured by the paper's
//! *I-cache access ratio* (Fig. 9).  Each buffer can also track one
//! outstanding request, so the number of line buffers bounds the number of
//! in-flight I-cache requests per core.

use serde::{Deserialize, Serialize};

/// State of one line buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    /// Holds nothing.
    Invalid,
    /// A fill request for `line_addr` is in flight.
    Pending,
    /// Holds a valid line.
    Valid,
}

#[derive(Debug, Clone, Copy)]
struct Buffer {
    line_addr: u64,
    state: State,
    last_use: u64,
}

/// Result of looking up a line in the buffer file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LineLookup {
    /// The line is resident; instructions can be extracted immediately.
    Hit,
    /// A request for the line is already outstanding; wait for the fill.
    Pending,
    /// The line is neither resident nor requested.
    Miss,
}

/// Statistics of the line-buffer file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct LineBufferStats {
    /// Line-granular fetch requests made by the front-end (the denominator
    /// of the access ratio).
    pub line_requests: u64,
    /// Requests satisfied by a resident line buffer.
    pub hits: u64,
    /// Requests that found an in-flight fill to piggyback on.
    pub pending_hits: u64,
    /// Requests that had to access the I-cache (the numerator of the access
    /// ratio).
    pub icache_accesses: u64,
    /// Allocations rejected because every buffer was pending.
    pub allocation_stalls: u64,
}

impl LineBufferStats {
    /// The paper's *I-cache access ratio*: lines fetched from the I-cache
    /// divided by the total number of line fetch requests.
    pub fn access_ratio(&self) -> f64 {
        if self.line_requests == 0 {
            0.0
        } else {
            self.icache_accesses as f64 / self.line_requests as f64
        }
    }
}

/// A file of line buffers with LRU reuse.
#[derive(Debug)]
pub struct LineBufferFile {
    buffers: Vec<Buffer>,
    line_size: u64,
    stats: LineBufferStats,
    /// Buffers in [`State::Pending`], kept in sync with `buffers` so the
    /// per-cycle occupancy checks are O(1) instead of a scan.
    pending: usize,
    /// Buffers in [`State::Invalid`], same purpose.
    invalid: usize,
}

impl LineBufferFile {
    /// Creates a file of `n` line buffers for `line_size`-byte lines.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or `line_size` is not a power of two.
    pub fn new(n: usize, line_size: u64) -> Self {
        assert!(n > 0, "need at least one line buffer");
        assert!(
            line_size.is_power_of_two(),
            "line size must be a power of two"
        );
        LineBufferFile {
            buffers: vec![
                Buffer {
                    line_addr: 0,
                    state: State::Invalid,
                    last_use: 0,
                };
                n
            ],
            line_size,
            stats: LineBufferStats::default(),
            pending: 0,
            invalid: n,
        }
    }

    /// Number of buffers.
    pub fn len(&self) -> usize {
        self.buffers.len()
    }

    /// Returns `true` if the file has no buffers (never true in practice).
    pub fn is_empty(&self) -> bool {
        self.buffers.is_empty()
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &LineBufferStats {
        &self.stats
    }

    /// Line size in bytes.
    pub fn line_size(&self) -> u64 {
        self.line_size
    }

    fn align(&self, addr: u64) -> u64 {
        addr & !(self.line_size - 1)
    }

    fn find(&self, line: u64) -> Option<usize> {
        self.buffers
            .iter()
            .position(|b| b.state != State::Invalid && b.line_addr == line)
    }

    /// Looks up the line containing `addr` and records the request in the
    /// statistics.  Use [`LineBufferFile::probe`] for a statistics-free
    /// check.
    pub fn request(&mut self, addr: u64, now: u64) -> LineLookup {
        let line = self.align(addr);
        self.stats.line_requests += 1;
        match self.find(line) {
            Some(idx) => match self.buffers[idx].state {
                State::Valid => {
                    self.buffers[idx].last_use = now;
                    self.stats.hits += 1;
                    LineLookup::Hit
                }
                State::Pending => {
                    self.stats.pending_hits += 1;
                    LineLookup::Pending
                }
                State::Invalid => unreachable!("find() skips invalid buffers"),
            },
            None => LineLookup::Miss,
        }
    }

    /// Statistics-free residency check.
    pub fn probe(&self, addr: u64) -> LineLookup {
        let line = self.align(addr);
        match self.find(line) {
            Some(idx) => match self.buffers[idx].state {
                State::Valid => LineLookup::Hit,
                State::Pending => LineLookup::Pending,
                State::Invalid => unreachable!("find() skips invalid buffers"),
            },
            None => LineLookup::Miss,
        }
    }

    /// Allocates a buffer for an I-cache request for the line containing
    /// `addr`.  Returns `false` (and does not count an I-cache access) if
    /// every buffer currently tracks an outstanding request, in which case
    /// the front-end must retry later.
    pub fn allocate(&mut self, addr: u64, now: u64) -> bool {
        let line = self.align(addr);
        debug_assert!(
            self.find(line).is_none(),
            "allocate called for a line that is already tracked"
        );
        // Prefer an invalid buffer, then the least recently used valid one.
        // The counter tells which scan can succeed, so only one runs.
        let slot = if self.invalid > 0 {
            self.buffers.iter().position(|b| b.state == State::Invalid)
        } else {
            self.buffers
                .iter()
                .enumerate()
                .filter(|(_, b)| b.state == State::Valid)
                .min_by_key(|(_, b)| b.last_use)
                .map(|(i, _)| i)
        };
        match slot {
            Some(idx) => {
                if self.buffers[idx].state == State::Invalid {
                    self.invalid -= 1;
                }
                self.buffers[idx] = Buffer {
                    line_addr: line,
                    state: State::Pending,
                    last_use: now,
                };
                self.pending += 1;
                self.stats.icache_accesses += 1;
                true
            }
            None => {
                self.stats.allocation_stalls += 1;
                false
            }
        }
    }

    /// Records `n` rejected allocations without retrying them.  The
    /// idle-skip scheduler uses this when a core parked with every buffer
    /// pending skips `n` cycles: each skipped cycle would have retried (and
    /// failed) the allocation, so the statistics must account for them.
    pub fn note_allocation_stalls(&mut self, n: u64) {
        self.stats.allocation_stalls += n;
    }

    /// Marks the line containing `addr` as used at `now` (keeps the line the
    /// fetch engine is currently consuming most-recently-used so prefetches
    /// never evict it).
    pub fn touch(&mut self, addr: u64, now: u64) {
        let line = self.align(addr);
        if let Some(idx) = self.find(line) {
            if self.buffers[idx].state == State::Valid {
                self.buffers[idx].last_use = now;
            }
        }
    }

    /// Index of the buffer tracking the line containing `addr`, if any.
    /// Lets a caller that re-touches the same resident line every cycle
    /// cache the slot and use [`LineBufferFile::touch_at`] instead of
    /// re-running the lookup.
    pub fn index_of(&self, addr: u64) -> Option<usize> {
        self.find(self.align(addr))
    }

    /// O(1) variant of [`LineBufferFile::touch`] for a cached index.  The
    /// buffer must still hold the valid line the index was obtained for.
    pub fn touch_at(&mut self, idx: usize, now: u64) {
        debug_assert_eq!(self.buffers[idx].state, State::Valid);
        self.buffers[idx].last_use = now;
    }

    /// Returns the line address that the next [`LineBufferFile::allocate`]
    /// would evict, or `None` if an invalid buffer (or none at all, when
    /// every buffer is pending) would be used instead.
    pub fn victim_line(&self) -> Option<u64> {
        if self.invalid > 0 {
            return None;
        }
        self.buffers
            .iter()
            .filter(|b| b.state == State::Valid)
            .min_by_key(|b| b.last_use)
            .map(|b| b.line_addr)
    }

    /// Completes the fill of the line containing `addr`.  Returns `true` if
    /// a pending buffer was waiting for it (late fills after a flush are
    /// ignored and return `false`).
    pub fn fill(&mut self, addr: u64, now: u64) -> bool {
        let line = self.align(addr);
        if let Some(idx) = self.find(line) {
            if self.buffers[idx].state == State::Pending {
                self.buffers[idx].state = State::Valid;
                self.buffers[idx].last_use = now;
                self.pending -= 1;
                return true;
            }
        }
        false
    }

    /// Number of buffers with an outstanding request.
    pub fn pending_count(&self) -> usize {
        self.pending
    }

    /// Number of buffers holding a valid line.
    pub fn valid_count(&self) -> usize {
        self.buffers
            .iter()
            .filter(|b| b.state == State::Valid)
            .count()
    }

    /// Discards pending requests (misprediction flush).  Valid lines are
    /// kept: they are still useful after the resteer (loop-buffer
    /// behaviour).
    pub fn flush_pending(&mut self) {
        for b in &mut self.buffers {
            if b.state == State::Pending {
                b.state = State::Invalid;
            }
        }
        self.invalid += self.pending;
        self.pending = 0;
    }

    /// Invalidates everything.
    pub fn flush_all(&mut self) {
        for b in &mut self.buffers {
            b.state = State::Invalid;
        }
        self.invalid = self.buffers.len();
        self.pending = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn miss_then_allocate_then_fill_then_hit() {
        let mut f = LineBufferFile::new(4, 64);
        assert_eq!(f.request(0x1000, 0), LineLookup::Miss);
        assert!(f.allocate(0x1000, 0));
        assert_eq!(f.request(0x1010, 1), LineLookup::Pending);
        assert!(f.fill(0x1000, 5));
        assert_eq!(f.request(0x1020, 6), LineLookup::Hit);
        let s = f.stats();
        assert_eq!(s.line_requests, 3);
        assert_eq!(s.icache_accesses, 1);
        assert_eq!(s.hits, 1);
        assert_eq!(s.pending_hits, 1);
        assert!((s.access_ratio() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn lru_valid_buffer_is_replaced() {
        let mut f = LineBufferFile::new(2, 64);
        f.allocate(0x1000, 0);
        f.fill(0x1000, 1);
        f.allocate(0x2000, 2);
        f.fill(0x2000, 3);
        // Touch 0x1000 so 0x2000 becomes LRU.
        f.request(0x1000, 4);
        f.allocate(0x3000, 5);
        assert_eq!(f.probe(0x1000), LineLookup::Hit);
        assert_eq!(f.probe(0x2000), LineLookup::Miss);
        assert_eq!(f.probe(0x3000), LineLookup::Pending);
    }

    #[test]
    fn allocation_fails_when_all_buffers_pending() {
        let mut f = LineBufferFile::new(2, 64);
        assert!(f.allocate(0x1000, 0));
        assert!(f.allocate(0x2000, 0));
        assert!(!f.allocate(0x3000, 0));
        assert_eq!(f.stats().allocation_stalls, 1);
        assert_eq!(f.pending_count(), 2);
        assert_eq!(f.valid_count(), 0);
    }

    #[test]
    fn loop_fitting_in_buffers_never_accesses_icache_again() {
        // A 2-line loop body streamed repeatedly through 4 buffers.
        let mut f = LineBufferFile::new(4, 64);
        let lines = [0x1000u64, 0x1040];
        let mut now = 0;
        for &l in &lines {
            assert_eq!(f.request(l, now), LineLookup::Miss);
            f.allocate(l, now);
            f.fill(l, now + 4);
            now += 5;
        }
        for _ in 0..100 {
            for &l in &lines {
                assert_eq!(f.request(l, now), LineLookup::Hit);
                now += 1;
            }
        }
        assert_eq!(f.stats().icache_accesses, 2);
        assert!(f.stats().access_ratio() < 0.01 + 2.0 / 202.0);
    }

    #[test]
    fn loop_larger_than_buffers_keeps_accessing_icache() {
        // A 6-line loop body cycled through only 2 buffers: every request
        // misses after the working set wraps.
        let mut f = LineBufferFile::new(2, 64);
        let lines: Vec<u64> = (0..6u64).map(|i| 0x2000 + i * 64).collect();
        let mut now = 0;
        for _ in 0..20 {
            for &l in &lines {
                if f.request(l, now) == LineLookup::Miss {
                    assert!(f.allocate(l, now));
                    f.fill(l, now + 4);
                }
                now += 5;
            }
        }
        assert!(
            f.stats().access_ratio() > 0.95,
            "a loop bigger than the buffer file should access the I-cache almost every time"
        );
    }

    #[test]
    fn flush_pending_discards_requests_but_keeps_valid_lines() {
        let mut f = LineBufferFile::new(2, 64);
        f.allocate(0x1000, 0);
        f.fill(0x1000, 1);
        f.allocate(0x2000, 2);
        f.flush_pending();
        assert_eq!(f.probe(0x1000), LineLookup::Hit);
        assert_eq!(f.probe(0x2000), LineLookup::Miss);
        assert!(!f.fill(0x2000, 10), "late fill after flush is ignored");
        f.flush_all();
        assert_eq!(f.probe(0x1000), LineLookup::Miss);
    }

    #[test]
    fn probe_does_not_touch_stats() {
        let mut f = LineBufferFile::new(2, 64);
        f.allocate(0x1000, 0);
        f.fill(0x1000, 1);
        let before = *f.stats();
        f.probe(0x1000);
        f.probe(0x9000);
        assert_eq!(*f.stats(), before);
    }

    #[test]
    fn accessors() {
        let f = LineBufferFile::new(4, 64);
        assert_eq!(f.len(), 4);
        assert!(!f.is_empty());
        assert_eq!(f.line_size(), 64);
        assert_eq!(f.stats().access_ratio(), 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one line buffer")]
    fn zero_buffers_rejected() {
        LineBufferFile::new(0, 64);
    }
}
