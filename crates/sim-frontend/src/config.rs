//! Front-end configuration.

use crate::predictor::PredictorConfig;
use serde::{Deserialize, Serialize};

/// Per-core front-end parameters.
///
/// The two named constructors provide the master (big, i7-like) and worker
/// (lean, Cortex-A9-like) front-ends used throughout the evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FrontEndConfig {
    /// Number of line buffers (Table I: 2, 4 or 8; 4 is the baseline).
    pub line_buffers: usize,
    /// Cache-line / line-buffer width in bytes (Table I: 64 B).
    pub line_size: u64,
    /// Maximum instructions moved from a line buffer into the instruction
    /// queue per cycle (fetch/decode width).
    pub fetch_width: u32,
    /// Instruction-queue capacity in instructions.
    pub instr_queue_capacity: usize,
    /// Fetch-target-queue capacity in fetch blocks.
    pub ftq_capacity: usize,
    /// Maximum fetch-block length in bytes produced by the fetch predictor.
    pub max_fetch_block_bytes: u32,
    /// Cycles of front-end resteer penalty on a branch misprediction.
    pub mispredict_penalty: u64,
    /// Branch predictor configuration.
    pub predictor: PredictorConfig,
}

impl FrontEndConfig {
    /// Front-end of a lean worker core (Cortex-A9-like): modest width and a
    /// short pipeline.
    pub fn worker() -> Self {
        FrontEndConfig {
            line_buffers: 4,
            line_size: 64,
            fetch_width: 2,
            instr_queue_capacity: 16,
            ftq_capacity: 8,
            max_fetch_block_bytes: 256,
            mispredict_penalty: 8,
            predictor: PredictorConfig::paper(),
        }
    }

    /// Front-end of the big master core (i7-like): wider fetch, deeper
    /// queues, longer misprediction penalty.
    pub fn master() -> Self {
        FrontEndConfig {
            line_buffers: 4,
            line_size: 64,
            fetch_width: 4,
            instr_queue_capacity: 48,
            ftq_capacity: 12,
            max_fetch_block_bytes: 256,
            mispredict_penalty: 14,
            predictor: PredictorConfig::paper(),
        }
    }

    /// Returns a copy with a different number of line buffers.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn with_line_buffers(mut self, n: usize) -> Self {
        assert!(n > 0, "a front-end needs at least one line buffer");
        self.line_buffers = n;
        self
    }

    /// Validates internal consistency.
    ///
    /// # Panics
    ///
    /// Panics if any capacity is zero or the line size is not a power of
    /// two.
    pub fn validate(&self) {
        assert!(self.line_buffers > 0, "need at least one line buffer");
        assert!(
            self.line_size.is_power_of_two(),
            "line size must be a power of two"
        );
        assert!(self.fetch_width > 0, "fetch width must be positive");
        assert!(
            self.instr_queue_capacity > 0,
            "instruction queue must have capacity"
        );
        assert!(self.ftq_capacity > 0, "FTQ must have capacity");
        assert!(
            self.max_fetch_block_bytes > 0,
            "fetch blocks must be non-empty"
        );
    }
}

impl Default for FrontEndConfig {
    fn default() -> Self {
        FrontEndConfig::worker()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn named_configs_validate() {
        FrontEndConfig::worker().validate();
        FrontEndConfig::master().validate();
    }

    #[test]
    fn master_is_wider_than_worker() {
        assert!(FrontEndConfig::master().fetch_width > FrontEndConfig::worker().fetch_width);
        assert!(
            FrontEndConfig::master().mispredict_penalty
                > FrontEndConfig::worker().mispredict_penalty
        );
    }

    #[test]
    fn with_line_buffers_changes_only_that_field() {
        let base = FrontEndConfig::worker();
        let more = base.with_line_buffers(8);
        assert_eq!(more.line_buffers, 8);
        assert_eq!(more.fetch_width, base.fetch_width);
    }

    #[test]
    #[should_panic(expected = "at least one line buffer")]
    fn zero_line_buffers_rejected() {
        FrontEndConfig::worker().with_line_buffers(0);
    }

    #[test]
    fn default_is_worker() {
        assert_eq!(FrontEndConfig::default(), FrontEndConfig::worker());
    }
}
