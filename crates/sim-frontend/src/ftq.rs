//! Fetch target queue (FTQ).
//!
//! The FTQ decouples branch prediction from the I-cache: the fetch predictor
//! pushes fetch blocks (starting address + length) into the queue, and the
//! I-cache side pops them at its own pace.  With a shared I-cache whose
//! access latency can be several cycles, the FTQ (together with the line
//! buffers) is what keeps the lean core's back-end fed.

use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// One FTQ entry: a fetch block to be fetched from the I-cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FtqEntry {
    /// Starting address of the fetch block.
    pub start: u64,
    /// Length of the fetch block in bytes.
    pub len_bytes: u32,
    /// Number of instructions in the fetch block.
    pub num_instrs: u32,
    /// Whether the block ends with a branch that was predicted (and later
    /// resolved) as mispredicted — used by the core model to charge the
    /// resteer penalty when the block drains.
    pub ends_in_mispredict: bool,
}

impl FtqEntry {
    /// Address one past the end of the block.
    pub fn end(&self) -> u64 {
        self.start + self.len_bytes as u64
    }
}

/// A bounded queue of fetch blocks.
#[derive(Debug, Clone, Default)]
pub struct Ftq {
    entries: VecDeque<FtqEntry>,
    capacity: usize,
    /// Total entries ever pushed (for statistics).
    pushed: u64,
}

impl Ftq {
    /// Creates an FTQ with room for `capacity` fetch blocks.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "FTQ capacity must be positive");
        Ftq {
            entries: VecDeque::with_capacity(capacity),
            capacity,
            pushed: 0,
        }
    }

    /// Maximum number of entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` when the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Returns `true` when no more fetch blocks can be pushed.
    pub fn is_full(&self) -> bool {
        self.entries.len() >= self.capacity
    }

    /// Total number of fetch blocks ever pushed.
    pub fn total_pushed(&self) -> u64 {
        self.pushed
    }

    /// Pushes a fetch block.
    ///
    /// # Panics
    ///
    /// Panics if the queue is full (callers must check [`Ftq::is_full`]).
    pub fn push(&mut self, entry: FtqEntry) {
        assert!(!self.is_full(), "pushed into a full FTQ");
        self.entries.push_back(entry);
        self.pushed += 1;
    }

    /// Returns the entry at the head without removing it.
    pub fn head(&self) -> Option<&FtqEntry> {
        self.entries.front()
    }

    /// Mutable access to the head entry (the fetch engine shrinks it as
    /// lines are consumed).
    pub fn head_mut(&mut self) -> Option<&mut FtqEntry> {
        self.entries.front_mut()
    }

    /// Removes and returns the head entry.
    pub fn pop(&mut self) -> Option<FtqEntry> {
        self.entries.pop_front()
    }

    /// Iterates over the queued fetch blocks from head to tail (used by the
    /// fetch engine's line-buffer lookahead).
    pub fn iter(&self) -> impl Iterator<Item = &FtqEntry> {
        self.entries.iter()
    }

    /// Discards all entries (branch misprediction flush).
    pub fn flush(&mut self) {
        self.entries.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(start: u64) -> FtqEntry {
        FtqEntry {
            start,
            len_bytes: 32,
            num_instrs: 8,
            ends_in_mispredict: false,
        }
    }

    #[test]
    fn push_pop_in_fifo_order() {
        let mut q = Ftq::new(4);
        q.push(entry(0x100));
        q.push(entry(0x200));
        assert_eq!(q.len(), 2);
        assert_eq!(q.head().unwrap().start, 0x100);
        assert_eq!(q.pop().unwrap().start, 0x100);
        assert_eq!(q.pop().unwrap().start, 0x200);
        assert!(q.pop().is_none());
        assert_eq!(q.total_pushed(), 2);
    }

    #[test]
    fn capacity_is_enforced() {
        let mut q = Ftq::new(2);
        q.push(entry(0x100));
        assert!(!q.is_full());
        q.push(entry(0x200));
        assert!(q.is_full());
    }

    #[test]
    #[should_panic(expected = "full FTQ")]
    fn pushing_into_full_queue_panics() {
        let mut q = Ftq::new(1);
        q.push(entry(0x100));
        q.push(entry(0x200));
    }

    #[test]
    fn flush_empties_the_queue() {
        let mut q = Ftq::new(4);
        q.push(entry(0x100));
        q.push(entry(0x200));
        q.flush();
        assert!(q.is_empty());
        assert_eq!(q.total_pushed(), 2, "flush does not rewrite history");
    }

    #[test]
    fn head_mut_allows_in_place_shrink() {
        let mut q = Ftq::new(2);
        q.push(entry(0x100));
        {
            let h = q.head_mut().unwrap();
            h.start += 32;
            h.len_bytes -= 32;
        }
        assert_eq!(q.head().unwrap().start, 0x120);
        assert_eq!(q.head().unwrap().len_bytes, 0);
    }

    #[test]
    fn entry_end_is_start_plus_len() {
        assert_eq!(entry(0x100).end(), 0x120);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        Ftq::new(0);
    }
}
