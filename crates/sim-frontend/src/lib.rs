//! Decoupled core front-end components.
//!
//! The paper's core model (Section IV-A, Figure 5) decouples the I-cache
//! from the branch predictor with a *fetch target queue* (FTQ).  The fetch
//! predictor produces *fetch blocks* — runs of consecutive instructions
//! ending at a taken branch — whose starting addresses are queued in the FTQ.
//! The I-cache is then accessed with the address at the head of the FTQ,
//! unless the needed line already sits in one of a handful of *line buffers*
//! which double as prefetch/loop buffers and as outstanding-request slots.
//!
//! This crate provides those pieces:
//!
//! * [`FetchPredictor`] — a 16 KB gshare branch predictor augmented with a
//!   256-entry loop predictor and a branch target buffer (Table I).
//! * [`Ftq`] — the fetch target queue.
//! * [`LineBufferFile`] — the line buffers (2, 4 or 8 in the evaluation),
//!   with the statistics behind the paper's I-cache *access ratio* metric
//!   (Fig. 9).
//! * [`FrontEndConfig`] — the per-core configuration used by `sim-core`.

pub mod config;
pub mod ftq;
pub mod line_buffer;
pub mod predictor;

pub use config::FrontEndConfig;
pub use ftq::{Ftq, FtqEntry};
pub use line_buffer::{LineBufferFile, LineBufferStats, LineLookup};
pub use predictor::{BranchPrediction, FetchPredictor, PredictorConfig, PredictorStats};

#[cfg(test)]
mod crate_tests {
    use super::*;

    #[test]
    fn public_types_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<FetchPredictor>();
        assert_send_sync::<Ftq>();
        assert_send_sync::<LineBufferFile>();
        assert_send_sync::<FrontEndConfig>();
    }
}
