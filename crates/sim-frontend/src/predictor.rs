//! Branch prediction: gshare + loop predictor + BTB.
//!
//! Table I specifies a 16 KB gshare fetch predictor augmented with a
//! 256-entry loop predictor.  The gshare provides direction prediction from
//! a global-history-indexed table of 2-bit counters; the loop predictor
//! captures branches with a stable trip count (the dominant pattern in HPC
//! inner loops) and overrides gshare when it is confident; the branch target
//! buffer (BTB) provides the target of taken branches — a BTB miss on a
//! taken branch is counted as a misprediction because the front-end must be
//! resteered either way.

use serde::{Deserialize, Serialize};

/// Branch predictor configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PredictorConfig {
    /// Number of 2-bit counters in the gshare table (16 KB = 65536
    /// counters).
    pub gshare_entries: usize,
    /// Global-history length in bits used to index the gshare table.
    pub history_bits: u32,
    /// Number of loop-predictor entries (Table I: 256).
    pub loop_entries: usize,
    /// Trip-count confidence threshold before the loop predictor overrides
    /// gshare.
    pub loop_confidence: u32,
    /// Number of BTB entries.
    pub btb_entries: usize,
}

impl PredictorConfig {
    /// The paper's configuration: 16 KB gshare + 256-entry loop predictor,
    /// with a 4K-entry BTB.
    pub fn paper() -> Self {
        PredictorConfig {
            gshare_entries: 65_536,
            history_bits: 16,
            loop_entries: 256,
            loop_confidence: 2,
            btb_entries: 4096,
        }
    }

    /// Validates the configuration.
    ///
    /// # Panics
    ///
    /// Panics if table sizes are zero or not powers of two.
    pub fn validate(&self) {
        assert!(
            self.gshare_entries.is_power_of_two(),
            "gshare table size must be a power of two"
        );
        assert!(
            self.btb_entries.is_power_of_two(),
            "BTB size must be a power of two"
        );
        assert!(self.loop_entries > 0, "loop predictor needs entries");
        assert!(self.history_bits > 0 && self.history_bits <= 32);
    }
}

impl Default for PredictorConfig {
    fn default() -> Self {
        PredictorConfig::paper()
    }
}

/// Outcome of predicting one branch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BranchPrediction {
    /// Predicted direction.
    pub taken: bool,
    /// Predicted target, if the BTB held one.
    pub target: Option<u64>,
}

/// Prediction statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct PredictorStats {
    /// Branches predicted.
    pub branches: u64,
    /// Direction mispredictions.
    pub direction_mispredicts: u64,
    /// Taken branches whose target was absent from the BTB (or wrong, for
    /// indirect branches).
    pub target_mispredicts: u64,
    /// Predictions where the loop predictor overrode gshare.
    pub loop_overrides: u64,
}

impl PredictorStats {
    /// Total mispredictions (direction + target).
    pub fn mispredicts(&self) -> u64 {
        self.direction_mispredicts + self.target_mispredicts
    }

    /// Branch mispredictions per kilo-instruction.
    pub fn mpki(&self, instructions: u64) -> f64 {
        if instructions == 0 {
            0.0
        } else {
            self.mispredicts() as f64 * 1000.0 / instructions as f64
        }
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct LoopEntry {
    tag: u64,
    /// Trip count observed on the last completed loop execution.
    trip_count: u32,
    /// Taken streak currently being observed.
    current_count: u32,
    /// Number of consecutive times `trip_count` was confirmed.
    confidence: u32,
    valid: bool,
}

#[derive(Debug, Clone, Copy, Default)]
struct BtbEntry {
    tag: u64,
    target: u64,
    valid: bool,
}

/// The combined gshare + loop + BTB fetch predictor.
#[derive(Debug)]
pub struct FetchPredictor {
    config: PredictorConfig,
    counters: Vec<u8>,
    history: u64,
    loops: Vec<LoopEntry>,
    btb: Vec<BtbEntry>,
    stats: PredictorStats,
}

impl FetchPredictor {
    /// Creates a predictor.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (see
    /// [`PredictorConfig::validate`]).
    pub fn new(config: PredictorConfig) -> Self {
        config.validate();
        FetchPredictor {
            config,
            counters: vec![1; config.gshare_entries], // weakly not-taken
            history: 0,
            loops: vec![LoopEntry::default(); config.loop_entries],
            btb: vec![BtbEntry::default(); config.btb_entries],
            stats: PredictorStats::default(),
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &PredictorConfig {
        &self.config
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &PredictorStats {
        &self.stats
    }

    fn gshare_index(&self, pc: u64) -> usize {
        let mask = (self.config.gshare_entries - 1) as u64;
        (((pc >> 2) ^ self.history) & mask) as usize
    }

    fn loop_index(&self, pc: u64) -> usize {
        (pc >> 2) as usize % self.config.loop_entries
    }

    fn btb_index(&self, pc: u64) -> usize {
        ((pc >> 2) as usize) & (self.config.btb_entries - 1)
    }

    /// Predicts the branch at `pc`.
    pub fn predict(&self, pc: u64) -> BranchPrediction {
        let counter = self.counters[self.gshare_index(pc)];
        let mut taken = counter >= 2;

        // Loop-predictor override: if confident and the current streak has
        // reached the learned trip count, predict the exit (not taken).
        let le = &self.loops[self.loop_index(pc)];
        if le.valid && le.tag == pc && le.confidence >= self.config.loop_confidence {
            taken = le.current_count < le.trip_count;
        }

        let be = &self.btb[self.btb_index(pc)];
        let target = if be.valid && be.tag == pc {
            Some(be.target)
        } else {
            None
        };
        BranchPrediction { taken, target }
    }

    /// Predicts the branch at `pc`, compares with the actual outcome, trains
    /// the tables, and returns `true` when the front-end must be resteered
    /// (direction mispredicted, or the branch was taken and the target was
    /// unknown or wrong).
    pub fn predict_and_train(&mut self, pc: u64, taken: bool, target: u64, indirect: bool) -> bool {
        let prediction = self.predict(pc);
        let le = &self.loops[self.loop_index(pc)];
        if le.valid
            && le.tag == pc
            && le.confidence >= self.config.loop_confidence
            && prediction.taken != (self.counters[self.gshare_index(pc)] >= 2)
        {
            self.stats.loop_overrides += 1;
        }
        self.stats.branches += 1;

        let direction_wrong = prediction.taken != taken;
        if direction_wrong {
            self.stats.direction_mispredicts += 1;
        }
        // Target check only matters for a (correctly or incorrectly) taken
        // branch that the front-end follows: a missing or stale BTB entry on
        // a taken branch forces a resteer.  Indirect branches additionally
        // mispredict whenever the stored target differs.
        let mut target_wrong = false;
        if taken && !direction_wrong {
            match prediction.target {
                None => target_wrong = true,
                Some(t) => {
                    if indirect && t != target {
                        target_wrong = true;
                    }
                }
            }
            if target_wrong {
                self.stats.target_mispredicts += 1;
            }
        }

        self.train(pc, taken, target);
        direction_wrong || target_wrong
    }

    fn train(&mut self, pc: u64, taken: bool, target: u64) {
        // gshare 2-bit counter.
        let idx = self.gshare_index(pc);
        let c = &mut self.counters[idx];
        if taken {
            *c = (*c + 1).min(3);
        } else {
            *c = c.saturating_sub(1);
        }

        // Global history.
        self.history =
            ((self.history << 1) | u64::from(taken)) & ((1u64 << self.config.history_bits) - 1);

        // Loop predictor.
        let lidx = self.loop_index(pc);
        let le = &mut self.loops[lidx];
        if !le.valid || le.tag != pc {
            *le = LoopEntry {
                tag: pc,
                trip_count: 0,
                current_count: 0,
                confidence: 0,
                valid: true,
            };
        }
        if taken {
            le.current_count = le.current_count.saturating_add(1);
        } else {
            // Loop exit: check whether the trip count repeated.
            if le.trip_count == le.current_count && le.trip_count > 0 {
                le.confidence = le.confidence.saturating_add(1);
            } else {
                le.trip_count = le.current_count;
                le.confidence = 0;
            }
            le.current_count = 0;
        }

        // BTB: record the target of taken branches.
        if taken {
            let bidx = self.btb_index(pc);
            self.btb[bidx] = BtbEntry {
                tag: pc,
                target,
                valid: true,
            };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn predictor() -> FetchPredictor {
        FetchPredictor::new(PredictorConfig::paper())
    }

    #[test]
    fn always_taken_branch_is_learned() {
        let mut p = predictor();
        let mut late_mispredicts = 0;
        for i in 0..100 {
            let wrong = p.predict_and_train(0x1000, true, 0x900, false);
            // The first ~16+2 iterations walk the global history to its
            // steady state; after that the branch must predict perfectly.
            if i >= 30 && wrong {
                late_mispredicts += 1;
            }
        }
        assert_eq!(
            late_mispredicts, 0,
            "a monotone branch must be perfectly predicted once warmed up"
        );
        assert_eq!(p.stats().branches, 100);
    }

    #[test]
    fn alternating_history_is_learned_by_gshare() {
        let mut p = predictor();
        let mut late_mispredicts = 0;
        for i in 0..2000u32 {
            let taken = i % 2 == 0;
            let wrong = p.predict_and_train(0x2000, taken, 0x1800, false);
            if i > 200 && wrong {
                late_mispredicts += 1;
            }
        }
        assert!(
            late_mispredicts < 20,
            "gshare should capture an alternating pattern via history, got {late_mispredicts}"
        );
    }

    #[test]
    fn fixed_trip_count_loop_is_captured_by_loop_predictor() {
        let mut p = predictor();
        // A loop that iterates exactly 50 times, repeatedly.
        let mut mispredicts_late = 0;
        for rep in 0..40 {
            for i in 0..50u32 {
                let taken = i < 49; // 49 taken, 1 not-taken exit
                let wrong = p.predict_and_train(0x3000, taken, 0x2f00, false);
                if rep >= 10 && wrong {
                    mispredicts_late += 1;
                }
            }
        }
        assert_eq!(
            mispredicts_late, 0,
            "after warm-up the loop predictor should eliminate exit mispredictions"
        );
        assert!(
            p.stats().loop_overrides > 0,
            "loop predictor should have overridden gshare"
        );
    }

    #[test]
    fn btb_miss_on_first_taken_branch_counts_as_target_mispredict() {
        let mut p = predictor();
        // The cold branch mispredicts (direction and/or target unknown).
        p.predict_and_train(0x4000, true, 0x3000, false);
        assert!(p.stats().mispredicts() >= 1, "cold branch mispredicts");
        // After warm-up both direction and target are known.
        for _ in 0..40 {
            p.predict_and_train(0x4000, true, 0x3000, false);
        }
        let wrong = p.predict_and_train(0x4000, true, 0x3000, false);
        assert!(
            !wrong,
            "warm always-taken branch with a stable target must not resteer"
        );
    }

    #[test]
    fn indirect_branch_with_changing_target_mispredicts() {
        let mut p = predictor();
        // Warm up direction and global history with a stable target.
        for _ in 0..40 {
            p.predict_and_train(0x5000, true, 0xa000, true);
        }
        let before = p.stats().target_mispredicts;
        // Now the indirect branch jumps somewhere else: the stale BTB target
        // is wrong, so the front-end must resteer.
        let wrong = p.predict_and_train(0x5000, true, 0xb000, true);
        assert!(wrong);
        assert_eq!(p.stats().target_mispredicts, before + 1);
    }

    #[test]
    fn mpki_is_relative_to_instruction_count() {
        let mut p = predictor();
        for _ in 0..10 {
            p.predict_and_train(0x6000, true, 0x100, false);
        }
        let m = p.stats().mpki(10_000);
        assert!(
            m <= 1.0,
            "at most a handful of mispredicts in 10k instructions"
        );
        assert_eq!(PredictorStats::default().mpki(0), 0.0);
    }

    #[test]
    fn random_branches_mispredict_often() {
        // A deterministic pseudo-random outcome stream: gshare cannot learn
        // it, so the misprediction rate should be substantial.
        let mut p = predictor();
        let mut x: u64 = 0x12345678;
        let mut wrong = 0;
        let n = 10_000;
        for _ in 0..n {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let taken = (x >> 33) & 1 == 1;
            if p.predict_and_train(0x7000, taken, 0x200, false) {
                wrong += 1;
            }
        }
        let rate = wrong as f64 / n as f64;
        assert!(
            rate > 0.25,
            "random outcomes should mispredict frequently, rate={rate}"
        );
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn invalid_config_is_rejected() {
        FetchPredictor::new(PredictorConfig {
            gshare_entries: 1000,
            ..PredictorConfig::paper()
        });
    }
}
