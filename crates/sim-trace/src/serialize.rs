//! JSON-lines (de)serialisation of traces.
//!
//! Traces are stored one record per line, preceded by a header line carrying
//! the thread id and a format version.  The format trades compactness for
//! debuggability: synthetic traces in this workspace are usually generated
//! on the fly, so the serialised form is used mainly for golden tests and for
//! exchanging small traces between tools.

use crate::record::TraceRecord;
use crate::source::{ThreadId, ThreadTrace, TraceSet};
use serde::{Deserialize, Serialize};
use std::error::Error;
use std::fmt;
use std::io::{BufRead, Write};

/// Current trace file format version.
pub const TRACE_FORMAT_VERSION: u32 = 1;

#[derive(Debug, Serialize, Deserialize)]
struct Header {
    format_version: u32,
    thread: ThreadId,
    num_records: u64,
}

#[derive(Debug, Serialize, Deserialize)]
struct SetHeader {
    format_version: u32,
    num_threads: u64,
}

/// Rejects headers from a different format revision.
fn check_version(format_version: u32) -> Result<(), TraceSerializeError> {
    if format_version == TRACE_FORMAT_VERSION {
        Ok(())
    } else {
        Err(TraceSerializeError::BadHeader(format!(
            "unsupported format version {format_version} (expected {TRACE_FORMAT_VERSION})"
        )))
    }
}

/// Pre-allocation cap for header-promised counts: a lying header must fail
/// through the `Truncated` check, not through a capacity-overflow abort.
fn bounded_capacity(promised: u64) -> usize {
    promised.min(4096) as usize
}

/// Error produced while reading or writing a serialised trace.
#[derive(Debug)]
pub enum TraceSerializeError {
    /// An underlying I/O error.
    Io(std::io::Error),
    /// A line could not be parsed as JSON.
    Json(serde_json::Error),
    /// The file header is missing or has an unsupported version.
    BadHeader(String),
    /// The file ended before the number of records promised by the header.
    Truncated {
        /// Records promised by the header.
        expected: u64,
        /// Records actually present.
        found: u64,
    },
}

impl fmt::Display for TraceSerializeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceSerializeError::Io(e) => write!(f, "trace i/o error: {e}"),
            TraceSerializeError::Json(e) => write!(f, "trace json error: {e}"),
            TraceSerializeError::BadHeader(msg) => write!(f, "bad trace header: {msg}"),
            TraceSerializeError::Truncated { expected, found } => write!(
                f,
                "truncated trace: header promised {expected} records, found {found}"
            ),
        }
    }
}

impl Error for TraceSerializeError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            TraceSerializeError::Io(e) => Some(e),
            TraceSerializeError::Json(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for TraceSerializeError {
    fn from(e: std::io::Error) -> Self {
        TraceSerializeError::Io(e)
    }
}

impl From<serde_json::Error> for TraceSerializeError {
    fn from(e: serde_json::Error) -> Self {
        TraceSerializeError::Json(e)
    }
}

/// Writes `trace` to `writer` in JSON-lines format.
///
/// # Errors
///
/// Returns an error if writing or JSON encoding fails.
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// use sim_trace::{read_trace_json, write_trace_json, TraceBuilder};
///
/// let mut b = TraceBuilder::new(0);
/// b.instr(0x100, 4);
/// let trace = b.finish();
///
/// let mut buf = Vec::new();
/// write_trace_json(&trace, &mut buf)?;
/// let back = read_trace_json(&buf[..])?;
/// assert_eq!(trace, back);
/// # Ok(())
/// # }
/// ```
pub fn write_trace_json<W: Write>(
    trace: &ThreadTrace,
    mut writer: W,
) -> Result<(), TraceSerializeError> {
    let header = Header {
        format_version: TRACE_FORMAT_VERSION,
        thread: trace.thread(),
        num_records: trace.len() as u64,
    };
    serde_json::to_writer(&mut writer, &header)?;
    writer.write_all(b"\n")?;
    for rec in trace.records() {
        serde_json::to_writer(&mut writer, rec)?;
        writer.write_all(b"\n")?;
    }
    Ok(())
}

/// Reads a trace previously written by [`write_trace_json`].
///
/// # Errors
///
/// Returns an error if the header is missing/unsupported, a line cannot be
/// parsed, or the file is truncated.
pub fn read_trace_json<R: BufRead>(reader: R) -> Result<ThreadTrace, TraceSerializeError> {
    let mut lines = reader.lines();
    let header_line = lines
        .next()
        .ok_or_else(|| TraceSerializeError::BadHeader("empty input".to_string()))??;
    let header: Header = serde_json::from_str(&header_line)
        .map_err(|e| TraceSerializeError::BadHeader(e.to_string()))?;
    check_version(header.format_version)?;

    let mut records: Vec<TraceRecord> = Vec::with_capacity(bounded_capacity(header.num_records));
    for line in lines {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        records.push(serde_json::from_str(&line)?);
    }
    if (records.len() as u64) < header.num_records {
        return Err(TraceSerializeError::Truncated {
            expected: header.num_records,
            found: records.len() as u64,
        });
    }
    Ok(ThreadTrace::from_records(header.thread, records))
}

/// Writes a whole [`TraceSet`] to `writer`: a set header line carrying the
/// thread count, followed by each per-thread trace in
/// [`write_trace_json`]'s format.  This is the representation the sweep
/// engine persists trace sets under, so a bump of
/// [`TRACE_FORMAT_VERSION`] automatically invalidates stale stored traces.
///
/// # Errors
///
/// Returns an error if writing or JSON encoding fails.
pub fn write_trace_set_json<W: Write>(
    set: &TraceSet,
    mut writer: W,
) -> Result<(), TraceSerializeError> {
    let header = SetHeader {
        format_version: TRACE_FORMAT_VERSION,
        num_threads: set.num_threads() as u64,
    };
    serde_json::to_writer(&mut writer, &header)?;
    writer.write_all(b"\n")?;
    for trace in set {
        write_trace_json(trace, &mut writer)?;
    }
    Ok(())
}

/// Reads a trace set previously written by [`write_trace_set_json`].
///
/// Unlike [`read_trace_json`], each thread section is bounded by the record
/// count its header promises, so the sections need no separators.
///
/// # Errors
///
/// Returns an error if a header is missing/unsupported, a line cannot be
/// parsed, or the input ends before the promised threads/records.
pub fn read_trace_set_json<R: BufRead>(reader: R) -> Result<TraceSet, TraceSerializeError> {
    let mut lines = reader.lines();
    let header_line = lines
        .next()
        .ok_or_else(|| TraceSerializeError::BadHeader("empty input".to_string()))??;
    let header: SetHeader = serde_json::from_str(&header_line)
        .map_err(|e| TraceSerializeError::BadHeader(e.to_string()))?;
    check_version(header.format_version)?;
    let mut traces = Vec::with_capacity(bounded_capacity(header.num_threads));
    for _ in 0..header.num_threads {
        traces.push(read_one_trace(&mut lines)?);
    }
    Ok(TraceSet::new(traces))
}

/// Reads one thread section (header plus exactly the promised number of
/// record lines) from a line stream.
fn read_one_trace<I>(lines: &mut I) -> Result<ThreadTrace, TraceSerializeError>
where
    I: Iterator<Item = std::io::Result<String>>,
{
    let header_line = lines.next().ok_or(TraceSerializeError::Truncated {
        expected: 1,
        found: 0,
    })??;
    let header: Header = serde_json::from_str(&header_line)
        .map_err(|e| TraceSerializeError::BadHeader(e.to_string()))?;
    check_version(header.format_version)?;
    let mut records: Vec<TraceRecord> = Vec::with_capacity(bounded_capacity(header.num_records));
    while (records.len() as u64) < header.num_records {
        let line = lines.next().ok_or(TraceSerializeError::Truncated {
            expected: header.num_records,
            found: records.len() as u64,
        })??;
        if line.trim().is_empty() {
            continue;
        }
        records.push(serde_json::from_str(&line)?);
    }
    Ok(ThreadTrace::from_records(header.thread, records))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::TraceBuilder;
    use crate::SyncEvent;

    fn sample_trace() -> ThreadTrace {
        let mut b = TraceBuilder::new(2);
        b.set_ipc(1.5);
        b.sync(SyncEvent::ParallelStart { num_threads: 8 });
        b.basic_block(0x4000, 6, 0x4000, true);
        b.branch(0x5000, 4, 0x6000, false);
        b.sync(SyncEvent::Barrier { id: 7 });
        b.sync(SyncEvent::ParallelEnd);
        b.finish()
    }

    #[test]
    fn roundtrip_preserves_trace() {
        let t = sample_trace();
        let mut buf = Vec::new();
        write_trace_json(&t, &mut buf).unwrap();
        let back = read_trace_json(&buf[..]).unwrap();
        assert_eq!(t, back);
    }

    #[test]
    fn empty_input_is_bad_header() {
        let err = read_trace_json(&b""[..]).unwrap_err();
        assert!(matches!(err, TraceSerializeError::BadHeader(_)));
        assert!(err.to_string().contains("bad trace header"));
    }

    #[test]
    fn wrong_version_is_rejected() {
        let input = format!(
            "{}\n",
            serde_json::json!({"format_version": 99, "thread": 0, "num_records": 0})
        );
        let err = read_trace_json(input.as_bytes()).unwrap_err();
        assert!(matches!(err, TraceSerializeError::BadHeader(_)));
    }

    #[test]
    fn truncated_file_is_detected() {
        let t = sample_trace();
        let mut buf = Vec::new();
        write_trace_json(&t, &mut buf).unwrap();
        // Drop the last record line.
        let text = String::from_utf8(buf).unwrap();
        let mut lines: Vec<&str> = text.lines().collect();
        lines.pop();
        let truncated = lines.join("\n");
        let err = read_trace_json(truncated.as_bytes()).unwrap_err();
        assert!(matches!(err, TraceSerializeError::Truncated { .. }));
        assert!(err.to_string().contains("truncated"));
    }

    #[test]
    fn garbage_line_is_json_error() {
        let t = sample_trace();
        let mut buf = Vec::new();
        write_trace_json(&t, &mut buf).unwrap();
        let mut text = String::from_utf8(buf).unwrap();
        text.push_str("not json\n");
        let err = read_trace_json(text.as_bytes()).unwrap_err();
        assert!(matches!(err, TraceSerializeError::Json(_)));
        assert!(std::error::Error::source(&err).is_some());
    }

    fn sample_set() -> TraceSet {
        let mut t0 = TraceBuilder::new(0);
        t0.instr(0x100, 4);
        t0.sync(SyncEvent::ParallelStart { num_threads: 2 });
        t0.sync(SyncEvent::ParallelEnd);
        let mut t1 = TraceBuilder::new(1);
        t1.basic_block(0x2000, 5, 0x2000, false);
        TraceSet::new(vec![t0.finish(), t1.finish()])
    }

    #[test]
    fn set_roundtrip_preserves_every_thread() {
        let set = sample_set();
        let mut buf = Vec::new();
        write_trace_set_json(&set, &mut buf).unwrap();
        let back = read_trace_set_json(&buf[..]).unwrap();
        assert_eq!(set, back);
    }

    #[test]
    fn empty_set_round_trips() {
        let set = TraceSet::new(vec![]);
        let mut buf = Vec::new();
        write_trace_set_json(&set, &mut buf).unwrap();
        assert_eq!(read_trace_set_json(&buf[..]).unwrap().num_threads(), 0);
    }

    #[test]
    fn set_missing_threads_is_truncated() {
        let set = sample_set();
        let mut buf = Vec::new();
        write_trace_set_json(&set, &mut buf).unwrap();
        // Drop thread 1 entirely (its header and its single record line).
        let text = String::from_utf8(buf).unwrap();
        let mut lines: Vec<&str> = text.lines().collect();
        lines.truncate(lines.len() - 2);
        let err = read_trace_set_json(lines.join("\n").as_bytes()).unwrap_err();
        assert!(
            matches!(err, TraceSerializeError::Truncated { .. }),
            "{err}"
        );
    }

    #[test]
    fn absurd_header_counts_fail_cleanly_without_allocating() {
        // A lying header must surface as Truncated, not as a
        // capacity-overflow abort in Vec::with_capacity.
        let input = format!(
            "{}\n",
            serde_json::json!({"format_version": 1, "num_threads": u64::MAX})
        );
        let err = read_trace_set_json(input.as_bytes()).unwrap_err();
        assert!(
            matches!(err, TraceSerializeError::Truncated { .. }),
            "{err}"
        );

        let input = format!(
            "{}\n{}\n",
            serde_json::json!({"format_version": 1, "num_threads": 1}),
            serde_json::json!({"format_version": 1, "thread": 0, "num_records": u64::MAX})
        );
        let err = read_trace_set_json(input.as_bytes()).unwrap_err();
        assert!(
            matches!(err, TraceSerializeError::Truncated { .. }),
            "{err}"
        );

        let input = format!(
            "{}\n",
            serde_json::json!({"format_version": 1, "thread": 0, "num_records": u64::MAX})
        );
        let err = read_trace_json(input.as_bytes()).unwrap_err();
        assert!(
            matches!(err, TraceSerializeError::Truncated { .. }),
            "{err}"
        );
    }

    #[test]
    fn set_wrong_version_is_rejected() {
        let input = format!(
            "{}\n",
            serde_json::json!({"format_version": 99, "num_threads": 0})
        );
        let err = read_trace_set_json(input.as_bytes()).unwrap_err();
        assert!(matches!(err, TraceSerializeError::BadHeader(_)));
        assert!(read_trace_set_json(&b""[..]).is_err());
    }

    #[test]
    fn blank_lines_are_ignored() {
        let t = sample_trace();
        let mut buf = Vec::new();
        write_trace_json(&t, &mut buf).unwrap();
        let mut text = String::from_utf8(buf).unwrap();
        text.push('\n');
        let back = read_trace_json(text.as_bytes()).unwrap();
        assert_eq!(t, back);
    }
}
