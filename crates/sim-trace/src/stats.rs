//! Streaming trace statistics.
//!
//! These statistics back the workload-characterisation figures of the paper:
//!
//! * **Fig. 2** — average dynamic basic-block length (bytes), split into
//!   serial and parallel code regions ([`RegionStats::avg_basic_block_bytes`]).
//! * **Fig. 3** — I-cache MPKI per region (computed by replaying the
//!   addresses into `sim-cache`; the footprints collected here provide the
//!   working-set view).
//! * **Fig. 4** — static and dynamic instruction sharing across the threads
//!   of a parallel run ([`SharingStats`]).

use crate::record::{Region, SyncEvent, TraceRecord};
use crate::source::{ThreadTrace, TraceSet};
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};

/// Per-region dynamic statistics of a single thread's trace.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct RegionStats {
    /// Number of dynamically executed instructions.
    pub instructions: u64,
    /// Total bytes of dynamically executed instructions.
    pub instruction_bytes: u64,
    /// Number of dynamic basic blocks (sequences ending in any branch).
    pub basic_blocks: u64,
    /// Number of dynamic branch instructions.
    pub branches: u64,
    /// Number of dynamic taken branches.
    pub taken_branches: u64,
    /// Number of distinct static instruction addresses touched.
    pub static_instructions: u64,
    /// Number of distinct 64-byte line addresses touched.
    pub static_lines: u64,
}

impl RegionStats {
    /// Average dynamic basic-block length in bytes (Fig. 2 metric).
    ///
    /// Returns 0.0 when the region executed no basic block.
    pub fn avg_basic_block_bytes(&self) -> f64 {
        if self.basic_blocks == 0 {
            0.0
        } else {
            self.instruction_bytes as f64 / self.basic_blocks as f64
        }
    }

    /// Average dynamic basic-block length in instructions.
    pub fn avg_basic_block_instrs(&self) -> f64 {
        if self.basic_blocks == 0 {
            0.0
        } else {
            self.instructions as f64 / self.basic_blocks as f64
        }
    }

    /// Fraction of branches that were taken.
    pub fn taken_branch_ratio(&self) -> f64 {
        if self.branches == 0 {
            0.0
        } else {
            self.taken_branches as f64 / self.branches as f64
        }
    }

    /// Static code footprint in bytes, assuming 64-byte lines.
    pub fn footprint_bytes(&self) -> u64 {
        self.static_lines * 64
    }
}

/// Footprint sets of one thread, split by region.
#[derive(Debug, Clone, Default)]
pub struct FootprintStats {
    /// Distinct static instruction addresses executed in serial regions.
    pub serial_addrs: HashSet<u64>,
    /// Distinct static instruction addresses executed in parallel regions.
    pub parallel_addrs: HashSet<u64>,
    /// Dynamic execution count per static address, parallel regions only.
    pub parallel_exec_counts: HashMap<u64, u64>,
}

/// Complete per-thread statistics: serial and parallel [`RegionStats`] plus
/// footprints.
#[derive(Debug, Clone, Default)]
pub struct TraceStats {
    /// Statistics of serial code regions.
    pub serial: RegionStats,
    /// Statistics of parallel code regions.
    pub parallel: RegionStats,
    /// Footprint sets used for the sharing analysis.
    pub footprints: FootprintStats,
}

impl TraceStats {
    /// Computes statistics for one thread's trace.
    ///
    /// Records before the first `ParallelStart` and between `ParallelEnd`
    /// and the next `ParallelStart` are attributed to the serial region;
    /// records inside parallel regions to the parallel region.  Worker
    /// threads (id > 0) conventionally only contain parallel-region records,
    /// but the splitter does not require that.
    pub fn from_trace(trace: &ThreadTrace) -> Self {
        Self::from_records(trace.records().iter().copied())
    }

    /// Computes statistics from a record iterator.
    pub fn from_records<I: IntoIterator<Item = TraceRecord>>(records: I) -> Self {
        let mut stats = TraceStats::default();
        let mut region = Region::Serial;
        let mut serial_lines: HashSet<u64> = HashSet::new();
        let mut parallel_lines: HashSet<u64> = HashSet::new();
        // A basic block ends at every branch (taken or not) — this is the
        // definition behind Fig. 2 ("dynamic basic block length").
        let mut open_block_serial = false;
        let mut open_block_parallel = false;

        for rec in records {
            match rec {
                TraceRecord::Sync(SyncEvent::ParallelStart { .. }) => {
                    region = Region::Parallel;
                }
                TraceRecord::Sync(SyncEvent::ParallelEnd) => {
                    region = Region::Serial;
                }
                TraceRecord::Sync(_) | TraceRecord::SetIpc { .. } => {}
                TraceRecord::Instr { addr, len } => {
                    let (r, lines, open) = match region {
                        Region::Serial => {
                            (&mut stats.serial, &mut serial_lines, &mut open_block_serial)
                        }
                        Region::Parallel => (
                            &mut stats.parallel,
                            &mut parallel_lines,
                            &mut open_block_parallel,
                        ),
                    };
                    r.instructions += 1;
                    r.instruction_bytes += len as u64;
                    lines.insert(crate::addr::line_addr(addr.raw(), 64));
                    *open = true;
                    match region {
                        Region::Serial => {
                            stats.footprints.serial_addrs.insert(addr.raw());
                        }
                        Region::Parallel => {
                            stats.footprints.parallel_addrs.insert(addr.raw());
                            *stats
                                .footprints
                                .parallel_exec_counts
                                .entry(addr.raw())
                                .or_insert(0) += 1;
                        }
                    }
                }
                TraceRecord::Branch { addr, len, info } => {
                    let (r, lines, open) = match region {
                        Region::Serial => {
                            (&mut stats.serial, &mut serial_lines, &mut open_block_serial)
                        }
                        Region::Parallel => (
                            &mut stats.parallel,
                            &mut parallel_lines,
                            &mut open_block_parallel,
                        ),
                    };
                    r.instructions += 1;
                    r.instruction_bytes += len as u64;
                    r.branches += 1;
                    if info.taken {
                        r.taken_branches += 1;
                    }
                    // Every branch closes a basic block.
                    r.basic_blocks += 1;
                    *open = false;
                    lines.insert(crate::addr::line_addr(addr.raw(), 64));
                    match region {
                        Region::Serial => {
                            stats.footprints.serial_addrs.insert(addr.raw());
                        }
                        Region::Parallel => {
                            stats.footprints.parallel_addrs.insert(addr.raw());
                            *stats
                                .footprints
                                .parallel_exec_counts
                                .entry(addr.raw())
                                .or_insert(0) += 1;
                        }
                    }
                }
            }
        }
        // An unterminated trailing run of instructions counts as one block.
        if open_block_serial {
            stats.serial.basic_blocks += 1;
        }
        if open_block_parallel {
            stats.parallel.basic_blocks += 1;
        }

        stats.serial.static_instructions = stats.footprints.serial_addrs.len() as u64;
        stats.parallel.static_instructions = stats.footprints.parallel_addrs.len() as u64;
        stats.serial.static_lines = serial_lines.len() as u64;
        stats.parallel.static_lines = parallel_lines.len() as u64;
        stats
    }

    /// Combined (serial + parallel) dynamic instruction count.
    pub fn total_instructions(&self) -> u64 {
        self.serial.instructions + self.parallel.instructions
    }

    /// Fraction of dynamic instructions executed in serial regions
    /// (the x-axis of Fig. 13).
    pub fn serial_fraction(&self) -> f64 {
        let total = self.total_instructions();
        if total == 0 {
            0.0
        } else {
            self.serial.instructions as f64 / total as f64
        }
    }
}

/// Instruction-sharing statistics across the threads of a parallel run
/// (Fig. 4).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct SharingStats {
    /// Fraction of the union static footprint (parallel regions) that is
    /// executed by *all* threads.
    pub static_sharing: f64,
    /// Fraction of dynamically executed instructions (parallel regions,
    /// summed over threads) whose static address is executed by all threads.
    pub dynamic_sharing: f64,
    /// Number of threads considered.
    pub num_threads: usize,
}

impl SharingStats {
    /// Computes sharing statistics over all threads of a [`TraceSet`].
    ///
    /// Only parallel-region instructions are considered, matching the paper
    /// ("parallel sections only").
    ///
    /// # Panics
    ///
    /// Panics if `set` has no threads.
    pub fn from_trace_set(set: &TraceSet) -> Self {
        let per_thread: Vec<TraceStats> = set.iter().map(TraceStats::from_trace).collect();
        Self::from_thread_stats(&per_thread)
    }

    /// Computes sharing statistics from per-thread statistics.
    ///
    /// # Panics
    ///
    /// Panics if `stats` is empty.
    pub fn from_thread_stats(stats: &[TraceStats]) -> Self {
        assert!(
            !stats.is_empty(),
            "sharing analysis requires at least one thread"
        );
        let num_threads = stats.len();

        // Union and intersection of static parallel footprints.
        let mut union: HashSet<u64> = HashSet::new();
        for s in stats {
            union.extend(s.footprints.parallel_addrs.iter().copied());
        }
        let shared: HashSet<u64> = union
            .iter()
            .copied()
            .filter(|a| {
                stats
                    .iter()
                    .all(|s| s.footprints.parallel_addrs.contains(a))
            })
            .collect();

        let static_sharing = if union.is_empty() {
            0.0
        } else {
            shared.len() as f64 / union.len() as f64
        };

        let mut dynamic_total: u64 = 0;
        let mut dynamic_shared: u64 = 0;
        for s in stats {
            for (addr, count) in &s.footprints.parallel_exec_counts {
                dynamic_total += count;
                if shared.contains(addr) {
                    dynamic_shared += count;
                }
            }
        }
        let dynamic_sharing = if dynamic_total == 0 {
            0.0
        } else {
            dynamic_shared as f64 / dynamic_total as f64
        };

        SharingStats {
            static_sharing,
            dynamic_sharing,
            num_threads,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::{TraceBuilder, TraceSet};
    use crate::SyncEvent;

    fn loop_trace(thread: usize, start: u64, iters: u32, body: u32) -> ThreadTrace {
        let mut b = TraceBuilder::new(thread);
        b.set_ipc(1.0);
        b.sync(SyncEvent::ParallelStart { num_threads: 2 });
        for _ in 0..iters {
            b.basic_block(start, body, start, true);
        }
        b.sync(SyncEvent::ParallelEnd);
        b.finish()
    }

    #[test]
    fn basic_block_length_matches_construction() {
        let t = loop_trace(0, 0x1000, 10, 8);
        let s = TraceStats::from_trace(&t);
        assert_eq!(s.parallel.instructions, 80);
        assert_eq!(s.parallel.basic_blocks, 10);
        assert!((s.parallel.avg_basic_block_bytes() - 32.0).abs() < 1e-9);
        assert!((s.parallel.avg_basic_block_instrs() - 8.0).abs() < 1e-9);
        assert_eq!(s.serial.instructions, 0);
    }

    #[test]
    fn serial_vs_parallel_split() {
        let mut b = TraceBuilder::new(0);
        b.basic_block(0x100, 4, 0x200, true); // serial
        b.sync(SyncEvent::ParallelStart { num_threads: 2 });
        b.basic_block(0x1000, 12, 0x1000, true); // parallel
        b.sync(SyncEvent::ParallelEnd);
        b.basic_block(0x200, 3, 0x300, false); // serial again
        let s = TraceStats::from_trace(&b.finish());
        assert_eq!(s.serial.instructions, 7);
        assert_eq!(s.parallel.instructions, 12);
        assert_eq!(s.serial.basic_blocks, 2);
        assert_eq!(s.parallel.basic_blocks, 1);
        assert!(s.serial_fraction() > 0.3 && s.serial_fraction() < 0.4);
    }

    #[test]
    fn footprint_counts_distinct_addresses() {
        let t = loop_trace(0, 0x1000, 100, 16);
        let s = TraceStats::from_trace(&t);
        // 16 instructions * 4 bytes = 64 bytes = 1 line, executed repeatedly.
        assert_eq!(s.parallel.static_instructions, 16);
        assert_eq!(s.parallel.static_lines, 1);
        assert_eq!(s.parallel.footprint_bytes(), 64);
    }

    #[test]
    fn trailing_open_block_is_counted() {
        let mut b = TraceBuilder::new(0);
        b.instr(0x100, 4).instr(0x104, 4);
        let s = TraceStats::from_trace(&b.finish());
        assert_eq!(s.serial.basic_blocks, 1);
        assert_eq!(s.serial.instructions, 2);
    }

    #[test]
    fn taken_branch_ratio() {
        let mut b = TraceBuilder::new(0);
        b.branch(0x100, 4, 0x200, true);
        b.branch(0x200, 4, 0x300, false);
        b.branch(0x300, 4, 0x100, false);
        let s = TraceStats::from_trace(&b.finish());
        assert!((s.serial.taken_branch_ratio() - 1.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn full_sharing_when_threads_run_identical_code() {
        let set = TraceSet::new(vec![
            loop_trace(0, 0x1000, 10, 8),
            loop_trace(1, 0x1000, 10, 8),
        ]);
        let sh = SharingStats::from_trace_set(&set);
        assert!((sh.static_sharing - 1.0).abs() < 1e-9);
        assert!((sh.dynamic_sharing - 1.0).abs() < 1e-9);
        assert_eq!(sh.num_threads, 2);
    }

    #[test]
    fn no_sharing_when_threads_run_disjoint_code() {
        let set = TraceSet::new(vec![
            loop_trace(0, 0x1000, 10, 8),
            loop_trace(1, 0x8000, 10, 8),
        ]);
        let sh = SharingStats::from_trace_set(&set);
        assert_eq!(sh.static_sharing, 0.0);
        assert_eq!(sh.dynamic_sharing, 0.0);
    }

    #[test]
    fn partial_sharing_is_between_zero_and_one() {
        // Thread 1 executes the shared loop plus a private tail.
        let t0 = loop_trace(0, 0x1000, 10, 8);
        let mut b = TraceBuilder::new(1);
        b.sync(SyncEvent::ParallelStart { num_threads: 2 });
        for _ in 0..10 {
            b.basic_block(0x1000, 8, 0x1000, true);
        }
        b.basic_block(0x9000, 8, 0x9000, true);
        b.sync(SyncEvent::ParallelEnd);
        let set = TraceSet::new(vec![t0, b.finish()]);
        let sh = SharingStats::from_trace_set(&set);
        assert!(sh.static_sharing > 0.0 && sh.static_sharing < 1.0);
        assert!(sh.dynamic_sharing > 0.9 && sh.dynamic_sharing < 1.0);
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn sharing_requires_threads() {
        SharingStats::from_thread_stats(&[]);
    }

    #[test]
    fn empty_trace_has_zero_stats() {
        let s = TraceStats::from_records(std::iter::empty());
        assert_eq!(s.total_instructions(), 0);
        assert_eq!(s.serial_fraction(), 0.0);
        assert_eq!(s.serial.avg_basic_block_bytes(), 0.0);
        assert_eq!(s.parallel.taken_branch_ratio(), 0.0);
    }
}
