//! Trace containers and sources.
//!
//! The simulator consumes one trace per thread.  [`ThreadTrace`] is a
//! materialised, in-memory trace; [`TraceSet`] groups the per-thread traces
//! of one application run; [`TraceSource`] abstracts over materialised and
//! generated-on-the-fly traces so the synthetic workload generator in
//! `hpc-workloads` can stream records without storing billions of them.

use crate::record::{BranchInfo, SyncEvent, TraceRecord};
use crate::InstrAddr;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a simulated thread (0 is the master thread).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct ThreadId(pub usize);

impl ThreadId {
    /// The master thread (thread 0), which executes serial regions.
    pub const MASTER: ThreadId = ThreadId(0);

    /// Returns `true` if this is the master thread.
    pub fn is_master(self) -> bool {
        self.0 == 0
    }
}

impl fmt::Display for ThreadId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

impl From<usize> for ThreadId {
    fn from(v: usize) -> Self {
        ThreadId(v)
    }
}

/// A source of trace records for one thread.
///
/// Implemented by in-memory traces and by generators that synthesise records
/// lazily.  The simulator pulls one record at a time; `None` means the thread
/// has finished.
pub trait TraceSource {
    /// Returns the next record, or `None` at the end of the trace.
    fn next_record(&mut self) -> Option<TraceRecord>;

    /// Appends up to `max` records to `buf`, returning how many were
    /// appended (0 at the end of the trace).  Equivalent to calling
    /// [`TraceSource::next_record`] repeatedly; materialised sources
    /// override it with a slice copy so the simulator pays one virtual call
    /// per batch instead of per record.
    fn next_records(&mut self, buf: &mut Vec<TraceRecord>, max: usize) -> usize {
        let mut n = 0;
        while n < max {
            match self.next_record() {
                Some(r) => {
                    buf.push(r);
                    n += 1;
                }
                None => break,
            }
        }
        n
    }

    /// A hint of how many instructions remain, if known (used only for
    /// progress reporting).
    fn remaining_hint(&self) -> Option<u64> {
        None
    }
}

impl<T: TraceSource + ?Sized> TraceSource for Box<T> {
    fn next_record(&mut self) -> Option<TraceRecord> {
        (**self).next_record()
    }

    fn next_records(&mut self, buf: &mut Vec<TraceRecord>, max: usize) -> usize {
        (**self).next_records(buf, max)
    }

    fn remaining_hint(&self) -> Option<u64> {
        (**self).remaining_hint()
    }
}

/// Copies the next `max` records (or fewer at the end) from `records[*pos..]`
/// into `buf`, advancing `*pos` — the shared body of the cursor
/// `next_records` overrides.
fn copy_records(
    records: &[TraceRecord],
    pos: &mut usize,
    buf: &mut Vec<TraceRecord>,
    max: usize,
) -> usize {
    let n = max.min(records.len() - *pos);
    buf.extend_from_slice(&records[*pos..*pos + n]);
    *pos += n;
    n
}

/// A fully materialised, in-memory trace of a single thread.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct ThreadTrace {
    thread: ThreadId,
    records: Vec<TraceRecord>,
}

impl ThreadTrace {
    /// Creates an empty trace for `thread`.
    pub fn new(thread: ThreadId) -> Self {
        ThreadTrace {
            thread,
            records: Vec::new(),
        }
    }

    /// Creates a trace from pre-built records.
    pub fn from_records(thread: ThreadId, records: Vec<TraceRecord>) -> Self {
        ThreadTrace { thread, records }
    }

    /// The thread this trace belongs to.
    pub fn thread(&self) -> ThreadId {
        self.thread
    }

    /// The records of the trace, in program order.
    pub fn records(&self) -> &[TraceRecord] {
        &self.records
    }

    /// Number of records (including sync and IPC records).
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Returns `true` if the trace has no records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Number of fetched instructions (instruction + branch records).
    pub fn num_instructions(&self) -> u64 {
        self.records.iter().filter(|r| r.is_instruction()).count() as u64
    }

    /// Appends a record.
    pub fn push(&mut self, record: TraceRecord) {
        self.records.push(record);
    }

    /// Returns an iterator over the records.
    pub fn iter(&self) -> std::slice::Iter<'_, TraceRecord> {
        self.records.iter()
    }

    /// Returns a cursor implementing [`TraceSource`] over this trace.
    pub fn cursor(&self) -> ThreadTraceCursor<'_> {
        ThreadTraceCursor {
            records: &self.records,
            pos: 0,
        }
    }

    /// Consumes the trace and returns a [`TraceSource`] that owns the
    /// records.
    pub fn into_source(self) -> OwnedTraceCursor {
        OwnedTraceCursor {
            records: self.records,
            pos: 0,
        }
    }
}

impl<'a> IntoIterator for &'a ThreadTrace {
    type Item = &'a TraceRecord;
    type IntoIter = std::slice::Iter<'a, TraceRecord>;

    fn into_iter(self) -> Self::IntoIter {
        self.records.iter()
    }
}

impl IntoIterator for ThreadTrace {
    type Item = TraceRecord;
    type IntoIter = std::vec::IntoIter<TraceRecord>;

    fn into_iter(self) -> Self::IntoIter {
        self.records.into_iter()
    }
}

impl Extend<TraceRecord> for ThreadTrace {
    fn extend<T: IntoIterator<Item = TraceRecord>>(&mut self, iter: T) {
        self.records.extend(iter);
    }
}

/// Borrowing cursor over a [`ThreadTrace`].
#[derive(Debug, Clone)]
pub struct ThreadTraceCursor<'a> {
    records: &'a [TraceRecord],
    pos: usize,
}

impl TraceSource for ThreadTraceCursor<'_> {
    fn next_record(&mut self) -> Option<TraceRecord> {
        let r = self.records.get(self.pos).copied();
        if r.is_some() {
            self.pos += 1;
        }
        r
    }

    fn next_records(&mut self, buf: &mut Vec<TraceRecord>, max: usize) -> usize {
        copy_records(self.records, &mut self.pos, buf, max)
    }

    fn remaining_hint(&self) -> Option<u64> {
        Some((self.records.len() - self.pos) as u64)
    }
}

/// Cursor over one thread of a shared, reference-counted [`TraceSet`].
///
/// Many simulated machines replay the same traces (a parameter sweep runs
/// every design point against one trace set); this cursor lets each core
/// walk its thread's records through an `Arc` instead of cloning the whole
/// record vector per machine.
#[derive(Debug, Clone)]
pub struct SharedTraceCursor {
    set: std::sync::Arc<TraceSet>,
    thread: usize,
    pos: usize,
}

impl SharedTraceCursor {
    /// Creates a cursor over `thread`'s records in `set`.
    ///
    /// # Panics
    ///
    /// Panics if `set` has no trace for `thread`.
    pub fn new(set: std::sync::Arc<TraceSet>, thread: ThreadId) -> Self {
        assert!(
            thread.0 < set.num_threads(),
            "trace set has {} threads, no trace for {thread}",
            set.num_threads()
        );
        SharedTraceCursor {
            set,
            thread: thread.0,
            pos: 0,
        }
    }
}

impl TraceSource for SharedTraceCursor {
    fn next_record(&mut self) -> Option<TraceRecord> {
        let records = self.set.traces[self.thread].records();
        let r = records.get(self.pos).copied();
        if r.is_some() {
            self.pos += 1;
        }
        r
    }

    fn next_records(&mut self, buf: &mut Vec<TraceRecord>, max: usize) -> usize {
        copy_records(
            self.set.traces[self.thread].records(),
            &mut self.pos,
            buf,
            max,
        )
    }

    fn remaining_hint(&self) -> Option<u64> {
        Some((self.set.traces[self.thread].len() - self.pos) as u64)
    }
}

/// Owning cursor over a [`ThreadTrace`]'s records.
#[derive(Debug, Clone)]
pub struct OwnedTraceCursor {
    records: Vec<TraceRecord>,
    pos: usize,
}

impl TraceSource for OwnedTraceCursor {
    fn next_record(&mut self) -> Option<TraceRecord> {
        let r = self.records.get(self.pos).copied();
        if r.is_some() {
            self.pos += 1;
        }
        r
    }

    fn next_records(&mut self, buf: &mut Vec<TraceRecord>, max: usize) -> usize {
        copy_records(&self.records, &mut self.pos, buf, max)
    }

    fn remaining_hint(&self) -> Option<u64> {
        Some((self.records.len() - self.pos) as u64)
    }
}

/// Convenience builder for hand-written traces (tests, examples).
///
/// # Example
///
/// ```
/// use sim_trace::{TraceBuilder, SyncEvent};
///
/// let mut b = TraceBuilder::new(1);
/// b.set_ipc(1.0);
/// b.sync(SyncEvent::ParallelStart { num_threads: 2 });
/// b.basic_block(0x1000, 8, 0x1000, true); // an 8-instruction loop body
/// b.sync(SyncEvent::ParallelEnd);
/// let t = b.finish();
/// assert_eq!(t.num_instructions(), 8);
/// ```
#[derive(Debug, Clone)]
pub struct TraceBuilder {
    trace: ThreadTrace,
}

impl TraceBuilder {
    /// Creates a builder for the trace of thread `thread`.
    pub fn new(thread: usize) -> Self {
        TraceBuilder {
            trace: ThreadTrace::new(ThreadId(thread)),
        }
    }

    /// Appends a plain instruction record.
    pub fn instr(&mut self, addr: u64, len: u8) -> &mut Self {
        self.trace.push(TraceRecord::Instr {
            addr: InstrAddr::new(addr),
            len,
        });
        self
    }

    /// Appends a branch record.
    pub fn branch(&mut self, addr: u64, len: u8, target: u64, taken: bool) -> &mut Self {
        self.trace.push(TraceRecord::Branch {
            addr: InstrAddr::new(addr),
            len,
            info: BranchInfo {
                target: InstrAddr::new(target),
                taken,
                indirect: false,
            },
        });
        self
    }

    /// Appends a basic block of `n` four-byte instructions starting at
    /// `start`, terminated by a branch to `target` with the given outcome.
    pub fn basic_block(&mut self, start: u64, n: u32, target: u64, taken: bool) -> &mut Self {
        assert!(n >= 1, "a basic block has at least one instruction");
        for i in 0..n - 1 {
            self.instr(start + i as u64 * 4, 4);
        }
        self.branch(start + (n as u64 - 1) * 4, 4, target, taken);
        self
    }

    /// Appends a synchronisation event.
    pub fn sync(&mut self, ev: SyncEvent) -> &mut Self {
        self.trace.push(TraceRecord::Sync(ev));
        self
    }

    /// Appends a commit-rate change.
    ///
    /// # Panics
    ///
    /// Panics if `ipc` is not positive and finite.
    pub fn set_ipc(&mut self, ipc: f64) -> &mut Self {
        assert!(
            ipc.is_finite() && ipc > 0.0,
            "IPC must be positive, got {ipc}"
        );
        self.trace.push(TraceRecord::SetIpc { ipc });
        self
    }

    /// Finishes the builder and returns the trace.
    pub fn finish(self) -> ThreadTrace {
        self.trace
    }
}

/// The per-thread traces of one application run.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct TraceSet {
    traces: Vec<ThreadTrace>,
}

impl TraceSet {
    /// Creates a trace set from per-thread traces.
    ///
    /// # Panics
    ///
    /// Panics if thread ids are not exactly `0..traces.len()` in order.
    pub fn new(traces: Vec<ThreadTrace>) -> Self {
        for (i, t) in traces.iter().enumerate() {
            assert_eq!(
                t.thread(),
                ThreadId(i),
                "trace at position {i} has thread id {}",
                t.thread()
            );
        }
        TraceSet { traces }
    }

    /// Number of threads.
    pub fn num_threads(&self) -> usize {
        self.traces.len()
    }

    /// Returns the trace of `thread`, if present.
    pub fn thread(&self, thread: ThreadId) -> Option<&ThreadTrace> {
        self.traces.get(thread.0)
    }

    /// The master thread's trace.
    ///
    /// # Panics
    ///
    /// Panics if the set is empty.
    pub fn master(&self) -> &ThreadTrace {
        &self.traces[0]
    }

    /// Iterates over all per-thread traces.
    pub fn iter(&self) -> std::slice::Iter<'_, ThreadTrace> {
        self.traces.iter()
    }

    /// Total number of fetched instructions across all threads.
    pub fn total_instructions(&self) -> u64 {
        self.traces.iter().map(|t| t.num_instructions()).sum()
    }
}

impl<'a> IntoIterator for &'a TraceSet {
    type Item = &'a ThreadTrace;
    type IntoIter = std::slice::Iter<'a, ThreadTrace>;

    fn into_iter(self) -> Self::IntoIter {
        self.traces.iter()
    }
}

impl IntoIterator for TraceSet {
    type Item = ThreadTrace;
    type IntoIter = std::vec::IntoIter<ThreadTrace>;

    fn into_iter(self) -> Self::IntoIter {
        self.traces.into_iter()
    }
}

impl FromIterator<ThreadTrace> for TraceSet {
    fn from_iter<T: IntoIterator<Item = ThreadTrace>>(iter: T) -> Self {
        TraceSet::new(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thread_id_basics() {
        assert!(ThreadId::MASTER.is_master());
        assert!(!ThreadId(3).is_master());
        assert_eq!(ThreadId(3).to_string(), "t3");
        assert_eq!(ThreadId::from(5), ThreadId(5));
    }

    #[test]
    fn builder_produces_expected_records() {
        let mut b = TraceBuilder::new(0);
        b.set_ipc(2.0).instr(0x100, 4).branch(0x104, 4, 0x100, true);
        let t = b.finish();
        assert_eq!(t.len(), 3);
        assert_eq!(t.num_instructions(), 2);
        assert_eq!(t.thread(), ThreadId::MASTER);
    }

    #[test]
    fn basic_block_helper_counts() {
        let mut b = TraceBuilder::new(0);
        b.basic_block(0x1000, 5, 0x1000, true);
        let t = b.finish();
        assert_eq!(t.num_instructions(), 5);
        assert!(t.records().last().unwrap().is_taken_branch());
    }

    #[test]
    #[should_panic(expected = "IPC must be positive")]
    fn builder_rejects_bad_ipc() {
        TraceBuilder::new(0).set_ipc(-1.0);
    }

    #[test]
    fn cursor_walks_all_records() {
        let mut b = TraceBuilder::new(0);
        b.instr(0x100, 4).instr(0x104, 4);
        let t = b.finish();
        let mut c = t.cursor();
        assert_eq!(c.remaining_hint(), Some(2));
        assert!(c.next_record().is_some());
        assert!(c.next_record().is_some());
        assert!(c.next_record().is_none());
        assert_eq!(c.remaining_hint(), Some(0));
    }

    #[test]
    fn owned_cursor_walks_all_records() {
        let mut b = TraceBuilder::new(0);
        b.instr(0x100, 4).instr(0x104, 4).instr(0x108, 4);
        let mut c = b.finish().into_source();
        let mut n = 0;
        while c.next_record().is_some() {
            n += 1;
        }
        assert_eq!(n, 3);
    }

    #[test]
    fn boxed_trace_source_delegates() {
        let mut b = TraceBuilder::new(0);
        b.instr(0x100, 4);
        let mut boxed: Box<dyn TraceSource> = Box::new(b.finish().into_source());
        assert_eq!(boxed.remaining_hint(), Some(1));
        assert!(boxed.next_record().is_some());
        assert!(boxed.next_record().is_none());
    }

    #[test]
    fn trace_set_construction_and_totals() {
        let t0 = {
            let mut b = TraceBuilder::new(0);
            b.instr(0x100, 4);
            b.finish()
        };
        let t1 = {
            let mut b = TraceBuilder::new(1);
            b.instr(0x200, 4).instr(0x204, 4);
            b.finish()
        };
        let set = TraceSet::new(vec![t0, t1]);
        assert_eq!(set.num_threads(), 2);
        assert_eq!(set.total_instructions(), 3);
        assert_eq!(set.master().thread(), ThreadId::MASTER);
        assert!(set.thread(ThreadId(1)).is_some());
        assert!(set.thread(ThreadId(2)).is_none());
    }

    #[test]
    #[should_panic(expected = "thread id")]
    fn trace_set_rejects_out_of_order_threads() {
        let t = ThreadTrace::new(ThreadId(1));
        TraceSet::new(vec![t]);
    }

    #[test]
    fn trace_set_from_iterator() {
        let set: TraceSet = (0..3).map(|i| ThreadTrace::new(ThreadId(i))).collect();
        assert_eq!(set.num_threads(), 3);
    }

    #[test]
    fn extend_and_iterate() {
        let mut t = ThreadTrace::new(ThreadId(0));
        t.extend(vec![
            TraceRecord::SetIpc { ipc: 1.0 },
            TraceRecord::Instr {
                addr: InstrAddr::new(0x10),
                len: 4,
            },
        ]);
        assert_eq!(t.iter().count(), 2);
        assert_eq!((&t).into_iter().count(), 2);
        assert_eq!(t.clone().into_iter().count(), 2);
        assert!(!t.is_empty());
    }
}
