//! Instruction-address and cache-line-address arithmetic.
//!
//! The simulator manipulates two flavours of addresses: raw instruction
//! addresses ([`InstrAddr`]) and cache-line addresses ([`LineAddr`], the
//! instruction address with the intra-line offset stripped).  Newtypes keep
//! the two from being mixed up in the cache, bus and line-buffer models.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A byte-granular instruction address.
///
/// # Example
///
/// ```
/// use sim_trace::InstrAddr;
/// let a = InstrAddr::new(0x1042);
/// assert_eq!(a.line(64).raw(), 0x1040);
/// assert_eq!(a.offset_in_line(64), 2);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct InstrAddr(u64);

impl InstrAddr {
    /// Creates an instruction address from a raw value.
    pub const fn new(raw: u64) -> Self {
        InstrAddr(raw)
    }

    /// Returns the raw 64-bit value.
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// Returns the cache-line address containing this instruction for the
    /// given line size in bytes.
    ///
    /// # Panics
    ///
    /// Panics if `line_size` is zero or not a power of two.
    pub fn line(self, line_size: u64) -> LineAddr {
        LineAddr::containing(self, line_size)
    }

    /// Returns the byte offset of this address within its cache line.
    ///
    /// # Panics
    ///
    /// Panics if `line_size` is zero or not a power of two.
    pub fn offset_in_line(self, line_size: u64) -> u64 {
        assert_power_of_two(line_size);
        self.0 & (line_size - 1)
    }

    /// Returns the address advanced by `bytes`.
    pub const fn add(self, bytes: u64) -> Self {
        InstrAddr(self.0 + bytes)
    }
}

impl fmt::Display for InstrAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

impl fmt::LowerHex for InstrAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

impl From<u64> for InstrAddr {
    fn from(raw: u64) -> Self {
        InstrAddr(raw)
    }
}

impl From<InstrAddr> for u64 {
    fn from(a: InstrAddr) -> u64 {
        a.0
    }
}

/// A cache-line-aligned address.
///
/// The invariant that the value is aligned to the line size is established at
/// construction time; the line size itself is not stored (all components of
/// one simulated machine agree on it through their configuration).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct LineAddr(u64);

impl LineAddr {
    /// Returns the line address containing `addr` for the given line size.
    ///
    /// # Panics
    ///
    /// Panics if `line_size` is zero or not a power of two.
    pub fn containing(addr: InstrAddr, line_size: u64) -> Self {
        assert_power_of_two(line_size);
        LineAddr(addr.raw() & !(line_size - 1))
    }

    /// Creates a line address from an already aligned raw value.
    ///
    /// # Panics
    ///
    /// Panics if `raw` is not aligned to `line_size`, or if `line_size` is
    /// zero or not a power of two.
    pub fn from_aligned(raw: u64, line_size: u64) -> Self {
        assert_power_of_two(line_size);
        assert!(
            raw & (line_size - 1) == 0,
            "address {raw:#x} is not aligned to line size {line_size}"
        );
        LineAddr(raw)
    }

    /// Returns the raw aligned value.
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// Returns the line index, i.e. the raw value divided by the line size.
    ///
    /// Used by banked caches to interleave lines across banks
    /// (even/odd line interleaving in the double-bus configuration).
    pub fn index(self, line_size: u64) -> u64 {
        assert_power_of_two(line_size);
        self.0 >> line_size.trailing_zeros()
    }

    /// Returns the address of the next sequential line.
    pub fn next(self, line_size: u64) -> Self {
        assert_power_of_two(line_size);
        LineAddr(self.0 + line_size)
    }
}

impl fmt::Display for LineAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

/// Returns the line address (raw `u64`) containing `addr`.
///
/// Convenience free function used where newtypes would be noise (e.g. the
/// synthetic trace generator's layout code).
pub fn line_addr(addr: u64, line_size: u64) -> u64 {
    assert_power_of_two(line_size);
    addr & !(line_size - 1)
}

/// Returns the index of the line containing `addr` (i.e. `addr / line_size`).
pub fn line_index(addr: u64, line_size: u64) -> u64 {
    assert_power_of_two(line_size);
    addr >> line_size.trailing_zeros()
}

/// Returns the byte offset of `addr` within its line.
pub fn line_offset(addr: u64, line_size: u64) -> u64 {
    assert_power_of_two(line_size);
    addr & (line_size - 1)
}

fn assert_power_of_two(line_size: u64) {
    assert!(
        line_size.is_power_of_two(),
        "line size must be a non-zero power of two, got {line_size}"
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instr_addr_line_math() {
        let a = InstrAddr::new(0x1234);
        assert_eq!(a.line(64).raw(), 0x1200);
        assert_eq!(a.offset_in_line(64), 0x34);
        assert_eq!(a.add(0x10).raw(), 0x1244);
    }

    #[test]
    fn line_addr_alignment_and_index() {
        let l = LineAddr::containing(InstrAddr::new(0x1fff), 64);
        assert_eq!(l.raw(), 0x1fc0);
        assert_eq!(l.index(64), 0x1fc0 / 64);
        assert_eq!(l.next(64).raw(), 0x2000);
    }

    #[test]
    fn from_aligned_accepts_aligned() {
        let l = LineAddr::from_aligned(0x4000, 64);
        assert_eq!(l.raw(), 0x4000);
    }

    #[test]
    #[should_panic(expected = "not aligned")]
    fn from_aligned_rejects_misaligned() {
        let _ = LineAddr::from_aligned(0x4001, 64);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_power_of_two_line_size() {
        let _ = line_addr(0x1000, 48);
    }

    #[test]
    fn free_function_helpers() {
        assert_eq!(line_addr(0x107f, 64), 0x1040);
        assert_eq!(line_index(0x1080, 64), 0x42);
        assert_eq!(line_offset(0x1083, 64), 3);
    }

    #[test]
    fn display_is_hex() {
        assert_eq!(InstrAddr::new(0xabc).to_string(), "0xabc");
        assert_eq!(LineAddr::from_aligned(0xc0, 64).to_string(), "0xc0");
    }

    #[test]
    fn conversions_roundtrip() {
        let a: InstrAddr = 0xdead_beefu64.into();
        let raw: u64 = a.into();
        assert_eq!(raw, 0xdead_beef);
    }
}
