//! Trace record model: instructions, branches, synchronisation events and
//! commit-rate (IPC) changes.
//!
//! A per-thread trace is a flat sequence of [`TraceRecord`]s.  The record
//! kinds mirror what the paper's PinTool emits: executed instruction
//! addresses, branch addresses annotated with outcome and target, the five
//! OpenMP synchronisation events (parallel start/end, barrier, wait and
//! signal on critical sections / semaphores), and `IPCset` records carrying
//! the back-end commit rate measured with performance counters for the
//! upcoming code section.

use crate::addr::InstrAddr;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Code region kind: serial (master-only) or parallel (all threads).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Region {
    /// Sequential section executed only by the master thread.
    Serial,
    /// Parallel section executed by all worker threads (and the master
    /// acting as an extra worker).
    Parallel,
}

impl Region {
    /// Returns `true` for [`Region::Parallel`].
    pub fn is_parallel(self) -> bool {
        matches!(self, Region::Parallel)
    }
}

impl fmt::Display for Region {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Region::Serial => f.write_str("serial"),
            Region::Parallel => f.write_str("parallel"),
        }
    }
}

/// OpenMP-style synchronisation events embedded in the trace.
///
/// These resolve the classic weakness of trace-driven simulation —
/// inter-thread ordering — by letting the simulated runtime reproduce the
/// fork/join structure of the original execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SyncEvent {
    /// A parallel region begins; `num_threads` threads participate.
    ParallelStart {
        /// Number of threads (including the master) in the region.
        num_threads: usize,
    },
    /// The current parallel region ends (implicit join).
    ParallelEnd,
    /// All participating threads must reach barrier `id` before any proceeds.
    Barrier {
        /// Identifier distinguishing distinct barrier instances.
        id: u32,
    },
    /// The thread waits to acquire critical section / semaphore `id`.
    CriticalWait {
        /// Lock or semaphore identifier.
        id: u32,
    },
    /// The thread releases critical section / semaphore `id`.
    CriticalSignal {
        /// Lock or semaphore identifier.
        id: u32,
    },
}

impl fmt::Display for SyncEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SyncEvent::ParallelStart { num_threads } => {
                write!(f, "parallel-start({num_threads})")
            }
            SyncEvent::ParallelEnd => f.write_str("parallel-end"),
            SyncEvent::Barrier { id } => write!(f, "barrier({id})"),
            SyncEvent::CriticalWait { id } => write!(f, "critical-wait({id})"),
            SyncEvent::CriticalSignal { id } => write!(f, "critical-signal({id})"),
        }
    }
}

/// Outcome and target of a dynamically executed branch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct BranchInfo {
    /// Branch target address (meaningful whether or not the branch was taken).
    pub target: InstrAddr,
    /// Whether the branch was taken in this dynamic instance.
    pub taken: bool,
    /// Whether the branch target is computed indirectly (returns, indirect
    /// calls); indirect branches are harder for the BTB.
    pub indirect: bool,
}

/// One record in a per-thread instruction trace.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum TraceRecord {
    /// A non-branch instruction at `addr`, `len` bytes long.
    Instr {
        /// Instruction address.
        addr: InstrAddr,
        /// Instruction length in bytes.
        len: u8,
    },
    /// A branch instruction with its dynamic outcome.
    Branch {
        /// Instruction address.
        addr: InstrAddr,
        /// Instruction length in bytes.
        len: u8,
        /// Outcome and target.
        info: BranchInfo,
    },
    /// A synchronisation event (no instruction is fetched for it).
    Sync(SyncEvent),
    /// Sets the back-end commit rate (instructions per cycle) for the code
    /// that follows, until the next `SetIpc`.
    SetIpc {
        /// Commit rate in instructions per cycle; must be positive.
        ipc: f64,
    },
}

impl TraceRecord {
    /// Returns the instruction address if the record is an instruction or a
    /// branch.
    pub fn addr(&self) -> Option<InstrAddr> {
        match self {
            TraceRecord::Instr { addr, .. } | TraceRecord::Branch { addr, .. } => Some(*addr),
            _ => None,
        }
    }

    /// Returns the instruction length in bytes, if the record is an
    /// instruction or a branch.
    pub fn len_bytes(&self) -> Option<u8> {
        match self {
            TraceRecord::Instr { len, .. } | TraceRecord::Branch { len, .. } => Some(*len),
            _ => None,
        }
    }

    /// Returns the branch information if the record is a branch.
    pub fn branch(&self) -> Option<BranchInfo> {
        match self {
            TraceRecord::Branch { info, .. } => Some(*info),
            _ => None,
        }
    }

    /// Returns `true` if the record represents a fetched instruction
    /// (instruction or branch).
    pub fn is_instruction(&self) -> bool {
        matches!(self, TraceRecord::Instr { .. } | TraceRecord::Branch { .. })
    }

    /// Returns `true` if the record is a taken branch.
    pub fn is_taken_branch(&self) -> bool {
        matches!(
            self,
            TraceRecord::Branch {
                info: BranchInfo { taken: true, .. },
                ..
            }
        )
    }

    /// Returns the region the record belongs to, if it is intrinsically tied
    /// to one.  Plain records carry no region; the region is assigned by the
    /// runtime replaying the sync events.  Always `None` for now; kept as an
    /// extension point and used by the statistics splitter.
    pub fn region(&self) -> Option<Region> {
        None
    }
}

impl fmt::Display for TraceRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceRecord::Instr { addr, len } => write!(f, "I {addr} +{len}"),
            TraceRecord::Branch { addr, len, info } => write!(
                f,
                "B {addr} +{len} -> {} {}{}",
                info.target,
                if info.taken { "taken" } else { "not-taken" },
                if info.indirect { " (indirect)" } else { "" }
            ),
            TraceRecord::Sync(ev) => write!(f, "S {ev}"),
            TraceRecord::SetIpc { ipc } => write!(f, "IPC {ipc}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn branch(taken: bool) -> TraceRecord {
        TraceRecord::Branch {
            addr: InstrAddr::new(0x100),
            len: 4,
            info: BranchInfo {
                target: InstrAddr::new(0x80),
                taken,
                indirect: false,
            },
        }
    }

    #[test]
    fn record_accessors() {
        let i = TraceRecord::Instr {
            addr: InstrAddr::new(0x40),
            len: 4,
        };
        assert_eq!(i.addr(), Some(InstrAddr::new(0x40)));
        assert_eq!(i.len_bytes(), Some(4));
        assert!(i.is_instruction());
        assert!(!i.is_taken_branch());
        assert!(i.branch().is_none());

        let b = branch(true);
        assert!(b.is_taken_branch());
        assert_eq!(b.branch().unwrap().target, InstrAddr::new(0x80));

        let s = TraceRecord::Sync(SyncEvent::ParallelEnd);
        assert!(!s.is_instruction());
        assert!(s.addr().is_none());

        let ipc = TraceRecord::SetIpc { ipc: 1.5 };
        assert!(!ipc.is_instruction());
        assert!(ipc.len_bytes().is_none());
    }

    #[test]
    fn not_taken_branch_is_not_taken() {
        assert!(!branch(false).is_taken_branch());
    }

    #[test]
    fn region_display_and_predicate() {
        assert!(Region::Parallel.is_parallel());
        assert!(!Region::Serial.is_parallel());
        assert_eq!(Region::Serial.to_string(), "serial");
        assert_eq!(Region::Parallel.to_string(), "parallel");
    }

    #[test]
    fn sync_event_display() {
        assert_eq!(
            SyncEvent::ParallelStart { num_threads: 8 }.to_string(),
            "parallel-start(8)"
        );
        assert_eq!(SyncEvent::Barrier { id: 3 }.to_string(), "barrier(3)");
        assert_eq!(
            SyncEvent::CriticalWait { id: 1 }.to_string(),
            "critical-wait(1)"
        );
        assert_eq!(
            SyncEvent::CriticalSignal { id: 1 }.to_string(),
            "critical-signal(1)"
        );
        assert_eq!(SyncEvent::ParallelEnd.to_string(), "parallel-end");
    }

    #[test]
    fn record_display_formats() {
        let b = branch(true);
        assert!(b.to_string().contains("taken"));
        let i = TraceRecord::Instr {
            addr: InstrAddr::new(0x40),
            len: 4,
        };
        assert!(i.to_string().starts_with("I "));
        assert!(TraceRecord::SetIpc { ipc: 2.0 }
            .to_string()
            .starts_with("IPC"));
    }
}
