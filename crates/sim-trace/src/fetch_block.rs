//! Fetch blocks: the unit of work of the decoupled front-end.
//!
//! A *fetch block* (FB) is a sequence of consecutive instructions that ends
//! at a taken branch (or at a configurable size limit).  It may span several
//! basic blocks when intervening branches are not taken, which is exactly why
//! the paper's front-end uses FBs rather than basic blocks: HPC code has long
//! straight-line runs and FBs raise the effective fetch bandwidth.
//!
//! [`FetchBlockBuilder`] adapts any iterator of [`TraceRecord`]s into an
//! iterator of [`FetchBlock`]s; both the front-end model and the trace
//! statistics use it.

use crate::addr::InstrAddr;
use crate::record::{BranchInfo, TraceRecord};
use serde::{Deserialize, Serialize};

/// Default maximum fetch-block length in bytes.
///
/// The fetch predictor cannot look arbitrarily far ahead, so fetch blocks are
/// capped; the paper's configuration uses the I-cache line size region (64 B)
/// as a practical fetch granule but allows an FB to span lines, so we cap at
/// four lines.
pub const DEFAULT_MAX_FB_BYTES: u32 = 256;

/// A dynamic fetch block: consecutive instructions ending at a taken branch
/// or the size cap.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FetchBlock {
    /// Address of the first instruction in the block.
    pub start: InstrAddr,
    /// Total length of the block in bytes.
    pub len_bytes: u32,
    /// Number of instructions in the block.
    pub num_instrs: u32,
    /// Number of branch instructions inside the block (taken or not).
    pub num_branches: u32,
    /// Terminating taken branch, if the block ended because of one.
    pub terminator: Option<TerminatingBranch>,
}

/// The taken branch that terminated a fetch block.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TerminatingBranch {
    /// Address of the branch instruction.
    pub addr: InstrAddr,
    /// Branch outcome/target information.
    pub info: BranchInfo,
}

impl FetchBlock {
    /// Address one past the last byte of the block.
    pub fn end(&self) -> InstrAddr {
        self.start.add(self.len_bytes as u64)
    }

    /// Iterator over the line addresses (raw, aligned) the block touches.
    pub fn lines(&self, line_size: u64) -> impl Iterator<Item = u64> {
        let first = crate::addr::line_addr(self.start.raw(), line_size);
        let last = crate::addr::line_addr(
            self.start.raw() + self.len_bytes.max(1) as u64 - 1,
            line_size,
        );
        (first..=last).step_by(line_size as usize)
    }

    /// Returns the number of cache lines the block spans.
    pub fn num_lines(&self, line_size: u64) -> u32 {
        self.lines(line_size).count() as u32
    }
}

/// Builds [`FetchBlock`]s from a stream of [`TraceRecord`]s.
///
/// Non-instruction records (sync events, IPC changes) are passed through via
/// [`FetchBlockBuilder::drain_pending`]; they flush the block under
/// construction so that region boundaries never bisect a fetch block.
#[derive(Debug)]
pub struct FetchBlockBuilder<I> {
    records: I,
    max_bytes: u32,
    current: Option<PartialBlock>,
    out: std::collections::VecDeque<FetchItem>,
}

#[derive(Debug)]
struct PartialBlock {
    start: InstrAddr,
    next: InstrAddr,
    len_bytes: u32,
    num_instrs: u32,
    num_branches: u32,
}

/// Items produced by [`FetchBlockBuilder::next_item`].
#[derive(Debug, Clone, PartialEq)]
pub enum FetchItem {
    /// A completed fetch block.
    Block(FetchBlock),
    /// A non-instruction record encountered in the stream (sync or IPC-set).
    Meta(TraceRecord),
}

impl<I: Iterator<Item = TraceRecord>> FetchBlockBuilder<I> {
    /// Creates a builder over `records` with the default size cap.
    pub fn new(records: I) -> Self {
        Self::with_max_bytes(records, DEFAULT_MAX_FB_BYTES)
    }

    /// Creates a builder with an explicit fetch-block size cap in bytes.
    ///
    /// # Panics
    ///
    /// Panics if `max_bytes` is zero.
    pub fn with_max_bytes(records: I, max_bytes: u32) -> Self {
        assert!(max_bytes > 0, "fetch block size cap must be positive");
        FetchBlockBuilder {
            records,
            max_bytes,
            current: None,
            out: std::collections::VecDeque::new(),
        }
    }

    /// Returns the next fetch block or meta record, or `None` at end of
    /// trace.
    pub fn next_item(&mut self) -> Option<FetchItem> {
        loop {
            if let Some(item) = self.out.pop_front() {
                return Some(item);
            }
            match self.records.next() {
                None => {
                    self.flush();
                    return self.out.pop_front();
                }
                Some(rec @ (TraceRecord::Sync(_) | TraceRecord::SetIpc { .. })) => {
                    // Region boundaries never bisect a fetch block.
                    self.flush();
                    self.out.push_back(FetchItem::Meta(rec));
                }
                Some(TraceRecord::Instr { addr, len }) => self.push_instr(addr, len, None),
                Some(TraceRecord::Branch { addr, len, info }) => {
                    self.push_instr(addr, len, Some(info))
                }
            }
        }
    }

    fn push_instr(&mut self, addr: InstrAddr, len: u8, branch: Option<BranchInfo>) {
        // A discontinuity (the instruction does not follow the previous one)
        // terminates the current block: the trace jumped without a recorded
        // taken branch (e.g. the previous record ended a loop iteration).
        let discontinuous = self
            .current
            .as_ref()
            .map(|c| c.next != addr)
            .unwrap_or(false);
        if discontinuous {
            self.flush();
        }

        let cur = self.current.get_or_insert(PartialBlock {
            start: addr,
            next: addr,
            len_bytes: 0,
            num_instrs: 0,
            num_branches: 0,
        });
        cur.len_bytes += len as u32;
        cur.num_instrs += 1;
        cur.next = addr.add(len as u64);
        if branch.is_some() {
            cur.num_branches += 1;
        }

        let taken = branch.map(|b| b.taken).unwrap_or(false);
        let full = cur.len_bytes >= self.max_bytes;
        if taken || full {
            let terminator = branch
                .filter(|b| b.taken)
                .map(|info| TerminatingBranch { addr, info });
            let block = self.take_block(terminator);
            self.out.push_back(FetchItem::Block(block));
        }
    }

    fn take_block(&mut self, terminator: Option<TerminatingBranch>) -> FetchBlock {
        let cur = self
            .current
            .take()
            .expect("take_block with no current block");
        FetchBlock {
            start: cur.start,
            len_bytes: cur.len_bytes,
            num_instrs: cur.num_instrs,
            num_branches: cur.num_branches,
            terminator,
        }
    }

    fn flush(&mut self) {
        if self.current.is_some() {
            let block = self.take_block(None);
            self.out.push_back(FetchItem::Block(block));
        }
    }
}

impl<I: Iterator<Item = TraceRecord>> Iterator for FetchBlockBuilder<I> {
    type Item = FetchItem;

    fn next(&mut self) -> Option<FetchItem> {
        self.next_item()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::SyncEvent;

    fn instr(addr: u64) -> TraceRecord {
        TraceRecord::Instr {
            addr: InstrAddr::new(addr),
            len: 4,
        }
    }

    fn branch(addr: u64, target: u64, taken: bool) -> TraceRecord {
        TraceRecord::Branch {
            addr: InstrAddr::new(addr),
            len: 4,
            info: BranchInfo {
                target: InstrAddr::new(target),
                taken,
                indirect: false,
            },
        }
    }

    fn blocks(records: Vec<TraceRecord>) -> Vec<FetchItem> {
        FetchBlockBuilder::new(records.into_iter()).collect()
    }

    #[test]
    fn straight_line_code_forms_one_block() {
        let items = blocks(vec![instr(0x100), instr(0x104), instr(0x108)]);
        assert_eq!(items.len(), 1);
        match &items[0] {
            FetchItem::Block(b) => {
                assert_eq!(b.start.raw(), 0x100);
                assert_eq!(b.num_instrs, 3);
                assert_eq!(b.len_bytes, 12);
                assert!(b.terminator.is_none());
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn taken_branch_terminates_block() {
        let items = blocks(vec![
            instr(0x100),
            branch(0x104, 0x200, true),
            instr(0x200),
            instr(0x204),
        ]);
        let fbs: Vec<_> = items
            .iter()
            .filter_map(|i| match i {
                FetchItem::Block(b) => Some(*b),
                _ => None,
            })
            .collect();
        assert_eq!(fbs.len(), 2);
        assert_eq!(fbs[0].num_instrs, 2);
        assert!(fbs[0].terminator.is_some());
        assert_eq!(fbs[1].start.raw(), 0x200);
    }

    #[test]
    fn not_taken_branch_does_not_terminate() {
        let items = blocks(vec![
            instr(0x100),
            branch(0x104, 0x200, false),
            instr(0x108),
        ]);
        let fbs: Vec<_> = items
            .iter()
            .filter_map(|i| match i {
                FetchItem::Block(b) => Some(*b),
                _ => None,
            })
            .collect();
        assert_eq!(fbs.len(), 1);
        assert_eq!(fbs[0].num_instrs, 3);
        assert_eq!(fbs[0].num_branches, 1);
        assert!(fbs[0].terminator.is_none());
    }

    #[test]
    fn size_cap_terminates_block() {
        let records: Vec<_> = (0..100).map(|i| instr(0x1000 + i * 4)).collect();
        let items: Vec<_> = FetchBlockBuilder::with_max_bytes(records.into_iter(), 64).collect();
        let fbs: Vec<_> = items
            .iter()
            .filter_map(|i| match i {
                FetchItem::Block(b) => Some(*b),
                _ => None,
            })
            .collect();
        assert!(fbs.len() >= 6);
        for b in &fbs[..fbs.len() - 1] {
            assert_eq!(b.len_bytes, 64);
        }
        let total: u32 = fbs.iter().map(|b| b.num_instrs).sum();
        assert_eq!(total, 100);
    }

    #[test]
    fn sync_event_flushes_block_and_is_passed_through() {
        let items = blocks(vec![
            instr(0x100),
            TraceRecord::Sync(SyncEvent::ParallelStart { num_threads: 4 }),
            instr(0x200),
        ]);
        assert_eq!(items.len(), 3);
        assert!(matches!(items[0], FetchItem::Block(_)));
        assert!(matches!(items[1], FetchItem::Meta(TraceRecord::Sync(_))));
        assert!(matches!(items[2], FetchItem::Block(_)));
    }

    #[test]
    fn discontinuity_terminates_block() {
        // A jump in addresses without a recorded taken branch still splits.
        let items = blocks(vec![instr(0x100), instr(0x5000), instr(0x5004)]);
        let fbs: Vec<_> = items
            .iter()
            .filter_map(|i| match i {
                FetchItem::Block(b) => Some(*b),
                _ => None,
            })
            .collect();
        assert_eq!(fbs.len(), 2);
        assert_eq!(fbs[0].num_instrs, 1);
        assert_eq!(fbs[1].num_instrs, 2);
    }

    #[test]
    fn fetch_block_line_helpers() {
        let b = FetchBlock {
            start: InstrAddr::new(0x1030),
            len_bytes: 0x40,
            num_instrs: 16,
            num_branches: 0,
            terminator: None,
        };
        // 0x1030..0x1070 touches lines 0x1000 and 0x1040.
        let lines: Vec<_> = b.lines(64).collect();
        assert_eq!(lines, vec![0x1000, 0x1040]);
        assert_eq!(b.num_lines(64), 2);
        assert_eq!(b.end().raw(), 0x1070);
    }

    #[test]
    fn empty_trace_yields_nothing() {
        let items = blocks(vec![]);
        assert!(items.is_empty());
    }

    #[test]
    fn total_instruction_count_is_preserved() {
        let mut records = Vec::new();
        for i in 0..50u64 {
            if i % 7 == 6 {
                records.push(branch(0x100 + i * 4, 0x100, true));
                records.push(instr(0x100));
            } else {
                records.push(instr(0x100 + i * 4));
            }
        }
        let n_in = records.iter().filter(|r| r.is_instruction()).count() as u32;
        let items = blocks(records);
        let n_out: u32 = items
            .iter()
            .filter_map(|i| match i {
                FetchItem::Block(b) => Some(b.num_instrs),
                _ => None,
            })
            .sum();
        assert_eq!(n_in, n_out);
    }
}
