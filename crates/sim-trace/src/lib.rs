//! Instruction-trace model for the shared-I-cache ACMP simulator.
//!
//! The simulator in this workspace is *trace driven*: every simulated thread
//! is described by a stream of [`TraceRecord`]s capturing the executed
//! instruction addresses, the outcome and target of every branch, the
//! OpenMP-style synchronisation events that delimit serial and parallel
//! regions, and the measured commit rate (IPC) to apply to the back-end in
//! each region.  This mirrors the methodology of Milic et al. (ISPASS 2017),
//! where Pin produced one such trace per thread and TaskSim replayed them.
//!
//! This crate defines:
//!
//! * the record model ([`TraceRecord`], [`SyncEvent`], [`Region`]),
//! * address arithmetic helpers ([`addr`]),
//! * fetch blocks ([`fetch_block`]) — the unit the decoupled front-end
//!   operates on,
//! * trace containers and sources ([`source`]),
//! * streaming trace statistics ([`stats`]) used by the workload
//!   characterisation figures of the paper (average basic-block length,
//!   per-region footprints, instruction sharing),
//! * a JSON-lines serialisation of traces ([`serialize`]).
//!
//! # Example
//!
//! ```
//! use sim_trace::{TraceBuilder, TraceRecord, SyncEvent, Region};
//!
//! let mut b = TraceBuilder::new(0);
//! b.set_ipc(2.0);
//! b.instr(0x1000, 4);
//! b.branch(0x1004, 4, 0x1000, true);
//! b.sync(SyncEvent::ParallelStart { num_threads: 4 });
//! let trace = b.finish();
//! assert_eq!(trace.len(), 4);
//! assert_eq!(trace.records()[1].region(), None); // region is assigned by the runtime
//! ```

pub mod addr;
pub mod fetch_block;
pub mod record;
pub mod serialize;
pub mod source;
pub mod stats;

pub use addr::{line_addr, line_index, line_offset, InstrAddr, LineAddr};
pub use fetch_block::{FetchBlock, FetchBlockBuilder};
pub use record::{BranchInfo, Region, SyncEvent, TraceRecord};
pub use serialize::{
    read_trace_json, read_trace_set_json, write_trace_json, write_trace_set_json,
    TraceSerializeError, TRACE_FORMAT_VERSION,
};
pub use source::{
    OwnedTraceCursor, SharedTraceCursor, ThreadId, ThreadTrace, ThreadTraceCursor, TraceBuilder,
    TraceSet, TraceSource,
};
pub use stats::{FootprintStats, RegionStats, SharingStats, TraceStats};

#[cfg(test)]
mod crate_tests {
    use super::*;

    #[test]
    fn public_types_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TraceRecord>();
        assert_send_sync::<ThreadTrace>();
        assert_send_sync::<TraceSet>();
        assert_send_sync::<TraceStats>();
        assert_send_sync::<FetchBlock>();
    }
}
