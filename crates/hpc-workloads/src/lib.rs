//! Synthetic HPC workload profiles and trace generation.
//!
//! The paper instruments 24 OpenMP benchmarks (the NPB suite, SPEC OMP 2012
//! and the ExMatEx proxy applications) with Pin and replays the resulting
//! per-thread traces in TaskSim.  Those traces and the proprietary inputs
//! are not available here, so this crate provides the documented
//! substitution (see `DESIGN.md`): each benchmark is described by a
//! [`WorkloadProfile`] whose parameters are calibrated against the paper's
//! own characterisation figures —
//!
//! * serial-code fraction (Fig. 13 x-axis),
//! * average dynamic basic-block length in serial and parallel code
//!   (Fig. 2),
//! * I-cache behaviour per region via *cold-walk* fractions (Fig. 3 and the
//!   absolute MPKI labels of Fig. 11),
//! * instruction sharing across threads (Fig. 4),
//! * per-region commit rates standing in for the measured i7/Cortex-A9 IPC
//!   values,
//! * loop working-set sizes, which determine the line-buffer hit rate
//!   (Fig. 9) and the bus pressure (Figs. 7 and 10).
//!
//! [`TraceGenerator`] turns a profile into a deterministic, seeded
//! [`sim_trace::TraceSet`] with the fork-join structure (parallel start/end,
//! barriers, optional critical sections) that the ACMP runtime in `sim-acmp`
//! replays.
//!
//! # Example
//!
//! ```
//! use hpc_workloads::{Benchmark, GeneratorConfig, TraceGenerator};
//!
//! let profile = Benchmark::Lu.profile();
//! let config = GeneratorConfig::small();
//! let traces = TraceGenerator::new(profile, config).generate();
//! assert_eq!(traces.num_threads(), config.num_workers + 1);
//! ```

pub mod benchmark;
pub mod generator;
pub mod layout;
pub mod profile;

pub use benchmark::{Benchmark, Suite};
pub use generator::{GeneratorConfig, TraceGenerator};
pub use layout::{CodeLayout, KernelLayout};
pub use profile::WorkloadProfile;

#[cfg(test)]
mod crate_tests {
    use super::*;

    #[test]
    fn public_types_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Benchmark>();
        assert_send_sync::<WorkloadProfile>();
        assert_send_sync::<GeneratorConfig>();
    }
}
