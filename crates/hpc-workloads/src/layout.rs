//! Synthetic code layout: where in the address space each kind of code
//! lives.
//!
//! The generator lays the benchmark's code out in disjoint regions so that
//! the sharing analysis (Fig. 4) and the shared-I-cache behaviour are
//! well defined:
//!
//! * a small *serial hot* region and a larger *serial cold* region walked by
//!   the master thread only;
//! * the *shared kernels* — the parallel hot loops executed by every thread
//!   at the same addresses (this is what makes cross-thread prefetching in a
//!   shared I-cache work);
//! * a *shared cold* region for benchmarks whose parallel code has a
//!   footprint larger than the I-cache (CoEVP);
//! * one small *private* region per thread for the non-shared fraction of
//!   the dynamic instructions.

use serde::{Deserialize, Serialize};

/// Base address of the master thread's serial hot loop.
pub const SERIAL_HOT_BASE: u64 = 0x1000_0000;
/// Base address of the serial cold-walk region.
pub const SERIAL_COLD_BASE: u64 = 0x1800_0000;
/// Base address of the shared parallel kernels.
pub const KERNEL_BASE: u64 = 0x2000_0000;
/// Spacing between consecutive kernels (they never overlap).
pub const KERNEL_STRIDE: u64 = 0x4_0000;
/// Base address of the shared parallel cold-walk region.
pub const PARALLEL_COLD_BASE: u64 = 0x2800_0000;
/// Size of the shared parallel cold-walk region in bytes (larger than any
/// evaluated I-cache, so walking it always misses).
pub const PARALLEL_COLD_BYTES: u64 = 64 * 1024;
/// Base address of the critical-section code (shared).
pub const CRITICAL_BASE: u64 = 0x2c00_0000;
/// Base address of the first thread-private region.
pub const PRIVATE_BASE: u64 = 0x3000_0000;
/// Spacing between thread-private regions.
pub const PRIVATE_STRIDE: u64 = 0x0100_0000;
/// Size of a thread-private hot loop in bytes.
pub const PRIVATE_KERNEL_BYTES: u32 = 256;
/// Size of the serial hot loop in bytes.
pub const SERIAL_HOT_BYTES: u32 = 2048;

/// Placement of one parallel kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct KernelLayout {
    /// Kernel index.
    pub index: u32,
    /// First instruction address of the kernel's loop body.
    pub base: u64,
    /// Loop-body size in bytes.
    pub body_bytes: u32,
}

/// The complete code layout for one benchmark run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CodeLayout {
    /// Shared parallel kernels.
    pub kernels: Vec<KernelLayout>,
    /// Serial hot-loop body size in bytes.
    pub serial_hot_bytes: u32,
    /// Serial cold region size in bytes.
    pub serial_cold_bytes: u64,
}

impl CodeLayout {
    /// Builds the layout for a benchmark with `num_kernels` kernels of
    /// `kernel_bytes` each and a serial cold region of
    /// `serial_footprint_bytes`.
    ///
    /// # Panics
    ///
    /// Panics if a kernel would overlap the next kernel slot.
    pub fn new(num_kernels: u32, kernel_bytes: u32, serial_footprint_bytes: u64) -> Self {
        assert!(
            (kernel_bytes as u64) < KERNEL_STRIDE,
            "kernel of {kernel_bytes} bytes does not fit in the kernel stride"
        );
        let kernels = (0..num_kernels)
            .map(|i| KernelLayout {
                index: i,
                base: KERNEL_BASE + i as u64 * KERNEL_STRIDE,
                body_bytes: kernel_bytes,
            })
            .collect();
        CodeLayout {
            kernels,
            serial_hot_bytes: SERIAL_HOT_BYTES,
            serial_cold_bytes: serial_footprint_bytes,
        }
    }

    /// Base address of thread `tid`'s private code region.
    pub fn private_base(tid: usize) -> u64 {
        PRIVATE_BASE + tid as u64 * PRIVATE_STRIDE
    }

    /// Returns `true` if `addr` belongs to code shared by all threads
    /// (kernels, shared cold region, or critical-section code).
    pub fn is_shared_address(addr: u64) -> bool {
        (KERNEL_BASE..PRIVATE_BASE).contains(&addr)
    }

    /// Returns `true` if `addr` belongs to serial (master-only) code.
    pub fn is_serial_address(addr: u64) -> bool {
        (SERIAL_HOT_BASE..KERNEL_BASE).contains(&addr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernels_are_disjoint_and_ordered() {
        let l = CodeLayout::new(8, 8192, 64 * 1024);
        for w in l.kernels.windows(2) {
            assert!(w[0].base + w[0].body_bytes as u64 <= w[1].base);
        }
        assert_eq!(l.kernels.len(), 8);
        assert_eq!(l.kernels[0].base, KERNEL_BASE);
    }

    #[test]
    fn private_regions_do_not_collide_for_many_threads() {
        for tid in 0..64 {
            let base = CodeLayout::private_base(tid);
            assert!(base >= PRIVATE_BASE);
            assert_eq!((base - PRIVATE_BASE) % PRIVATE_STRIDE, 0);
        }
        assert_ne!(CodeLayout::private_base(0), CodeLayout::private_base(1));
    }

    #[test]
    fn address_classification() {
        assert!(CodeLayout::is_serial_address(SERIAL_HOT_BASE));
        assert!(CodeLayout::is_serial_address(SERIAL_COLD_BASE + 0x100));
        assert!(!CodeLayout::is_serial_address(KERNEL_BASE));
        assert!(CodeLayout::is_shared_address(KERNEL_BASE));
        assert!(CodeLayout::is_shared_address(PARALLEL_COLD_BASE));
        assert!(CodeLayout::is_shared_address(CRITICAL_BASE));
        assert!(!CodeLayout::is_shared_address(CodeLayout::private_base(0)));
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn oversized_kernel_rejected() {
        CodeLayout::new(2, KERNEL_STRIDE as u32 + 64, 1024);
    }

    #[test]
    fn region_constants_are_ordered() {
        // The bases are compile-time constants; sorting a runtime copy keeps
        // the ordering check in one place without constant-assertion lints.
        let bases = [
            SERIAL_HOT_BASE,
            SERIAL_COLD_BASE,
            KERNEL_BASE,
            PARALLEL_COLD_BASE,
            CRITICAL_BASE,
            PRIVATE_BASE,
        ];
        assert!(bases.windows(2).all(|w| w[0] < w[1]), "{bases:?}");
    }
}
